#!/usr/bin/env python3
"""Design-space exploration: search heterogeneous pipeline mixes for the
best complexity-effectiveness on a target workload mix.

The paper evaluates five fixed multipipeline designs; this example opens
the knob: it enumerates every configuration expressible as `aM6+bM4+cM2`
within a context budget, prices each with the calibrated area model, runs
the paper's heuristic mapping, and ranks designs by IPC/mm² — the
workflow a microarchitect would actually use this library for.

Run:
    python examples/design_space_exploration.py [--workload 4W8] [--max-contexts 8]
"""

from __future__ import annotations

import argparse
from itertools import product

from repro import config_area, get_config, get_workload, run_workload
from repro.metrics.tables import format_table


def candidate_names(max_contexts: int):
    """All aM6+bM4+cM2 mixes that fit the context budget (contexts:
    M6=2, M4=2, M2=1) and host at least one pipeline."""
    for a, b, c in product(range(0, 3), range(0, 4), range(0, 5)):
        contexts = 2 * a + 2 * b + c
        if a + b + c == 0 or contexts > max_contexts:
            continue
        parts = []
        if a:
            parts.append(f"{a}M6")
        if b:
            parts.append(f"{b}M4")
        if c:
            parts.append(f"{c}M2")
        yield "+".join(parts), contexts


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="4W8")
    parser.add_argument("--max-contexts", type=int, default=8)
    parser.add_argument("--target", type=int, default=4000)
    args = parser.parse_args()

    workload = get_workload(args.workload)
    n = workload.num_threads
    print(f"Exploring designs for {workload} (needs >= {n} contexts)\n")

    rows = []
    for name, contexts in candidate_names(args.max_contexts):
        if contexts < n:
            continue
        config = get_config(name)
        try:
            r = run_workload(config, workload.benchmarks, commit_target=args.target)
        except ValueError:
            continue  # workload does not fit this mix's per-pipeline contexts
        area = config_area(config)
        rows.append((r.ipc / area, name, contexts, r.ipc, area))

    # Baseline for reference.
    m8 = run_workload("M8", workload.benchmarks, commit_target=args.target)
    m8_area = config_area("M8")
    rows.append((m8.ipc / m8_area, "M8 (baseline)", 4, m8.ipc, m8_area))

    rows.sort(reverse=True)
    table = format_table(
        ["design", "contexts", "IPC", "area_mm2", "IPC/mm2"],
        [
            [name, ctx, f"{ipc:.3f}", f"{area:.1f}", f"{ppa:.5f}"]
            for ppa, name, ctx, ipc, area in rows
        ],
        title=f"Design ranking by complexity-effectiveness on {workload.name}",
    )
    print(table)
    best = rows[0]
    print(
        f"\nBest design: {best[1]} — {100 * (best[0] / (m8.ipc / m8_area) - 1):+.1f}% "
        f"IPC/mm2 vs the monolithic baseline"
    )


if __name__ == "__main__":
    main()
