#!/usr/bin/env python3
"""Dynamic thread-to-pipeline remapping — the paper's future work (§7).

"Raw performance results also point out that, in future hdSMT
implementations, this mapping should probably be made dynamically in
order to better adapt to the dynamic changes in program behaviour
during execution."

This example builds that scenario: one thread behaves like gzip and then
turns into mcf mid-run (a composite trace). A static profile-based
mapping keeps trusting the stale profile; the dynamic runner re-ranks
threads every epoch by their *observed* data-cache misses, drains the
movers, and remaps.

Run:
    python examples/dynamic_mapping.py [--epoch 800] [--switch 3000]
"""

from __future__ import annotations

import argparse

from repro import get_config
from repro.core.dynamic import run_dynamic
from repro.core.mapping import describe_mapping
from repro.core.simulation import run_simulation
from repro.trace.composite import composite_trace
from repro.trace.stream import trace_for


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--config", default="2M4+2M2")
    parser.add_argument("--target", type=int, default=10_000)
    parser.add_argument("--epoch", type=int, default=800)
    parser.add_argument("--switch", type=int, default=3_000)
    args = parser.parse_args()

    config = get_config(args.config)
    length = 3 * args.target
    names = ["gzip->mcf", "bzip2", "gap"]
    traces = [
        composite_trace("gzip", "mcf", length, switch_at=args.switch),
        trace_for("bzip2", length),
        trace_for("gap", length),
    ]
    # The static mapping a profile of the gzip phase would produce: the
    # (seemingly well-behaved) changing thread gets the dedicated M4.
    static_map = (0, 1, 1)

    print(f"Config {config.describe()}")
    print(f"Threads: {', '.join(names)} (thread 0 changes phase at {args.switch})\n")

    static = run_simulation(
        config, ["gzip", "bzip2", "gap"], static_map,
        commit_target=args.target, trace_length=length,
    )
    # Re-run the *actual* composite workload under the frozen mapping.
    from repro.core.processor import Processor

    proc = Processor(config, traces, static_map, args.target)
    proc.warm()
    proc.mem.reset_stats()
    proc.branch_unit.reset_stats()
    proc.run()
    static_ipc = proc.aggregate_ipc()

    dyn = run_dynamic(
        config, names, traces=traces, initial_mapping=static_map,
        commit_target=args.target, epoch_cycles=args.epoch,
        trace_length=length,
    )

    print(f"static mapping : {describe_mapping(config, static_map, names)}")
    print(f"  IPC = {static_ipc:.3f}")
    print(f"dynamic mapping: {describe_mapping(config, dyn.result.mapping, names)}")
    print(
        f"  IPC = {dyn.result.ipc:.3f}  "
        f"(epochs={dyn.epochs}, remaps={dyn.remaps}, migrations={dyn.migrations})"
    )
    print("\nmapping history:")
    for i, m in enumerate(dyn.mapping_history):
        print(f"  {i}: {describe_mapping(config, m, names)}")
    gain = 100 * (dyn.result.ipc / static_ipc - 1)
    print(f"\ndynamic vs static: {gain:+.1f}% IPC")


if __name__ == "__main__":
    main()
