#!/usr/bin/env python3
"""Quickstart: simulate one workload on the monolithic SMT baseline and on
an hdSMT design, and compare performance and complexity-effectiveness.

This is the paper's experiment in miniature: the monolithic M8 wins raw
IPC, the heterogeneous 2M4+2M2 wins IPC per mm².

Run:
    python examples/quickstart.py [--target N] [--workload 2W7]
"""

from __future__ import annotations

import argparse

from repro import config_area, get_workload, run_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--target", type=int, default=8000,
                        help="instructions the first-finishing thread commits")
    parser.add_argument("--workload", default="2W7",
                        help="paper workload id (e.g. 2W1, 4W6, 6W1)")
    args = parser.parse_args()

    workload = get_workload(args.workload)
    print(f"Workload {workload} [{workload.workload_class}]")
    print(f"{'config':>12}  {'IPC':>6}  {'area mm2':>9}  {'IPC/mm2':>9}")
    results = {}
    for config in ("M8", "2M4+2M2"):
        r = run_workload(config, workload.benchmarks, commit_target=args.target)
        area = config_area(config)
        results[config] = (r.ipc, area)
        print(f"{config:>12}  {r.ipc:6.3f}  {area:9.1f}  {r.ipc / area:9.5f}")
        per_thread = ", ".join(
            f"{b}={ipc:.2f}" for b, ipc in zip(r.benchmarks, r.thread_ipc)
        )
        print(f"{'':>12}  per-thread: {per_thread}")

    m8_ipc, m8_area = results["M8"]
    hd_ipc, hd_area = results["2M4+2M2"]
    print()
    print(f"raw IPC      : M8 leads by {100 * (m8_ipc / hd_ipc - 1):+.1f}%")
    print(
        f"IPC per mm2  : hdSMT leads by "
        f"{100 * ((hd_ipc / hd_area) / (m8_ipc / m8_area) - 1):+.1f}% "
        f"(the paper's complexity-effectiveness argument)"
    )


if __name__ == "__main__":
    main()
