#!/usr/bin/env python3
"""Workload characterization: the inter-application heterogeneity that
motivates hdSMT (§1 of the paper).

Profiles all 12 synthetic SPECint2000 benchmarks — cache behaviour,
branch predictability, solo IPC across the four pipeline models — and
shows the two facts the architecture is built on:

* applications differ wildly in memory behaviour (the MEM class misses
  an order of magnitude more than the ILP class), and
* the marginal value of a wider pipeline depends on the application
  (ILP threads lose a lot on M2; memory-bound threads barely care).

Run:
    python examples/workload_characterization.py [--target 3000]
"""

from __future__ import annotations

import argparse

from repro import BENCHMARK_NAMES, get_benchmark, profile_benchmark, run_simulation
from repro.metrics.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--target", type=int, default=3000)
    args = parser.parse_args()

    rows = []
    for name in sorted(
        BENCHMARK_NAMES, key=lambda n: profile_benchmark(n).misses_per_kilo_instruction
    ):
        prof = profile_benchmark(name)
        ipc = {}
        for cfg in ("M8", "1M6", "1M4", "1M2"):
            r = run_simulation(cfg, [name], (0,), commit_target=args.target)
            ipc[cfg] = r.ipc
        mispredict = r.stats["branch_mispredict_rate"]
        rows.append(
            [
                name,
                get_benchmark(name).workload_class,
                f"{prof.misses_per_kilo_instruction:.1f}",
                f"{mispredict:.3f}",
                f"{ipc['M8']:.2f}",
                f"{ipc['1M6']:.2f}",
                f"{ipc['1M4']:.2f}",
                f"{ipc['1M2']:.2f}",
                f"{ipc['M8'] / max(1e-9, ipc['1M2']):.1f}x",
            ]
        )
    print(
        format_table(
            ["bench", "class", "L1D MPKI", "misp", "M8", "M6", "M4", "M2", "M8/M2"],
            rows,
            title="Benchmark heterogeneity: memory behaviour and pipeline-width sensitivity",
        )
    )
    print(
        "\nReading: MEM-class threads (high MPKI) barely benefit from wide"
        "\npipelines — parking them on narrow M2 clusters and giving the"
        "\nwide pipelines to ILP threads is exactly the hdSMT mapping bet."
    )


if __name__ == "__main__":
    main()
