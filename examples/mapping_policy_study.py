#!/usr/bin/env python3
"""Mapping-policy study: how much does thread-to-pipeline mapping matter?

Reproduces §2.1/§5 in miniature on one configuration and workload: every
distinct mapping is simulated, the paper's profile-based heuristic is run,
and the oracle BEST/WORST bracket is reported — including where the
heuristic's choice landed in the full distribution.

Run:
    python examples/mapping_policy_study.py [--config 2M4+2M2] [--workload 4W6]
"""

from __future__ import annotations

import argparse

from repro import get_config, get_workload, profile_benchmark
from repro.core.mapping import describe_mapping, enumerate_mappings, heuristic_mapping
from repro.core.simulation import run_simulation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--config", default="2M4+2M2")
    parser.add_argument("--workload", default="4W6")
    parser.add_argument("--target", type=int, default=5000)
    parser.add_argument("--max-mappings", type=int, default=24)
    args = parser.parse_args()

    config = get_config(args.config)
    workload = get_workload(args.workload)
    benches = workload.benchmarks
    print(f"Config {config.describe()}")
    print(f"Workload {workload}\n")

    # The heuristic's profile inputs (§2.1: sort by data-cache misses).
    misses = [profile_benchmark(b).misses_per_kilo_instruction for b in benches]
    print("Profiled L1D MPKI (the heuristic's sort key):")
    for b, m in zip(benches, misses):
        print(f"  {b:10s} {m:8.2f}")
    heur = heuristic_mapping(config, misses)

    mappings = enumerate_mappings(
        config, len(benches), max_mappings=args.max_mappings, must_include=[heur]
    )
    print(f"\nSimulating {len(mappings)} distinct mappings...")
    scored = []
    for m in mappings:
        r = run_simulation(config, benches, m, commit_target=args.target)
        scored.append((r.ipc, m))
    scored.sort(reverse=True)

    print(f"\n{'rank':>4}  {'IPC':>6}  mapping")
    for rank, (ipc, m) in enumerate(scored, 1):
        tag = "  <- HEURISTIC" if m == heur else ""
        print(f"{rank:>4}  {ipc:6.3f}  {describe_mapping(config, m, benches)}{tag}")

    best_ipc = scored[0][0]
    worst_ipc = scored[-1][0]
    heur_ipc = next(ipc for ipc, m in scored if m == heur)
    print(f"\nBEST {best_ipc:.3f}  HEUR {heur_ipc:.3f}  WORST {worst_ipc:.3f}")
    print(f"heuristic accuracy (HEUR/BEST): {100 * heur_ipc / best_ipc:.1f}%")
    print(f"mapping spread (BEST/WORST):    {best_ipc / worst_ipc:.2f}x")


if __name__ == "__main__":
    main()
