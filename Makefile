# hdSMT reproduction — one-keystroke entry points.
#
#   make test     tier-1 suite (what CI / the roadmap gate runs)
#   make bench    opt-in figure + throughput benchmarks (writes
#                 benchmarks/output/*.txt and BENCH_0001.json)
#   make figures  regenerate Figs. 4/5 + the §5 summary via the CLI
#
#   make cov      tier-1 suite under pytest-cov with the CI coverage
#                 floor (80% over src/repro); writes coverage.xml
#   make lint     ruff check + ruff format --check over src/ tests/
#                 benchmarks/ (the CI lint job)
#   make perf-gate  throughput-regression tripwire: re-runs the
#                 throughput benchmarks (REPRO_SIM_SCALE=0.1) and fails
#                 on >25% regression vs the committed BENCH_000N baseline
#   make chaos    fault-injection suite against a real 2-worker pool
#                 (worker deaths, hangs, corrupt cache entries; the CI
#                 chaos lane)
#   make chaos-remote  distributed chaos lane: real `repro worker`
#                 processes under REPRO_FAULT_PLAN (worker death, hangs
#                 past lease expiry, stale-lease takeover, and a forced
#                 straggler whose bundle tail must be stolen), asserting
#                 bit-identical output + an eventful run report
#   make cache-smoke  multi-tier result-cache lane: memory-tier/backend
#                 semantics, the rendered-frame tier, the split/steal
#                 partition properties, and the `repro cache` CLI verbs
#   make serve-smoke  simulation-service lane: boot a real `repro
#                 serve` daemon, submit the reference sweep, assert the
#                 response byte-identical to the local execution path,
#                 warm resubmission from cache, SIGTERM drain with no
#                 orphaned pool workers (the CI serve-smoke lane)
#   make codegen-lockstep  specialized-engine differential lane: the
#                 full lockstep + forced-deopt + codegen unit suites
#                 under REPRO_CODEGEN=1, dumping every generated source
#                 to $(CODEGEN_DUMP_DIR) (the CI lane uploads that
#                 directory as the failure artifact)
#   make ci       what the GitHub Actions workflow runs: tier-1 suite +
#                 a smoke `figures` sweep (tiny scale, 2 workers)
#
# Knobs: REPRO_SIM_SCALE (window scale), REPRO_WORKERS (BatchRunner
# processes), REPRO_RESULT_CACHE (on-disk result cache directory),
# REPRO_TRACE_CACHE (packed trace / warm snapshot store directory),
# PERF_GATE_TOLERANCE (perf-gate regression threshold, default 0.25).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

#: Where `make codegen-lockstep` dumps the generated engine sources.
CODEGEN_DUMP_DIR ?= benchmarks/output/codegen-src

.PHONY: test cov bench bench-throughput figures ci lint perf-gate chaos \
	chaos-remote serve-smoke cache-smoke codegen-lockstep

test:
	$(PYTHON) -m pytest -x -q

chaos:
	REPRO_WORKERS=2 $(PYTHON) -m pytest -x -q \
		tests/runner/test_faults.py tests/runner/test_resilience.py

chaos-remote:
	$(PYTHON) -m pytest -x -q \
		tests/runner/test_distributed_queue.py \
		tests/runner/test_distributed.py \
		tests/runner/test_distributed_chaos.py

serve-smoke:
	$(PYTHON) -m pytest -x -q tests/service/test_serve_smoke.py

cache-smoke:
	$(PYTHON) -m pytest -x -q \
		tests/runner/test_cache_tiers.py \
		tests/runner/test_split_properties.py \
		tests/service/test_frame_cache.py \
		tests/integration/test_cli.py::test_cache_stats_and_prune

codegen-lockstep:
	REPRO_CODEGEN=1 REPRO_CODEGEN_DUMP=$(CODEGEN_DUMP_DIR) \
		$(PYTHON) -m pytest -x -q \
		tests/core/test_engine_options.py \
		tests/core/test_codegen.py \
		tests/runner/test_variant_salt.py \
		tests/properties/test_stage_registry_lockstep.py \
		tests/properties/test_codegen_deopt_lockstep.py

lint:
	ruff check src tests benchmarks
	ruff format --check src tests benchmarks

perf-gate:
	REPRO_SIM_SCALE=0.1 $(PYTHON) benchmarks/perf_gate.py

cov:
	$(PYTHON) -m pytest -x -q --cov=repro --cov-report=term \
		--cov-report=xml:coverage.xml --cov-fail-under=80

bench:
	RUN_BENCH=1 $(PYTHON) -m pytest benchmarks -q

bench-throughput:
	RUN_BENCH=1 $(PYTHON) -m pytest benchmarks/test_simulator_throughput.py -q

figures:
	$(PYTHON) -m repro figures

ci: test
	REPRO_SIM_SCALE=0.1 REPRO_MAX_MAPPINGS=4 $(PYTHON) -m repro figures \
		--jobs 2 --screening --workloads 2W4 4W6 --quiet
	REPRO_SIM_SCALE=0.1 REPRO_MAX_MAPPINGS=4 $(PYTHON) -m repro figures \
		--jobs 2 --workloads 2W4 4W6 --quiet
