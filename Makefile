# hdSMT reproduction — one-keystroke entry points.
#
#   make test     tier-1 suite (what CI / the roadmap gate runs)
#   make bench    opt-in figure + throughput benchmarks (writes
#                 benchmarks/output/*.txt and BENCH_0001.json)
#   make figures  regenerate Figs. 4/5 + the §5 summary via the CLI
#
# Knobs: REPRO_SIM_SCALE (window scale), REPRO_WORKERS (BatchRunner
# processes), REPRO_RESULT_CACHE (on-disk result cache directory).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-throughput figures

test:
	$(PYTHON) -m pytest -x -q

bench:
	RUN_BENCH=1 $(PYTHON) -m pytest benchmarks -q

bench-throughput:
	RUN_BENCH=1 $(PYTHON) -m pytest benchmarks/test_simulator_throughput.py -q

figures:
	$(PYTHON) -m repro figures
