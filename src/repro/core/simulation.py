"""High-level simulation entry points.

``run_simulation`` assembles traces + processor for one (configuration,
workload, mapping) triple, warms the structures, runs to the commit
target and returns a :class:`SimResult`. The experiment drivers in
:mod:`repro.experiments` build the paper's figures out of these calls.

Traces flow through here as *column views*: ``resolve_traces`` hands the
processor :class:`~repro.trace.stream.Trace` objects whose fetch path is
served by lazily-decoded blocks over the packed int64 columns
(:meth:`~repro.trace.stream.Trace.fetch_view`) — for store-served
(mmap-backed) traces the full tuple lists never materialize, so a
BatchRunner worker pays page-cache reads, not per-trace decode, and a
short screening run decodes only the prefix it actually fetches. The
warm pass consumes the same columns through
:meth:`~repro.trace.stream.Trace.warm_sequences`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import MicroarchConfig, get_config
from repro.core.processor import Processor
from repro.trace.stream import Trace, trace_for

__all__ = [
    "SimResult",
    "run_simulation",
    "run_workload",
    "default_trace_length",
    "resolve_traces",
    "resolve_trace_triples",
    "collect_result",
]


def default_trace_length(commit_target: int) -> int:
    """Trace window sized to the commit target (wrapping covers overrun)."""
    return max(4096, commit_target)


def resolve_trace_triples(
    benchmarks: Sequence[str], trace_length: int, seed: int = 0
) -> List[Tuple[str, int, int]]:
    """The ``(benchmark, length, instance)`` identities a workload
    streams, in thread order — the single source of truth for the
    instance namespace (repeated benchmarks get distinct instances; the
    seed shifts the whole workload into a disjoint namespace). Shared by
    :func:`resolve_traces` and the runner jobs' pre-pack bookkeeping so
    the parent packs exactly the traces workers will look up.
    """
    seen: Dict[str, int] = {}
    triples: List[Tuple[str, int, int]] = []
    for name in benchmarks:
        inst = seen.get(name, 0)
        seen[name] = inst + 1
        triples.append((name, trace_length, inst + (seed << 16)))
    return triples


def resolve_traces(
    benchmarks: Sequence[str], trace_length: int, seed: int = 0
) -> List[Trace]:
    """The trace set a workload streams, in thread order (see
    :func:`resolve_trace_triples`). Shared by :func:`run_simulation` and
    the screening jobs so every consumer of a workload sees exactly the
    same streams."""
    return [
        trace_for(name, length, instance=inst)
        for name, length, inst in resolve_trace_triples(
            benchmarks, trace_length, seed
        )
    ]


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulation run."""

    config_name: str
    benchmarks: Tuple[str, ...]
    mapping: Tuple[int, ...]
    cycles: int
    committed: Tuple[int, ...]
    commit_target: int
    ipc: float  #: aggregate committed instructions / cycle
    thread_ipc: Tuple[float, ...]
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def num_threads(self) -> int:
        return len(self.benchmarks)

    def describe(self) -> str:
        per = ", ".join(
            f"{b}={i:.3f}" for b, i in zip(self.benchmarks, self.thread_ipc)
        )
        return (
            f"{self.config_name} {list(self.mapping)} "
            f"IPC={self.ipc:.3f} ({per}) cycles={self.cycles}"
        )


def run_simulation(
    config: MicroarchConfig | str,
    benchmarks: Sequence[str],
    mapping: Sequence[int],
    commit_target: int = 10_000,
    trace_length: Optional[int] = None,
    warmup: bool = True,
    max_cycles: Optional[int] = None,
    seed: int = 0,
) -> SimResult:
    """Simulate one workload on one configuration under one mapping.

    Parameters
    ----------
    config:
        A :class:`MicroarchConfig` or a standard configuration name.
    benchmarks:
        SPECint2000 benchmark names, one per thread (workload order).
    mapping:
        ``mapping[thread] = pipeline_index``.
    commit_target:
        Stop as soon as one thread commits this many instructions (the
        paper's stop rule, scaled down from 300M).
    trace_length:
        Generated window per thread; defaults to the commit target.
    warmup:
        Stream each trace through caches/TLBs/predictors before timing
        and reset the counters (steady-state measurement).
    seed:
        Namespaces the synthetic trace draw: the paper's fixed traces are
        seed 0; other seeds yield alternative stationary windows of the
        same benchmarks (for sensitivity studies).
    """
    if isinstance(config, str):
        config = get_config(config)
    if trace_length is None:
        trace_length = default_trace_length(commit_target)
    traces = resolve_traces(benchmarks, trace_length, seed)
    proc = Processor(config, traces, mapping, commit_target)
    if warmup:
        proc.warm()
        proc.mem.reset_stats()
        proc.branch_unit.reset_stats()
    proc.run(max_cycles=max_cycles)
    return collect_result(proc, config.name, benchmarks, mapping, commit_target)


def collect_result(
    proc: Processor,
    config_name: str,
    benchmarks: Sequence[str],
    mapping: Sequence[int],
    commit_target: int,
) -> SimResult:
    """Assemble the :class:`SimResult` for a finished processor (shared by
    :func:`run_simulation` and the screening jobs' folded full runs)."""
    n = proc.num_threads
    stats = {
        "l1d_miss_rate": proc.mem.l1d.stats.miss_rate,
        "l1i_miss_rate": proc.mem.l1i.stats.miss_rate,
        "l2_miss_rate": proc.mem.l2.stats.miss_rate,
        "dtlb_miss_rate": proc.mem.dtlb.miss_rate,
        "branch_mispredict_rate": proc.branch_unit.predictor.mispredict_rate,
        "mispredicts": float(sum(proc.stat_mispredicts)),
        "flushes": float(sum(proc.stat_flushes)),
        "squashed": float(sum(proc.stat_squashed)),
        "wrongpath_fetched": float(sum(proc.stat_wrongpath_fetched)),
        "fetched": float(sum(proc.stat_fetched)),
        "icache_stalls": float(proc.stat_icache_stalls),
        "btb_bubbles": float(proc.stat_btb_bubbles),
    }
    return SimResult(
        config_name=config_name,
        benchmarks=tuple(benchmarks),
        mapping=tuple(mapping),
        cycles=proc.cycle,
        committed=tuple(proc.committed),
        commit_target=commit_target,
        ipc=proc.aggregate_ipc(),
        thread_ipc=tuple(proc.thread_ipc(t) for t in range(n)),
        stats=stats,
    )


def run_workload(
    config: MicroarchConfig | str,
    benchmarks: Sequence[str],
    commit_target: int = 10_000,
    **kwargs,
) -> SimResult:
    """Run with the trivial mapping for monolithic configs, or the
    paper's heuristic mapping otherwise (convenience wrapper)."""
    from repro.core.mapping import heuristic_mapping
    from repro.trace.profiling import profile_benchmark

    if isinstance(config, str):
        config = get_config(config)
    if config.is_monolithic:
        mapping: Tuple[int, ...] = (0,) * len(benchmarks)
    else:
        misses = [
            profile_benchmark(b).misses_per_kilo_instruction for b in benchmarks
        ]
        mapping = heuristic_mapping(config, misses)
    return run_simulation(config, benchmarks, mapping, commit_target, **kwargs)
