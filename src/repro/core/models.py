"""Pipeline models M8, M6, M4 and M2 — Fig. 2(a) of the paper.

==================  ====  ====  ====  ====
Resource             M8    M6    M4    M2
==================  ====  ====  ====  ====
Hardware contexts     4     2     2     1
Max. instr/cycle      8     6     4     2
Max. threads/cycle    2     2     2     1
Queues (IQ/FQ/LQ)    64    32    32    16
Integer func. units   6     4     3     1
FP func. units        3     2     2     1
LD/ST units           4     2     2     1
==================  ====  ====  ====  ====

Fetch-buffer sizes come from §4: 32 entries for M6/M4, 16 for M2. The
monolithic baseline (M8) has no decoupling buffer in the paper; we give it
two fetch packets of slack so the shared fetch engine code path is
uniform (it never throttles an 8-wide rename).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["PipelineModel", "M8", "M6", "M4", "M2", "MODELS_BY_NAME", "get_model"]


@dataclass(frozen=True)
class PipelineModel:
    """Static description of one pipeline (cluster) flavour."""

    name: str
    contexts: int  #: hardware thread contexts the pipeline can host
    width: int  #: max instructions/cycle through decode/issue/commit
    threads_per_cycle: int  #: distinct threads accepted into rename per cycle
    iq_entries: int  #: integer instruction queue entries
    fq_entries: int  #: floating-point queue entries
    lq_entries: int  #: load/store queue entries
    int_units: int
    fp_units: int
    ldst_units: int
    fetch_buffer: int  #: decoupling-buffer entries between fetch and decode

    def __post_init__(self) -> None:
        for field_name in (
            "contexts",
            "width",
            "threads_per_cycle",
            "iq_entries",
            "fq_entries",
            "lq_entries",
            "int_units",
            "fp_units",
            "ldst_units",
            "fetch_buffer",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{self.name}: {field_name} must be positive")
        if self.threads_per_cycle > self.contexts:
            raise ValueError(f"{self.name}: threads_per_cycle exceeds contexts")

    @property
    def total_queue_entries(self) -> int:
        return self.iq_entries + self.fq_entries + self.lq_entries

    @property
    def total_fu(self) -> int:
        return self.int_units + self.fp_units + self.ldst_units

    def __str__(self) -> str:
        return self.name


M8 = PipelineModel(
    name="M8",
    contexts=4,
    width=8,
    threads_per_cycle=2,
    iq_entries=64,
    fq_entries=64,
    lq_entries=64,
    int_units=6,
    fp_units=3,
    ldst_units=4,
    fetch_buffer=16,
)

M6 = PipelineModel(
    name="M6",
    contexts=2,
    width=6,
    threads_per_cycle=2,
    iq_entries=32,
    fq_entries=32,
    lq_entries=32,
    int_units=4,
    fp_units=2,
    ldst_units=2,
    fetch_buffer=32,
)

M4 = PipelineModel(
    name="M4",
    contexts=2,
    width=4,
    threads_per_cycle=2,
    iq_entries=32,
    fq_entries=32,
    lq_entries=32,
    int_units=3,
    fp_units=2,
    ldst_units=2,
    fetch_buffer=32,
)

M2 = PipelineModel(
    name="M2",
    contexts=1,
    width=2,
    threads_per_cycle=1,
    iq_entries=16,
    fq_entries=16,
    lq_entries=16,
    int_units=1,
    fp_units=1,
    ldst_units=1,
    fetch_buffer=16,
)

MODELS_BY_NAME: Dict[str, PipelineModel] = {m.name: m for m in (M8, M6, M4, M2)}


def get_model(name: str) -> PipelineModel:
    """Look up a pipeline model by name ('M8', 'M6', 'M4', 'M2')."""
    try:
        return MODELS_BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown pipeline model {name!r}; available: {', '.join(MODELS_BY_NAME)}"
        ) from None
