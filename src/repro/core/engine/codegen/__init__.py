"""Per-config specialized cycle-loop codegen (the ``codegen`` variant).

Given a configuration and its resolved stage set, this package emits
one fused Python cycle-loop function with the config's constants
(fetch/issue widths, FU counts via the folded stages, pipeline count,
thread count, ROB size, wheel mask, policy kind) folded into the source
as literals, the per-cycle stage-call sequence collapsed into a single
function body, and every rare path — pipeline flush, out-of-horizon
timing-wheel events, warm-restore boundaries, entry-time shape
mismatches — guarded by cheap checks that abort to the generic engine
mid-run with state intact (speculate/guard/commit, never silently
divergent; see :meth:`Processor._codegen_deopt`). The deopt is one-way
for the remainder of that ``run()`` call; per-reason counts live in
``proc.codegen_deopts`` (diagnostics only — never in ``SimResult``
stats, which stay bit-identical across variants).

The package plugs into the public variant API of
:mod:`repro.core.engine.stages` exactly like the built-in (mono, SMT)
variants: importing it registers the ``"codegen"`` variant (highest
priority, selected only when ``EngineOptions.codegen`` /
``REPRO_CODEGEN=1`` opts in), and its registry entries are the
dispatcher stages below — so the stage-registry lockstep suite
differentially verifies generated-vs-generic for free.

Compiled engines are cached per :class:`EngineSpec` (module-wide): two
processors of the same shape share one compiled engine, and
:data:`compile_count` says how many distinct shapes were compiled.
Set ``REPRO_CODEGEN_DUMP=<dir>`` to write every generated source to
disk as it is compiled (the CI lane's failure artifact).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List

from repro.core.engine.codegen.generator import (
    CompiledEngine,
    EngineSpec,
    compile_engine,
    fold_stage_source,
    generate_cycle_loop,
    spec_for,
    spec_token,
)
from repro.core.engine.options import engine_options_for
from repro.core.engine.stages import StageSet, register_stage_variant

__all__ = [
    "EngineSpec",
    "CompiledEngine",
    "spec_for",
    "spec_token",
    "fold_stage_source",
    "generate_cycle_loop",
    "compile_engine",
    "engine_for_spec",
    "attach_engine",
    "clear_codegen_cache",
    "dump_sources",
    "codegen_fetch",
    "codegen_issue",
    "codegen_commit",
    "codegen_setup",
    "CODEGEN_SET",
]

#: spec -> compiled engine (process-wide; compiled functions are pure
#: in ``self``, so sharing across processors is safe).
_ENGINES: Dict[EngineSpec, CompiledEngine] = {}

#: Number of distinct specs compiled since the last cache clear (the
#: codegen-cache reuse test pins "same config -> compiled once").
compile_count = 0


def engine_for_spec(spec: EngineSpec) -> CompiledEngine:
    """The compiled engine for ``spec`` (cached)."""
    global compile_count
    eng = _ENGINES.get(spec)
    if eng is None:
        eng = compile_engine(spec)
        compile_count += 1
        _ENGINES[spec] = eng
        directory = os.environ.get("REPRO_CODEGEN_DUMP")
        if directory:
            dump_sources(eng, directory)
    return eng


def clear_codegen_cache() -> None:
    """Drop compiled engines and reset the compile counter (tests)."""
    global compile_count
    _ENGINES.clear()
    compile_count = 0


def dump_sources(engine: CompiledEngine, directory: str | os.PathLike) -> List[Path]:
    """Write every generated source of ``engine`` under ``directory``
    (``<token>__<name>.py``); returns the written paths."""
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    for name, src in sorted(engine.sources.items()):
        path = out / f"{engine.token}__{name}.py"
        path.write_text(src)
        written.append(path)
    return written


def attach_engine(proc) -> CompiledEngine:
    """Compile (or fetch from cache) the engine for ``proc``'s shape and
    remember it on the instance."""
    eng = engine_for_spec(spec_for(proc))
    proc._codegen_engine = eng
    return eng


# -- registry dispatchers ---------------------------------------------------
# The registry holds *config-independent* representatives; these bind
# lazily to the processor's compiled engine on first call, so the
# lockstep suite can splice them onto any processor (exactly like the
# mono/smt entries) without going through the constructor's setup hook.


def codegen_fetch(self) -> None:
    eng = getattr(self, "_codegen_engine", None)
    if eng is None:
        eng = attach_engine(self)
    eng.fetch(self)


def codegen_issue(self) -> None:
    eng = getattr(self, "_codegen_engine", None)
    if eng is None:
        eng = attach_engine(self)
    eng.issue(self)


def codegen_commit(self) -> None:
    eng = getattr(self, "_codegen_engine", None)
    if eng is None:
        eng = attach_engine(self)
    eng.commit(self)


def codegen_setup(proc) -> None:
    """The variant's construction hook: bind the compiled stages and the
    fused cycle loop directly (no per-call dispatcher indirection), and
    arm the deopt counters."""
    eng = attach_engine(proc)
    proc._fetch_impl = eng.fetch.__get__(proc)
    proc._issue_impl = eng.issue.__get__(proc)
    proc._commit_impl = eng.commit.__get__(proc)
    if eng.issue_pipeline is not None:
        # The folded issue_all dispatches per pipeline through
        # ``self._issue``; point it at the folded body.
        proc._issue = eng.issue_pipeline.__get__(proc)
    if proc.codegen_deopts is None:
        proc.codegen_deopts = {}
    proc._run_impl = eng.cycle_loop.__get__(proc)


CODEGEN_SET = StageSet(
    fetch=codegen_fetch,
    issue=codegen_issue,
    commit=codegen_commit,
    name="codegen",
    setup=codegen_setup,
)


def _codegen_opted_in(cfg) -> bool:
    return cfg is not None and engine_options_for(cfg).codegen


register_stage_variant(
    "codegen",
    predicate=_codegen_opted_in,
    factory=lambda cfg: CODEGEN_SET,
    priority=20,
)
