"""Source generation for per-config specialized engines.

Two kinds of artifacts are generated per :class:`EngineSpec` (the
construction-time constants of one processor shape):

* **Folded stage sources** — the *real* generic/mono stage functions
  (:mod:`repro.core.engine.stages`) are re-emitted with every
  construction-time invariant substituted as a literal
  (``self.rob_entries`` → ``256``, ``self._policy_kind`` → ``2``,
  ``self.policy.flushing`` → ``False``, ...). Transforming the live
  source (``inspect.getsource`` + word-bounded substitution) instead of
  maintaining parallel templates means the specialized bodies can never
  drift from the generic ones: any edit to a stage is picked up at the
  next compile, and the lockstep suite re-verifies bit-identity.

* **The fused cycle loop** — ``run()``'s scheduling loop re-emitted for
  one configuration: widths/counts/masks as literals, the per-thread
  and per-pipeline scans unrolled, and every *rare* path (pipeline
  flush, out-of-horizon timing-wheel events, warm-restore boundaries,
  any entry-time shape mismatch) replaced by a cheap guard that aborts
  to the generic engine mid-run with state intact
  (``Processor._codegen_deopt``) — speculate/guard/commit, never
  silently divergent. Guards sit at the top of the loop, *between*
  cycles, where the machine state is always consistent.

Substituted attributes are construction-time invariants of the engine
(hoisted in ``Processor.__init__`` and never reassigned); the guards
cover everything else the loop speculates on.
"""

from __future__ import annotations

import inspect
import re
import textwrap
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.engine.stages.commit import commit, commit_mono
from repro.core.engine.stages.fetch import fetch, fetch_mono
from repro.core.engine.stages.issue import issue_all, issue_mono, issue_pipeline

__all__ = [
    "EngineSpec",
    "CompiledEngine",
    "spec_for",
    "spec_token",
    "fold_stage_source",
    "generate_cycle_loop",
    "compile_engine",
]


@dataclass(frozen=True)
class EngineSpec:
    """The construction-time constants one specialized engine is built
    for. Hashable — the compile cache is keyed on it, so every
    processor of the same shape shares one compiled engine."""

    num_threads: int
    num_pipes: int  #: ``len(active_pipes)`` (pipelines hosting threads)
    rob_entries: int
    wheel_mask: int
    fetch_width: int
    fetch_threads: int
    extra_reg: int
    l1_lat: int
    flush_thr: int
    policy_kind: int
    flushing: bool
    monolithic: bool


def spec_for(proc) -> EngineSpec:
    """The spec of a live processor (the constants ``__init__`` hoisted)."""
    return EngineSpec(
        num_threads=proc.num_threads,
        num_pipes=len(proc.active_pipes),
        rob_entries=proc.rob_entries,
        wheel_mask=proc._wheel_mask,
        fetch_width=proc._fetch_width,
        fetch_threads=proc._fetch_threads,
        extra_reg=proc._extra_reg,
        l1_lat=proc._l1_lat,
        flush_thr=proc._flush_thr,
        policy_kind=proc._policy_kind,
        flushing=bool(proc.policy.flushing),
        monolithic=proc.config.is_monolithic,
    )


def spec_token(spec: EngineSpec) -> str:
    """A filename/identifier-safe name for one spec."""
    return (
        f"t{spec.num_threads}_p{spec.num_pipes}_r{spec.rob_entries}"
        f"_w{spec.wheel_mask + 1}_fw{spec.fetch_width}"
        f"_ft{spec.fetch_threads}_x{spec.extra_reg}_l{spec.l1_lat}"
        f"_fl{spec.flush_thr}_pk{spec.policy_kind}"
        f"_{'flush' if spec.flushing else 'noflush'}"
        f"_{'mono' if spec.monolithic else 'smt'}"
    )


#: Attribute -> spec field: the construction-time invariants folded into
#: the stage sources as literals. Word-bounded, so e.g. the
#: ``self.rob_entries`` substitution can never touch ``self.rob_entry``
#: and ``self._fetch_threads`` never touches ``self._fetch_thread``.
_STAGE_FOLDS = (
    ("self.num_threads", "num_threads"),
    ("self.rob_entries", "rob_entries"),
    ("self._wheel_mask", "wheel_mask"),
    ("self._fetch_width", "fetch_width"),
    ("self._fetch_threads", "fetch_threads"),
    ("self._extra_reg", "extra_reg"),
    ("self._l1_lat", "l1_lat"),
    ("self._flush_thr", "flush_thr"),
    ("self._policy_kind", "policy_kind"),
)


def fold_stage_source(fn: Callable, spec: EngineSpec) -> str:
    """The source of stage function ``fn`` with every spec constant
    substituted as a literal."""
    src = textwrap.dedent(inspect.getsource(fn))
    for attr, field_name in _STAGE_FOLDS:
        src = re.sub(
            re.escape(attr) + r"\b", str(getattr(spec, field_name)), src
        )
    src = re.sub(r"self\.policy\.flushing\b", str(spec.flushing), src)
    return src


def _compile_stage(fn: Callable, spec: EngineSpec, token: str) -> Callable:
    """exec the folded source against the original module's globals (the
    stage's imports — heapq, opcodes, state constants — resolve to the
    very same objects the generic stage uses)."""
    src = fold_stage_source(fn, spec)
    name = fn.__name__
    namespace = dict(fn.__globals__)
    code = compile(src, f"<codegen:{name}@{token}>", "exec")
    exec(code, namespace)
    out = namespace[name]
    out.__name__ = f"{name}__{token}"
    out.__qualname__ = out.__name__
    return out


def generate_cycle_loop(spec: EngineSpec) -> str:
    """The fused, specialized scheduling loop for one spec.

    Structure and stage order are exactly ``Processor._generic_run``'s;
    the differences are (a) literals for every constant, (b) the
    per-thread/per-pipeline scans unrolled, and (c) the guard block at
    the top of each iteration: out-of-horizon events, pipeline
    flush-waits and warm restores — all rare, all invalidating the
    loop's speculation — abort to the generic engine. Guards run
    between cycles, so the state handed over is always consistent;
    anything a stage changes *mid*-cycle (a flush raised in writeback,
    a far event scheduled at issue) is only consulted by later cycles,
    which the next iteration's guards reach first.
    """
    n = spec.num_threads
    p = spec.num_pipes
    mask = spec.wheel_mask
    size = mask + 1
    pipe_binds = "\n".join(f"    pl{i} = active[{i}]" for i in range(p))
    flush_guard = " or ".join(f"flush_wait[{t}]" for t in range(n))
    if spec.flushing:
        # FLUSH policy: writeback can raise flush_wait any cycle, so the
        # guard must run per iteration.
        flush_entry_guard = ""
        flush_cycle_guard = (
            f"        if {flush_guard}:\n"
            '            return self._codegen_deopt("flush", max_cycles)\n'
        )
    else:
        # Non-flushing policy: nothing ever schedules EV_FLUSHCHK (the
        # only path raising flush_wait), and the entry guard pinned
        # flushing=False — so one entry-time check replaces the
        # per-cycle flush guard.
        flush_entry_guard = (
            f"    if {flush_guard}:\n"
            '        return self._codegen_deopt("flush", max_cycles)\n'
        )
        flush_cycle_guard = ""
    stall_idle = " and ".join(f"cyc < stall[{t}]" for t in range(n))
    empty_bufs = " and ".join(f"not pl{i}.buffer" for i in range(p))
    stall_wake = "\n".join(
        f"                s = stall[{t}]\n"
        f"                if cyc < s < wake:\n"
        f"                    wake = s"
        for t in range(n)
    )
    rename_calls = "\n".join(
        f"        if pl{i}.buffer and pl{i}.blocked_epoch != free_epoch:\n"
        f"            rename_stage(pl{i})"
        for i in range(p)
    )
    return f'''\
def cycle_loop(self, max_cycles):
    """Generated cycle loop, specialized for {spec_token(spec)}."""
    # --- entry guard: revalidate every folded constant; any mismatch
    # (wrong processor shape) deopts before touching state.
    if (
        self.num_threads != {n}
        or self.rob_entries != {spec.rob_entries}
        or self._wheel_mask != {mask}
        or len(self.active_pipes) != {p}
        or self._policy_kind != {spec.policy_kind}
        or self._fetch_width != {spec.fetch_width}
        or self._fetch_threads != {spec.fetch_threads}
        or self._extra_reg != {spec.extra_reg}
        or self._l1_lat != {spec.l1_lat}
        or self._flush_thr != {spec.flush_thr}
        or bool(self.policy.flushing) != {spec.flushing}
    ):
        return self._codegen_deopt("entry", max_cycles)
    wheel = self._wheel
    flush_wait = self.flush_wait
    stall = self.fetch_stall_until
    active = self.active_pipes
{pipe_binds}
    commit_stage = self._commit_impl
    writeback_stage = self._writeback
    issue_stage = self._issue_impl
    rename_stage = self._rename
    fetch_stage = self._fetch_impl
    # The far-events overflow dict is bound once in __init__ and only
    # ever mutated in place, so the guard can test the local alias.
    far = self._far_events
    spec_epoch = self._spec_epoch
{flush_entry_guard}    while not self.finished:
        cyc = self.cycle
        if cyc >= max_cycles:
            break
        # --- speculation guards (rare paths; state is consistent
        # between cycles, so aborting here hands over mid-run) --------
        if far:
            return self._codegen_deopt("far", max_cycles)
{flush_cycle_guard}        if self._spec_epoch != spec_epoch:
            return self._codegen_deopt("warm", max_cycles)
        # --- idle-cycle fast path (no far events, no flush-waits:
        # both guarded above, so their terms are gone) -----------------
        if (
            self._ready_count == 0
            and self._commitable == 0
            and not wheel[cyc & {mask}]
        ):
            if ({stall_idle}) and ({empty_bufs}):
                wake = max_cycles
                for d in range(1, {size}):
                    if wheel[(cyc + d) & {mask}]:
                        if cyc + d < wake:
                            wake = cyc + d
                        break
{stall_wake}
                if wake <= cyc:
                    wake = cyc + 1
                self._commit_rotor += wake - cyc
                self.cycle = wake
                continue
        # --- one cycle (same stage order as the generic loop) ---------
        if self._commitable:
            commit_stage()
        else:
            self._commit_rotor += 1
        if wheel[cyc & {mask}]:
            writeback_stage()
        if self._ready_count:
            issue_stage()
        free_epoch = self._free_epoch
{rename_calls}
        fetch_stage()
        self.cycle = cyc + 1
    return self.cycle
'''


@dataclass(frozen=True)
class CompiledEngine:
    """One compiled specialized engine (shared by every processor of
    the same spec; the functions are pure in ``self``)."""

    spec: EngineSpec
    token: str
    fetch: Callable
    issue: Callable
    commit: Callable
    #: folded per-pipeline issue body (None for monolithic specs, whose
    #: ``issue`` is the collapsed mono stage and never dispatches)
    issue_pipeline: Optional[Callable]
    cycle_loop: Callable
    #: name -> generated source (dumped for CI artifacts / debugging)
    sources: Dict[str, str]


def compile_engine(spec: EngineSpec) -> CompiledEngine:
    """Fold, generate and compile the full engine for one spec."""
    token = spec_token(spec)
    if spec.monolithic:
        stage_fns = {"fetch": fetch_mono, "issue": issue_mono, "commit": commit_mono}
    else:
        stage_fns = {
            "fetch": fetch,
            "issue": issue_all,
            "commit": commit,
            "issue_pipeline": issue_pipeline,
        }
    compiled = {
        name: _compile_stage(fn, spec, token) for name, fn in stage_fns.items()
    }
    sources = {
        name: fold_stage_source(fn, spec) for name, fn in stage_fns.items()
    }
    loop_src = generate_cycle_loop(spec)
    sources["cycle_loop"] = loop_src
    namespace: Dict[str, Callable] = {}
    exec(compile(loop_src, f"<codegen:cycle_loop@{token}>", "exec"), namespace)
    loop_fn = namespace["cycle_loop"]
    loop_fn.__name__ = f"cycle_loop__{token}"
    loop_fn.__qualname__ = loop_fn.__name__
    return CompiledEngine(
        spec=spec,
        token=token,
        fetch=compiled["fetch"],
        issue=compiled["issue"],
        commit=compiled["commit"],
        issue_pipeline=compiled.get("issue_pipeline"),
        cycle_loop=loop_fn,
        sources=sources,
    )
