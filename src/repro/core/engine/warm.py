"""Warm-up machinery: vectorized streaming, memoization, snapshot store.

The paper measures steady-state segments; our short windows would be
dominated by compulsory misses and an untrained predictor, so every
simulation warms caches, TLBs and predictors with each thread's window
first. Warming is deterministic in (traces, memory params, thread
count), which makes the post-warm structure state cacheable at three
levels:

* a process-wide memo (``_WARM_CACHE``) keyed on trace identities;
* an optional on-disk snapshot store (:func:`set_warm_store`), shared
  between BatchRunner workers — the first process to warm a trace set
  persists the snapshot, every other process restores it;
* the BatchRunner parent can precompute snapshots for a whole batch
  (:func:`ensure_warm_snapshot`) so concurrent workers never race to
  compute identical ones.

``warm`` / ``_load_warm_snapshot`` / ``_remember_warm`` /
``_warm_store_path`` are the Processor-side methods of this machinery;
:class:`~repro.core.engine.engine.Processor` binds them as methods.
"""

from __future__ import annotations

import os
import pickle
from hashlib import sha256
from typing import Dict, Optional

from repro.branch.unit import BranchUnit
from repro.ioutil import atomic_write_bytes
from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.packed import PACK_FORMAT_VERSION

__all__ = [
    "set_warm_store",
    "clear_warm_cache",
    "ensure_warm_snapshot",
    "warm_snapshot_path",
]

#: Salts on-disk warm-snapshot keys; bump when warm-up semantics or the
#: dumped structure-state shapes change (v2: int-keyed TLB maps).
_WARM_SNAPSHOT_VERSION = 2

#: Memoized post-warm structure state, keyed on (memory params, thread
#: count, trace identities). Entries hold strong references to their
#: traces so object ids can never be recycled into a false hit; FIFO
#: eviction bounds the footprint for one-off trace sets (composites).
_WARM_CACHE: Dict[tuple, tuple] = {}
_WARM_CACHE_MAX = 128

#: Optional on-disk warm-snapshot store (a directory), shared between
#: BatchRunner workers: the first process to warm a (memory params,
#: thread count, trace set) persists the snapshot, every other process
#: restores it instead of streaming the window. Only traces built by
#: ``trace_for`` participate — they carry a content key; hand-built
#: traces (tests, composites) always warm in-process.
_WARM_STORE_DIR: Optional[str] = None


def set_warm_store(directory: Optional[str]) -> None:
    """Activate (None: deactivate) the process-wide warm-snapshot store."""
    global _WARM_STORE_DIR
    _WARM_STORE_DIR = str(directory) if directory is not None else None


def clear_warm_cache() -> None:
    """Drop memoized warm-up snapshots (tests / memory pressure)."""
    _WARM_CACHE.clear()


def _stream_warm(mem: MemoryHierarchy, unit: BranchUnit, traces) -> None:
    """Stream every trace's batched per-structure warm sequences into the
    given hierarchy/branch unit (the vectorized warm pass; see
    :func:`warm` for the bit-identity argument)."""
    dtlb = mem.dtlb
    l1d = mem.l1d
    l2 = mem.l2
    itlb = mem.itlb
    l1i = mem.l1i
    predictor = unit.predictor
    btb = unit.btb
    for t, trace in enumerate(traces):
        seqs = trace.warm_sequences()
        # D-side: DTLB translation stream; L1D probes; L2 sees the L1D
        # misses (in program order, as the per-entry loop did).
        dtlb.access_many(seqs.mem_addrs, t)
        d_misses = l1d.access_many(seqs.mem_addrs, t, collect_misses=True)
        l2.access_many(d_misses, t)
        # Front end: conditional-branch training and taken-transfer
        # target installs.
        predictor.update_many(t, seqs.branch_pcs, seqs.branch_taken)
        btb.update_many(t, seqs.btb_pcs, seqs.btb_targets)
        # I-side: every correct-path PC touches ITLB + L1I.
        itlb.access_many(seqs.fetch_pcs, t)
        l1i.access_many(seqs.fetch_pcs, t)
        # Wrong-path code lives in the basic-block dictionary too; a real
        # front end finds most of it resident (its L1I misses fill from
        # L2, as in the seed loop).
        itlb.access_many(seqs.junk_pcs, t)
        junk_misses = l1i.access_many(seqs.junk_pcs, t, collect_misses=True)
        l2.access_many(junk_misses, t)


def _dump_warm_state(mem: MemoryHierarchy, unit: BranchUnit) -> tuple:
    return (
        mem.l1i.dump_state(),
        mem.l1d.dump_state(),
        mem.l2.dump_state(),
        mem.itlb.dump_state(),
        mem.dtlb.dump_state(),
        unit.predictor.dump_state(),
        unit.btb.dump_state(),
    )


def warm_snapshot_path(
    directory: str, memory_params, num_threads: int, trace_keys
) -> str:
    """Deterministic snapshot file for one (params, trace set) identity."""
    desc = repr(
        (
            _WARM_SNAPSHOT_VERSION,
            PACK_FORMAT_VERSION,
            memory_params,
            num_threads,
            tuple(trace_keys),
        )
    )
    return os.path.join(directory, sha256(desc.encode()).hexdigest() + ".warm")


def ensure_warm_snapshot(directory: str, memory_params, traces) -> bool:
    """Compute and persist the warm snapshot for ``traces`` if absent.

    Used by the BatchRunner parent so concurrent workers load one shared
    snapshot instead of racing to compute identical ones. Returns False
    when any trace lacks a content key (nothing portable to store).
    """
    keys = []
    for trace in traces:
        k = getattr(trace, "key", None)
        if k is None:
            return False
        keys.append(k)
    path = warm_snapshot_path(directory, memory_params, len(traces), keys)
    if os.path.exists(path):
        return True
    mem = MemoryHierarchy(memory_params, max_threads=len(traces))
    unit = BranchUnit(max_threads=len(traces))
    _stream_warm(mem, unit, traces)
    _write_warm_snapshot(path, _dump_warm_state(mem, unit))
    return True


def _read_warm_snapshot(path: str) -> Optional[tuple]:
    """Load a pickled warm snapshot; any corruption degrades to None (the
    caller recomputes and overwrites)."""
    try:
        with open(path, "rb") as fh:
            snap = pickle.load(fh)
    except (
        OSError,
        pickle.UnpicklingError,
        EOFError,
        AttributeError,
        ValueError,
        TypeError,
        IndexError,
    ):
        return None
    if not isinstance(snap, tuple) or len(snap) != 7:
        return None
    return snap


def _write_warm_snapshot(path: str, snap: tuple) -> None:
    """Atomically persist a warm snapshot (concurrent writers race to an
    identical, deterministic payload — last rename wins harmlessly)."""
    try:
        atomic_write_bytes(path, pickle.dumps(snap, pickle.HIGHEST_PROTOCOL))
    except OSError:  # pragma: no cover - store dir vanished
        return


# ------------------------------------------------- Processor-side methods
#
# These take the processor as ``self`` and are bound as methods by the
# Processor class body (keeping the warm machinery in one module).


def warm(self) -> None:
    """Warm caches, TLBs and predictors with each thread's window.

    The paper measures steady-state segments of 300M instructions; our
    short windows would otherwise be dominated by compulsory misses
    and an untrained perceptron. Statistics accumulated here are reset
    by the caller via fresh counters (see ``run_simulation``).

    The warm pass is *vectorized*: instead of dispatching on every
    trace entry, each structure consumes its precomputed access
    sequence (:meth:`Trace.warm_sequences`, derived from the packed
    columns) in one batched call. The modeled structures are mutually
    independent and every structure sees exactly the per-entry loop's
    access subsequence in the same order, so the post-warm state is
    bit-identical to the seed implementation — the golden-equivalence
    suite pins this.

    Warming is deterministic in (traces, memory params, thread count)
    when the processor is fresh, so the post-warm structure state is
    memoized process-wide: the oracle mapping sweeps re-simulate the
    same workload dozens of times and every run after the first
    restores the snapshot (bit-identical, including warm-time
    statistics) instead of streaming the window again. With a warm
    store active (:func:`set_warm_store`), snapshots are additionally
    shared across processes through the store directory.
    """
    mem = self.mem
    unit = self.branch_unit
    # Warm passes rewrite structure state wholesale: a specialized
    # cycle loop speculating on stable state must notice and deopt
    # (see the codegen variant's warm-restore guard).
    self._spec_epoch += 1
    fresh = not self._warmed and self.cycle == 0 and self.seq == 0
    key = None
    disk_path = None
    if fresh:
        key = (
            self.params.memory,
            self.num_threads,
            tuple(id(t) for t in self.traces),
        )
        cached = _WARM_CACHE.get(key)
        if cached is not None and all(
            a is b for a, b in zip(cached[0], self.traces)
        ):
            self._load_warm_snapshot(cached[1:])
            self._warmed = True
            return
        disk_path = self._warm_store_path()
        if disk_path is not None:
            snap = _read_warm_snapshot(disk_path)
            if snap is not None:
                self._load_warm_snapshot(snap)
                self._remember_warm(key, snap)
                self._warmed = True
                return
    self._warmed = True
    _stream_warm(mem, unit, self.traces)
    if fresh:
        snap = _dump_warm_state(mem, unit)
        self._remember_warm(key, snap)
        if disk_path is not None:
            _write_warm_snapshot(disk_path, snap)


def _load_warm_snapshot(self, snap: tuple) -> None:
    """Restore the 7 structure states of a warm snapshot.

    Bumps ``_spec_epoch``: a restore into a live machine is a
    warm-restore boundary the specialized cycle loop must deopt on.
    """
    self._spec_epoch += 1
    l1i, l1d, l2, itlb, dtlb, pred, btb = snap
    mem = self.mem
    mem.l1i.load_state(l1i)
    mem.l1d.load_state(l1d)
    mem.l2.load_state(l2)
    mem.itlb.load_state(itlb)
    mem.dtlb.load_state(dtlb)
    self.branch_unit.predictor.load_state(pred)
    self.branch_unit.btb.load_state(btb)


def _remember_warm(self, key: tuple, snap: tuple) -> None:
    if len(_WARM_CACHE) >= _WARM_CACHE_MAX:
        _WARM_CACHE.pop(next(iter(_WARM_CACHE)))
    _WARM_CACHE[key] = (tuple(self.traces),) + snap


def _warm_store_path(self) -> Optional[str]:
    """Snapshot file for this (params, traces) set, or None when the
    store is off or any trace lacks a content key."""
    directory = _WARM_STORE_DIR
    if directory is None:
        return None
    keys = []
    for trace in self.traces:
        k = getattr(trace, "key", None)
        if k is None:
            return None
        keys.append(k)
    return warm_snapshot_path(
        directory, self.params.memory, self.num_threads, keys
    )
