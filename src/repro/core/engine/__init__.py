"""The multipipeline SMT processor — cycle-level, trace-driven.

Models the machine of Fig. 1: a shared fetch engine feeding per-pipeline
decoupling buffers; each pipeline privately decodes, renames, queues,
issues and commits; all pipelines share the physical register file, the
branch predictor and the memory hierarchy. Entire threads are bound to
pipelines by the mapping.

Modeled behaviours (all load-bearing for the paper's results):

* per-thread 256-entry ROBs, a shared 256-entry rename-register pool;
* IQ/FQ/LQ occupancy per pipeline, per-class FU contention, age-ordered
  issue within a pipeline;
* perceptron/BTB/RAS front end with *wrong-path execution*: mispredicted
  threads fetch junk instructions (from the basic-block-dictionary
  equivalent) that consume fetch bandwidth, buffers, rename registers,
  queue slots and functional units until the branch resolves;
* I-cache/I-TLB fetch stalls; D-cache/D-TLB load latencies resolved at
  issue; stores retire through the cache at commit;
* the FLUSH mechanism (baseline policy): loads outstanding past the L2
  threshold squash the thread's younger instructions and gate its fetch;
* the hdSMT register-file tax (``reg_latency = 2``): the shared
  multipipeline register file takes an extra cycle per access, modeled as
  +1 cycle of result visibility per dependency edge (bypass networks
  still forward within the execution core) and +2 cycles of front-end
  refill after a branch mispredict (two extra pipeline stages).

Implementation style: per the HPC-guide discipline the per-cycle work is
O(machine width), not O(window). Completions are events in a *ring-buffer
timing wheel* sized to the worst-case latency (one list index to pop a
cycle's events, no dict hashing); wakeups walk dependent lists; ready
instructions sit in one *merged* age-ordered heap per pipeline of
``(seq, fu_class, thread, slot)`` entries, inserted at wakeup/rename and
consumed oldest-first at issue (entries whose FU class has no free unit
this cycle are parked and reinserted — the selection is provably the
age-ordered pick across per-class queues, without the per-instruction
three-heap scan); per-cycle FU availability lives in a persistent
per-pipeline counter vector reset in place (no per-call allocation).
Hot per-slot ROB state
lives in flat preallocated parallel arrays indexed ``thread * rob_entries
+ slot`` (one indexing level instead of two), bound to locals inside the
stage loops; no per-instruction objects are allocated during simulation.
``run()`` additionally *skips idle cycles*: when no instruction can
commit, issue, rename or fetch this cycle, the clock jumps directly to
the next scheduled event or fetch-stall expiry instead of spinning
``step()`` — bit-identical to stepping (the skipped cycles are provably
no-ops), but long memory stalls cost O(1) instead of O(latency).

Package layout (one module per concern; stage variants are selected
once at construction through the registry in
:mod:`repro.core.engine.stages`):

* :mod:`~repro.core.engine.state` — ROB/flag/event constants and the
  per-pipeline :class:`~repro.core.engine.state.Pipeline` record;
* :mod:`~repro.core.engine.warm` — the vectorized warm pass, the
  process-wide memo and the on-disk snapshot store;
* :mod:`~repro.core.engine.stages` — fetch/rename/issue/writeback/commit
  implementations plus the public stage-variant API
  (``register_stage_variant`` / ``stage_set_for``) hosting the built-in
  (mono, SMT) variants;
* :mod:`~repro.core.engine.options` — the typed
  :class:`~repro.core.engine.options.EngineOptions` tuning knobs
  (numpy decode, codegen opt-in; env vars remain the fallback);
* :mod:`~repro.core.engine.codegen` — per-config specialized stage and
  cycle-loop generation (opt-in, bit-identical, deopts to the generic
  engine on rare paths);
* :mod:`~repro.core.engine.engine` — the
  :class:`~repro.core.engine.engine.Processor` shell composing a stage
  tuple and owning the ``run()``/``step()`` scheduling loop.

``repro.core.processor`` remains a compatibility shim re-exporting this
package's public names, so existing imports (and pickled references)
keep working unchanged.
"""

from repro.core.engine.engine import Processor
from repro.core.engine.options import (
    EngineOptions,
    default_engine_options,
    engine_options_for,
    engine_variant_id,
    set_engine_options,
)
from repro.core.engine.stages import (
    STAGE_REGISTRY,
    STAGE_SETS,
    StageSet,
    register_stage_variant,
    registered_variants,
    stage_set_for,
    stage_variant_for,
)
from repro.core.engine.state import (
    EV_COMPLETE,
    EV_FLUSHCHK,
    FL_LOADCTR,
    FL_MISPRED,
    FL_WRONGPATH,
    Pipeline,
    S_DONE,
    S_FREE,
    S_ISSUED,
    S_READY,
    S_WAITING,
)
from repro.core.engine.warm import (
    clear_warm_cache,
    ensure_warm_snapshot,
    set_warm_store,
    warm_snapshot_path,
)

__all__ = [
    "Processor",
    "Pipeline",
    "clear_warm_cache",
    "set_warm_store",
    "ensure_warm_snapshot",
    "warm_snapshot_path",
    "StageSet",
    "STAGE_REGISTRY",
    "STAGE_SETS",
    "register_stage_variant",
    "registered_variants",
    "stage_set_for",
    "stage_variant_for",
    "EngineOptions",
    "default_engine_options",
    "set_engine_options",
    "engine_options_for",
    "engine_variant_id",
    "S_FREE",
    "S_WAITING",
    "S_READY",
    "S_ISSUED",
    "S_DONE",
    "FL_WRONGPATH",
    "FL_MISPRED",
    "FL_LOADCTR",
    "EV_COMPLETE",
    "EV_FLUSHCHK",
]
