"""Commit stage: retire DONE instructions from each ROB head, in-order.

Two registered variants (see :mod:`repro.core.engine.stages`):

* :func:`commit` — the generic multipipeline stage (per-pipeline width
  budgets, fairness rotor across each pipeline's threads);
* :func:`commit_mono` — the single-pipeline specialization (the M8
  baseline): the generic stage with the pipeline loop collapsed, same
  rotor order and budget accounting — bit-identical by construction,
  pinned by the golden-equivalence suite and the stage-registry
  lockstep test.
"""

from __future__ import annotations

from repro.core.engine.state import S_DONE, S_FREE
from repro.isa.opcodes import OP_STORE

__all__ = ["commit", "commit_mono"]


def commit(self) -> None:
    entries, states, _, deps, _, _, _, _, _, _ = self._rob_arrays
    heads = self.rob_head
    counts = self.rob_count
    committed = self.committed
    reg_maps = self.reg_map
    mem_store = self.mem.retire_store
    r = self.rob_entries
    target = self.commit_target
    phys_free = self.phys_free
    rotor = self._commit_rotor
    self._commit_rotor = rotor + 1
    head_done = self._head_done
    for pl in self.active_pipes:
        budget = pl.width
        threads = pl.threads
        nt = len(threads)
        for k in range(nt):
            if budget <= 0:
                break
            t = threads[(rotor + k) % nt]
            head = heads[t]
            count = counts[t]
            base = t * r
            if not count or states[base + head] != S_DONE:
                continue
            rmap = reg_maps[t]
            c = committed[t]
            while budget > 0 and count > 0 and states[base + head] == S_DONE:
                i = base + head
                e = entries[i]
                if e[0] == OP_STORE:
                    mem_store(e[4], t)
                dest = e[1]
                if dest >= 0:
                    phys_free += 1
                    if rmap[dest] == head:
                        rmap[dest] = -1
                states[i] = S_FREE
                d = deps[i]
                if d:
                    d.clear()
                head += 1
                if head == r:
                    head = 0
                count -= 1
                budget -= 1
                c += 1
                if c >= target:
                    self.finished = True
            committed[t] = c
            heads[t] = head
            counts[t] = count
            # Keep the commit gate exact: the head either still holds
            # a DONE instruction (budget ran out mid-stream) or the
            # thread leaves the commitable set.
            if not (count and states[base + head] == S_DONE):
                head_done[t] = False
                self._commitable -= 1
    self.phys_free = phys_free
    # ROB slots / rename registers were released (the gate guarantees
    # at least one pop happened): blocked rename stages may proceed.
    self._free_epoch += 1


def commit_mono(self) -> None:
    """Single-pipeline commit: the generic stage with the pipeline
    loop collapsed (one pipeline hosts every thread), same rotor
    order and budget accounting — bit-identical to :func:`commit`."""
    entries, states, _, deps, _, _, _, _, _, _ = self._rob_arrays
    heads = self.rob_head
    counts = self.rob_count
    committed = self.committed
    reg_maps = self.reg_map
    mem_store = self.mem.retire_store
    r = self.rob_entries
    target = self.commit_target
    phys_free = self.phys_free
    rotor = self._commit_rotor
    self._commit_rotor = rotor + 1
    head_done = self._head_done
    pl = self.active_pipes[0]
    budget = pl.width
    threads = pl.threads
    nt = len(threads)
    for k in range(nt):
        if budget <= 0:
            break
        t = threads[(rotor + k) % nt]
        head = heads[t]
        count = counts[t]
        base = t * r
        if not count or states[base + head] != S_DONE:
            continue
        rmap = reg_maps[t]
        c = committed[t]
        while budget > 0 and count > 0 and states[base + head] == S_DONE:
            i = base + head
            e = entries[i]
            if e[0] == OP_STORE:
                mem_store(e[4], t)
            dest = e[1]
            if dest >= 0:
                phys_free += 1
                if rmap[dest] == head:
                    rmap[dest] = -1
            states[i] = S_FREE
            d = deps[i]
            if d:
                d.clear()
            head += 1
            if head == r:
                head = 0
            count -= 1
            budget -= 1
            c += 1
            if c >= target:
                self.finished = True
        committed[t] = c
        heads[t] = head
        counts[t] = count
        if not (count and states[base + head] == S_DONE):
            head_done[t] = False
            self._commitable -= 1
    self.phys_free = phys_free
    self._free_epoch += 1
