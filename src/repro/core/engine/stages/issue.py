"""Issue stage: consume the merged age-ordered ready heap, oldest first.

Each pipeline keeps one heap of ``(seq, fu_class, thread, slot)``
entries fed at rename/wakeup; each pick takes the heap head unless its
FU class has no free unit this cycle, in which case the entry is
*parked* and the scan continues with the next-oldest — exactly the
age-ordered pick across per-class queues the pre-merge three-heap stage
computed (that stage survives verbatim as the reference machine of
``tests/properties/test_issue_merged_ready.py``).

Registered variants (see :mod:`repro.core.engine.stages`):

* :func:`issue_all` — the generic stage: every pipeline with ready
  entries runs :func:`issue_pipeline`;
* :func:`issue_mono` — the single-pipeline specialization: the pipeline
  loop and per-call dispatch collapsed, same merged-heap pick order and
  wheel scheduling — bit-identical to the generic stage.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List

from repro.core.engine.state import EV_COMPLETE, EV_FLUSHCHK, FL_LOADCTR, S_ISSUED, S_READY
from repro.isa.opcodes import EXEC_LATENCY, OP_LOAD

__all__ = ["issue_all", "issue_mono", "issue_pipeline"]


def issue_all(self) -> None:
    """Generic issue stage: every pipeline with ready entries."""
    issue = self._issue
    for pl in self.active_pipes:
        if pl.ready:
            issue(pl)


def issue_mono(self) -> None:
    """Single-pipeline issue stage: :func:`issue_pipeline` with the
    pipeline loop and per-call dispatch collapsed (one pipeline hosts
    every thread), same merged-heap pick order and wheel scheduling —
    bit-identical to the generic stage (pinned by the golden suite)."""
    pl = self.active_pipes[0]
    heap = pl.ready
    if not heap:
        return
    budget = pl.width
    fu_avail = pl.fu_avail
    ready_counts = pl.ready_counts
    c0, c1, c2 = pl.fu_count
    fu_avail[0] = c0
    fu_avail[1] = c1
    fu_avail[2] = c2
    entries, states, _, _, tidx_arr, _, _, seqs, epochs, flags_arr = (
        self._rob_arrays
    )
    iq_used = pl.iq_used
    icount = self.icount
    mem_load = self.mem.load_latency
    r = self.rob_entries
    extra = self._extra_reg
    l1_lat = self._l1_lat
    flush_thr = self._flush_thr
    cyc = self.cycle
    wheel = self._wheel
    mask = self._wheel_mask
    size = mask + 1
    flushing = self.policy.flushing
    issued = 0
    deferred: List[tuple] = []
    while budget > 0 and heap:
        head = heap[0]
        s, fu, t, slot = head
        i = t * r + slot
        if states[i] != S_READY or seqs[i] != s:
            heappop(heap)  # stale (squashed or recycled slot)
            continue
        if fu_avail[fu] <= 0:
            heappop(heap)
            deferred.append(head)
            ready_counts[fu] -= 1
            if not (
                (fu_avail[0] > 0 and ready_counts[0] > 0)
                or (fu_avail[1] > 0 and ready_counts[1] > 0)
                or (fu_avail[2] > 0 and ready_counts[2] > 0)
            ):
                break
            continue
        heappop(heap)
        fu_avail[fu] -= 1
        ready_counts[fu] -= 1
        budget -= 1
        states[i] = S_ISSUED
        issued += 1
        iq_used[fu] -= 1
        icount[t] -= 1
        e = entries[i]
        op = e[0]
        if op == OP_LOAD:
            rlat = mem_load(e[4], t)
            lat = rlat + extra
            if rlat > l1_lat:
                self.inflight_loads[t] += 1
                flags_arr[i] |= FL_LOADCTR
            if (
                flushing
                and rlat > flush_thr
                and tidx_arr[i] >= 0
                and not self.flush_wait[t]
            ):
                when = cyc + flush_thr
                item = (EV_FLUSHCHK, t, slot, epochs[i])
                wi = when & mask
                lst = wheel[wi]
                if lst is None:
                    wheel[wi] = [item]
                else:
                    lst.append(item)
        else:
            lat = EXEC_LATENCY[op] + extra
        if lat <= 0:
            lat = 1
        item = (EV_COMPLETE, t, slot, epochs[i])
        if lat < size:
            wi = (cyc + lat) & mask
            lst = wheel[wi]
            if lst is None:
                wheel[wi] = [item]
            else:
                lst.append(item)
        else:  # pragma: no cover - out-of-horizon (custom params) safety
            self._far_events.setdefault(cyc + lat, []).append(item)
    for item in deferred:
        heappush(heap, item)
        ready_counts[item[1]] += 1
    if issued:
        pl.issued_total += issued
        self._ready_count -= issued
        self._free_epoch += 1  # queue slots freed: unblock rename


def issue_pipeline(self, pl) -> None:
    """Issue up to ``width`` ready instructions of one pipeline, oldest
    first.

    The merged ready heap orders every ready instruction of the
    pipeline by global age (``seq``); each pick takes the heap head
    unless its FU class has no free unit this cycle, in which case
    the entry is *parked* and the scan continues with the next-oldest
    — exactly the age-ordered pick across per-class queues the
    three-heap stage computed, without the per-instruction scan over
    all three heads. Parked entries are pushed back after the loop
    (they stay READY; only this cycle's units were taken). Stale
    heads (squashed or recycled slots) are dropped lazily, as before.
    """
    budget = pl.width
    heap = pl.ready
    fu_avail = pl.fu_avail
    ready_counts = pl.ready_counts
    c0, c1, c2 = pl.fu_count
    fu_avail[0] = c0
    fu_avail[1] = c1
    fu_avail[2] = c2
    entries, states, _, _, tidx_arr, _, _, seqs, epochs, flags_arr = (
        self._rob_arrays
    )
    iq_used = pl.iq_used
    icount = self.icount
    mem_load = self.mem.load_latency
    r = self.rob_entries
    extra = self._extra_reg
    l1_lat = self._l1_lat
    flush_thr = self._flush_thr
    cyc = self.cycle
    wheel = self._wheel
    mask = self._wheel_mask
    size = mask + 1
    flushing = self.policy.flushing
    issued = 0
    deferred: List[tuple] = []
    while budget > 0 and heap:
        head = heap[0]
        s, fu, t, slot = head
        i = t * r + slot
        if states[i] != S_READY or seqs[i] != s:
            heappop(heap)  # stale (squashed or recycled slot)
            continue
        if fu_avail[fu] <= 0:
            # This class's units are taken: park the entry, keep
            # scanning younger instructions of the other classes —
            # but only while some class still has both a free unit
            # and a live entry left in the heap (the 3-heap stage's
            # O(1) early-out, kept exact by the live counts).
            heappop(heap)
            deferred.append(head)
            ready_counts[fu] -= 1
            if not (
                (fu_avail[0] > 0 and ready_counts[0] > 0)
                or (fu_avail[1] > 0 and ready_counts[1] > 0)
                or (fu_avail[2] > 0 and ready_counts[2] > 0)
            ):
                break  # nothing issuable remains this cycle
            continue
        heappop(heap)
        fu_avail[fu] -= 1
        ready_counts[fu] -= 1
        budget -= 1
        states[i] = S_ISSUED
        issued += 1
        iq_used[fu] -= 1
        icount[t] -= 1
        e = entries[i]
        op = e[0]
        if op == OP_LOAD:
            rlat = mem_load(e[4], t)
            lat = rlat + extra
            # The L1MCOUNT policy (a DCache-Warn variant) gates fetch
            # on loads *likely to miss*: only loads that outlive an L1
            # hit count toward the thread's in-flight-load priority.
            if rlat > l1_lat:
                self.inflight_loads[t] += 1
                flags_arr[i] |= FL_LOADCTR
            if (
                flushing
                and rlat > flush_thr
                and tidx_arr[i] >= 0
                and not self.flush_wait[t]
            ):
                when = cyc + flush_thr
                item = (EV_FLUSHCHK, t, slot, epochs[i])
                wi = when & mask
                lst = wheel[wi]
                if lst is None:
                    wheel[wi] = [item]
                else:
                    lst.append(item)
        else:
            lat = EXEC_LATENCY[op] + extra
        if lat <= 0:
            lat = 1
        item = (EV_COMPLETE, t, slot, epochs[i])
        if lat < size:
            wi = (cyc + lat) & mask
            lst = wheel[wi]
            if lst is None:
                wheel[wi] = [item]
            else:
                lst.append(item)
        else:  # pragma: no cover - out-of-horizon (custom params) safety
            self._far_events.setdefault(cyc + lat, []).append(item)
    for item in deferred:
        heappush(heap, item)
        ready_counts[item[1]] += 1
    if issued:
        pl.issued_total += issued
        self._ready_count -= issued
        self._free_epoch += 1  # queue slots freed: unblock rename
