"""Writeback stage: drain the timing wheel, complete, resolve, squash.

One cycle's completions pop from the ring-buffer wheel slot (plus the
out-of-horizon safety dict); each surviving event either completes its
instruction (:func:`complete` — wake dependents, resolve branches,
redirect on mispredicts) or fires a FLUSH check (:func:`do_flush` — the
baseline policy's long-latency-load squash). :func:`squash_after` is the
shared squash walker (mispredict recovery and FLUSH both use it).

There is no mono/SMT split here: the wheel and the ROB arrays are
pipeline-agnostic, so one implementation serves every configuration.
"""

from __future__ import annotations

from heapq import heappush

from repro.core.engine.state import (
    EV_COMPLETE,
    FL_LOADCTR,
    FL_MISPRED,
    S_DONE,
    S_FREE,
    S_ISSUED,
    S_READY,
    S_WAITING,
)
from repro.isa.opcodes import OP_BRANCH, OP_CALL, OP_RETURN, _FU_OF_OP

__all__ = ["writeback", "complete", "do_flush", "squash_after"]


def writeback(self) -> None:
    cyc = self.cycle
    idx = cyc & self._wheel_mask
    evs = self._wheel[idx]
    if evs is not None:
        self._wheel[idx] = None
        if self._far_events:
            more = self._far_events.pop(cyc, None)
            if more:
                evs.extend(more)
    else:
        if not self._far_events:
            return
        evs = self._far_events.pop(cyc, None)
        if not evs:
            return
    epochs = self._rob_epoch
    states = self._rob_state
    r = self.rob_entries
    for kind, t, slot, ep in evs:
        i = t * r + slot
        if epochs[i] != ep:
            continue
        if kind == EV_COMPLETE:
            if states[i] != S_ISSUED:
                continue
            self._complete(t, slot)
        else:  # EV_FLUSHCHK: load still outstanding past the threshold?
            if states[i] == S_ISSUED:
                self._do_flush(t, slot)


def complete(self, t: int, slot: int) -> None:
    r = self.rob_entries
    base = t * r
    i = base + slot
    (
        entries,
        states,
        pend,
        deps_arr,
        tidx_arr,
        _,
        _,
        seqs,
        epochs,
        flags_arr,
    ) = self._rob_arrays
    states[i] = S_DONE
    if slot == self.rob_head[t] and not self._head_done[t]:
        self._head_done[t] = True
        self._commitable += 1
    flags = flags_arr[i]
    if flags & FL_LOADCTR:
        flags_arr[i] = flags & ~FL_LOADCTR
        self.inflight_loads[t] -= 1
        if self.flush_wait[t] and self.flush_load_slot[t] == slot:
            self.flush_wait[t] = False
            self.flush_load_slot[t] = -1
    # Wake dependents.
    deps = deps_arr[i]
    if deps:
        fu_of = _FU_OF_OP
        pl = self._pipe_by_thread[t]
        ready = pl.ready
        ready_counts = pl.ready_counts
        woken = 0
        for d, dep_ep in deps:
            j = base + d
            if epochs[j] != dep_ep:
                continue
            p = pend[j] - 1
            pend[j] = p
            if p == 0 and states[j] == S_WAITING:
                states[j] = S_READY
                fu = fu_of[entries[j][0]]
                heappush(ready, (seqs[j], fu, t, d))
                ready_counts[fu] += 1
                woken += 1
        if woken:
            self._ready_count += woken
        deps.clear()
    # Branch resolution.
    e = entries[i]
    op = e[0]
    if op == OP_BRANCH or op == OP_CALL or op == OP_RETURN:
        tidx = tidx_arr[i]
        taken = bool(e[5])
        if tidx >= 0:
            target = self.traces[t].next_pc(tidx) if taken else e[6] + 4
            self.branch_unit.resolve(t, e[6], op, taken, target)
        if flags_arr[i] & FL_MISPRED:
            flags_arr[i] &= ~FL_MISPRED
            self.stat_mispredicts[t] += 1
            self._squash_after(t, slot)
            self.wrong_path[t] = False
            if tidx >= 0:
                self.fetch_idx[t] = tidx + 1
            # The redirect overrides any stall the wrong path incurred
            # (e.g. a wrong-path I-cache miss): fetch restarts at the
            # correct target after the front-end refill bubble. The
            # 2-cycle hdSMT register file deepens the pipeline, so the
            # refill grows by one cycle per extra read/write stage.
            self.fetch_stall_until[t] = self.cycle + self._redirect_stall


def do_flush(self, t: int, load_slot: int) -> None:
    """FLUSH policy: squash everything younger than the L2-missing
    load and gate the thread's fetch until the load completes."""
    self.stat_flushes[t] += 1
    self._squash_after(t, load_slot)
    self.wrong_path[t] = False
    self.flush_wait[t] = True
    self.flush_load_slot[t] = load_slot
    self.fetch_idx[t] = self._rob_traceidx[t * self.rob_entries + load_slot] + 1
    # Any wrong-path fetch stall dies with the flush.
    self.fetch_stall_until[t] = self.cycle


def squash_after(self, t: int, bslot: int) -> None:
    """Squash every instruction of ``t`` younger than ``bslot``:
    roll the ROB tail back, release queue slots / rename registers /
    load counters, restore the rename map, purge the fetch buffer."""
    self.epoch[t] += 1
    self._free_epoch += 1  # buffer/queue/register release: unblock rename
    pl = self._pipe_by_thread[t]
    # Purge this thread's not-yet-renamed entries from the buffer
    # (they are all younger than anything in the ROB).
    buf = pl.buffer
    if buf:
        kept = [it for it in buf if it[0] != t]
        removed = len(buf) - len(kept)
        if removed:
            buf.clear()
            buf.extend(kept)
            self.icount[t] -= removed
            self.stat_squashed[t] += removed
    r = self.rob_entries
    base = t * r
    tail = self.rob_tail[t]
    # bslot is an occupied slot, so the strictly-younger range is
    # bslot+1 .. tail-1 in ring order.
    n_squash = (tail - bslot - 1) % r
    if not n_squash:
        self.rob_tail[t] = tail
        return
    states = self._rob_state
    entries = self._rob_entry
    flags_arr = self._rob_flags
    deps = self._rob_deps
    prevprods = self._rob_prevprod
    prevseqs = self._rob_prevseq
    seqs = self._rob_seq
    reg_map = self.reg_map[t]
    iq_used = pl.iq_used
    ready_counts = pl.ready_counts
    fu_of = _FU_OF_OP
    phys_free = self.phys_free
    icount_drop = 0
    ready_drop = 0
    for _ in range(n_squash):
        tail = tail - 1 if tail else r - 1
        i = base + tail
        st = states[i]
        e = entries[i]
        if st == S_WAITING or st == S_READY:
            fu = fu_of[e[0]]
            iq_used[fu] -= 1
            icount_drop += 1
            if st == S_READY:
                ready_drop += 1
                # The heap entry goes stale; only the live count says
                # so before the lazy pop reaches it.
                ready_counts[fu] -= 1
        elif st == S_ISSUED:
            if flags_arr[i] & FL_LOADCTR:
                self.inflight_loads[t] -= 1
        dest = e[1]
        if dest >= 0:
            phys_free += 1
            if reg_map[dest] == tail:
                prev = prevprods[i]
                if (
                    prev >= 0
                    and seqs[base + prev] == prevseqs[i]
                    and states[base + prev] != S_FREE
                ):
                    reg_map[dest] = prev
                else:
                    reg_map[dest] = -1
        states[i] = S_FREE
        flags_arr[i] = 0
        d = deps[i]
        if d:
            d.clear()
    self.phys_free = phys_free
    self.icount[t] -= icount_drop
    if ready_drop:
        self._ready_count -= ready_drop
    self.rob_count[t] -= n_squash
    self.stat_squashed[t] += n_squash
    self.rob_tail[t] = tail
