"""Fetch stage: policy-ordered packet fetch through the block tables.

Entries are read through per-trace block tables over the packed int64
columns (``index >> FETCH_SHIFT`` selects a block, decoded from the
column slices on first touch) — the tuple lists the seed fetch loop
indexed never materialize.

Registered variants (see :mod:`repro.core.engine.stages`):

* :func:`fetch` — the generic stage: per-candidate pipeline lookups and
  buffer-space probes (threads map to different decoupling buffers);
* :func:`fetch_mono` — the single-pipeline specialization: every thread
  shares the one decoupling buffer, so those probes collapse to a
  single up-front check. Candidate order and the policy sort are
  untouched, so the fetched stream is bit-identical.

:func:`fetch_thread` fetches one packet for one thread (shared by both
variants).
"""

from __future__ import annotations

from repro.core.engine.state import _PK_ICOUNT, _PK_L1M, FL_MISPRED, FL_WRONGPATH
from repro.isa.opcodes import OP_BRANCH, OP_CALL, OP_RETURN
from repro.trace.stream import FETCH_MASK, FETCH_SHIFT

__all__ = ["fetch", "fetch_mono", "fetch_thread"]


def fetch(self) -> None:
    cyc = self.cycle
    flush_wait = self.flush_wait
    stall = self.fetch_stall_until
    pipes = self._pipe_by_thread
    candidates = []
    for t in range(self.num_threads):
        if flush_wait[t] or cyc < stall[t]:
            continue
        pl = pipes[t]
        if len(pl.buffer) >= pl.buffer_cap:
            continue
        candidates.append(t)
    if not candidates:
        return
    if len(candidates) > 1:
        # Candidates ascend in thread id, and list.sort is stable, so
        # sorting on the policy key minus its trailing thread-id
        # tiebreak reproduces the seed ordering exactly.
        kind = self._policy_kind
        if kind == _PK_ICOUNT:
            candidates.sort(key=self.icount.__getitem__)
        elif kind == _PK_L1M:
            infl = self.inflight_loads
            ic = self.icount
            candidates.sort(key=lambda t: (infl[t], -pipes[t].width, ic[t]))
        else:
            policy = self.policy
            candidates.sort(key=lambda t: policy.sort_key(self, t))
    remaining = self._fetch_width
    threads_used = 0
    max_threads = self._fetch_threads
    fetch_one = self._fetch_thread
    for t in candidates:
        if remaining <= 0 or threads_used >= max_threads:
            break
        threads_used += 1
        remaining -= fetch_one(t, remaining)


def fetch_mono(self) -> None:
    """Single-pipeline fetch: every thread shares the one decoupling
    buffer, so the per-candidate pipeline lookups and buffer-space
    probes of :func:`fetch` collapse to a single up-front check.
    Candidate order and the policy sort are untouched (the candidate
    list still ascends in thread id before the stable sort), so the
    fetched stream is bit-identical to the generic stage."""
    pl = self.active_pipes[0]
    if len(pl.buffer) >= pl.buffer_cap:
        return
    cyc = self.cycle
    flush_wait = self.flush_wait
    stall = self.fetch_stall_until
    candidates = [
        t
        for t in range(self.num_threads)
        if not flush_wait[t] and cyc >= stall[t]
    ]
    if not candidates:
        return
    if len(candidates) > 1:
        kind = self._policy_kind
        if kind == _PK_ICOUNT:
            candidates.sort(key=self.icount.__getitem__)
        elif kind == _PK_L1M:
            # Pipeline width is a constant term within one pipeline;
            # the stable sort makes (inflight, icount) equivalent to
            # the generic (inflight, -width, icount) key.
            infl = self.inflight_loads
            ic = self.icount
            candidates.sort(key=lambda t: (infl[t], ic[t]))
        else:
            policy = self.policy
            candidates.sort(key=lambda t: policy.sort_key(self, t))
    remaining = self._fetch_width
    threads_used = 0
    max_threads = self._fetch_threads
    fetch_one = self._fetch_thread
    for t in candidates:
        if remaining <= 0 or threads_used >= max_threads:
            break
        threads_used += 1
        remaining -= fetch_one(t, remaining)


def fetch_thread(self, t: int, budget: int) -> int:
    """Fetch one packet for thread ``t``; returns instructions taken.

    Entries are read through the per-trace block tables over the
    packed int64 columns (``index >> FETCH_SHIFT`` selects a block,
    decoded from the column slices on first touch) — the tuple lists
    the seed fetch loop indexed never materialize.
    """
    pl = self._pipe_by_thread[t]
    buf = pl.buffer
    space = pl.buffer_cap - len(buf)
    limit = budget if budget < space else space
    if limit <= 0:
        return 0
    trace = self.traces[t]
    length = trace.length
    junk_len = trace.junk_length
    eblocks = self._fetch_eblocks[t]
    jblocks = self._fetch_jblocks[t]
    entry_block = trace.entry_block
    junk_block = trace.junk_block
    bshift = FETCH_SHIFT  # locals: the loop reads them per entry
    bmask = FETCH_MASK
    cyc = self.cycle
    junk_idx = self.junk_idx
    fetch_idx = self.fetch_idx
    wp = self.wrong_path[t]
    # One I-cache/I-TLB probe per packet (head PC).
    if wp:
        j = junk_idx[t] % junk_len
        blk = jblocks[j >> bshift]
        if blk is None:
            blk = junk_block(j >> bshift)
        head_pc = blk[j & bmask][6]
    else:
        j = fetch_idx[t] % length
        blk = eblocks[j >> bshift]
        if blk is None:
            blk = entry_block(j >> bshift)
        head_pc = blk[j & bmask][6]
    fetch_lat = self.mem.fetch_latency(head_pc, t)
    if fetch_lat > 0:
        self.fetch_stall_until[t] = cyc + fetch_lat
        self.stat_icache_stalls += 1
        return 0
    taken_count = 0
    wrongpath_count = 0
    append = buf.append
    unit = self.branch_unit
    predict = unit.predict
    while taken_count < limit:
        if wp:
            j = junk_idx[t] % junk_len
            blk = jblocks[j >> bshift]
            if blk is None:
                blk = junk_block(j >> bshift)
            e = blk[j & bmask]
            junk_idx[t] += 1
            tidx = -1
            flags = FL_WRONGPATH
            wrongpath_count += 1
        else:
            tidx = fetch_idx[t]
            j = tidx % length
            blk = eblocks[j >> bshift]
            if blk is None:
                blk = entry_block(j >> bshift)
            e = blk[j & bmask]
            fetch_idx[t] = tidx + 1
            flags = 0
        op = e[0]
        if op == OP_BRANCH or op == OP_CALL or op == OP_RETURN:
            actual_taken = bool(e[5])
            if tidx >= 0:
                j = (tidx + 1) % length
                blk = eblocks[j >> bshift]
                if blk is None:
                    blk = entry_block(j >> bshift)
                actual_target = blk[j & bmask][6]
            else:
                actual_target = e[6] + 4
            pred = predict(t, e[6], op, actual_taken, actual_target)
            if pred.direction_mispredict or (
                op == OP_RETURN and pred.target_mispredict
            ):
                # Full mispredict: fetch goes down the wrong path until
                # this branch resolves in the execute stage.
                flags |= FL_MISPRED
                unit.note_direction_mispredict()
                self.wrong_path[t] = True
                wp = True
                append((t, e, tidx, flags))
                taken_count += 1
                if pred.taken:
                    break  # fetch redirects (to the wrong target)
                continue  # wrong path continues sequentially (junk)
            append((t, e, tidx, flags))
            taken_count += 1
            if pred.taken:
                if not pred.target_known:
                    # Direction right but no target from BTB: short
                    # front-end bubble while decode computes it.
                    self.fetch_stall_until[t] = cyc + self.params.btb_miss_penalty
                    self.stat_btb_bubbles += 1
                break  # taken prediction ends the packet
        else:
            append((t, e, tidx, flags))
            taken_count += 1
    self.icount[t] += taken_count
    self.stat_fetched[t] += taken_count
    if wrongpath_count:
        self.stat_wrongpath_fetched[t] += wrongpath_count
    return taken_count
