"""Rename stage: drain the decoupling buffer into the ROB, in-order.

One implementation serves every configuration (a pipeline hosting no
more threads than rename accepts per cycle skips the threads-per-cycle
bookkeeping entirely; otherwise a bitmask replaces the seed's list
scans). The head-blocked fast path records the core's resource-free
epoch so provably-still-blocked calls are skipped by ``run()``/``step()``.
"""

from __future__ import annotations

from heapq import heappush

from repro.core.engine.state import S_DONE, S_READY, S_WAITING
from repro.isa.opcodes import _FU_OF_OP

__all__ = ["rename"]


def rename(self, pl) -> None:
    buf = pl.buffer
    if not buf:
        return
    # Cheap head-blocked test before the full prologue: if the oldest
    # buffered instruction cannot rename, the in-order rename stage
    # does nothing this cycle (identical to breaking out immediately).
    t0, e0, _, _ = buf[0]
    fu0 = _FU_OF_OP[e0[0]]
    if (
        pl.iq_used[fu0] >= pl.iq_cap[fu0]
        or self.rob_count[t0] >= self.rob_entries
        or (e0[1] >= 0 and self.phys_free <= 0)
    ):
        # Until a blocking resource frees (the free-epoch advances),
        # re-running rename is a provable no-op — skip those calls.
        pl.blocked_epoch = self._free_epoch
        return
    budget = pl.width
    tpc = pl.tpc
    # Threads-per-cycle gate: a pipeline hosting no more threads than
    # rename accepts per cycle can never trip the limit (its buffer
    # only ever holds its own threads), so the membership bookkeeping
    # is skipped; otherwise a bitmask replaces the seed's list scans.
    track_tpc = len(pl.threads) > tpc
    new_thread = False
    seen_mask = 0
    nseen = 0
    iq_used = pl.iq_used
    iq_cap = pl.iq_cap
    ready = pl.ready
    ready_counts = pl.ready_counts
    r = self.rob_entries
    (
        entries,
        states,
        pend_arr,
        deps,
        tidx_arr,
        prevprods,
        prevseqs,
        seqs,
        epoch_arr,
        flags_arr,
    ) = self._rob_arrays
    rob_tail = self.rob_tail
    rob_count = self.rob_count
    reg_maps = self.reg_map
    epochs_t = self.epoch
    fu_of = _FU_OF_OP
    phys_free = self.phys_free
    seq = self.seq
    woken = 0
    while budget > 0 and buf:
        t, e, tidx, flags = buf[0]
        if track_tpc:
            new_thread = not ((seen_mask >> t) & 1)
            if new_thread and nseen >= tpc:
                break
        op = e[0]
        fu = fu_of[op]
        if iq_used[fu] >= iq_cap[fu]:
            break
        if rob_count[t] >= r:
            break
        dest = e[1]
        if dest >= 0 and phys_free <= 0:
            break
        buf.popleft()
        if new_thread:
            seen_mask |= 1 << t
            nseen += 1
        budget -= 1
        slot = rob_tail[t]
        rob_tail[t] = slot + 1 if slot + 1 < r else 0
        rob_count[t] += 1
        base = t * r
        i = base + slot
        entries[i] = e
        tidx_arr[i] = tidx
        ep = epochs_t[t]
        epoch_arr[i] = ep
        flags_arr[i] = flags
        seqs[i] = seq
        myseq = seq
        seq += 1
        # Source dependences (must read the map before the dest write).
        pending = 0
        reg_map = reg_maps[t]
        src = e[2]
        if src >= 0:
            prod = reg_map[src]
            if prod >= 0 and states[base + prod] < S_DONE:
                pending += 1
                dl = deps[base + prod]
                if dl is None:
                    deps[base + prod] = [(slot, ep)]
                else:
                    dl.append((slot, ep))
        src = e[3]
        if src >= 0:
            prod = reg_map[src]
            if prod >= 0 and states[base + prod] < S_DONE:
                pending += 1
                dl = deps[base + prod]
                if dl is None:
                    deps[base + prod] = [(slot, ep)]
                else:
                    dl.append((slot, ep))
        if dest >= 0:
            prev = reg_map[dest]
            prevprods[i] = prev
            prevseqs[i] = seqs[base + prev] if prev >= 0 else -1
            reg_map[dest] = slot
            phys_free -= 1
        else:
            prevprods[i] = -1
            prevseqs[i] = -1
        pend_arr[i] = pending
        iq_used[fu] += 1
        if pending == 0:
            states[i] = S_READY
            heappush(ready, (myseq, fu, t, slot))
            ready_counts[fu] += 1
            woken += 1
        else:
            states[i] = S_WAITING
    self.phys_free = phys_free
    self.seq = seq
    if woken:
        self._ready_count += woken
