"""Pipeline stages and the stage registry.

Every stage with configuration-dependent specializations is registered
here, keyed by *variant*:

* ``"smt"`` — the generic multipipeline stages (any configuration);
* ``"mono"`` — single-pipeline specializations (the M8 baseline): the
  generic stage with the pipeline loop and per-thread pipeline
  indirection collapsed. Provably the same work in the same order, so
  results are bit-identical — pinned by the golden-equivalence suite
  and the registry lockstep test
  (``tests/properties/test_stage_registry_lockstep.py``).

:class:`~repro.core.engine.engine.Processor` composes its stage tuple
**once at construction** via :func:`stage_set_for` — there is no
per-call ``if`` dispatch in ``run()``/``step()``. Adding a stage
variant (e.g. a per-pipeline fetch policy, or a C-slow-style replicated
pipeline) means registering it here and teaching :func:`stage_set_for`
when to select it; the lockstep test parametrizes over the registry, so
new variants are differentially tested against the generic stages for
free.

Rename and writeback have a single implementation (they are already
pipeline-agnostic), so only fetch/issue/commit are registered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.core.engine.stages.commit import commit, commit_mono
from repro.core.engine.stages.fetch import fetch, fetch_mono, fetch_thread
from repro.core.engine.stages.issue import issue_all, issue_mono, issue_pipeline
from repro.core.engine.stages.rename import rename
from repro.core.engine.stages.writeback import (
    complete,
    do_flush,
    squash_after,
    writeback,
)

__all__ = [
    "StageSet",
    "STAGE_REGISTRY",
    "STAGE_SETS",
    "stage_set_for",
    "stage_variant_for",
    "commit",
    "commit_mono",
    "fetch",
    "fetch_mono",
    "fetch_thread",
    "issue_all",
    "issue_mono",
    "issue_pipeline",
    "rename",
    "writeback",
    "complete",
    "do_flush",
    "squash_after",
]


@dataclass(frozen=True)
class StageSet:
    """One composed (fetch, issue, commit) stage selection."""

    fetch: Callable
    issue: Callable
    commit: Callable


#: Per-stage variant registry: ``STAGE_REGISTRY[stage][variant]`` is the
#: unbound stage function (taking the processor as ``self``). The
#: lockstep suite iterates this to differentially test every variant.
STAGE_REGISTRY: Dict[str, Dict[str, Callable]] = {
    "fetch": {"smt": fetch, "mono": fetch_mono},
    "issue": {"smt": issue_all, "mono": issue_mono},
    "commit": {"smt": commit, "mono": commit_mono},
}

#: Composed stage sets, one per variant.
STAGE_SETS: Dict[str, StageSet] = {
    variant: StageSet(
        fetch=STAGE_REGISTRY["fetch"][variant],
        issue=STAGE_REGISTRY["issue"][variant],
        commit=STAGE_REGISTRY["commit"][variant],
    )
    for variant in ("smt", "mono")
}


def stage_variant_for(config) -> str:
    """The registry variant a configuration selects (once, at
    construction): monolithic configurations run the specialized
    single-pipeline stages, everything else the generic SMT stages."""
    return "mono" if config.is_monolithic else "smt"


def stage_set_for(config) -> StageSet:
    """The composed stage set for ``config`` (see :data:`STAGE_SETS`)."""
    return STAGE_SETS[stage_variant_for(config)]
