"""The :class:`Processor` shell: construction, scheduling loop, views.

The cycle-level machine itself lives in the stage modules
(:mod:`repro.core.engine.stages`); this module owns the state the stages
operate on (flat ROB arrays, timing wheel, per-thread front-end state),
the ``run()``/``step()`` scheduling loop with its idle-cycle fast path,
and the compatibility views over the flat arrays.

Stage selection happens **once at construction**: a small registry
(:func:`~repro.core.engine.stages.stage_set_for`) maps the configuration
to a composed (fetch, issue, commit) stage tuple — monolithic
configurations get the specialized single-pipeline variants, everything
else the generic SMT stages — and the bound implementations are stored
as ``_fetch_impl``/``_issue_impl``/``_commit_impl``. ``run()`` and
``step()`` call through those attributes with no per-call ``if``
dispatch; tests may rebind them (or ``_complete``/``_rename``) on an
instance to splice in reference machines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.branch.unit import BranchUnit
from repro.core.config import MicroarchConfig
from repro.core.engine import warm as warm_module
from repro.core.engine.stages import (
    commit,
    commit_mono,
    complete,
    do_flush,
    fetch,
    fetch_mono,
    fetch_thread,
    issue_all,
    issue_mono,
    issue_pipeline,
    rename,
    squash_after,
    stage_set_for,
    writeback,
)
from repro.core.engine.state import Pipeline, S_FREE, _PK_GENERIC, _PK_ICOUNT, _PK_L1M
from repro.core.fetch_policies import make_policy
from repro.isa.opcodes import EXEC_LATENCY
from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.stream import Trace

__all__ = ["Processor"]


class Processor:
    """A configured hdSMT/SMT processor executing a set of thread traces.

    Parameters
    ----------
    config:
        The microarchitecture (pipelines + shared parameters).
    traces:
        One :class:`~repro.trace.stream.Trace` per thread.
    mapping:
        ``mapping[thread] = pipeline_index``; must respect contexts.
    commit_target:
        The simulation finishes as soon as any thread has committed this
        many correct-path instructions (the paper's stop rule).
    """

    # -- stage methods (module-level functions bound via the descriptor
    # protocol; the same objects the stage registry holds, so
    # ``proc._commit_impl.__func__ is Processor._commit_mono`` whenever
    # the registry selected the mono variant) -----------------------------
    _commit = commit
    _commit_mono = commit_mono
    _writeback = writeback
    _complete = complete
    _do_flush = do_flush
    _squash_after = squash_after
    _issue = issue_pipeline
    _issue_all = issue_all
    _issue_mono = issue_mono
    _rename = rename
    _fetch = fetch
    _fetch_mono = fetch_mono
    _fetch_thread = fetch_thread

    # -- warm machinery (see repro.core.engine.warm) ----------------------
    warm = warm_module.warm
    _load_warm_snapshot = warm_module._load_warm_snapshot
    _remember_warm = warm_module._remember_warm
    _warm_store_path = warm_module._warm_store_path

    def __init__(
        self,
        config: MicroarchConfig,
        traces: Sequence[Trace],
        mapping: Sequence[int],
        commit_target: int,
    ) -> None:
        n = len(traces)
        if n == 0:
            raise ValueError("at least one thread required")
        if len(mapping) != n:
            raise ValueError("mapping length must equal thread count")
        loads = [0] * len(config.pipelines)
        for p in mapping:
            if not 0 <= p < len(config.pipelines):
                raise ValueError(
                    f"mapping names pipeline {p}, config has "
                    f"{len(config.pipelines)}"
                )
            loads[p] += 1
        if config.is_monolithic:
            if loads[0] > config.contexts_for(n):
                raise ValueError(f"{n} threads exceed contexts of {config.name}")
        else:
            for i, load in enumerate(loads):
                if load > config.pipelines[i].contexts:
                    raise ValueError(
                        f"pipeline {i} ({config.pipelines[i].name}) of {config.name} "
                        f"hosts {load} threads but has {config.pipelines[i].contexts} contexts"
                    )
        self.config = config
        self.params = config.params
        self.traces = list(traces)
        self.mapping = tuple(mapping)
        self.commit_target = commit_target
        self.num_threads = n

        self.pipelines = [Pipeline(i, m) for i, m in enumerate(config.pipelines)]
        self.pipe_of = list(self.mapping)
        for t, p in enumerate(self.pipe_of):
            self.pipelines[p].threads.append(t)
        #: pipelines with at least one thread (simulated; idle ones are off)
        self.active_pipes = [pl for pl in self.pipelines if pl.threads]
        #: thread -> its Pipeline object (kept in sync by dynamic remapping)
        self._pipe_by_thread = [self.pipelines[p] for p in self.pipe_of]

        #: per-thread block tables over the packed trace columns — the
        #: fetch engine indexes these instead of materialized tuple lists
        #: (blocks decode lazily on first touch; see Trace.fetch_view).
        self._fetch_eblocks: List[list] = []
        self._fetch_jblocks: List[list] = []
        for tr in self.traces:
            eb, jb = tr.fetch_view()
            self._fetch_eblocks.append(eb)
            self._fetch_jblocks.append(jb)

        self.mem = MemoryHierarchy(self.params.memory, max_threads=n)
        self.branch_unit = BranchUnit(max_threads=n)
        self.policy = make_policy(config.fetch_policy)
        pol = config.fetch_policy
        if pol in ("icount", "flush"):
            self._policy_kind = _PK_ICOUNT
        elif pol == "l1mcount":
            self._policy_kind = _PK_L1M
        else:
            self._policy_kind = _PK_GENERIC

        # --- shared resources -------------------------------------------
        self.phys_free = self.params.rename_registers
        self.cycle = 0
        self.seq = 0
        self.finished = False

        # --- timing wheel -------------------------------------------------
        # Sized to the worst-case event latency: a load that misses the
        # D-TLB, both cache levels, plus the register-file tax; any event
        # is scheduled strictly less than `size` cycles ahead, so slot
        # (cycle & mask) holds exactly cycle's events. `_far_events` is a
        # safety net for out-of-horizon schedules (custom parameter sets).
        m = self.params.memory
        horizon = (
            m.tlb_miss_penalty
            + m.l1_latency
            + m.l1_miss_penalty
            + m.memory_latency
            + max(EXEC_LATENCY)
            + self.params.extra_reg_cycles
            + m.flush_threshold
            + 8
        )
        size = 1 << horizon.bit_length()
        if size < 64:
            size = 64
        self._wheel: List[Optional[List[tuple]]] = [None] * size
        self._wheel_mask = size - 1
        self._far_events: Dict[int, List[tuple]] = {}
        #: count of instructions currently in state S_READY (for idle skip)
        self._ready_count = 0
        #: per-thread "ROB head is DONE" flags + their count: ~60% of
        #: cycles have nothing to commit, so the commit stage is gated on
        #: ``_commitable`` (a gated commit is provably a no-op: it would
        #: only advance the fairness rotor, which the gate does directly).
        self._head_done = [False] * n
        self._commitable = 0
        #: bumped whenever a rename-blocking resource frees (IQ/FQ/LQ slot,
        #: ROB slot, rename register, buffer purge); pipelines record it at
        #: head-block time so provably-still-blocked rename calls skip.
        self._free_epoch = 0

        # --- per-thread front-end state ----------------------------------
        self.fetch_idx = [0] * n
        self.wrong_path = [False] * n
        self.junk_idx = [0] * n
        self.fetch_stall_until = [0] * n
        self.flush_wait = [False] * n
        self.flush_load_slot = [-1] * n
        self.epoch = [0] * n
        self.icount = [0] * n
        self.inflight_loads = [0] * n
        self.committed = [0] * n

        # --- per-thread ROB: flat parallel arrays, slot = t * r + idx -----
        r = self.params.rob_entries
        self.rob_entries = r
        self.rob_head = [0] * n
        self.rob_tail = [0] * n
        self.rob_count = [0] * n
        nr = n * r
        self._rob_entry: List[Optional[tuple]] = [None] * nr
        self._rob_state = [S_FREE] * nr
        self._rob_pending = [0] * nr
        #: per-slot dependent lists, allocated lazily on the first edge
        #: (most slots in short screening runs never grow a dependent)
        self._rob_deps: List[Optional[List[Tuple[int, int]]]] = [None] * nr
        self._rob_traceidx = [-1] * nr
        self._rob_prevprod = [-1] * nr
        self._rob_prevseq = [-1] * nr
        self._rob_seq = [-1] * nr
        self._rob_epoch = [0] * nr
        self._rob_flags = [0] * nr
        #: one-lookup bundle for the stage prologues (unpacked into locals)
        self._rob_arrays = (
            self._rob_entry,
            self._rob_state,
            self._rob_pending,
            self._rob_deps,
            self._rob_traceidx,
            self._rob_prevprod,
            self._rob_prevseq,
            self._rob_seq,
            self._rob_epoch,
            self._rob_flags,
        )

        #: rename map: logical reg -> producing ROB slot (-1 = value ready)
        self.reg_map = [[-1] * 64 for _ in range(n)]

        # --- hoisted hot parameters --------------------------------------
        self._extra_reg = self.params.extra_reg_cycles
        self._l1_lat = m.l1_latency
        self._flush_thr = m.flush_threshold
        self._fetch_width = self.params.fetch_width
        self._fetch_threads = self.params.fetch_threads
        self._redirect_stall = (
            self.params.branch_redirect_penalty + 2 * self.params.extra_reg_cycles
        )

        # --- statistics ------------------------------------------------------
        self.stat_fetched = [0] * n
        self.stat_wrongpath_fetched = [0] * n
        self.stat_mispredicts = [0] * n
        self.stat_flushes = [0] * n
        self.stat_squashed = [0] * n
        self.stat_icache_stalls = 0
        self.stat_btb_bubbles = 0

        self._commit_rotor = 0
        self._warmed = False

        # --- speculation bookkeeping (codegen variant) -------------------
        #: bumped whenever warm state is (re)loaded into a live machine;
        #: the generated cycle loop guards on it so a warm-restore
        #: boundary deoptimizes to the generic engine (state intact).
        self._spec_epoch = 0
        #: per-reason deopt counters (diagnostics only — never part of
        #: SimResult stats, which must stay bit-identical across
        #: variants). Populated by the codegen setup hook / first deopt.
        self.codegen_deopts: Optional[Dict[str, int]] = None

        # --- stage composition -------------------------------------------
        # The variant registry selects the stage set once, at
        # construction (see repro.core.engine.stages): monolithic
        # configurations (the M8 baseline — a fixed ~15% of every sweep
        # that only responds to engine gains) run specialized
        # single-pipeline commit/issue/fetch stages (one shared decoupling
        # buffer, no per-thread pipeline indirection, no outer pipeline
        # loops — provably the same work in the same order, so results
        # are bit-identical, pinned by the golden-equivalence suite and
        # the registry lockstep test); configurations opted into codegen
        # get generated per-config specializations the same way.
        # run()/step() call through the composed implementations with no
        # per-call dispatch.
        stages = stage_set_for(config)
        self._commit_impl = stages.commit.__get__(self)
        self._fetch_impl = stages.fetch.__get__(self)
        self._issue_impl = stages.issue.__get__(self)
        #: the cycle loop run() drives: the generic one unless a variant's
        #: setup hook installs a specialized replacement.
        self._run_impl = self._generic_run
        if stages.setup is not None:
            stages.setup(self)

    # ------------------------------------------------- compatibility views

    def _nested(self, flat: list) -> List[list]:
        r = self.rob_entries
        return [flat[t * r:(t + 1) * r] for t in range(self.num_threads)]

    @property
    def rob_entry(self) -> List[list]:
        """Per-thread view of the flat ROB entry array (read-only copy)."""
        return self._nested(self._rob_entry)

    @property
    def rob_state(self) -> List[list]:
        return self._nested(self._rob_state)

    @property
    def rob_pending(self) -> List[list]:
        return self._nested(self._rob_pending)

    @property
    def rob_deps(self) -> List[list]:
        return self._nested(self._rob_deps)

    @property
    def rob_traceidx(self) -> List[list]:
        return self._nested(self._rob_traceidx)

    @property
    def rob_prevprod(self) -> List[list]:
        return self._nested(self._rob_prevprod)

    @property
    def rob_prevseq(self) -> List[list]:
        return self._nested(self._rob_prevseq)

    @property
    def rob_seq(self) -> List[list]:
        return self._nested(self._rob_seq)

    @property
    def rob_epoch(self) -> List[list]:
        return self._nested(self._rob_epoch)

    @property
    def rob_flags(self) -> List[list]:
        return self._nested(self._rob_flags)

    @property
    def events(self) -> Dict[int, List[tuple]]:
        """Pending events as {absolute_cycle: [(kind, t, slot, epoch), ...]}.

        Reconstructed from the timing wheel (a compatibility/debugging
        view; the hot path never builds this dict).
        """
        out: Dict[int, List[tuple]] = {}
        cyc = self.cycle
        wheel = self._wheel
        mask = self._wheel_mask
        for d in range(len(wheel)):
            evs = wheel[(cyc + d) & mask]
            if evs:
                out[cyc + d] = list(evs)
        for when, evs in self._far_events.items():
            out.setdefault(when, []).extend(evs)
        return out

    # ------------------------------------------------------------------- run

    def run(self, max_cycles: Optional[int] = None) -> int:
        """Simulate until a thread reaches the commit target (or the cycle
        cap, a safety net). Returns the cycle count.

        Dispatches to the composed cycle loop: the generic
        :meth:`_generic_run` unless the variant's setup hook installed a
        specialized one (the codegen variant's generated loop, which
        deoptimizes back to :meth:`_generic_run` on its guard paths).
        """
        if max_cycles is None:
            max_cycles = 400 * self.commit_target + 10_000
        return self._run_impl(max_cycles)

    def _codegen_deopt(self, reason: str, max_cycles: int) -> int:
        """Abort a specialized cycle loop to the generic engine.

        Guards fire only *between* cycles, where the machine state is
        always consistent, so the generic loop resumes mid-run with
        state intact — speculate/guard/commit, never silently
        divergent. One-way for the rest of this run (the counters say
        why); the next ``run()`` call re-enters the specialized loop.
        """
        deopts = self.codegen_deopts
        if deopts is None:
            deopts = self.codegen_deopts = {}
        deopts[reason] = deopts.get(reason, 0) + 1
        return self._generic_run(max_cycles)

    def _generic_run(self, max_cycles: int) -> int:
        """The generic scheduling loop (any configuration, any state).

        Idle cycles — no event due, nothing ready to issue, nothing to
        commit, rename or fetch — are skipped in O(1): the clock jumps to
        the next scheduled event or fetch-stall expiry. The jump is
        clamped to ``max_cycles`` so skipping can never overshoot the
        safety cap.
        """
        wheel = self._wheel
        mask = self._wheel_mask
        size = mask + 1
        far = self._far_events
        flush_wait = self.flush_wait
        stall = self.fetch_stall_until
        active = self.active_pipes
        n = self.num_threads
        commit_stage = self._commit_impl
        writeback_stage = self._writeback
        issue_stage = self._issue_impl
        rename_stage = self._rename
        fetch_stage = self._fetch_impl
        while not self.finished:
            cyc = self.cycle
            if cyc >= max_cycles:
                break
            # --- idle-cycle fast path -----------------------------------
            # A cycle is provably a no-op when: no event fires now, no
            # instruction is READY, no ROB head is DONE, every decoupling
            # buffer is empty (nothing to rename) and every thread's fetch
            # is gated (flush-wait or stalled). Until the next event /
            # stall expiry the machine state cannot change, so the skipped
            # cycles are bit-identical to stepping through them.
            if (
                self._ready_count == 0
                and self._commitable == 0
                and not wheel[cyc & mask]
                and (not far or cyc not in far)
            ):
                idle = True
                for t in range(n):
                    if not flush_wait[t] and cyc >= stall[t]:
                        idle = False
                        break
                if idle:
                    for pl in active:
                        if pl.buffer:
                            idle = False
                            break
                if idle:
                    wake = max_cycles
                    for d in range(1, size):
                        if wheel[(cyc + d) & mask]:
                            if cyc + d < wake:
                                wake = cyc + d
                            break
                    if far:
                        nxt = min(far)
                        if nxt < wake:
                            wake = nxt
                    for t in range(n):
                        if not flush_wait[t]:
                            s = stall[t]
                            if cyc < s < wake:
                                wake = s
                    if wake <= cyc:  # pragma: no cover - defensive
                        wake = cyc + 1
                    # The commit rotor advances once per cycle (even idle
                    # ones) in step(); account for the skipped cycles.
                    self._commit_rotor += wake - cyc
                    self.cycle = wake
                    continue
            # --- one cycle (same stage order as step()) -----------------
            if self._commitable:
                commit_stage()
            else:
                # A commit with no DONE head only advances the fairness
                # rotor; do that directly.
                self._commit_rotor += 1
            if wheel[cyc & mask] or far:
                writeback_stage()
            if self._ready_count:
                issue_stage()
            free_epoch = self._free_epoch
            for pl in active:
                if pl.buffer and pl.blocked_epoch != free_epoch:
                    rename_stage(pl)
            fetch_stage()
            self.cycle = cyc + 1
        return self.cycle

    def step(self) -> None:
        """Advance one cycle: commit, writeback, issue, rename, fetch."""
        if self._commitable:
            self._commit_impl()
        else:
            self._commit_rotor += 1
        if self._wheel[self.cycle & self._wheel_mask] or self._far_events:
            self._writeback()
        if self._ready_count:
            self._issue_impl()
        free_epoch = self._free_epoch
        for pl in self.active_pipes:
            if pl.buffer and pl.blocked_epoch != free_epoch:
                self._rename(pl)
        self._fetch_impl()
        self.cycle += 1

    # ------------------------------------------------------------- reporting

    def aggregate_ipc(self) -> float:
        """Committed correct-path instructions per cycle, all threads."""
        if self.cycle == 0:
            return 0.0
        return sum(self.committed) / self.cycle

    def thread_ipc(self, t: int) -> float:
        if self.cycle == 0:
            return 0.0
        return self.committed[t] / self.cycle
