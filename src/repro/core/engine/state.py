"""Run-time state shared by the engine's stages.

The constants (ROB slot states, per-slot flag bits, event kinds, fetch
policy fast-path kinds) and the :class:`Pipeline` record live here so the
stage modules can import them without touching the
:class:`~repro.core.engine.engine.Processor` shell — stages depend on
state, never the other way around.
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

__all__ = [
    "S_FREE",
    "S_WAITING",
    "S_READY",
    "S_ISSUED",
    "S_DONE",
    "FL_WRONGPATH",
    "FL_MISPRED",
    "FL_LOADCTR",
    "EV_COMPLETE",
    "EV_FLUSHCHK",
    "Pipeline",
]

# ROB slot states.
S_FREE = 0
S_WAITING = 1
S_READY = 2
S_ISSUED = 3
S_DONE = 4

# Per-slot flag bits.
FL_WRONGPATH = 1  #: fetched down a wrong path (never commits)
FL_MISPRED = 2  #: mispredicted control instr: squash + redirect on resolve
FL_LOADCTR = 4  #: counted in the thread's in-flight-load counter

# Event kinds.
EV_COMPLETE = 0
EV_FLUSHCHK = 1

# Fetch-policy fast paths recognized by the fetch stage (fall back to
# the policy object's sort_key).
_PK_GENERIC = 0
_PK_ICOUNT = 1  # icount / flush: key (icount[t], t)
_PK_L1M = 2  # l1mcount: key (inflight[t], -width, icount[t], t)


class Pipeline:
    """Run-time state of one pipeline (cluster)."""

    __slots__ = (
        "index",
        "model",
        "width",
        "tpc",
        "buffer",
        "buffer_cap",
        "iq_used",
        "iq_cap",
        "fu_count",
        "fu_avail",
        "ready",
        "ready_counts",
        "threads",
        "issued_total",
        "blocked_epoch",
    )

    def __init__(self, index: int, model) -> None:
        self.index = index
        self.model = model
        self.width = model.width
        self.tpc = model.threads_per_cycle
        #: decoupling buffer entries: (thread, entry, trace_idx, flags)
        self.buffer: deque = deque()
        self.buffer_cap = model.fetch_buffer
        self.iq_used = [0, 0, 0]  # FU_INT, FU_FP, FU_LDST
        self.iq_cap = (model.iq_entries, model.fq_entries, model.lq_entries)
        self.fu_count = (model.int_units, model.fp_units, model.ldst_units)
        #: per-cycle FU availability, reset in place by the issue stage
        #: (persistent — no per-call ``list(fu_count)`` allocation)
        self.fu_avail: List[int] = [0, 0, 0]
        #: merged age-ordered ready heap of (seq, fu_class, thread, slot)
        self.ready: List[Tuple[int, int, int, int]] = []
        #: live READY entries in the heap per FU class (stale entries are
        #: excluded — squash decrements at squash time). The issue stage
        #: stops scanning the moment no class has both a free unit and a
        #: live entry, restoring the 3-heap stage's O(1) early-out when
        #: one saturated class backs up behind the others.
        self.ready_counts: List[int] = [0, 0, 0]
        self.threads: List[int] = []
        self.issued_total = 0
        #: value of the core's resource-free epoch when this pipeline's
        #: rename stage last head-blocked; while the epoch is unchanged no
        #: blocking resource has been released, so re-running rename is a
        #: provable no-op and the core skips the call.
        self.blocked_epoch = -1

    def buffer_space(self) -> int:
        return self.buffer_cap - len(self.buffer)
