"""Fetch policies (§4 of the paper).

Every cycle the shared fetch engine ranks the runnable threads and takes
instructions from the best two (global limit: 8 instructions from at most
2 threads). The ranking is the policy:

* **ICOUNT 2.8** (Tullsen et al.) — fewest instructions in the pre-issue
  stages first;
* **FLUSH** (Tullsen & Brown) — ICOUNT ordering plus the flush mechanism:
  a load outstanding longer than the L2 access threshold triggers a flush
  of the thread's younger instructions and stalls its fetch until the
  load returns (the machinery lives in the processor; the policy enables
  it). Used by the paper for the monolithic M8 baseline;
* **L1MCOUNT** (a DCache-Warn variant, used for all multipipeline
  configurations) — fewest in-flight loads first, ties broken toward
  threads on wider pipelines, then ICOUNT;
* **round-robin** — rotation, an ablation baseline only.

A policy object is stateless apart from the processor it inspects;
``sort_key(proc, t)`` returns a tuple, lower = higher priority.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.processor import Processor

__all__ = [
    "FetchPolicy",
    "ICountPolicy",
    "FlushPolicy",
    "L1MCountPolicy",
    "RoundRobinPolicy",
    "make_policy",
]


class FetchPolicy:
    """Interface: rank threads for the shared fetch engine."""

    #: when True the processor arms the FLUSH mechanism (long-latency
    #: loads squash the thread's younger instructions and gate its fetch).
    flushing = False
    name = "abstract"

    def sort_key(self, proc: "Processor", t: int) -> Tuple:
        raise NotImplementedError


class ICountPolicy(FetchPolicy):
    """ICOUNT 2.8: priority to the thread with the fewest instructions in
    decode/rename/queues (its `icount`)."""

    name = "icount"

    def sort_key(self, proc: "Processor", t: int) -> Tuple:
        return (proc.icount[t], t)


class FlushPolicy(ICountPolicy):
    """ICOUNT ordering + L2-miss flush (the paper's baseline policy)."""

    name = "flush"
    flushing = True


class L1MCountPolicy(FetchPolicy):
    """Fewest in-flight loads; ties to wider pipelines; then ICOUNT.

    The paper: "Threads are arranged by the number of inflight loads ...
    threads with fewer number of inflight loads have priority. In case of
    equal number of inflight loads, threads allocated to wider pipelines
    have priority ... in case of pipeline coincidence, the ICOUNT 2.8
    policy is applied."
    """

    name = "l1mcount"

    def sort_key(self, proc: "Processor", t: int) -> Tuple:
        return (
            proc.inflight_loads[t],
            -proc.pipelines[proc.pipe_of[t]].model.width,
            proc.icount[t],
            t,
        )


class RoundRobinPolicy(FetchPolicy):
    """Cycle-rotating thread order (ablation baseline, not in the paper)."""

    name = "roundrobin"

    def sort_key(self, proc: "Processor", t: int) -> Tuple:
        n = proc.num_threads
        return ((t - proc.cycle) % n,)


_POLICIES = {
    "icount": ICountPolicy,
    "flush": FlushPolicy,
    "l1mcount": L1MCountPolicy,
    "roundrobin": RoundRobinPolicy,
}


def make_policy(name: str) -> FetchPolicy:
    """Instantiate a fetch policy by configuration name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown fetch policy {name!r}; available: {', '.join(_POLICIES)}"
        ) from None
