"""Dynamic thread-to-pipeline remapping — the paper's §7 future work.

The paper closes: "in future hdSMT implementations, this mapping should
probably be made dynamically in order to better adapt to the dynamic
changes in program behaviour during execution." This module implements
that implementation:

* the workload starts under a mapping chosen by any static policy;
* every ``epoch_cycles`` the runner re-ranks the threads by the data
  cache misses they incurred *during the last epoch* (the same sort key
  as the static heuristic, but measured online instead of profiled);
* if the heuristic would now map threads differently, the moving threads
  are *drained* (fetch gated until their ROBs empty — in-flight work is
  never thrown away), remapped, and released after a migration penalty
  (rename-map/ROB handoff).

Cost model: draining is fully simulated (the pipeline empties at its own
pace); the extra ``migration_penalty`` cycles cover the architectural
state handoff between pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import MicroarchConfig, get_config
from repro.core.mapping import heuristic_mapping
from repro.core.processor import Processor
from repro.core.simulation import SimResult, default_trace_length
from repro.trace.stream import Trace, trace_for

__all__ = ["DynamicMappingResult", "run_dynamic", "remap_threads"]


@dataclass(frozen=True)
class DynamicMappingResult:
    """Outcome of a dynamically-remapped run."""

    result: SimResult
    epochs: int
    remaps: int  #: epochs in which at least one thread moved
    migrations: int  #: total thread moves
    mapping_history: Tuple[Tuple[int, ...], ...]


def remap_threads(proc: Processor, new_mapping: Sequence[int]) -> int:
    """Move drained threads to their new pipelines; returns moves made.

    Preconditions: every moving thread's ROB must be empty and its fetch
    buffer purged (the runner drains them first). Raises if violated.
    """
    moves = 0
    for t, new_p in enumerate(new_mapping):
        old_p = proc.pipe_of[t]
        if new_p == old_p:
            continue
        if proc.rob_count[t] != 0:
            raise RuntimeError(f"thread {t} not drained (ROB {proc.rob_count[t]})")
        if any(item[0] == t for item in proc.pipelines[old_p].buffer):
            raise RuntimeError(f"thread {t} still queued in pipeline {old_p}")
        proc.pipelines[old_p].threads.remove(t)
        proc.pipelines[new_p].threads.append(t)
        proc.pipe_of[t] = new_p
        proc._pipe_by_thread[t] = proc.pipelines[new_p]
        proc._free_epoch += 1  # pipeline membership changed: unblock rename
        moves += 1
    if moves:
        proc.active_pipes = [pl for pl in proc.pipelines if pl.threads]
    return moves


def run_dynamic(
    config: MicroarchConfig | str,
    benchmarks: Sequence[str],
    initial_mapping: Optional[Sequence[int]] = None,
    commit_target: int = 10_000,
    epoch_cycles: int = 2_000,
    migration_penalty: int = 100,
    trace_length: Optional[int] = None,
    traces: Optional[Sequence[Trace]] = None,
    warmup: bool = True,
    max_cycles: Optional[int] = None,
) -> DynamicMappingResult:
    """Simulate with online heuristic remapping every ``epoch_cycles``.

    ``traces`` overrides the default benchmark traces (used with
    :func:`repro.trace.composite.composite_trace` to exercise behaviour
    changes).
    """
    if isinstance(config, str):
        config = get_config(config)
    if config.is_monolithic:
        raise ValueError("dynamic remapping needs a multipipeline configuration")
    n = len(benchmarks)
    if trace_length is None:
        trace_length = default_trace_length(commit_target)
    if traces is None:
        built: List[Trace] = []
        seen: Dict[str, int] = {}
        for b in benchmarks:
            inst = seen.get(b, 0)
            seen[b] = inst + 1
            built.append(trace_for(b, trace_length, instance=inst))
        traces = built
    if initial_mapping is None:
        # Cold start: no profile yet — ties, so workload order decides.
        initial_mapping = heuristic_mapping(config, [0.0] * n)

    proc = Processor(config, traces, initial_mapping, commit_target)
    if warmup:
        proc.warm()
        proc.mem.reset_stats()
        proc.branch_unit.reset_stats()
    if max_cycles is None:
        max_cycles = 400 * commit_target + 10_000

    history: List[Tuple[int, ...]] = [tuple(initial_mapping)]
    epochs = remaps = migrations = 0
    last_misses = list(proc.mem.l1d.stats.per_thread_misses)
    far = 1 << 60

    while not proc.finished and proc.cycle < max_cycles:
        # -- run one epoch -------------------------------------------------
        epoch_end = proc.cycle + epoch_cycles
        while not proc.finished and proc.cycle < min(epoch_end, max_cycles):
            proc.step()
        if proc.finished or proc.cycle >= max_cycles:
            break
        epochs += 1
        # -- re-rank by the epoch's observed misses -------------------------
        misses_now = proc.mem.l1d.stats.per_thread_misses
        epoch_misses = [misses_now[t] - last_misses[t] for t in range(n)]
        last_misses = list(misses_now)
        desired = heuristic_mapping(config, epoch_misses)
        if desired == tuple(proc.pipe_of):
            continue
        # -- drain the moving threads ---------------------------------------
        movers = [t for t in range(n) if desired[t] != proc.pipe_of[t]]
        saved_stall = [proc.fetch_stall_until[t] for t in movers]
        for t in movers:
            proc.fetch_stall_until[t] = far
        drain_deadline = proc.cycle + 50_000
        while (
            not proc.finished
            and proc.cycle < min(drain_deadline, max_cycles)
            and any(
                proc.rob_count[t] != 0
                or any(it[0] == t for it in proc.pipelines[proc.pipe_of[t]].buffer)
                for t in movers
            )
        ):
            proc.step()
        if proc.finished or proc.cycle >= max_cycles:
            break
        moved = remap_threads(proc, desired)
        migrations += moved
        remaps += 1
        history.append(tuple(desired))
        release = proc.cycle + migration_penalty
        for t, old in zip(movers, saved_stall):
            proc.fetch_stall_until[t] = max(release, min(old, proc.cycle))

    stats = {
        "l1d_miss_rate": proc.mem.l1d.stats.miss_rate,
        "branch_mispredict_rate": proc.branch_unit.predictor.mispredict_rate,
        "mispredicts": float(sum(proc.stat_mispredicts)),
        "flushes": float(sum(proc.stat_flushes)),
        "epochs": float(epochs),
        "migrations": float(migrations),
    }
    result = SimResult(
        config_name=config.name,
        benchmarks=tuple(t.name for t in traces),
        mapping=tuple(proc.pipe_of),
        cycles=proc.cycle,
        committed=tuple(proc.committed),
        commit_target=commit_target,
        ipc=proc.aggregate_ipc(),
        thread_ipc=tuple(proc.thread_ipc(t) for t in range(n)),
        stats=stats,
    )
    return DynamicMappingResult(
        result=result,
        epochs=epochs,
        remaps=remaps,
        migrations=migrations,
        mapping_history=tuple(history),
    )
