"""The multipipeline SMT processor — cycle-level, trace-driven.

Models the machine of Fig. 1: a shared fetch engine feeding per-pipeline
decoupling buffers; each pipeline privately decodes, renames, queues,
issues and commits; all pipelines share the physical register file, the
branch predictor and the memory hierarchy. Entire threads are bound to
pipelines by the mapping.

Modeled behaviours (all load-bearing for the paper's results):

* per-thread 256-entry ROBs, a shared 256-entry rename-register pool;
* IQ/FQ/LQ occupancy per pipeline, per-class FU contention, age-ordered
  issue within a pipeline;
* perceptron/BTB/RAS front end with *wrong-path execution*: mispredicted
  threads fetch junk instructions (from the basic-block-dictionary
  equivalent) that consume fetch bandwidth, buffers, rename registers,
  queue slots and functional units until the branch resolves;
* I-cache/I-TLB fetch stalls; D-cache/D-TLB load latencies resolved at
  issue; stores retire through the cache at commit;
* the FLUSH mechanism (baseline policy): loads outstanding past the L2
  threshold squash the thread's younger instructions and gate its fetch;
* the hdSMT register-file tax (``reg_latency = 2``): the shared
  multipipeline register file takes an extra cycle per access, modeled as
  +1 cycle of result visibility per dependency edge (bypass networks
  still forward within the execution core) and +2 cycles of front-end
  refill after a branch mispredict (two extra pipeline stages).

Implementation style: per the HPC-guide discipline the per-cycle work is
O(machine width), not O(window). Completions are events in a *ring-buffer
timing wheel* sized to the worst-case latency (one list index to pop a
cycle's events, no dict hashing); wakeups walk dependent lists; ready
instructions sit in one *merged* age-ordered heap per pipeline of
``(seq, fu_class, thread, slot)`` entries, inserted at wakeup/rename and
consumed oldest-first at issue (entries whose FU class has no free unit
this cycle are parked and reinserted — the selection is provably the
age-ordered pick across per-class queues, without the per-instruction
three-heap scan); per-cycle FU availability lives in a persistent
per-pipeline counter vector reset in place (no per-call allocation).
Hot per-slot ROB state
lives in flat preallocated parallel arrays indexed ``thread * rob_entries
+ slot`` (one indexing level instead of two), bound to locals inside the
stage loops; no per-instruction objects are allocated during simulation.
``run()`` additionally *skips idle cycles*: when no instruction can
commit, issue, rename or fetch this cycle, the clock jumps directly to
the next scheduled event or fetch-stall expiry instead of spinning
``step()`` — bit-identical to stepping (the skipped cycles are provably
no-ops), but long memory stalls cost O(1) instead of O(latency).
"""

from __future__ import annotations

import os
import pickle
from collections import deque
from hashlib import sha256
from heapq import heappush, heappop
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ioutil import atomic_write_bytes

from repro.branch.unit import BranchUnit
from repro.core.config import MicroarchConfig
from repro.core.fetch_policies import make_policy
from repro.isa.opcodes import (
    EXEC_LATENCY,
    OP_BRANCH,
    OP_CALL,
    OP_LOAD,
    OP_RETURN,
    OP_STORE,
    _FU_OF_OP,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.packed import PACK_FORMAT_VERSION
from repro.trace.stream import FETCH_MASK, FETCH_SHIFT, Trace

__all__ = [
    "Processor",
    "Pipeline",
    "clear_warm_cache",
    "set_warm_store",
    "ensure_warm_snapshot",
    "warm_snapshot_path",
]

#: Salts on-disk warm-snapshot keys; bump when warm-up semantics or the
#: dumped structure-state shapes change (v2: int-keyed TLB maps).
_WARM_SNAPSHOT_VERSION = 2

#: Memoized post-warm structure state, keyed on (memory params, thread
#: count, trace identities). Entries hold strong references to their
#: traces so object ids can never be recycled into a false hit; FIFO
#: eviction bounds the footprint for one-off trace sets (composites).
_WARM_CACHE: Dict[tuple, tuple] = {}
_WARM_CACHE_MAX = 128

#: Optional on-disk warm-snapshot store (a directory), shared between
#: BatchRunner workers: the first process to warm a (memory params,
#: thread count, trace set) persists the snapshot, every other process
#: restores it instead of streaming the window. Only traces built by
#: ``trace_for`` participate — they carry a content key; hand-built
#: traces (tests, composites) always warm in-process.
_WARM_STORE_DIR: Optional[str] = None


def set_warm_store(directory: Optional[str]) -> None:
    """Activate (None: deactivate) the process-wide warm-snapshot store."""
    global _WARM_STORE_DIR
    _WARM_STORE_DIR = str(directory) if directory is not None else None


def clear_warm_cache() -> None:
    """Drop memoized warm-up snapshots (tests / memory pressure)."""
    _WARM_CACHE.clear()


def _stream_warm(mem: MemoryHierarchy, unit: BranchUnit, traces) -> None:
    """Stream every trace's batched per-structure warm sequences into the
    given hierarchy/branch unit (the vectorized warm pass; see
    :meth:`Processor.warm` for the bit-identity argument)."""
    dtlb = mem.dtlb
    l1d = mem.l1d
    l2 = mem.l2
    itlb = mem.itlb
    l1i = mem.l1i
    predictor = unit.predictor
    btb = unit.btb
    for t, trace in enumerate(traces):
        seqs = trace.warm_sequences()
        # D-side: DTLB translation stream; L1D probes; L2 sees the L1D
        # misses (in program order, as the per-entry loop did).
        dtlb.access_many(seqs.mem_addrs, t)
        d_misses = l1d.access_many(seqs.mem_addrs, t, collect_misses=True)
        l2.access_many(d_misses, t)
        # Front end: conditional-branch training and taken-transfer
        # target installs.
        predictor.update_many(t, seqs.branch_pcs, seqs.branch_taken)
        btb.update_many(t, seqs.btb_pcs, seqs.btb_targets)
        # I-side: every correct-path PC touches ITLB + L1I.
        itlb.access_many(seqs.fetch_pcs, t)
        l1i.access_many(seqs.fetch_pcs, t)
        # Wrong-path code lives in the basic-block dictionary too; a real
        # front end finds most of it resident (its L1I misses fill from
        # L2, as in the seed loop).
        itlb.access_many(seqs.junk_pcs, t)
        junk_misses = l1i.access_many(seqs.junk_pcs, t, collect_misses=True)
        l2.access_many(junk_misses, t)


def _dump_warm_state(mem: MemoryHierarchy, unit: BranchUnit) -> tuple:
    return (
        mem.l1i.dump_state(),
        mem.l1d.dump_state(),
        mem.l2.dump_state(),
        mem.itlb.dump_state(),
        mem.dtlb.dump_state(),
        unit.predictor.dump_state(),
        unit.btb.dump_state(),
    )


def warm_snapshot_path(directory: str, memory_params, num_threads: int,
                       trace_keys) -> str:
    """Deterministic snapshot file for one (params, trace set) identity."""
    desc = repr((
        _WARM_SNAPSHOT_VERSION,
        PACK_FORMAT_VERSION,
        memory_params,
        num_threads,
        tuple(trace_keys),
    ))
    return os.path.join(directory, sha256(desc.encode()).hexdigest() + ".warm")


def ensure_warm_snapshot(directory: str, memory_params, traces) -> bool:
    """Compute and persist the warm snapshot for ``traces`` if absent.

    Used by the BatchRunner parent so concurrent workers load one shared
    snapshot instead of racing to compute identical ones. Returns False
    when any trace lacks a content key (nothing portable to store).
    """
    keys = []
    for trace in traces:
        k = getattr(trace, "key", None)
        if k is None:
            return False
        keys.append(k)
    path = warm_snapshot_path(directory, memory_params, len(traces), keys)
    if os.path.exists(path):
        return True
    mem = MemoryHierarchy(memory_params, max_threads=len(traces))
    unit = BranchUnit(max_threads=len(traces))
    _stream_warm(mem, unit, traces)
    _write_warm_snapshot(path, _dump_warm_state(mem, unit))
    return True


def _read_warm_snapshot(path: str) -> Optional[tuple]:
    """Load a pickled warm snapshot; any corruption degrades to None (the
    caller recomputes and overwrites)."""
    try:
        with open(path, "rb") as fh:
            snap = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ValueError, TypeError, IndexError):
        return None
    if not isinstance(snap, tuple) or len(snap) != 7:
        return None
    return snap


def _write_warm_snapshot(path: str, snap: tuple) -> None:
    """Atomically persist a warm snapshot (concurrent writers race to an
    identical, deterministic payload — last rename wins harmlessly)."""
    try:
        atomic_write_bytes(path, pickle.dumps(snap, pickle.HIGHEST_PROTOCOL))
    except OSError:  # pragma: no cover - store dir vanished
        return

# ROB slot states.
S_FREE = 0
S_WAITING = 1
S_READY = 2
S_ISSUED = 3
S_DONE = 4

# Per-slot flag bits.
FL_WRONGPATH = 1  #: fetched down a wrong path (never commits)
FL_MISPRED = 2  #: mispredicted control instr: squash + redirect on resolve
FL_LOADCTR = 4  #: counted in the thread's in-flight-load counter

# Event kinds.
EV_COMPLETE = 0
EV_FLUSHCHK = 1

# Fetch-policy fast paths recognized by _fetch (fall back to sort_key).
_PK_GENERIC = 0
_PK_ICOUNT = 1  # icount / flush: key (icount[t], t)
_PK_L1M = 2  # l1mcount: key (inflight[t], -width, icount[t], t)


class Pipeline:
    """Run-time state of one pipeline (cluster)."""

    __slots__ = (
        "index",
        "model",
        "width",
        "tpc",
        "buffer",
        "buffer_cap",
        "iq_used",
        "iq_cap",
        "fu_count",
        "fu_avail",
        "ready",
        "ready_counts",
        "threads",
        "issued_total",
        "blocked_epoch",
    )

    def __init__(self, index: int, model) -> None:
        self.index = index
        self.model = model
        self.width = model.width
        self.tpc = model.threads_per_cycle
        #: decoupling buffer entries: (thread, entry, trace_idx, flags)
        self.buffer: deque = deque()
        self.buffer_cap = model.fetch_buffer
        self.iq_used = [0, 0, 0]  # FU_INT, FU_FP, FU_LDST
        self.iq_cap = (model.iq_entries, model.fq_entries, model.lq_entries)
        self.fu_count = (model.int_units, model.fp_units, model.ldst_units)
        #: per-cycle FU availability, reset in place by the issue stage
        #: (persistent — no per-call ``list(fu_count)`` allocation)
        self.fu_avail: List[int] = [0, 0, 0]
        #: merged age-ordered ready heap of (seq, fu_class, thread, slot)
        self.ready: List[Tuple[int, int, int, int]] = []
        #: live READY entries in the heap per FU class (stale entries are
        #: excluded — squash decrements at squash time). The issue stage
        #: stops scanning the moment no class has both a free unit and a
        #: live entry, restoring the 3-heap stage's O(1) early-out when
        #: one saturated class backs up behind the others.
        self.ready_counts: List[int] = [0, 0, 0]
        self.threads: List[int] = []
        self.issued_total = 0
        #: value of the core's resource-free epoch when this pipeline's
        #: rename stage last head-blocked; while the epoch is unchanged no
        #: blocking resource has been released, so re-running rename is a
        #: provable no-op and the core skips the call.
        self.blocked_epoch = -1

    def buffer_space(self) -> int:
        return self.buffer_cap - len(self.buffer)


class Processor:
    """A configured hdSMT/SMT processor executing a set of thread traces.

    Parameters
    ----------
    config:
        The microarchitecture (pipelines + shared parameters).
    traces:
        One :class:`~repro.trace.stream.Trace` per thread.
    mapping:
        ``mapping[thread] = pipeline_index``; must respect contexts.
    commit_target:
        The simulation finishes as soon as any thread has committed this
        many correct-path instructions (the paper's stop rule).
    """

    def __init__(
        self,
        config: MicroarchConfig,
        traces: Sequence[Trace],
        mapping: Sequence[int],
        commit_target: int,
    ) -> None:
        n = len(traces)
        if n == 0:
            raise ValueError("at least one thread required")
        if len(mapping) != n:
            raise ValueError("mapping length must equal thread count")
        loads = [0] * len(config.pipelines)
        for p in mapping:
            if not 0 <= p < len(config.pipelines):
                raise ValueError(f"mapping names pipeline {p}, config has "
                                 f"{len(config.pipelines)}")
            loads[p] += 1
        if config.is_monolithic:
            if loads[0] > config.contexts_for(n):
                raise ValueError(f"{n} threads exceed contexts of {config.name}")
        else:
            for i, load in enumerate(loads):
                if load > config.pipelines[i].contexts:
                    raise ValueError(
                        f"pipeline {i} ({config.pipelines[i].name}) of {config.name} "
                        f"hosts {load} threads but has {config.pipelines[i].contexts} contexts"
                    )
        self.config = config
        self.params = config.params
        self.traces = list(traces)
        self.mapping = tuple(mapping)
        self.commit_target = commit_target
        self.num_threads = n

        self.pipelines = [Pipeline(i, m) for i, m in enumerate(config.pipelines)]
        self.pipe_of = list(self.mapping)
        for t, p in enumerate(self.pipe_of):
            self.pipelines[p].threads.append(t)
        #: pipelines with at least one thread (simulated; idle ones are off)
        self.active_pipes = [pl for pl in self.pipelines if pl.threads]
        #: thread -> its Pipeline object (kept in sync by dynamic remapping)
        self._pipe_by_thread = [self.pipelines[p] for p in self.pipe_of]

        #: per-thread block tables over the packed trace columns — the
        #: fetch engine indexes these instead of materialized tuple lists
        #: (blocks decode lazily on first touch; see Trace.fetch_view).
        self._fetch_eblocks: List[list] = []
        self._fetch_jblocks: List[list] = []
        for tr in self.traces:
            eb, jb = tr.fetch_view()
            self._fetch_eblocks.append(eb)
            self._fetch_jblocks.append(jb)

        self.mem = MemoryHierarchy(self.params.memory, max_threads=n)
        self.branch_unit = BranchUnit(max_threads=n)
        self.policy = make_policy(config.fetch_policy)
        pol = config.fetch_policy
        if pol in ("icount", "flush"):
            self._policy_kind = _PK_ICOUNT
        elif pol == "l1mcount":
            self._policy_kind = _PK_L1M
        else:
            self._policy_kind = _PK_GENERIC

        # --- shared resources -------------------------------------------
        self.phys_free = self.params.rename_registers
        self.cycle = 0
        self.seq = 0
        self.finished = False

        # --- timing wheel -------------------------------------------------
        # Sized to the worst-case event latency: a load that misses the
        # D-TLB, both cache levels, plus the register-file tax; any event
        # is scheduled strictly less than `size` cycles ahead, so slot
        # (cycle & mask) holds exactly cycle's events. `_far_events` is a
        # safety net for out-of-horizon schedules (custom parameter sets).
        m = self.params.memory
        horizon = (
            m.tlb_miss_penalty
            + m.l1_latency
            + m.l1_miss_penalty
            + m.memory_latency
            + max(EXEC_LATENCY)
            + self.params.extra_reg_cycles
            + m.flush_threshold
            + 8
        )
        size = 1 << horizon.bit_length()
        if size < 64:
            size = 64
        self._wheel: List[Optional[List[tuple]]] = [None] * size
        self._wheel_mask = size - 1
        self._far_events: Dict[int, List[tuple]] = {}
        #: count of instructions currently in state S_READY (for idle skip)
        self._ready_count = 0
        #: per-thread "ROB head is DONE" flags + their count: ~60% of
        #: cycles have nothing to commit, so the commit stage is gated on
        #: ``_commitable`` (a gated commit is provably a no-op: it would
        #: only advance the fairness rotor, which the gate does directly).
        self._head_done = [False] * n
        self._commitable = 0
        #: bumped whenever a rename-blocking resource frees (IQ/FQ/LQ slot,
        #: ROB slot, rename register, buffer purge); pipelines record it at
        #: head-block time so provably-still-blocked rename calls skip.
        self._free_epoch = 0

        # --- per-thread front-end state ----------------------------------
        self.fetch_idx = [0] * n
        self.wrong_path = [False] * n
        self.junk_idx = [0] * n
        self.fetch_stall_until = [0] * n
        self.flush_wait = [False] * n
        self.flush_load_slot = [-1] * n
        self.epoch = [0] * n
        self.icount = [0] * n
        self.inflight_loads = [0] * n
        self.committed = [0] * n

        # --- per-thread ROB: flat parallel arrays, slot = t * r + idx -----
        r = self.params.rob_entries
        self.rob_entries = r
        self.rob_head = [0] * n
        self.rob_tail = [0] * n
        self.rob_count = [0] * n
        nr = n * r
        self._rob_entry: List[Optional[tuple]] = [None] * nr
        self._rob_state = [S_FREE] * nr
        self._rob_pending = [0] * nr
        #: per-slot dependent lists, allocated lazily on the first edge
        #: (most slots in short screening runs never grow a dependent)
        self._rob_deps: List[Optional[List[Tuple[int, int]]]] = [None] * nr
        self._rob_traceidx = [-1] * nr
        self._rob_prevprod = [-1] * nr
        self._rob_prevseq = [-1] * nr
        self._rob_seq = [-1] * nr
        self._rob_epoch = [0] * nr
        self._rob_flags = [0] * nr
        #: one-lookup bundle for the stage prologues (unpacked into locals)
        self._rob_arrays = (
            self._rob_entry,
            self._rob_state,
            self._rob_pending,
            self._rob_deps,
            self._rob_traceidx,
            self._rob_prevprod,
            self._rob_prevseq,
            self._rob_seq,
            self._rob_epoch,
            self._rob_flags,
        )

        #: rename map: logical reg -> producing ROB slot (-1 = value ready)
        self.reg_map = [[-1] * 64 for _ in range(n)]

        # --- hoisted hot parameters --------------------------------------
        self._extra_reg = self.params.extra_reg_cycles
        self._l1_lat = m.l1_latency
        self._flush_thr = m.flush_threshold
        self._fetch_width = self.params.fetch_width
        self._fetch_threads = self.params.fetch_threads
        self._redirect_stall = (
            self.params.branch_redirect_penalty + 2 * self.params.extra_reg_cycles
        )

        # --- statistics ------------------------------------------------------
        self.stat_fetched = [0] * n
        self.stat_wrongpath_fetched = [0] * n
        self.stat_mispredicts = [0] * n
        self.stat_flushes = [0] * n
        self.stat_squashed = [0] * n
        self.stat_icache_stalls = 0
        self.stat_btb_bubbles = 0

        self._commit_rotor = 0
        self._warmed = False

        # --- stage dispatch ----------------------------------------------
        # Monolithic configurations (the M8 baseline — a fixed ~15% of
        # every sweep that only responds to engine gains) run specialized
        # single-pipeline commit/issue/fetch stages: one shared decoupling
        # buffer, no per-thread pipeline indirection, no outer pipeline
        # loops. Provably the same work in the same order, so results are
        # bit-identical (pinned by the golden-equivalence suite).
        if config.is_monolithic:
            self._commit_impl = self._commit_mono
            self._fetch_impl = self._fetch_mono
            self._issue_impl = self._issue_mono
        else:
            self._commit_impl = self._commit
            self._fetch_impl = self._fetch
            self._issue_impl = self._issue_all

    # ------------------------------------------------- compatibility views

    def _nested(self, flat: list) -> List[list]:
        r = self.rob_entries
        return [flat[t * r:(t + 1) * r] for t in range(self.num_threads)]

    @property
    def rob_entry(self) -> List[list]:
        """Per-thread view of the flat ROB entry array (read-only copy)."""
        return self._nested(self._rob_entry)

    @property
    def rob_state(self) -> List[list]:
        return self._nested(self._rob_state)

    @property
    def rob_pending(self) -> List[list]:
        return self._nested(self._rob_pending)

    @property
    def rob_deps(self) -> List[list]:
        return self._nested(self._rob_deps)

    @property
    def rob_traceidx(self) -> List[list]:
        return self._nested(self._rob_traceidx)

    @property
    def rob_prevprod(self) -> List[list]:
        return self._nested(self._rob_prevprod)

    @property
    def rob_prevseq(self) -> List[list]:
        return self._nested(self._rob_prevseq)

    @property
    def rob_seq(self) -> List[list]:
        return self._nested(self._rob_seq)

    @property
    def rob_epoch(self) -> List[list]:
        return self._nested(self._rob_epoch)

    @property
    def rob_flags(self) -> List[list]:
        return self._nested(self._rob_flags)

    @property
    def events(self) -> Dict[int, List[tuple]]:
        """Pending events as {absolute_cycle: [(kind, t, slot, epoch), ...]}.

        Reconstructed from the timing wheel (a compatibility/debugging
        view; the hot path never builds this dict).
        """
        out: Dict[int, List[tuple]] = {}
        cyc = self.cycle
        wheel = self._wheel
        mask = self._wheel_mask
        for d in range(len(wheel)):
            evs = wheel[(cyc + d) & mask]
            if evs:
                out[cyc + d] = list(evs)
        for when, evs in self._far_events.items():
            out.setdefault(when, []).extend(evs)
        return out

    # ------------------------------------------------------------------ warm

    def warm(self) -> None:
        """Warm caches, TLBs and predictors with each thread's window.

        The paper measures steady-state segments of 300M instructions; our
        short windows would otherwise be dominated by compulsory misses
        and an untrained perceptron. Statistics accumulated here are reset
        by the caller via fresh counters (see ``run_simulation``).

        The warm pass is *vectorized*: instead of dispatching on every
        trace entry, each structure consumes its precomputed access
        sequence (:meth:`Trace.warm_sequences`, derived from the packed
        columns) in one batched call. The modeled structures are mutually
        independent and every structure sees exactly the per-entry loop's
        access subsequence in the same order, so the post-warm state is
        bit-identical to the seed implementation — the golden-equivalence
        suite pins this.

        Warming is deterministic in (traces, memory params, thread count)
        when the processor is fresh, so the post-warm structure state is
        memoized process-wide: the oracle mapping sweeps re-simulate the
        same workload dozens of times and every run after the first
        restores the snapshot (bit-identical, including warm-time
        statistics) instead of streaming the window again. With a warm
        store active (:func:`set_warm_store`), snapshots are additionally
        shared across processes through the store directory.
        """
        mem = self.mem
        unit = self.branch_unit
        fresh = not self._warmed and self.cycle == 0 and self.seq == 0
        key = None
        disk_path = None
        if fresh:
            key = (
                self.params.memory,
                self.num_threads,
                tuple(id(t) for t in self.traces),
            )
            cached = _WARM_CACHE.get(key)
            if cached is not None and all(
                a is b for a, b in zip(cached[0], self.traces)
            ):
                self._load_warm_snapshot(cached[1:])
                self._warmed = True
                return
            disk_path = self._warm_store_path()
            if disk_path is not None:
                snap = _read_warm_snapshot(disk_path)
                if snap is not None:
                    self._load_warm_snapshot(snap)
                    self._remember_warm(key, snap)
                    self._warmed = True
                    return
        self._warmed = True
        _stream_warm(mem, unit, self.traces)
        if fresh:
            snap = _dump_warm_state(mem, unit)
            self._remember_warm(key, snap)
            if disk_path is not None:
                _write_warm_snapshot(disk_path, snap)

    def _load_warm_snapshot(self, snap: tuple) -> None:
        """Restore the 7 structure states of a warm snapshot."""
        l1i, l1d, l2, itlb, dtlb, pred, btb = snap
        mem = self.mem
        mem.l1i.load_state(l1i)
        mem.l1d.load_state(l1d)
        mem.l2.load_state(l2)
        mem.itlb.load_state(itlb)
        mem.dtlb.load_state(dtlb)
        self.branch_unit.predictor.load_state(pred)
        self.branch_unit.btb.load_state(btb)

    def _remember_warm(self, key: tuple, snap: tuple) -> None:
        if len(_WARM_CACHE) >= _WARM_CACHE_MAX:
            _WARM_CACHE.pop(next(iter(_WARM_CACHE)))
        _WARM_CACHE[key] = (tuple(self.traces),) + snap

    def _warm_store_path(self) -> Optional[str]:
        """Snapshot file for this (params, traces) set, or None when the
        store is off or any trace lacks a content key."""
        directory = _WARM_STORE_DIR
        if directory is None:
            return None
        keys = []
        for trace in self.traces:
            k = getattr(trace, "key", None)
            if k is None:
                return None
            keys.append(k)
        return warm_snapshot_path(directory, self.params.memory,
                                  self.num_threads, keys)

    # ------------------------------------------------------------------- run

    def run(self, max_cycles: Optional[int] = None) -> int:
        """Simulate until a thread reaches the commit target (or the cycle
        cap, a safety net). Returns the cycle count.

        Idle cycles — no event due, nothing ready to issue, nothing to
        commit, rename or fetch — are skipped in O(1): the clock jumps to
        the next scheduled event or fetch-stall expiry. The jump is
        clamped to ``max_cycles`` so skipping can never overshoot the
        safety cap.
        """
        if max_cycles is None:
            max_cycles = 400 * self.commit_target + 10_000
        wheel = self._wheel
        mask = self._wheel_mask
        size = mask + 1
        far = self._far_events
        flush_wait = self.flush_wait
        stall = self.fetch_stall_until
        active = self.active_pipes
        n = self.num_threads
        commit = self._commit_impl
        writeback = self._writeback
        issue_stage = self._issue_impl
        rename = self._rename
        fetch = self._fetch_impl
        while not self.finished:
            cyc = self.cycle
            if cyc >= max_cycles:
                break
            # --- idle-cycle fast path -----------------------------------
            # A cycle is provably a no-op when: no event fires now, no
            # instruction is READY, no ROB head is DONE, every decoupling
            # buffer is empty (nothing to rename) and every thread's fetch
            # is gated (flush-wait or stalled). Until the next event /
            # stall expiry the machine state cannot change, so the skipped
            # cycles are bit-identical to stepping through them.
            if (
                self._ready_count == 0
                and self._commitable == 0
                and not wheel[cyc & mask]
                and (not far or cyc not in far)
            ):
                idle = True
                for t in range(n):
                    if not flush_wait[t] and cyc >= stall[t]:
                        idle = False
                        break
                if idle:
                    for pl in active:
                        if pl.buffer:
                            idle = False
                            break
                if idle:
                    wake = max_cycles
                    for d in range(1, size):
                        if wheel[(cyc + d) & mask]:
                            if cyc + d < wake:
                                wake = cyc + d
                            break
                    if far:
                        nxt = min(far)
                        if nxt < wake:
                            wake = nxt
                    for t in range(n):
                        if not flush_wait[t]:
                            s = stall[t]
                            if cyc < s < wake:
                                wake = s
                    if wake <= cyc:  # pragma: no cover - defensive
                        wake = cyc + 1
                    # The commit rotor advances once per cycle (even idle
                    # ones) in step(); account for the skipped cycles.
                    self._commit_rotor += wake - cyc
                    self.cycle = wake
                    continue
            # --- one cycle (same stage order as step()) -----------------
            if self._commitable:
                commit()
            else:
                # A commit with no DONE head only advances the fairness
                # rotor; do that directly.
                self._commit_rotor += 1
            if wheel[cyc & mask] or far:
                writeback()
            if self._ready_count:
                issue_stage()
            free_epoch = self._free_epoch
            for pl in active:
                if pl.buffer and pl.blocked_epoch != free_epoch:
                    rename(pl)
            fetch()
            self.cycle = cyc + 1
        return self.cycle

    def step(self) -> None:
        """Advance one cycle: commit, writeback, issue, rename, fetch."""
        if self._commitable:
            self._commit_impl()
        else:
            self._commit_rotor += 1
        if self._wheel[self.cycle & self._wheel_mask] or self._far_events:
            self._writeback()
        if self._ready_count:
            self._issue_impl()
        free_epoch = self._free_epoch
        for pl in self.active_pipes:
            if pl.buffer and pl.blocked_epoch != free_epoch:
                self._rename(pl)
        self._fetch_impl()
        self.cycle += 1

    # ---------------------------------------------------------------- commit

    def _commit(self) -> None:
        entries, states, _, deps, _, _, _, _, _, _ = self._rob_arrays
        heads = self.rob_head
        counts = self.rob_count
        committed = self.committed
        reg_maps = self.reg_map
        mem_store = self.mem.retire_store
        r = self.rob_entries
        target = self.commit_target
        phys_free = self.phys_free
        rotor = self._commit_rotor
        self._commit_rotor = rotor + 1
        head_done = self._head_done
        for pl in self.active_pipes:
            budget = pl.width
            threads = pl.threads
            nt = len(threads)
            for k in range(nt):
                if budget <= 0:
                    break
                t = threads[(rotor + k) % nt]
                head = heads[t]
                count = counts[t]
                base = t * r
                if not count or states[base + head] != S_DONE:
                    continue
                rmap = reg_maps[t]
                c = committed[t]
                while budget > 0 and count > 0 and states[base + head] == S_DONE:
                    i = base + head
                    e = entries[i]
                    if e[0] == OP_STORE:
                        mem_store(e[4], t)
                    dest = e[1]
                    if dest >= 0:
                        phys_free += 1
                        if rmap[dest] == head:
                            rmap[dest] = -1
                    states[i] = S_FREE
                    d = deps[i]
                    if d:
                        d.clear()
                    head += 1
                    if head == r:
                        head = 0
                    count -= 1
                    budget -= 1
                    c += 1
                    if c >= target:
                        self.finished = True
                committed[t] = c
                heads[t] = head
                counts[t] = count
                # Keep the commit gate exact: the head either still holds
                # a DONE instruction (budget ran out mid-stream) or the
                # thread leaves the commitable set.
                if not (count and states[base + head] == S_DONE):
                    head_done[t] = False
                    self._commitable -= 1
        self.phys_free = phys_free
        # ROB slots / rename registers were released (the gate guarantees
        # at least one pop happened): blocked rename stages may proceed.
        self._free_epoch += 1

    def _commit_mono(self) -> None:
        """Single-pipeline commit: the generic stage with the pipeline
        loop collapsed (one pipeline hosts every thread), same rotor
        order and budget accounting — bit-identical to :meth:`_commit`."""
        entries, states, _, deps, _, _, _, _, _, _ = self._rob_arrays
        heads = self.rob_head
        counts = self.rob_count
        committed = self.committed
        reg_maps = self.reg_map
        mem_store = self.mem.retire_store
        r = self.rob_entries
        target = self.commit_target
        phys_free = self.phys_free
        rotor = self._commit_rotor
        self._commit_rotor = rotor + 1
        head_done = self._head_done
        pl = self.active_pipes[0]
        budget = pl.width
        threads = pl.threads
        nt = len(threads)
        for k in range(nt):
            if budget <= 0:
                break
            t = threads[(rotor + k) % nt]
            head = heads[t]
            count = counts[t]
            base = t * r
            if not count or states[base + head] != S_DONE:
                continue
            rmap = reg_maps[t]
            c = committed[t]
            while budget > 0 and count > 0 and states[base + head] == S_DONE:
                i = base + head
                e = entries[i]
                if e[0] == OP_STORE:
                    mem_store(e[4], t)
                dest = e[1]
                if dest >= 0:
                    phys_free += 1
                    if rmap[dest] == head:
                        rmap[dest] = -1
                states[i] = S_FREE
                d = deps[i]
                if d:
                    d.clear()
                head += 1
                if head == r:
                    head = 0
                count -= 1
                budget -= 1
                c += 1
                if c >= target:
                    self.finished = True
            committed[t] = c
            heads[t] = head
            counts[t] = count
            if not (count and states[base + head] == S_DONE):
                head_done[t] = False
                self._commitable -= 1
        self.phys_free = phys_free
        self._free_epoch += 1

    # ------------------------------------------------------------- writeback

    def _writeback(self) -> None:
        cyc = self.cycle
        idx = cyc & self._wheel_mask
        evs = self._wheel[idx]
        if evs is not None:
            self._wheel[idx] = None
            if self._far_events:
                more = self._far_events.pop(cyc, None)
                if more:
                    evs.extend(more)
        else:
            if not self._far_events:
                return
            evs = self._far_events.pop(cyc, None)
            if not evs:
                return
        epochs = self._rob_epoch
        states = self._rob_state
        r = self.rob_entries
        for kind, t, slot, ep in evs:
            i = t * r + slot
            if epochs[i] != ep:
                continue
            if kind == EV_COMPLETE:
                if states[i] != S_ISSUED:
                    continue
                self._complete(t, slot)
            else:  # EV_FLUSHCHK: load still outstanding past the threshold?
                if states[i] == S_ISSUED:
                    self._do_flush(t, slot)

    def _complete(self, t: int, slot: int) -> None:
        r = self.rob_entries
        base = t * r
        i = base + slot
        entries, states, pend, deps_arr, tidx_arr, _, _, seqs, epochs, \
            flags_arr = self._rob_arrays
        states[i] = S_DONE
        if slot == self.rob_head[t] and not self._head_done[t]:
            self._head_done[t] = True
            self._commitable += 1
        flags = flags_arr[i]
        if flags & FL_LOADCTR:
            flags_arr[i] = flags & ~FL_LOADCTR
            self.inflight_loads[t] -= 1
            if self.flush_wait[t] and self.flush_load_slot[t] == slot:
                self.flush_wait[t] = False
                self.flush_load_slot[t] = -1
        # Wake dependents.
        deps = deps_arr[i]
        if deps:
            fu_of = _FU_OF_OP
            pl = self._pipe_by_thread[t]
            ready = pl.ready
            ready_counts = pl.ready_counts
            woken = 0
            for d, dep_ep in deps:
                j = base + d
                if epochs[j] != dep_ep:
                    continue
                p = pend[j] - 1
                pend[j] = p
                if p == 0 and states[j] == S_WAITING:
                    states[j] = S_READY
                    fu = fu_of[entries[j][0]]
                    heappush(ready, (seqs[j], fu, t, d))
                    ready_counts[fu] += 1
                    woken += 1
            if woken:
                self._ready_count += woken
            deps.clear()
        # Branch resolution.
        e = entries[i]
        op = e[0]
        if op == OP_BRANCH or op == OP_CALL or op == OP_RETURN:
            tidx = tidx_arr[i]
            taken = bool(e[5])
            if tidx >= 0:
                target = self.traces[t].next_pc(tidx) if taken else e[6] + 4
                self.branch_unit.resolve(t, e[6], op, taken, target)
            if flags_arr[i] & FL_MISPRED:
                flags_arr[i] &= ~FL_MISPRED
                self.stat_mispredicts[t] += 1
                self._squash_after(t, slot)
                self.wrong_path[t] = False
                if tidx >= 0:
                    self.fetch_idx[t] = tidx + 1
                # The redirect overrides any stall the wrong path incurred
                # (e.g. a wrong-path I-cache miss): fetch restarts at the
                # correct target after the front-end refill bubble. The
                # 2-cycle hdSMT register file deepens the pipeline, so the
                # refill grows by one cycle per extra read/write stage.
                self.fetch_stall_until[t] = self.cycle + self._redirect_stall

    def _do_flush(self, t: int, load_slot: int) -> None:
        """FLUSH policy: squash everything younger than the L2-missing
        load and gate the thread's fetch until the load completes."""
        self.stat_flushes[t] += 1
        self._squash_after(t, load_slot)
        self.wrong_path[t] = False
        self.flush_wait[t] = True
        self.flush_load_slot[t] = load_slot
        self.fetch_idx[t] = self._rob_traceidx[t * self.rob_entries + load_slot] + 1
        # Any wrong-path fetch stall dies with the flush.
        self.fetch_stall_until[t] = self.cycle

    # ---------------------------------------------------------------- squash

    def _squash_after(self, t: int, bslot: int) -> None:
        """Squash every instruction of ``t`` younger than ``bslot``:
        roll the ROB tail back, release queue slots / rename registers /
        load counters, restore the rename map, purge the fetch buffer."""
        self.epoch[t] += 1
        self._free_epoch += 1  # buffer/queue/register release: unblock rename
        pl = self._pipe_by_thread[t]
        # Purge this thread's not-yet-renamed entries from the buffer
        # (they are all younger than anything in the ROB).
        buf = pl.buffer
        if buf:
            kept = [it for it in buf if it[0] != t]
            removed = len(buf) - len(kept)
            if removed:
                buf.clear()
                buf.extend(kept)
                self.icount[t] -= removed
                self.stat_squashed[t] += removed
        r = self.rob_entries
        base = t * r
        tail = self.rob_tail[t]
        # bslot is an occupied slot, so the strictly-younger range is
        # bslot+1 .. tail-1 in ring order.
        n_squash = (tail - bslot - 1) % r
        if not n_squash:
            self.rob_tail[t] = tail
            return
        states = self._rob_state
        entries = self._rob_entry
        flags_arr = self._rob_flags
        deps = self._rob_deps
        prevprods = self._rob_prevprod
        prevseqs = self._rob_prevseq
        seqs = self._rob_seq
        reg_map = self.reg_map[t]
        iq_used = pl.iq_used
        ready_counts = pl.ready_counts
        fu_of = _FU_OF_OP
        phys_free = self.phys_free
        icount_drop = 0
        ready_drop = 0
        for _ in range(n_squash):
            tail = tail - 1 if tail else r - 1
            i = base + tail
            st = states[i]
            e = entries[i]
            if st == S_WAITING or st == S_READY:
                fu = fu_of[e[0]]
                iq_used[fu] -= 1
                icount_drop += 1
                if st == S_READY:
                    ready_drop += 1
                    # The heap entry goes stale; only the live count says
                    # so before the lazy pop reaches it.
                    ready_counts[fu] -= 1
            elif st == S_ISSUED:
                if flags_arr[i] & FL_LOADCTR:
                    self.inflight_loads[t] -= 1
            dest = e[1]
            if dest >= 0:
                phys_free += 1
                if reg_map[dest] == tail:
                    prev = prevprods[i]
                    if (
                        prev >= 0
                        and seqs[base + prev] == prevseqs[i]
                        and states[base + prev] != S_FREE
                    ):
                        reg_map[dest] = prev
                    else:
                        reg_map[dest] = -1
            states[i] = S_FREE
            flags_arr[i] = 0
            d = deps[i]
            if d:
                d.clear()
        self.phys_free = phys_free
        self.icount[t] -= icount_drop
        if ready_drop:
            self._ready_count -= ready_drop
        self.rob_count[t] -= n_squash
        self.stat_squashed[t] += n_squash
        self.rob_tail[t] = tail

    # ----------------------------------------------------------------- issue

    def _issue_all(self) -> None:
        """Generic issue stage: every pipeline with ready entries."""
        issue = self._issue
        for pl in self.active_pipes:
            if pl.ready:
                issue(pl)

    def _issue_mono(self) -> None:
        """Single-pipeline issue stage: :meth:`_issue` with the pipeline
        loop and per-call dispatch collapsed (one pipeline hosts every
        thread), same merged-heap pick order and wheel scheduling — bit-
        identical to the generic stage (pinned by the golden suite)."""
        pl = self.active_pipes[0]
        heap = pl.ready
        if not heap:
            return
        budget = pl.width
        fu_avail = pl.fu_avail
        ready_counts = pl.ready_counts
        c0, c1, c2 = pl.fu_count
        fu_avail[0] = c0
        fu_avail[1] = c1
        fu_avail[2] = c2
        entries, states, _, _, tidx_arr, _, _, seqs, epochs, flags_arr = \
            self._rob_arrays
        iq_used = pl.iq_used
        icount = self.icount
        mem_load = self.mem.load_latency
        r = self.rob_entries
        extra = self._extra_reg
        l1_lat = self._l1_lat
        flush_thr = self._flush_thr
        cyc = self.cycle
        wheel = self._wheel
        mask = self._wheel_mask
        size = mask + 1
        flushing = self.policy.flushing
        issued = 0
        deferred: List[tuple] = []
        while budget > 0 and heap:
            head = heap[0]
            s, fu, t, slot = head
            i = t * r + slot
            if states[i] != S_READY or seqs[i] != s:
                heappop(heap)  # stale (squashed or recycled slot)
                continue
            if fu_avail[fu] <= 0:
                heappop(heap)
                deferred.append(head)
                ready_counts[fu] -= 1
                if not (
                    (fu_avail[0] > 0 and ready_counts[0] > 0)
                    or (fu_avail[1] > 0 and ready_counts[1] > 0)
                    or (fu_avail[2] > 0 and ready_counts[2] > 0)
                ):
                    break
                continue
            heappop(heap)
            fu_avail[fu] -= 1
            ready_counts[fu] -= 1
            budget -= 1
            states[i] = S_ISSUED
            issued += 1
            iq_used[fu] -= 1
            icount[t] -= 1
            e = entries[i]
            op = e[0]
            if op == OP_LOAD:
                rlat = mem_load(e[4], t)
                lat = rlat + extra
                if rlat > l1_lat:
                    self.inflight_loads[t] += 1
                    flags_arr[i] |= FL_LOADCTR
                if (
                    flushing
                    and rlat > flush_thr
                    and tidx_arr[i] >= 0
                    and not self.flush_wait[t]
                ):
                    when = cyc + flush_thr
                    item = (EV_FLUSHCHK, t, slot, epochs[i])
                    wi = when & mask
                    lst = wheel[wi]
                    if lst is None:
                        wheel[wi] = [item]
                    else:
                        lst.append(item)
            else:
                lat = EXEC_LATENCY[op] + extra
            if lat <= 0:
                lat = 1
            item = (EV_COMPLETE, t, slot, epochs[i])
            if lat < size:
                wi = (cyc + lat) & mask
                lst = wheel[wi]
                if lst is None:
                    wheel[wi] = [item]
                else:
                    lst.append(item)
            else:  # pragma: no cover - out-of-horizon (custom params) safety
                self._far_events.setdefault(cyc + lat, []).append(item)
        for item in deferred:
            heappush(heap, item)
            ready_counts[item[1]] += 1
        if issued:
            pl.issued_total += issued
            self._ready_count -= issued
            self._free_epoch += 1  # queue slots freed: unblock rename

    def _issue(self, pl: Pipeline) -> None:
        """Issue up to ``width`` ready instructions, oldest first.

        The merged ready heap orders every ready instruction of the
        pipeline by global age (``seq``); each pick takes the heap head
        unless its FU class has no free unit this cycle, in which case
        the entry is *parked* and the scan continues with the next-oldest
        — exactly the age-ordered pick across per-class queues the
        three-heap stage computed, without the per-instruction scan over
        all three heads. Parked entries are pushed back after the loop
        (they stay READY; only this cycle's units were taken). Stale
        heads (squashed or recycled slots) are dropped lazily, as before.
        """
        budget = pl.width
        heap = pl.ready
        fu_avail = pl.fu_avail
        ready_counts = pl.ready_counts
        c0, c1, c2 = pl.fu_count
        fu_avail[0] = c0
        fu_avail[1] = c1
        fu_avail[2] = c2
        entries, states, _, _, tidx_arr, _, _, seqs, epochs, flags_arr = \
            self._rob_arrays
        iq_used = pl.iq_used
        icount = self.icount
        mem_load = self.mem.load_latency
        r = self.rob_entries
        extra = self._extra_reg
        l1_lat = self._l1_lat
        flush_thr = self._flush_thr
        cyc = self.cycle
        wheel = self._wheel
        mask = self._wheel_mask
        size = mask + 1
        flushing = self.policy.flushing
        issued = 0
        deferred: List[tuple] = []
        while budget > 0 and heap:
            head = heap[0]
            s, fu, t, slot = head
            i = t * r + slot
            if states[i] != S_READY or seqs[i] != s:
                heappop(heap)  # stale (squashed or recycled slot)
                continue
            if fu_avail[fu] <= 0:
                # This class's units are taken: park the entry, keep
                # scanning younger instructions of the other classes —
                # but only while some class still has both a free unit
                # and a live entry left in the heap (the 3-heap stage's
                # O(1) early-out, kept exact by the live counts).
                heappop(heap)
                deferred.append(head)
                ready_counts[fu] -= 1
                if not (
                    (fu_avail[0] > 0 and ready_counts[0] > 0)
                    or (fu_avail[1] > 0 and ready_counts[1] > 0)
                    or (fu_avail[2] > 0 and ready_counts[2] > 0)
                ):
                    break  # nothing issuable remains this cycle
                continue
            heappop(heap)
            fu_avail[fu] -= 1
            ready_counts[fu] -= 1
            budget -= 1
            states[i] = S_ISSUED
            issued += 1
            iq_used[fu] -= 1
            icount[t] -= 1
            e = entries[i]
            op = e[0]
            if op == OP_LOAD:
                rlat = mem_load(e[4], t)
                lat = rlat + extra
                # The L1MCOUNT policy (a DCache-Warn variant) gates fetch
                # on loads *likely to miss*: only loads that outlive an L1
                # hit count toward the thread's in-flight-load priority.
                if rlat > l1_lat:
                    self.inflight_loads[t] += 1
                    flags_arr[i] |= FL_LOADCTR
                if (
                    flushing
                    and rlat > flush_thr
                    and tidx_arr[i] >= 0
                    and not self.flush_wait[t]
                ):
                    when = cyc + flush_thr
                    item = (EV_FLUSHCHK, t, slot, epochs[i])
                    wi = when & mask
                    lst = wheel[wi]
                    if lst is None:
                        wheel[wi] = [item]
                    else:
                        lst.append(item)
            else:
                lat = EXEC_LATENCY[op] + extra
            if lat <= 0:
                lat = 1
            item = (EV_COMPLETE, t, slot, epochs[i])
            if lat < size:
                wi = (cyc + lat) & mask
                lst = wheel[wi]
                if lst is None:
                    wheel[wi] = [item]
                else:
                    lst.append(item)
            else:  # pragma: no cover - out-of-horizon (custom params) safety
                self._far_events.setdefault(cyc + lat, []).append(item)
        for item in deferred:
            heappush(heap, item)
            ready_counts[item[1]] += 1
        if issued:
            pl.issued_total += issued
            self._ready_count -= issued
            self._free_epoch += 1  # queue slots freed: unblock rename

    # ---------------------------------------------------------------- rename

    def _rename(self, pl: Pipeline) -> None:
        buf = pl.buffer
        if not buf:
            return
        # Cheap head-blocked test before the full prologue: if the oldest
        # buffered instruction cannot rename, the in-order rename stage
        # does nothing this cycle (identical to breaking out immediately).
        t0, e0, _, _ = buf[0]
        fu0 = _FU_OF_OP[e0[0]]
        if (
            pl.iq_used[fu0] >= pl.iq_cap[fu0]
            or self.rob_count[t0] >= self.rob_entries
            or (e0[1] >= 0 and self.phys_free <= 0)
        ):
            # Until a blocking resource frees (the free-epoch advances),
            # re-running rename is a provable no-op — skip those calls.
            pl.blocked_epoch = self._free_epoch
            return
        budget = pl.width
        tpc = pl.tpc
        # Threads-per-cycle gate: a pipeline hosting no more threads than
        # rename accepts per cycle can never trip the limit (its buffer
        # only ever holds its own threads), so the membership bookkeeping
        # is skipped; otherwise a bitmask replaces the seed's list scans.
        track_tpc = len(pl.threads) > tpc
        new_thread = False
        seen_mask = 0
        nseen = 0
        iq_used = pl.iq_used
        iq_cap = pl.iq_cap
        ready = pl.ready
        ready_counts = pl.ready_counts
        r = self.rob_entries
        (entries, states, pend_arr, deps, tidx_arr, prevprods, prevseqs,
         seqs, epoch_arr, flags_arr) = self._rob_arrays
        rob_tail = self.rob_tail
        rob_count = self.rob_count
        reg_maps = self.reg_map
        epochs_t = self.epoch
        fu_of = _FU_OF_OP
        phys_free = self.phys_free
        seq = self.seq
        woken = 0
        while budget > 0 and buf:
            t, e, tidx, flags = buf[0]
            if track_tpc:
                new_thread = not ((seen_mask >> t) & 1)
                if new_thread and nseen >= tpc:
                    break
            op = e[0]
            fu = fu_of[op]
            if iq_used[fu] >= iq_cap[fu]:
                break
            if rob_count[t] >= r:
                break
            dest = e[1]
            if dest >= 0 and phys_free <= 0:
                break
            buf.popleft()
            if new_thread:
                seen_mask |= 1 << t
                nseen += 1
            budget -= 1
            slot = rob_tail[t]
            rob_tail[t] = slot + 1 if slot + 1 < r else 0
            rob_count[t] += 1
            base = t * r
            i = base + slot
            entries[i] = e
            tidx_arr[i] = tidx
            ep = epochs_t[t]
            epoch_arr[i] = ep
            flags_arr[i] = flags
            seqs[i] = seq
            myseq = seq
            seq += 1
            # Source dependences (must read the map before the dest write).
            pending = 0
            reg_map = reg_maps[t]
            src = e[2]
            if src >= 0:
                prod = reg_map[src]
                if prod >= 0 and states[base + prod] < S_DONE:
                    pending += 1
                    dl = deps[base + prod]
                    if dl is None:
                        deps[base + prod] = [(slot, ep)]
                    else:
                        dl.append((slot, ep))
            src = e[3]
            if src >= 0:
                prod = reg_map[src]
                if prod >= 0 and states[base + prod] < S_DONE:
                    pending += 1
                    dl = deps[base + prod]
                    if dl is None:
                        deps[base + prod] = [(slot, ep)]
                    else:
                        dl.append((slot, ep))
            if dest >= 0:
                prev = reg_map[dest]
                prevprods[i] = prev
                prevseqs[i] = seqs[base + prev] if prev >= 0 else -1
                reg_map[dest] = slot
                phys_free -= 1
            else:
                prevprods[i] = -1
                prevseqs[i] = -1
            pend_arr[i] = pending
            iq_used[fu] += 1
            if pending == 0:
                states[i] = S_READY
                heappush(ready, (myseq, fu, t, slot))
                ready_counts[fu] += 1
                woken += 1
            else:
                states[i] = S_WAITING
        self.phys_free = phys_free
        self.seq = seq
        if woken:
            self._ready_count += woken

    # ----------------------------------------------------------------- fetch

    def _fetch(self) -> None:
        cyc = self.cycle
        flush_wait = self.flush_wait
        stall = self.fetch_stall_until
        pipes = self._pipe_by_thread
        candidates = []
        for t in range(self.num_threads):
            if flush_wait[t] or cyc < stall[t]:
                continue
            pl = pipes[t]
            if len(pl.buffer) >= pl.buffer_cap:
                continue
            candidates.append(t)
        if not candidates:
            return
        if len(candidates) > 1:
            # Candidates ascend in thread id, and list.sort is stable, so
            # sorting on the policy key minus its trailing thread-id
            # tiebreak reproduces the seed ordering exactly.
            kind = self._policy_kind
            if kind == _PK_ICOUNT:
                candidates.sort(key=self.icount.__getitem__)
            elif kind == _PK_L1M:
                infl = self.inflight_loads
                ic = self.icount
                candidates.sort(key=lambda t: (infl[t], -pipes[t].width, ic[t]))
            else:
                policy = self.policy
                candidates.sort(key=lambda t: policy.sort_key(self, t))
        remaining = self._fetch_width
        threads_used = 0
        max_threads = self._fetch_threads
        fetch_thread = self._fetch_thread
        for t in candidates:
            if remaining <= 0 or threads_used >= max_threads:
                break
            threads_used += 1
            remaining -= fetch_thread(t, remaining)

    def _fetch_mono(self) -> None:
        """Single-pipeline fetch: every thread shares the one decoupling
        buffer, so the per-candidate pipeline lookups and buffer-space
        probes of :meth:`_fetch` collapse to a single up-front check.
        Candidate order and the policy sort are untouched (the candidate
        list still ascends in thread id before the stable sort), so the
        fetched stream is bit-identical to the generic stage."""
        pl = self.active_pipes[0]
        if len(pl.buffer) >= pl.buffer_cap:
            return
        cyc = self.cycle
        flush_wait = self.flush_wait
        stall = self.fetch_stall_until
        candidates = [
            t for t in range(self.num_threads)
            if not flush_wait[t] and cyc >= stall[t]
        ]
        if not candidates:
            return
        if len(candidates) > 1:
            kind = self._policy_kind
            if kind == _PK_ICOUNT:
                candidates.sort(key=self.icount.__getitem__)
            elif kind == _PK_L1M:
                # Pipeline width is a constant term within one pipeline;
                # the stable sort makes (inflight, icount) equivalent to
                # the generic (inflight, -width, icount) key.
                infl = self.inflight_loads
                ic = self.icount
                candidates.sort(key=lambda t: (infl[t], ic[t]))
            else:
                policy = self.policy
                candidates.sort(key=lambda t: policy.sort_key(self, t))
        remaining = self._fetch_width
        threads_used = 0
        max_threads = self._fetch_threads
        fetch_thread = self._fetch_thread
        for t in candidates:
            if remaining <= 0 or threads_used >= max_threads:
                break
            threads_used += 1
            remaining -= fetch_thread(t, remaining)

    def _fetch_thread(self, t: int, budget: int) -> int:
        """Fetch one packet for thread ``t``; returns instructions taken.

        Entries are read through the per-trace block tables over the
        packed int64 columns (``index >> FETCH_SHIFT`` selects a block,
        decoded from the column slices on first touch) — the tuple lists
        the seed fetch loop indexed never materialize.
        """
        pl = self._pipe_by_thread[t]
        buf = pl.buffer
        space = pl.buffer_cap - len(buf)
        limit = budget if budget < space else space
        if limit <= 0:
            return 0
        trace = self.traces[t]
        length = trace.length
        junk_len = trace.junk_length
        eblocks = self._fetch_eblocks[t]
        jblocks = self._fetch_jblocks[t]
        entry_block = trace.entry_block
        junk_block = trace.junk_block
        bshift = FETCH_SHIFT  # locals: the loop reads them per entry
        bmask = FETCH_MASK
        cyc = self.cycle
        junk_idx = self.junk_idx
        fetch_idx = self.fetch_idx
        wp = self.wrong_path[t]
        # One I-cache/I-TLB probe per packet (head PC).
        if wp:
            j = junk_idx[t] % junk_len
            blk = jblocks[j >> bshift]
            if blk is None:
                blk = junk_block(j >> bshift)
            head_pc = blk[j & bmask][6]
        else:
            j = fetch_idx[t] % length
            blk = eblocks[j >> bshift]
            if blk is None:
                blk = entry_block(j >> bshift)
            head_pc = blk[j & bmask][6]
        fetch_lat = self.mem.fetch_latency(head_pc, t)
        if fetch_lat > 0:
            self.fetch_stall_until[t] = cyc + fetch_lat
            self.stat_icache_stalls += 1
            return 0
        taken_count = 0
        wrongpath_count = 0
        append = buf.append
        unit = self.branch_unit
        predict = unit.predict
        while taken_count < limit:
            if wp:
                j = junk_idx[t] % junk_len
                blk = jblocks[j >> bshift]
                if blk is None:
                    blk = junk_block(j >> bshift)
                e = blk[j & bmask]
                junk_idx[t] += 1
                tidx = -1
                flags = FL_WRONGPATH
                wrongpath_count += 1
            else:
                tidx = fetch_idx[t]
                j = tidx % length
                blk = eblocks[j >> bshift]
                if blk is None:
                    blk = entry_block(j >> bshift)
                e = blk[j & bmask]
                fetch_idx[t] = tidx + 1
                flags = 0
            op = e[0]
            if op == OP_BRANCH or op == OP_CALL or op == OP_RETURN:
                actual_taken = bool(e[5])
                if tidx >= 0:
                    j = (tidx + 1) % length
                    blk = eblocks[j >> bshift]
                    if blk is None:
                        blk = entry_block(j >> bshift)
                    actual_target = blk[j & bmask][6]
                else:
                    actual_target = e[6] + 4
                pred = predict(t, e[6], op, actual_taken, actual_target)
                if pred.direction_mispredict or (
                    op == OP_RETURN and pred.target_mispredict
                ):
                    # Full mispredict: fetch goes down the wrong path until
                    # this branch resolves in the execute stage.
                    flags |= FL_MISPRED
                    unit.note_direction_mispredict()
                    self.wrong_path[t] = True
                    wp = True
                    append((t, e, tidx, flags))
                    taken_count += 1
                    if pred.taken:
                        break  # fetch redirects (to the wrong target)
                    continue  # wrong path continues sequentially (junk)
                append((t, e, tidx, flags))
                taken_count += 1
                if pred.taken:
                    if not pred.target_known:
                        # Direction right but no target from BTB: short
                        # front-end bubble while decode computes it.
                        self.fetch_stall_until[t] = cyc + self.params.btb_miss_penalty
                        self.stat_btb_bubbles += 1
                    break  # taken prediction ends the packet
            else:
                append((t, e, tidx, flags))
                taken_count += 1
        self.icount[t] += taken_count
        self.stat_fetched[t] += taken_count
        if wrongpath_count:
            self.stat_wrongpath_fetched[t] += wrongpath_count
        return taken_count

    # ------------------------------------------------------------- reporting

    def aggregate_ipc(self) -> float:
        """Committed correct-path instructions per cycle, all threads."""
        if self.cycle == 0:
            return 0.0
        return sum(self.committed) / self.cycle

    def thread_ipc(self, t: int) -> float:
        if self.cycle == 0:
            return 0.0
        return self.committed[t] / self.cycle
