"""Compatibility shim: the processor now lives in ``repro.core.engine``.

Four perf PRs grew this module into a ~1700-line monolith carrying the
stage specializations, the warm-snapshot machinery and the scheduling
loop in one file; it is now a package —

* :mod:`repro.core.engine.state` — ROB/flag/event constants, ``Pipeline``;
* :mod:`repro.core.engine.warm` — warm streaming/memoization/snapshots;
* :mod:`repro.core.engine.stages` — fetch/rename/issue/writeback/commit
  plus the (mono, SMT) stage registry;
* :mod:`repro.core.engine.engine` — the ``Processor`` shell.

Every name previously importable from here re-exports the engine
definition (same objects, not copies — asserted by
``tests/core/test_processor_shim.py``), so existing imports, goldens
and the lockstep suites run unchanged.
"""

from repro.core.engine import (
    EV_COMPLETE,
    EV_FLUSHCHK,
    FL_LOADCTR,
    FL_MISPRED,
    FL_WRONGPATH,
    Pipeline,
    Processor,
    S_DONE,
    S_FREE,
    S_ISSUED,
    S_READY,
    S_WAITING,
    clear_warm_cache,
    ensure_warm_snapshot,
    set_warm_store,
    warm_snapshot_path,
)
from repro.core.engine.state import _PK_GENERIC, _PK_ICOUNT, _PK_L1M  # noqa: F401
from repro.core.engine.warm import (  # noqa: F401
    _dump_warm_state,
    _read_warm_snapshot,
    _stream_warm,
    _write_warm_snapshot,
)

__all__ = [
    "Processor",
    "Pipeline",
    "clear_warm_cache",
    "set_warm_store",
    "ensure_warm_snapshot",
    "warm_snapshot_path",
    "S_FREE",
    "S_WAITING",
    "S_READY",
    "S_ISSUED",
    "S_DONE",
    "FL_WRONGPATH",
    "FL_MISPRED",
    "FL_LOADCTR",
    "EV_COMPLETE",
    "EV_FLUSHCHK",
]
