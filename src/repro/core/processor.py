"""The multipipeline SMT processor — cycle-level, trace-driven.

Models the machine of Fig. 1: a shared fetch engine feeding per-pipeline
decoupling buffers; each pipeline privately decodes, renames, queues,
issues and commits; all pipelines share the physical register file, the
branch predictor and the memory hierarchy. Entire threads are bound to
pipelines by the mapping.

Modeled behaviours (all load-bearing for the paper's results):

* per-thread 256-entry ROBs, a shared 256-entry rename-register pool;
* IQ/FQ/LQ occupancy per pipeline, per-class FU contention, age-ordered
  issue within a pipeline;
* perceptron/BTB/RAS front end with *wrong-path execution*: mispredicted
  threads fetch junk instructions (from the basic-block-dictionary
  equivalent) that consume fetch bandwidth, buffers, rename registers,
  queue slots and functional units until the branch resolves;
* I-cache/I-TLB fetch stalls; D-cache/D-TLB load latencies resolved at
  issue; stores retire through the cache at commit;
* the FLUSH mechanism (baseline policy): loads outstanding past the L2
  threshold squash the thread's younger instructions and gate its fetch;
* the hdSMT register-file tax (``reg_latency = 2``): the shared
  multipipeline register file takes an extra cycle per access, modeled as
  +1 cycle of result visibility per dependency edge (bypass networks
  still forward within the execution core) and +2 cycles of front-end
  refill after a branch mispredict (two extra pipeline stages).

Implementation style: per the HPC-guide discipline the per-cycle work is
O(machine width), not O(window): completions are events in a timing
wheel, wakeups walk dependent lists, ready instructions sit in per-FU
age-ordered heaps. Hot state lives in parallel per-thread lists (no
per-instruction objects are allocated during simulation).
"""

from __future__ import annotations

from collections import deque
from heapq import heappush, heappop
from typing import Dict, List, Optional, Sequence, Tuple

from repro.branch.unit import BranchUnit
from repro.core.config import MicroarchConfig
from repro.core.fetch_policies import make_policy
from repro.isa.opcodes import (
    EXEC_LATENCY,
    OP_BRANCH,
    OP_CALL,
    OP_LOAD,
    OP_RETURN,
    OP_STORE,
    fu_class,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.stream import Trace

__all__ = ["Processor", "Pipeline"]

# ROB slot states.
S_FREE = 0
S_WAITING = 1
S_READY = 2
S_ISSUED = 3
S_DONE = 4

# Per-slot flag bits.
FL_WRONGPATH = 1  #: fetched down a wrong path (never commits)
FL_MISPRED = 2  #: mispredicted control instr: squash + redirect on resolve
FL_LOADCTR = 4  #: counted in the thread's in-flight-load counter

# Event kinds.
EV_COMPLETE = 0
EV_FLUSHCHK = 1


class Pipeline:
    """Run-time state of one pipeline (cluster)."""

    __slots__ = (
        "index",
        "model",
        "buffer",
        "buffer_cap",
        "iq_used",
        "iq_cap",
        "fu_count",
        "ready",
        "threads",
        "issued_total",
    )

    def __init__(self, index: int, model) -> None:
        self.index = index
        self.model = model
        #: decoupling buffer entries: (thread, entry, trace_idx, flags)
        self.buffer: deque = deque()
        self.buffer_cap = model.fetch_buffer
        self.iq_used = [0, 0, 0]  # FU_INT, FU_FP, FU_LDST
        self.iq_cap = (model.iq_entries, model.fq_entries, model.lq_entries)
        self.fu_count = (model.int_units, model.fp_units, model.ldst_units)
        #: per-FU-class age-ordered ready heaps of (seq, thread, slot)
        self.ready: Tuple[List, List, List] = ([], [], [])
        self.threads: List[int] = []
        self.issued_total = 0

    def buffer_space(self) -> int:
        return self.buffer_cap - len(self.buffer)


class Processor:
    """A configured hdSMT/SMT processor executing a set of thread traces.

    Parameters
    ----------
    config:
        The microarchitecture (pipelines + shared parameters).
    traces:
        One :class:`~repro.trace.stream.Trace` per thread.
    mapping:
        ``mapping[thread] = pipeline_index``; must respect contexts.
    commit_target:
        The simulation finishes as soon as any thread has committed this
        many correct-path instructions (the paper's stop rule).
    """

    def __init__(
        self,
        config: MicroarchConfig,
        traces: Sequence[Trace],
        mapping: Sequence[int],
        commit_target: int,
    ) -> None:
        n = len(traces)
        if n == 0:
            raise ValueError("at least one thread required")
        if len(mapping) != n:
            raise ValueError("mapping length must equal thread count")
        loads = [0] * len(config.pipelines)
        for p in mapping:
            if not 0 <= p < len(config.pipelines):
                raise ValueError(f"mapping names pipeline {p}, config has "
                                 f"{len(config.pipelines)}")
            loads[p] += 1
        if config.is_monolithic:
            if loads[0] > config.contexts_for(n):
                raise ValueError(f"{n} threads exceed contexts of {config.name}")
        else:
            for i, l in enumerate(loads):
                if l > config.pipelines[i].contexts:
                    raise ValueError(
                        f"pipeline {i} ({config.pipelines[i].name}) of {config.name} "
                        f"hosts {l} threads but has {config.pipelines[i].contexts} contexts"
                    )
        self.config = config
        self.params = config.params
        self.traces = list(traces)
        self.mapping = tuple(mapping)
        self.commit_target = commit_target
        self.num_threads = n

        self.pipelines = [Pipeline(i, m) for i, m in enumerate(config.pipelines)]
        self.pipe_of = list(self.mapping)
        for t, p in enumerate(self.pipe_of):
            self.pipelines[p].threads.append(t)
        #: pipelines with at least one thread (simulated; idle ones are off)
        self.active_pipes = [pl for pl in self.pipelines if pl.threads]

        self.mem = MemoryHierarchy(self.params.memory, max_threads=n)
        self.branch_unit = BranchUnit(max_threads=n)
        self.policy = make_policy(config.fetch_policy)

        # --- shared resources -------------------------------------------
        self.phys_free = self.params.rename_registers
        self.cycle = 0
        self.seq = 0
        self.events: Dict[int, List] = {}
        self.finished = False

        # --- per-thread front-end state ----------------------------------
        self.fetch_idx = [0] * n
        self.wrong_path = [False] * n
        self.junk_idx = [0] * n
        self.fetch_stall_until = [0] * n
        self.flush_wait = [False] * n
        self.flush_load_slot = [-1] * n
        self.epoch = [0] * n
        self.icount = [0] * n
        self.inflight_loads = [0] * n
        self.committed = [0] * n

        # --- per-thread ROB (ring buffers of parallel lists) -------------
        r = self.params.rob_entries
        self.rob_entries = r
        self.rob_head = [0] * n
        self.rob_tail = [0] * n
        self.rob_count = [0] * n
        self.rob_entry = [[None] * r for _ in range(n)]
        self.rob_state = [[S_FREE] * r for _ in range(n)]
        self.rob_pending = [[0] * r for _ in range(n)]
        self.rob_deps: List[List[List[Tuple[int, int]]]] = [
            [[] for _ in range(r)] for _ in range(n)
        ]
        self.rob_traceidx = [[-1] * r for _ in range(n)]
        self.rob_prevprod = [[-1] * r for _ in range(n)]
        self.rob_prevseq = [[-1] * r for _ in range(n)]
        self.rob_seq = [[-1] * r for _ in range(n)]
        self.rob_epoch = [[0] * r for _ in range(n)]
        self.rob_flags = [[0] * r for _ in range(n)]

        #: rename map: logical reg -> producing ROB slot (-1 = value ready)
        self.reg_map = [[-1] * 64 for _ in range(n)]

        # --- statistics ------------------------------------------------------
        self.stat_fetched = [0] * n
        self.stat_wrongpath_fetched = [0] * n
        self.stat_mispredicts = [0] * n
        self.stat_flushes = [0] * n
        self.stat_squashed = [0] * n
        self.stat_icache_stalls = 0
        self.stat_btb_bubbles = 0

        self._commit_rotor = 0

    # ------------------------------------------------------------------ warm

    def warm(self) -> None:
        """Warm caches, TLBs and predictors with each thread's window.

        The paper measures steady-state segments of 300M instructions; our
        short windows would otherwise be dominated by compulsory misses
        and an untrained perceptron. Statistics accumulated here are reset
        by the caller via fresh counters (see ``run_simulation``).
        """
        mem = self.mem
        unit = self.branch_unit
        for t, trace in enumerate(self.traces):
            entries = trace.entries
            length = trace.length
            for i, e in enumerate(entries):
                op = e[0]
                if op == OP_LOAD or op == OP_STORE:
                    mem.dtlb.access(e[4], t)
                    if not mem.l1d.access(e[4], t):
                        mem.l2.access(e[4], t)
                elif op == OP_BRANCH:
                    unit.predictor.update(t, e[6], bool(e[5]))
                    if e[5]:
                        unit.btb.update(t, e[6], entries[(i + 1) % length][6])
                elif (op == OP_CALL or op == OP_RETURN) and e[5]:
                    unit.btb.update(t, e[6], entries[(i + 1) % length][6])
                mem.itlb.access(e[6], t)
                mem.l1i.access(e[6], t)
            # Wrong-path code lives in the basic-block dictionary too; a
            # real front end finds most of it resident.
            for e in trace.junk:
                mem.itlb.access(e[6], t)
                if not mem.l1i.access(e[6], t):
                    mem.l2.access(e[6], t)

    # ------------------------------------------------------------------- run

    def run(self, max_cycles: Optional[int] = None) -> int:
        """Simulate until a thread reaches the commit target (or the cycle
        cap, a safety net). Returns the cycle count."""
        if max_cycles is None:
            max_cycles = 400 * self.commit_target + 10_000
        step = self.step
        while not self.finished and self.cycle < max_cycles:
            step()
        return self.cycle

    def step(self) -> None:
        """Advance one cycle: commit, writeback, issue, rename, fetch."""
        self._commit()
        self._writeback()
        for pl in self.active_pipes:
            self._issue(pl)
        for pl in self.active_pipes:
            self._rename(pl)
        self._fetch()
        self.cycle += 1

    # ---------------------------------------------------------------- commit

    def _commit(self) -> None:
        rob_state = self.rob_state
        rob_entry = self.rob_entry
        mem = self.mem
        target = self.commit_target
        rotor = self._commit_rotor
        self._commit_rotor += 1
        for pl in self.active_pipes:
            budget = pl.model.width
            threads = pl.threads
            nt = len(threads)
            for k in range(nt):
                if budget <= 0:
                    break
                t = threads[(rotor + k) % nt]
                head = self.rob_head[t]
                count = self.rob_count[t]
                states = rob_state[t]
                entries = rob_entry[t]
                while budget > 0 and count > 0 and states[head] == S_DONE:
                    e = entries[head]
                    op = e[0]
                    if op == OP_STORE:
                        mem.store(e[4], t)
                    dest = e[1]
                    if dest >= 0:
                        self.phys_free += 1
                        if self.reg_map[t][dest] == head:
                            self.reg_map[t][dest] = -1
                    states[head] = S_FREE
                    self.rob_deps[t][head] = []
                    head = (head + 1) % self.rob_entries
                    count -= 1
                    budget -= 1
                    c = self.committed[t] + 1
                    self.committed[t] = c
                    if c >= target:
                        self.finished = True
                self.rob_head[t] = head
                self.rob_count[t] = count

    # ------------------------------------------------------------- writeback

    def _writeback(self) -> None:
        evs = self.events.pop(self.cycle, None)
        if not evs:
            return
        for kind, t, slot, ep in evs:
            if self.rob_epoch[t][slot] != ep:
                continue
            if kind == EV_COMPLETE:
                if self.rob_state[t][slot] != S_ISSUED:
                    continue
                self._complete(t, slot)
            else:  # EV_FLUSHCHK: load still outstanding past the threshold?
                if self.rob_state[t][slot] == S_ISSUED:
                    self._do_flush(t, slot)

    def _complete(self, t: int, slot: int) -> None:
        self.rob_state[t][slot] = S_DONE
        flags = self.rob_flags[t][slot]
        if flags & FL_LOADCTR:
            self.rob_flags[t][slot] = flags & ~FL_LOADCTR
            self.inflight_loads[t] -= 1
            if self.flush_wait[t] and self.flush_load_slot[t] == slot:
                self.flush_wait[t] = False
                self.flush_load_slot[t] = -1
        # Wake dependents.
        deps = self.rob_deps[t][slot]
        if deps:
            pend = self.rob_pending[t]
            states = self.rob_state[t]
            epochs = self.rob_epoch[t]
            pl = self.pipelines[self.pipe_of[t]]
            for d, dep_ep in deps:
                if epochs[d] != dep_ep:
                    continue
                p = pend[d] - 1
                pend[d] = p
                if p == 0 and states[d] == S_WAITING:
                    states[d] = S_READY
                    fu = fu_class(self.rob_entry[t][d][0])
                    heappush(pl.ready[fu], (self.rob_seq[t][d], t, d))
            self.rob_deps[t][slot] = []
        # Branch resolution.
        e = self.rob_entry[t][slot]
        op = e[0]
        if op == OP_BRANCH or op == OP_CALL or op == OP_RETURN:
            tidx = self.rob_traceidx[t][slot]
            taken = bool(e[5])
            if tidx >= 0:
                target = self.traces[t].next_pc(tidx) if taken else e[6] + 4
                self.branch_unit.resolve(t, e[6], op, taken, target)
            if self.rob_flags[t][slot] & FL_MISPRED:
                self.rob_flags[t][slot] &= ~FL_MISPRED
                self.stat_mispredicts[t] += 1
                self._squash_after(t, slot)
                self.wrong_path[t] = False
                if tidx >= 0:
                    self.fetch_idx[t] = tidx + 1
                # The redirect overrides any stall the wrong path incurred
                # (e.g. a wrong-path I-cache miss): fetch restarts at the
                # correct target after the front-end refill bubble. The
                # 2-cycle hdSMT register file deepens the pipeline, so the
                # refill grows by one cycle per extra read/write stage.
                self.fetch_stall_until[t] = (
                    self.cycle
                    + self.params.branch_redirect_penalty
                    + 2 * self.params.extra_reg_cycles
                )

    def _do_flush(self, t: int, load_slot: int) -> None:
        """FLUSH policy: squash everything younger than the L2-missing
        load and gate the thread's fetch until the load completes."""
        self.stat_flushes[t] += 1
        self._squash_after(t, load_slot)
        self.wrong_path[t] = False
        self.flush_wait[t] = True
        self.flush_load_slot[t] = load_slot
        self.fetch_idx[t] = self.rob_traceidx[t][load_slot] + 1
        # Any wrong-path fetch stall dies with the flush.
        self.fetch_stall_until[t] = self.cycle

    # ---------------------------------------------------------------- squash

    def _squash_after(self, t: int, bslot: int) -> None:
        """Squash every instruction of ``t`` younger than ``bslot``:
        roll the ROB tail back, release queue slots / rename registers /
        load counters, restore the rename map, purge the fetch buffer."""
        self.epoch[t] += 1
        pl = self.pipelines[self.pipe_of[t]]
        # Purge this thread's not-yet-renamed entries from the buffer
        # (they are all younger than anything in the ROB).
        buf = pl.buffer
        if buf:
            kept = [it for it in buf if it[0] != t]
            removed = len(buf) - len(kept)
            if removed:
                buf.clear()
                buf.extend(kept)
                self.icount[t] -= removed
                self.stat_squashed[t] += removed
        r = self.rob_entries
        tail = self.rob_tail[t]
        # bslot is an occupied slot, so the strictly-younger range is
        # bslot+1 .. tail-1 in ring order.
        n_squash = (tail - bslot - 1) % r
        states = self.rob_state[t]
        entries = self.rob_entry[t]
        flags_arr = self.rob_flags[t]
        reg_map = self.reg_map[t]
        for _ in range(n_squash):
            tail = (tail - 1) % r
            st = states[tail]
            e = entries[tail]
            if st == S_WAITING or st == S_READY:
                pl.iq_used[fu_class(e[0])] -= 1
                self.icount[t] -= 1
            elif st == S_ISSUED:
                if flags_arr[tail] & FL_LOADCTR:
                    self.inflight_loads[t] -= 1
            dest = e[1]
            if dest >= 0:
                self.phys_free += 1
                if reg_map[dest] == tail:
                    prev = self.rob_prevprod[t][tail]
                    if (
                        prev >= 0
                        and self.rob_seq[t][prev] == self.rob_prevseq[t][tail]
                        and states[prev] != S_FREE
                    ):
                        reg_map[dest] = prev
                    else:
                        reg_map[dest] = -1
            states[tail] = S_FREE
            flags_arr[tail] = 0
            self.rob_deps[t][tail] = []
            self.rob_count[t] -= 1
            self.stat_squashed[t] += 1
        self.rob_tail[t] = tail

    # ----------------------------------------------------------------- issue

    def _issue(self, pl: Pipeline) -> None:
        budget = pl.model.width
        fu_avail = list(pl.fu_count)
        ready = pl.ready
        rob_state = self.rob_state
        rob_seq = self.rob_seq
        extra = self.params.extra_reg_cycles
        cyc = self.cycle
        events = self.events
        flushing = self.policy.flushing
        flush_thr = self.params.memory.flush_threshold
        while budget > 0:
            # Age-ordered pick across the per-FU heaps with free units.
            best_fu = -1
            best_seq = None
            for fu in (0, 1, 2):
                if fu_avail[fu] <= 0:
                    continue
                heap = ready[fu]
                # Drop stale heads (squashed/reused slots) lazily.
                while heap:
                    s, t, slot = heap[0]
                    if rob_state[t][slot] == S_READY and rob_seq[t][slot] == s:
                        break
                    heappop(heap)
                if heap and (best_seq is None or heap[0][0] < best_seq):
                    best_seq = heap[0][0]
                    best_fu = fu
            if best_fu < 0:
                return
            s, t, slot = heappop(ready[best_fu])
            fu_avail[best_fu] -= 1
            budget -= 1
            rob_state[t][slot] = S_ISSUED
            pl.iq_used[best_fu] -= 1
            pl.issued_total += 1
            self.icount[t] -= 1
            e = self.rob_entry[t][slot]
            op = e[0]
            if op == OP_LOAD:
                res = self.mem.load(e[4], t)
                lat = res.latency + extra
                # The L1MCOUNT policy (a DCache-Warn variant) gates fetch
                # on loads *likely to miss*: only loads that outlive an L1
                # hit count toward the thread's in-flight-load priority.
                if res.latency > self.params.memory.l1_latency:
                    self.inflight_loads[t] += 1
                    self.rob_flags[t][slot] |= FL_LOADCTR
                if (
                    flushing
                    and res.latency > flush_thr
                    and self.rob_traceidx[t][slot] >= 0
                    and not self.flush_wait[t]
                ):
                    when = cyc + flush_thr
                    ev = events.get(when)
                    item = (EV_FLUSHCHK, t, slot, self.rob_epoch[t][slot])
                    if ev is None:
                        events[when] = [item]
                    else:
                        ev.append(item)
            else:
                lat = EXEC_LATENCY[op] + extra
            when = cyc + (lat if lat > 0 else 1)
            ev = events.get(when)
            item = (EV_COMPLETE, t, slot, self.rob_epoch[t][slot])
            if ev is None:
                events[when] = [item]
            else:
                ev.append(item)

    # ---------------------------------------------------------------- rename

    def _rename(self, pl: Pipeline) -> None:
        buf = pl.buffer
        if not buf:
            return
        budget = pl.model.width
        tpc = pl.model.threads_per_cycle
        threads_seen: List[int] = []
        iq_used = pl.iq_used
        iq_cap = pl.iq_cap
        r = self.rob_entries
        while budget > 0 and buf:
            t, e, tidx, flags = buf[0]
            if t not in threads_seen:
                if len(threads_seen) >= tpc:
                    break
            op = e[0]
            fu = fu_class(op)
            if iq_used[fu] >= iq_cap[fu]:
                break
            if self.rob_count[t] >= r:
                break
            dest = e[1]
            if dest >= 0 and self.phys_free <= 0:
                break
            buf.popleft()
            if t not in threads_seen:
                threads_seen.append(t)
            budget -= 1
            slot = self.rob_tail[t]
            self.rob_tail[t] = (slot + 1) % r
            self.rob_count[t] += 1
            self.rob_entry[t][slot] = e
            self.rob_traceidx[t][slot] = tidx
            ep = self.epoch[t]
            self.rob_epoch[t][slot] = ep
            self.rob_flags[t][slot] = flags
            seq = self.seq
            self.seq = seq + 1
            self.rob_seq[t][slot] = seq
            # Source dependences (must read the map before the dest write).
            pending = 0
            reg_map = self.reg_map[t]
            states = self.rob_state[t]
            for src in (e[2], e[3]):
                if src >= 0:
                    prod = reg_map[src]
                    if prod >= 0 and states[prod] < S_DONE:
                        pending += 1
                        self.rob_deps[t][prod].append((slot, ep))
            if dest >= 0:
                prev = reg_map[dest]
                self.rob_prevprod[t][slot] = prev
                self.rob_prevseq[t][slot] = self.rob_seq[t][prev] if prev >= 0 else -1
                reg_map[dest] = slot
                self.phys_free -= 1
            else:
                self.rob_prevprod[t][slot] = -1
                self.rob_prevseq[t][slot] = -1
            self.rob_pending[t][slot] = pending
            iq_used[fu] += 1
            if pending == 0:
                states[slot] = S_READY
                heappush(pl.ready[fu], (seq, t, slot))
            else:
                states[slot] = S_WAITING

    # ----------------------------------------------------------------- fetch

    def _fetch(self) -> None:
        cyc = self.cycle
        policy = self.policy
        candidates = []
        for t in range(self.num_threads):
            if self.flush_wait[t] or cyc < self.fetch_stall_until[t]:
                continue
            if self.pipelines[self.pipe_of[t]].buffer_space() <= 0:
                continue
            candidates.append(t)
        if not candidates:
            return
        if len(candidates) > 1:
            candidates.sort(key=lambda t: policy.sort_key(self, t))
        remaining = self.params.fetch_width
        threads_used = 0
        max_threads = self.params.fetch_threads
        for t in candidates:
            if remaining <= 0 or threads_used >= max_threads:
                break
            threads_used += 1
            remaining -= self._fetch_thread(t, remaining)

    def _fetch_thread(self, t: int, budget: int) -> int:
        """Fetch one packet for thread ``t``; returns instructions taken."""
        pl = self.pipelines[self.pipe_of[t]]
        space = pl.buffer_space()
        limit = budget if budget < space else space
        if limit <= 0:
            return 0
        trace = self.traces[t]
        cyc = self.cycle
        # One I-cache/I-TLB probe per packet (head PC).
        if self.wrong_path[t]:
            head_pc = trace.junk_entry(self.junk_idx[t])[6]
        else:
            head_pc = trace.entry(self.fetch_idx[t])[6]
        res = self.mem.fetch(head_pc, t)
        if res.latency > 0:
            self.fetch_stall_until[t] = cyc + res.latency
            self.stat_icache_stalls += 1
            return 0
        taken_count = 0
        buf = pl.buffer
        unit = self.branch_unit
        while taken_count < limit:
            if self.wrong_path[t]:
                e = trace.junk_entry(self.junk_idx[t])
                self.junk_idx[t] += 1
                tidx = -1
                flags = FL_WRONGPATH
                self.stat_wrongpath_fetched[t] += 1
            else:
                tidx = self.fetch_idx[t]
                e = trace.entry(tidx)
                self.fetch_idx[t] = tidx + 1
                flags = 0
            op = e[0]
            if op == OP_BRANCH or op == OP_CALL or op == OP_RETURN:
                actual_taken = bool(e[5])
                actual_target = trace.next_pc(tidx) if tidx >= 0 else e[6] + 4
                pred = unit.predict(t, e[6], op, actual_taken, actual_target)
                if pred.direction_mispredict or (
                    op == OP_RETURN and pred.target_mispredict
                ):
                    # Full mispredict: fetch goes down the wrong path until
                    # this branch resolves in the execute stage.
                    flags |= FL_MISPRED
                    unit.note_direction_mispredict()
                    self.wrong_path[t] = True
                    buf.append((t, e, tidx, flags))
                    self.icount[t] += 1
                    taken_count += 1
                    self.stat_fetched[t] += 1
                    if pred.taken:
                        break  # fetch redirects (to the wrong target)
                    continue  # wrong path continues sequentially (junk)
                buf.append((t, e, tidx, flags))
                self.icount[t] += 1
                taken_count += 1
                self.stat_fetched[t] += 1
                if pred.taken:
                    if not pred.target_known:
                        # Direction right but no target from BTB: short
                        # front-end bubble while decode computes it.
                        self.fetch_stall_until[t] = cyc + self.params.btb_miss_penalty
                        self.stat_btb_bubbles += 1
                    break  # taken prediction ends the packet
            else:
                buf.append((t, e, tidx, flags))
                self.icount[t] += 1
                taken_count += 1
                self.stat_fetched[t] += 1
        return taken_count

    # ------------------------------------------------------------- reporting

    def aggregate_ipc(self) -> float:
        """Committed correct-path instructions per cycle, all threads."""
        if self.cycle == 0:
            return 0.0
        return sum(self.committed) / self.cycle

    def thread_ipc(self, t: int) -> float:
        if self.cycle == 0:
            return 0.0
        return self.committed[t] / self.cycle
