"""Microarchitecture configurations.

A :class:`MicroarchConfig` is a list of pipeline models plus the shared
baseline parameters of Table 1. The six configurations evaluated in the
paper (Fig. 3) are pre-registered:

* ``M8``              — the monolithic SMT baseline (FLUSH fetch policy,
  1-cycle register file);
* ``3M4``, ``4M4``    — homogeneously clustered;
* ``2M4+2M2``, ``3M4+2M2``, ``1M6+2M4+2M2`` — heterogeneous hdSMT.

All multipipeline configurations use the L1MCOUNT fetch policy and pay
the paper's multipipeline register-file tax (2-cycle register read/write
instead of 1).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

from repro.core.models import PipelineModel, get_model
from repro.memory.hierarchy import MemoryParams

if TYPE_CHECKING:  # runtime import would be circular (engine -> config)
    from repro.core.engine.options import EngineOptions

__all__ = [
    "BaselineParams",
    "MicroarchConfig",
    "STANDARD_CONFIGS",
    "STANDARD_CONFIG_NAMES",
    "get_config",
    "parse_config_name",
]


@dataclass(frozen=True)
class BaselineParams:
    """Shared (non-pipeline) parameters: Table 1 plus modeling conventions."""

    rob_entries: int = 256  #: per-thread reorder buffer (replicated)
    rename_registers: int = 256  #: shared physical rename registers
    fetch_width: int = 8  #: global instructions fetchable per cycle
    fetch_threads: int = 2  #: global threads fetchable per cycle
    reg_latency: int = 1  #: register read/write latency (2 in hdSMT)
    branch_redirect_penalty: int = 6  #: mispredict resolve -> refetch bubble
    btb_miss_penalty: int = 2  #: taken prediction without a target
    pipeline_depth: int = 8  #: front-end depth (documentation; penalties above)
    memory: MemoryParams = field(default_factory=MemoryParams)

    @property
    def extra_reg_cycles(self) -> int:
        """Extra cycles per register read and per write vs the 1-cycle
        baseline file (0 for monolithic, 1 for hdSMT configurations)."""
        return self.reg_latency - 1


@dataclass(frozen=True)
class MicroarchConfig:
    """One evaluated microarchitecture: pipelines + shared parameters."""

    name: str
    pipelines: Tuple[PipelineModel, ...]
    fetch_policy: str = "l1mcount"  #: 'icount' | 'flush' | 'l1mcount' | 'roundrobin'
    params: BaselineParams = field(default_factory=BaselineParams)
    #: The paper lets the M8 baseline run 6-thread workloads by assuming
    #: two extra contexts at zero area cost (§3). When true, the context
    #: limit stretches to the workload size for single-pipeline configs.
    allow_context_overcommit: bool = False
    #: Engine tuning knobs scoped to processors built from this config
    #: (None: the process-wide default applies; see
    #: :mod:`repro.core.engine.options`). Excluded from equality, hash
    #: and repr — and therefore from every cache key derived from
    #: ``repr(config)`` — because engine options must never change
    #: simulation results (the bit-identity contract); the result cache
    #: salts the active engine *variant* separately and defensively.
    engine_options: Optional[EngineOptions] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if not self.pipelines:
            raise ValueError("a microarchitecture needs at least one pipeline")
        if self.fetch_policy not in ("icount", "flush", "l1mcount", "roundrobin"):
            raise ValueError(f"unknown fetch policy {self.fetch_policy!r}")

    @property
    def is_monolithic(self) -> bool:
        return len(self.pipelines) == 1

    @property
    def total_contexts(self) -> int:
        return sum(p.contexts for p in self.pipelines)

    @property
    def total_width(self) -> int:
        return sum(p.width for p in self.pipelines)

    def contexts_for(self, num_threads: int) -> int:
        """Effective context capacity for a workload of ``num_threads``."""
        if self.allow_context_overcommit and self.is_monolithic:
            return max(self.total_contexts, num_threads)
        return self.total_contexts

    def pipeline_counts(self) -> Dict[str, int]:
        """Model-name -> count (e.g. {'M4': 2, 'M2': 2})."""
        counts: Dict[str, int] = {}
        for p in self.pipelines:
            counts[p.name] = counts.get(p.name, 0) + 1
        return counts

    def describe(self) -> str:
        """Compact human-readable summary."""
        parts = [f"{n}x{m}" for m, n in self.pipeline_counts().items()]
        return (
            f"{self.name}: {'+'.join(parts)}, fetch={self.fetch_policy}, "
            f"reg_latency={self.params.reg_latency}"
        )


_NAME_TERM = re.compile(r"^(\d*)(M\d+)$")


def parse_config_name(name: str) -> Tuple[PipelineModel, ...]:
    """Parse '2M4+2M2'-style names into a pipeline-model tuple.

    A missing count means 1 ('M8' == '1M8'). Raises ValueError on
    malformed names and KeyError on unknown models.
    """
    pipelines: List[PipelineModel] = []
    for term in name.split("+"):
        m = _NAME_TERM.match(term.strip())
        if not m:
            raise ValueError(f"malformed configuration term {term!r} in {name!r}")
        count = int(m.group(1)) if m.group(1) else 1
        if count <= 0:
            raise ValueError(f"pipeline count must be positive in {term!r}")
        model = get_model(m.group(2))
        pipelines.extend([model] * count)
    # Stable presentation order: wider pipelines first (the mapping policy
    # sorts by width anyway; this makes pipeline indices deterministic).
    pipelines.sort(key=lambda p: (-p.width, p.name))
    return tuple(pipelines)


def _make_standard() -> Dict[str, MicroarchConfig]:
    hd_params = BaselineParams(reg_latency=2)  # multipipeline RF tax (§4)
    base_params = BaselineParams(reg_latency=1)
    configs = {
        "M8": MicroarchConfig(
            name="M8",
            pipelines=parse_config_name("M8"),
            fetch_policy="flush",
            params=base_params,
            allow_context_overcommit=True,
        )
    }
    for name in ("3M4", "4M4", "2M4+2M2", "3M4+2M2", "1M6+2M4+2M2"):
        configs[name] = MicroarchConfig(
            name=name,
            pipelines=parse_config_name(name),
            fetch_policy="l1mcount",
            params=hd_params,
        )
    return configs


STANDARD_CONFIGS: Dict[str, MicroarchConfig] = _make_standard()
STANDARD_CONFIG_NAMES: Tuple[str, ...] = tuple(STANDARD_CONFIGS)

#: The homogeneous-clustering subset (used in the paper's comparisons).
HOMOGENEOUS_CONFIG_NAMES: Tuple[str, ...] = ("3M4", "4M4")
#: The truly heterogeneous hdSMT subset.
HETEROGENEOUS_CONFIG_NAMES: Tuple[str, ...] = ("2M4+2M2", "3M4+2M2", "1M6+2M4+2M2")


def get_config(name: str) -> MicroarchConfig:
    """Fetch a standard configuration, or synthesize one from a '2M4+2M2'
    style name (synthesized configs get hdSMT defaults)."""
    cfg = STANDARD_CONFIGS.get(name)
    if cfg is not None:
        return cfg
    pipelines = parse_config_name(name)
    if len(pipelines) == 1 and pipelines[0].name == "M8":
        return replace(STANDARD_CONFIGS["M8"], name=name, pipelines=pipelines)
    return MicroarchConfig(
        name=name,
        pipelines=pipelines,
        fetch_policy="l1mcount",
        params=BaselineParams(reg_latency=2),
    )
