"""Thread-to-pipeline mapping policies (§2.1 of the paper).

A *mapping* assigns every thread of a workload to one pipeline of the
configuration: ``mapping[thread_index] = pipeline_index``.

Three policies are reproduced:

* :func:`heuristic_mapping` — the paper's profile-based heuristic,
  implemented step-for-step (threads sorted by data-cache misses
  ascending, pipelines by width descending; the least-missing thread gets
  the widest pipeline to itself when contexts are plentiful);
* BEST / WORST — oracle policies: :func:`enumerate_mappings` generates
  every *distinct* mapping (deduplicating permutations of identical
  pipeline models) and the experiment driver simulates each, keeping the
  argmax/argmin. The enumeration excludes mappings that share a pipeline
  while a same-or-wider pipeline sits completely empty: such mappings are
  dominated (moving one of the sharing threads to the empty pipeline can
  only help), and their exclusion makes BEST = HEUR = WORST coincide for
  two-threaded workloads on homogeneous configurations, exactly as §5
  observes.
* :func:`random_mapping` / :func:`round_robin_mapping` — extra baselines
  for the mapping-policy ablation (not in the paper).
"""

from __future__ import annotations

import random
from itertools import product
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.config import MicroarchConfig

__all__ = [
    "Mapping",
    "heuristic_mapping",
    "enumerate_mappings",
    "count_mappings",
    "mapping_contexts_ok",
    "canonical_mapping",
    "random_mapping",
    "round_robin_mapping",
    "describe_mapping",
]

Mapping = Tuple[int, ...]


def mapping_contexts_ok(config: MicroarchConfig, mapping: Sequence[int]) -> bool:
    """True when no pipeline hosts more threads than it has contexts."""
    loads = [0] * len(config.pipelines)
    for p in mapping:
        if not 0 <= p < len(config.pipelines):
            return False
        loads[p] += 1
    if config.is_monolithic:
        return loads[0] <= config.contexts_for(len(mapping))
    return all(n <= config.pipelines[i].contexts for i, n in enumerate(loads))


def _pipeline_order(config: MicroarchConfig) -> List[int]:
    """Pipelines sorted by width descending (ties by index: stable)."""
    return sorted(range(len(config.pipelines)), key=lambda i: -config.pipelines[i].width)


def heuristic_mapping(
    config: MicroarchConfig, dcache_misses: Sequence[float]
) -> Mapping:
    """The paper's profile-based heuristic (§2.1), step for step.

    Parameters
    ----------
    config:
        Target microarchitecture.
    dcache_misses:
        Profiled data-cache miss count (or MPKI) per thread, in workload
        order.

    Returns
    -------
    mapping:
        ``mapping[thread] = pipeline`` tuple.

    Raises
    ------
    ValueError
        If the workload does not fit the configuration's contexts.
    """
    num_threads = len(dcache_misses)
    if num_threads == 0:
        raise ValueError("empty workload")
    if num_threads > config.contexts_for(num_threads):
        raise ValueError(
            f"{num_threads} threads exceed the {config.contexts_for(num_threads)} "
            f"contexts of {config.name}"
        )
    if config.is_monolithic:
        return (0,) * num_threads

    # Step 1: arrange threads by misses, fewest first.
    t_list: List[int] = sorted(range(num_threads), key=lambda t: (dcache_misses[t], t))
    # Step 2: arrange pipelines by width, widest first.
    p_list: List[int] = _pipeline_order(config)
    free = {i: config.pipelines[i].contexts for i in range(len(config.pipelines))}
    total_contexts = config.total_contexts

    mapping = [-1] * num_threads
    first_assignment = True
    while t_list:
        # Step 3: map the first thread in T to the first pipeline in P.
        t = t_list[0]
        p = p_list[0]
        mapping[t] = p
        free[p] -= 1
        # Step 4: on the first assignment, when contexts outnumber threads,
        # dedicate the widest pipeline to this (best-behaved) thread.
        if first_assignment and total_contexts > num_threads:
            p_list.pop(0)
        first_assignment = False
        # Step 5: remove the thread.
        t_list.pop(0)
        # Step 6: drop the pipeline once its contexts are exhausted.
        if p_list and free[p_list[0]] == 0:
            p_list.pop(0)
        # Step 7: loop while threads remain.
        if t_list and not p_list:
            raise ValueError(
                f"heuristic ran out of pipelines mapping {num_threads} threads "
                f"onto {config.name}"
            )
    return tuple(mapping)


def canonical_mapping(config: MicroarchConfig, mapping: Sequence[int]) -> Tuple:
    """Canonical form under permutations of identical pipeline models.

    Two mappings are equivalent iff, for every pipeline *model*, the
    multiset of thread-sets hosted by pipelines of that model matches.
    """
    groups: Dict[str, List[Tuple[int, ...]]] = {}
    per_pipe: List[List[int]] = [[] for _ in config.pipelines]
    for t, p in enumerate(mapping):
        per_pipe[p].append(t)
    for i, model in enumerate(config.pipelines):
        groups.setdefault(model.name, []).append(tuple(per_pipe[i]))
    return tuple((name, tuple(sorted(sets))) for name, sets in sorted(groups.items()))


def _wasteful(config: MicroarchConfig, mapping: Sequence[int]) -> bool:
    """True when some pipeline hosts >= 2 threads while a same-or-wider
    pipeline is empty (a dominated mapping, excluded from the oracle)."""
    loads = [0] * len(config.pipelines)
    for p in mapping:
        loads[p] += 1
    for i, li in enumerate(loads):
        if li >= 2:
            wi = config.pipelines[i].width
            for j, lj in enumerate(loads):
                if lj == 0 and config.pipelines[j].width >= wi:
                    return True
    return False


def enumerate_mappings(
    config: MicroarchConfig,
    num_threads: int,
    include_wasteful: bool = False,
    max_mappings: int | None = None,
    seed: int = 0,
    must_include: Iterable[Mapping] = (),
) -> List[Mapping]:
    """All distinct thread-to-pipeline mappings for the oracle policies.

    Candidate assignments are filtered by context capacity, deduplicated
    by :func:`canonical_mapping`, and (unless ``include_wasteful``)
    dominated mappings are dropped. When the distinct count exceeds
    ``max_mappings`` a deterministic sample is returned that always
    contains every mapping in ``must_include`` (so the oracle is never
    worse than the heuristic it brackets).
    """
    if config.is_monolithic:
        return [(0,) * num_threads]
    n_pipes = len(config.pipelines)
    seen = set()
    result: List[Mapping] = []
    # must_include mappings are honored unconditionally: the paper's
    # heuristic can produce a dominated mapping for thread counts the
    # paper never uses (e.g. 3 threads on 3M4 share a pipeline while one
    # sits empty), and the oracle must still bracket it.
    for m in must_include:
        if not mapping_contexts_ok(config, m):
            raise ValueError(f"must_include mapping {m} violates contexts")
        key = canonical_mapping(config, m)
        if key not in seen:
            seen.add(key)
            result.append(tuple(m))
    forced_count = len(result)
    for assignment in product(range(n_pipes), repeat=num_threads):
        if not mapping_contexts_ok(config, assignment):
            continue
        if not include_wasteful and _wasteful(config, assignment):
            continue
        key = canonical_mapping(config, assignment)
        if key in seen:
            continue
        seen.add(key)
        result.append(tuple(assignment))
    if max_mappings is not None and len(result) > max_mappings:
        rng = random.Random(f"mappings:{config.name}:{num_threads}:{seed}")
        forced = result[:forced_count]
        pool = result[forced_count:]
        take = max(0, max_mappings - forced_count)
        result = forced + rng.sample(pool, min(take, len(pool)))
    return result


def count_mappings(
    config: MicroarchConfig, num_threads: int, include_wasteful: bool = False
) -> int:
    """Number of distinct mappings the oracle would consider."""
    return len(enumerate_mappings(config, num_threads, include_wasteful))


def random_mapping(config: MicroarchConfig, num_threads: int, seed: int = 0) -> Mapping:
    """A uniformly random valid mapping (ablation baseline)."""
    options = enumerate_mappings(config, num_threads, include_wasteful=False)
    rng = random.Random(f"random-map:{config.name}:{num_threads}:{seed}")
    return rng.choice(options)


def round_robin_mapping(config: MicroarchConfig, num_threads: int) -> Mapping:
    """Profile-blind round-robin over pipelines (widest first), skipping
    full pipelines (ablation baseline)."""
    if config.is_monolithic:
        return (0,) * num_threads
    order = _pipeline_order(config)
    free = {i: config.pipelines[i].contexts for i in order}
    mapping: List[int] = []
    cursor = 0
    for _ in range(num_threads):
        for step in range(len(order)):
            p = order[(cursor + step) % len(order)]
            if free[p] > 0:
                free[p] -= 1
                mapping.append(p)
                cursor = (cursor + step + 1) % len(order)
                break
        else:
            raise ValueError("workload exceeds total contexts")
    return tuple(mapping)


def describe_mapping(
    config: MicroarchConfig, mapping: Sequence[int], thread_names: Sequence[str]
) -> str:
    """Human-readable 'pipeline <- threads' rendering."""
    per_pipe: List[List[str]] = [[] for _ in config.pipelines]
    for t, p in enumerate(mapping):
        per_pipe[p].append(thread_names[t])
    parts = []
    for i, model in enumerate(config.pipelines):
        names = ",".join(per_pipe[i]) if per_pipe[i] else "-"
        parts.append(f"{model.name}[{i}]<-{names}")
    return "  ".join(parts)
