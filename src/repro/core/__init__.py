"""The hdSMT core: pipeline models, microarchitectures, fetch policies,
thread-to-pipeline mapping, and the cycle-level multipipeline simulator.

This package is the paper's primary contribution. A processor is a set of
*pipelines* (clusters) sharing a fetch engine, the memory hierarchy and
the physical register file; each pipeline owns its decode/rename, its
IQ/FQ/LQ instruction queues and its functional units. Entire threads are
assigned to pipelines by a mapping policy.
"""

from repro.core.models import PipelineModel, M8, M6, M4, M2, MODELS_BY_NAME, get_model
from repro.core.config import (
    MicroarchConfig,
    BaselineParams,
    STANDARD_CONFIGS,
    STANDARD_CONFIG_NAMES,
    get_config,
    parse_config_name,
)
from repro.core.mapping import (
    Mapping,
    heuristic_mapping,
    enumerate_mappings,
    mapping_contexts_ok,
    canonical_mapping,
)
from repro.core.processor import Processor
from repro.core.dynamic import DynamicMappingResult, run_dynamic, remap_threads
from repro.core.simulation import SimResult, run_simulation, run_workload

__all__ = [
    "PipelineModel",
    "M8",
    "M6",
    "M4",
    "M2",
    "MODELS_BY_NAME",
    "get_model",
    "MicroarchConfig",
    "BaselineParams",
    "STANDARD_CONFIGS",
    "STANDARD_CONFIG_NAMES",
    "get_config",
    "parse_config_name",
    "Mapping",
    "heuristic_mapping",
    "enumerate_mappings",
    "mapping_contexts_ok",
    "canonical_mapping",
    "Processor",
    "DynamicMappingResult",
    "run_dynamic",
    "remap_threads",
    "SimResult",
    "run_simulation",
    "run_workload",
]
