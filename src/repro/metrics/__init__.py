"""Metrics and result tabulation: IPC aggregation (harmonic means, as the
paper uses for workload-class summaries), performance-per-area, mapping
heuristic accuracy, and plain-text table rendering for the benches."""

from repro.metrics.stats import (
    harmonic_mean,
    arithmetic_mean,
    geometric_mean,
    performance_per_area,
    relative_improvement,
    heuristic_accuracy,
)
from repro.metrics.tables import format_table, format_grouped_bars

__all__ = [
    "harmonic_mean",
    "arithmetic_mean",
    "geometric_mean",
    "performance_per_area",
    "relative_improvement",
    "heuristic_accuracy",
    "format_table",
    "format_grouped_bars",
]
