"""Statistical helpers for the evaluation.

The paper summarizes each workload class/size with the harmonic mean of
workload IPCs (the appropriate mean for rates), and compares designs with
Performance per Area = IPC / mm².
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = [
    "harmonic_mean",
    "arithmetic_mean",
    "geometric_mean",
    "performance_per_area",
    "relative_improvement",
    "heuristic_accuracy",
]


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean; raises on empty input or non-positive values."""
    vals = list(values)
    if not vals:
        raise ValueError("harmonic mean of empty sequence")
    for v in vals:
        if v <= 0:
            raise ValueError(f"harmonic mean requires positive values, got {v}")
    return len(vals) / sum(1.0 / v for v in vals)


def arithmetic_mean(values: Iterable[float]) -> float:
    vals = list(values)
    if not vals:
        raise ValueError("mean of empty sequence")
    return sum(vals) / len(vals)


def geometric_mean(values: Iterable[float]) -> float:
    vals = list(values)
    if not vals:
        raise ValueError("geometric mean of empty sequence")
    for v in vals:
        if v <= 0:
            raise ValueError(f"geometric mean requires positive values, got {v}")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def performance_per_area(ipc: float, area_mm2: float) -> float:
    """IPC per mm² — the paper's complexity-effectiveness metric."""
    if area_mm2 <= 0:
        raise ValueError("area must be positive")
    return ipc / area_mm2


def relative_improvement(ours: float, baseline: float) -> float:
    """(ours - baseline) / baseline; e.g. +0.13 == the paper's '13%'."""
    if baseline == 0:
        raise ValueError("baseline must be nonzero")
    return (ours - baseline) / baseline


def heuristic_accuracy(heur: Sequence[float], best: Sequence[float]) -> float:
    """Mean of per-workload HEUR/BEST ratios (the paper's 'accuracy').

    1.0 means the heuristic always found the oracle mapping's score.
    """
    if len(heur) != len(best) or not heur:
        raise ValueError("need equal-length, non-empty sequences")
    ratios = []
    for h, b in zip(heur, best):
        if b <= 0:
            raise ValueError("oracle values must be positive")
        ratios.append(min(1.0, h / b))
    return sum(ratios) / len(ratios)
