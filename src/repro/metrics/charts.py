"""ASCII bar charts — terminal renderings of the paper's figures.

`format_bar_chart` renders grouped horizontal bars (one row per
(group, config, series) value) so the Fig. 4/Fig. 5 artifacts can be read
as charts, not just tables. Pure text: no plotting dependencies.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

__all__ = ["format_bar_chart", "render_figure"]


def format_bar_chart(
    values: Mapping[str, float],
    title: Optional[str] = None,
    width: int = 50,
    value_fmt: str = "{:.3f}",
) -> str:
    """Horizontal bars for a flat label -> value mapping."""
    if not values:
        raise ValueError("no values to chart")
    vmax = max(values.values())
    if vmax <= 0:
        raise ValueError("chart needs at least one positive value")
    label_w = max(len(k) for k in values)
    lines = []
    if title:
        lines.append(title)
    for label, v in values.items():
        bar = "#" * max(0, round(width * v / vmax))
        lines.append(f"{label.ljust(label_w)} |{bar} {value_fmt.format(v)}")
    return "\n".join(lines)


def render_figure(
    groups: Sequence[str],
    bars: Sequence[str],
    series: Mapping[str, Mapping[str, Mapping[str, float]]],
    which: str = "HEUR",
    title: Optional[str] = None,
    width: int = 44,
    value_fmt: str = "{:.3f}",
) -> str:
    """Fig. 4/5-shaped data (``series[group][config][series_name]``) as a
    grouped ASCII chart of one series (default HEUR)."""
    vmax = 0.0
    for g in groups:
        for b in bars:
            v = series.get(g, {}).get(b, {}).get(which)
            if v is not None and v > vmax:
                vmax = v
    if vmax <= 0:
        raise ValueError(f"no {which} values to chart")
    label_w = max((len(b) for b in bars), default=4)
    lines = []
    if title:
        lines.append(title)
    for g in groups:
        row = series.get(g, {})
        if not any(which in row.get(b, {}) for b in bars):
            continue
        lines.append(f"-- {g} --")
        for b in bars:
            v = row.get(b, {}).get(which)
            if v is None:
                continue
            bar = "#" * max(0, round(width * v / vmax))
            lines.append(f"  {b.ljust(label_w)} |{bar} {value_fmt.format(v)}")
    return "\n".join(lines)
