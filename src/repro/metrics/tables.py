"""Plain-text table/bar rendering for the benchmark harness output.

The benches regenerate the paper's figures as text: `format_table` gives
aligned numeric tables, `format_grouped_bars` the grouped-bar structure of
Figs. 4 and 5 (groups = workload size/class, bars = microarchitectures,
series = BEST/HEUR/WORST).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_grouped_bars"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.4f}",
) -> str:
    """Render an aligned monospace table."""
    def cell(v: object) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, s in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(s))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(s.rjust(w) if i else s.ljust(w) for i, (s, w) in enumerate(zip(row, widths)))
        )
    return "\n".join(lines)


def format_grouped_bars(
    groups: Sequence[str],
    bars: Sequence[str],
    series: Mapping[str, Mapping[str, Mapping[str, float]]],
    title: Optional[str] = None,
    value_fmt: str = "{:.4f}",
) -> str:
    """Render Fig.4/Fig.5-style data: ``series[group][bar][series_name]``.

    Produces one row per (group, bar) with one column per series name,
    mirroring the paper's grouped bar charts in text form.
    """
    series_names: List[str] = []
    for g in groups:
        for b in bars:
            for s in series.get(g, {}).get(b, {}):
                if s not in series_names:
                    series_names.append(s)
    headers = ["group", "config"] + series_names
    rows: List[List[object]] = []
    for g in groups:
        for b in bars:
            vals = series.get(g, {}).get(b)
            if vals is None:
                continue
            row: List[object] = [g, b]
            for s in series_names:
                v = vals.get(s)
                row.append(value_fmt.format(v) if isinstance(v, float) else (v if v is not None else "-"))
            rows.append(row)
    return format_table(headers, rows, title=title)
