"""Workload tables (Tables 2 and 3).

Workloads are classified by the paper: ILP (I) — all high-ILP threads;
MEM (M) — all memory-bound threads; MIX (X) — both kinds. "Due to the
characteristics of SPECint2000, with few benchmarks that are really
memory bounded, MEM workloads are only feasible for 2 and 4 threads."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.trace.benchmarks import BENCHMARKS

__all__ = [
    "Workload",
    "WORKLOADS",
    "WORKLOAD_NAMES",
    "workloads_by",
    "get_workload",
    "TWO_THREAD",
    "FOUR_THREAD",
    "SIX_THREAD",
]


@dataclass(frozen=True)
class Workload:
    """One multiprogrammed workload."""

    name: str  #: paper id, e.g. '2W4'
    benchmarks: Tuple[str, ...]
    workload_class: str  #: 'ILP' | 'MEM' | 'MIX'

    def __post_init__(self) -> None:
        for b in self.benchmarks:
            if b not in BENCHMARKS:
                raise ValueError(f"{self.name}: unknown benchmark {b!r}")
        if self.workload_class not in ("ILP", "MEM", "MIX"):
            raise ValueError(f"{self.name}: bad class {self.workload_class!r}")

    @property
    def num_threads(self) -> int:
        return len(self.benchmarks)

    def __str__(self) -> str:
        return f"{self.name}({','.join(self.benchmarks)})"


def _w(name: str, benchmarks: str, cls: str) -> Workload:
    return Workload(name, tuple(benchmarks.split()), cls)


WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in (
        # ------- Table 2: two-threaded -------
        _w("2W1", "eon gcc", "ILP"),
        _w("2W2", "crafty bzip2", "ILP"),
        _w("2W3", "gap vortex", "ILP"),
        _w("2W4", "mcf twolf", "MEM"),
        _w("2W5", "vpr perlbmk", "MEM"),
        _w("2W6", "vpr twolf", "MEM"),
        _w("2W7", "gzip twolf", "MIX"),
        _w("2W8", "crafty perlbmk", "MIX"),
        _w("2W9", "parser vpr", "MIX"),
        # ------- Table 2: four-threaded -------
        _w("4W1", "eon gcc gzip bzip2", "ILP"),
        _w("4W2", "crafty bzip2 eon gzip", "ILP"),
        _w("4W3", "gap vortex parser crafty", "ILP"),
        _w("4W4", "mcf twolf vpr perlbmk", "MEM"),
        _w("4W5", "vpr perlbmk mcf twolf", "MEM"),
        _w("4W6", "gzip twolf bzip2 mcf", "MIX"),
        _w("4W7", "crafty perlbmk mcf bzip2", "MIX"),
        _w("4W8", "parser vpr vortex twolf", "MIX"),
        _w("4W9", "vpr twolf gap vortex", "MIX"),
        # ------- Table 3: six-threaded -------
        _w("6W1", "gzip gcc crafty eon gap bzip2", "ILP"),
        _w("6W2", "gcc crafty parser eon gap vortex", "ILP"),
        _w("6W3", "gzip vpr mcf eon perlbmk bzip2", "MIX"),
        _w("6W4", "vpr mcf crafty perlbmk vortex twolf", "MIX"),
    )
}

WORKLOAD_NAMES: Tuple[str, ...] = tuple(WORKLOADS)

TWO_THREAD = tuple(n for n in WORKLOAD_NAMES if n.startswith("2"))
FOUR_THREAD = tuple(n for n in WORKLOAD_NAMES if n.startswith("4"))
SIX_THREAD = tuple(n for n in WORKLOAD_NAMES if n.startswith("6"))


def get_workload(name: str) -> Workload:
    """Look up a workload by paper id ('2W4', '6W1', ...)."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(WORKLOAD_NAMES)}"
        ) from None


def workloads_by(
    num_threads: int | None = None, workload_class: str | None = None
) -> List[Workload]:
    """Filter workloads by size and/or class, in table order."""
    out = []
    for w in WORKLOADS.values():
        if num_threads is not None and w.num_threads != num_threads:
            continue
        if workload_class is not None and w.workload_class != workload_class:
            continue
        out.append(w)
    return out
