"""Multiprogrammed workloads — Tables 2 and 3 of the paper."""

from repro.workloads.definitions import (
    Workload,
    WORKLOADS,
    WORKLOAD_NAMES,
    workloads_by,
    get_workload,
    TWO_THREAD,
    FOUR_THREAD,
    SIX_THREAD,
)

__all__ = [
    "Workload",
    "WORKLOADS",
    "WORKLOAD_NAMES",
    "workloads_by",
    "get_workload",
    "TWO_THREAD",
    "FOUR_THREAD",
    "SIX_THREAD",
]
