"""Structural area scores for pipeline stages.

Dimensionless scores in the spirit of the Karlsruhe transistor-count
estimator (Steinhaus et al.) and Burns & Gaudiot's SMT layout analysis:

* execution core — dominated by the bypass network and the issue logic,
  which grow quadratically with issue width, plus per-unit datapath costs
  (FP units largest, then load/store, then integer ALUs);
* decode / dispatch / completion — linear in width, with dispatch and
  completion carrying per-context overheads (rename map tables and
  per-thread ROB bookkeeping are replicated per hardware context);
* queues — linear in their entry counts.

These scores fix the *proportions* between stages of one pipeline model;
:mod:`repro.area.model` scales them so each model's total matches the
calibrated per-model areas derived from the paper's Fig. 3.
"""

from __future__ import annotations

from typing import Dict

from repro.core.models import PipelineModel

__all__ = ["STAGE_NAMES", "structural_scores", "structural_backend_score"]

#: Stage keys, matching the paper's Fig. 3 legend: instruction fetch,
#: decode, dispatch, execution core, instruction completion, decode queue,
#: dispatch queue, completion queue.
STAGE_NAMES = ("IF", "DE", "DI", "EX", "IC", "DEQ", "DIQ", "CQ")

# Score coefficients (dimensionless; proportions only).
_C_EX_WIDTH2 = 1.0
_C_EX_INT = 2.0
_C_EX_FP = 3.2
_C_EX_LDST = 2.6
_C_DE = 1.2
_C_DI = 1.8
_C_DI_CTX = 0.15
_C_IC = 1.0
_C_IC_CTX = 0.8  # per-thread 256-entry ROB bookkeeping
_C_DEQ = 1.4  # decode queue ~ width * depth
_C_DIQ = 0.08  # per IQ/FQ/LQ entry
_C_CQ = 0.6


def structural_scores(model: PipelineModel) -> Dict[str, float]:
    """Per-stage structural scores for one pipeline's back-end (no IF)."""
    w = model.width
    ctx = model.contexts
    return {
        "DE": _C_DE * w,
        "DI": _C_DI * w * (1.0 + _C_DI_CTX * (ctx - 1)),
        "EX": (
            _C_EX_WIDTH2 * w * w
            + _C_EX_INT * model.int_units
            + _C_EX_FP * model.fp_units
            + _C_EX_LDST * model.ldst_units
        ),
        "IC": _C_IC * w + _C_IC_CTX * ctx,
        "DEQ": _C_DEQ * w,
        "DIQ": _C_DIQ * model.total_queue_entries,
        "CQ": _C_CQ * w,
    }


def structural_backend_score(model: PipelineModel) -> float:
    """Total back-end score (all stages except fetch)."""
    return sum(structural_scores(model).values())
