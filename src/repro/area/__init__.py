"""Area cost model (§3 of the paper).

The paper estimates mm² (0.18 µm) with the Karlsruhe SMT layout tool,
excluding caches and the register file (shared by all designs), counting
per pipeline the instruction fetch / decode / dispatch / execution-core /
completion stages plus the decode, dispatch and completion queues, with a
+10 % execution-core overhead per hdSMT pipeline (shared-RF/D$ access
logic) and a +20 % fetch-engine overhead for multipipeline support; only
one fetch stage is counted per configuration.

We rebuild that model structurally and calibrate its per-model totals to
the only quantitative area data the paper publishes — Fig. 3's deltas
against the M8 baseline (−17 % for 3M4, +10.14 % for 4M4, −27 % for
2M4+2M2, −1 % for 3M4+2M2, +2 % for 1M6+2M4+2M2) and the ≈165 mm² M8 bar
of Fig. 2(b).
"""

from repro.area.model import (
    AREA_M8_TOTAL_MM2,
    AreaModel,
    config_area,
    pipeline_model_area,
    stage_breakdown,
    area_report,
)
from repro.area.structures import structural_scores, structural_backend_score, STAGE_NAMES

__all__ = [
    "AREA_M8_TOTAL_MM2",
    "AreaModel",
    "config_area",
    "pipeline_model_area",
    "stage_breakdown",
    "area_report",
    "structural_scores",
    "structural_backend_score",
    "STAGE_NAMES",
]
