"""Calibrated area model.

Calibration algebra (see DESIGN.md §4). With areas as fractions of the
M8 total ``A8`` and ``bX`` the back-end (everything but fetch) of model
X *including* the +10 % hdSMT execution-core overhead, the paper's
Fig. 3 anchors give a linear system:

* ``1.2·IF + 3·b4 = 0.83``   (3M4 = −17 %)
* ``1.2·IF + 4·b4 = 1.1014`` (4M4 = +10.14 %)
  ⇒ ``b4 = 0.27140``, ``IF = 0.0131667``
* 2M4+2M2 = −27 % and 3M4+2M2 = −1 % overdetermine ``b2``; the
  least-squares value ``b2 = 0.08285`` lands both within ±0.6 pp;
* 1M6+2M4+2M2 = +2 % ⇒ ``b6 = 0.29570``;
* M8 monolithic: ``b8 = 1 − IF = 0.9868333``.

Totals for the four standalone pipeline models (Fig. 2(b)) follow as
``1.2·IF + bX`` for the hdSMT models and ``IF + b8`` for M8. The stage
*breakdown* within a back-end uses the structural proportions of
:mod:`repro.area.structures`.

For pipeline models outside the calibrated four (design-space
exploration), the back-end area is extrapolated by scaling the structural
score with a least-squares factor fitted on the calibrated models.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.area.structures import structural_backend_score, structural_scores
from repro.core.config import MicroarchConfig, get_config
from repro.core.models import MODELS_BY_NAME, PipelineModel

__all__ = [
    "AREA_M8_TOTAL_MM2",
    "BACKEND_FRACTIONS",
    "FETCH_FRACTION",
    "HDSMT_FETCH_OVERHEAD",
    "AreaModel",
    "config_area",
    "pipeline_model_area",
    "stage_breakdown",
    "area_report",
]

#: Fig. 2(b): the M8 bar tops out around 165 mm² at 0.18 µm.
AREA_M8_TOTAL_MM2 = 165.0

#: Fraction of the M8 total occupied by the (single-threaded-equivalent)
#: fetch stage, from the calibration algebra above.
FETCH_FRACTION = 0.0131667

#: Multipipeline fetch engines are 20 % bigger (§3).
HDSMT_FETCH_OVERHEAD = 1.20

#: Per-model back-end fractions of the M8 total (hdSMT models include the
#: +10 % execution-core overhead, M8 does not).
BACKEND_FRACTIONS: Mapping[str, float] = {
    "M8": 0.9868333,
    "M6": 0.29570,
    "M4": 0.27140,
    "M2": 0.08285,
}

#: The +10 % execution-core overhead each hdSMT pipeline pays (§3); used
#: when decomposing and when extrapolating uncalibrated models.
HDSMT_EX_OVERHEAD = 1.10


class AreaModel:
    """Area estimator for arbitrary configurations.

    Parameters
    ----------
    m8_total_mm2:
        Absolute scale (default: the paper's ≈165 mm² M8).
    """

    def __init__(self, m8_total_mm2: float = AREA_M8_TOTAL_MM2) -> None:
        if m8_total_mm2 <= 0:
            raise ValueError("m8_total_mm2 must be positive")
        self.m8_total = m8_total_mm2
        # Least-squares scale from structural scores to calibrated
        # fractions, for extrapolating uncalibrated pipeline models.
        num = 0.0
        den = 0.0
        for name, frac in BACKEND_FRACTIONS.items():
            if name == "M8":
                continue  # hdSMT models carry the EX overhead; fit on those
            s = structural_backend_score(MODELS_BY_NAME[name])
            num += s * frac
            den += s * s
        self._struct_scale = num / den

    # -- pipelines ---------------------------------------------------------

    def backend_area(self, model: PipelineModel, hdsmt: bool = True) -> float:
        """Back-end mm² of one pipeline (everything but fetch)."""
        frac = BACKEND_FRACTIONS.get(model.name)
        if frac is not None:
            if model.name == "M8" and hdsmt:
                # An M8 used as an hdSMT cluster pays the EX overhead on
                # its execution-core share.
                scores = structural_scores(model)
                total = sum(scores.values())
                ex_share = scores["EX"] / total
                frac = frac * (1.0 + ex_share * (HDSMT_EX_OVERHEAD - 1.0))
            elif model.name != "M8" and not hdsmt:
                scores = structural_scores(model)
                total = sum(scores.values())
                ex_share = scores["EX"] / total
                frac = frac / (1.0 + ex_share * (HDSMT_EX_OVERHEAD - 1.0))
            return frac * self.m8_total
        # Uncalibrated model: structural extrapolation.
        frac = structural_backend_score(model) * self._struct_scale
        if not hdsmt:
            scores = structural_scores(model)
            total = sum(scores.values())
            ex_share = scores["EX"] / total
            frac = frac / (1.0 + ex_share * (HDSMT_EX_OVERHEAD - 1.0))
        return frac * self.m8_total

    def fetch_area(self, hdsmt: bool) -> float:
        """Fetch-engine mm² (single instance per configuration)."""
        f = FETCH_FRACTION * self.m8_total
        return f * HDSMT_FETCH_OVERHEAD if hdsmt else f

    # -- configurations ------------------------------------------------------

    def config_area(self, config: MicroarchConfig | str) -> float:
        """Total mm² of a configuration (one fetch stage + all back-ends)."""
        if isinstance(config, str):
            config = get_config(config)
        hdsmt = not (config.is_monolithic and config.pipelines[0].name == "M8")
        total = self.fetch_area(hdsmt)
        for p in config.pipelines:
            total += self.backend_area(p, hdsmt=hdsmt)
        return total

    def model_area(self, model: PipelineModel | str) -> float:
        """Fig. 2(b): one pipeline model measured standalone — an hdSMT
        processor with a single pipeline (M8 is the monolithic baseline)."""
        if isinstance(model, str):
            model = MODELS_BY_NAME[model]
        hdsmt = model.name != "M8"
        return self.fetch_area(hdsmt) + self.backend_area(model, hdsmt=hdsmt)

    def stage_breakdown(
        self, model: PipelineModel | str, hdsmt: bool | None = None
    ) -> Dict[str, float]:
        """Per-stage mm² of a standalone pipeline model (Fig. 2(b) stack).

        The back-end total is split across stages by the structural
        proportions; IF is the (possibly hdSMT-sized) fetch stage.
        """
        if isinstance(model, str):
            model = MODELS_BY_NAME[model]
        if hdsmt is None:
            hdsmt = model.name != "M8"
        backend = self.backend_area(model, hdsmt=hdsmt)
        scores = structural_scores(model)
        total_score = sum(scores.values())
        out = {"IF": self.fetch_area(hdsmt)}
        for stage, s in scores.items():
            out[stage] = backend * (s / total_score)
        return out


_DEFAULT = AreaModel()


def config_area(config: MicroarchConfig | str) -> float:
    """Module-level convenience using the default scale."""
    return _DEFAULT.config_area(config)


def pipeline_model_area(model: PipelineModel | str) -> float:
    """Standalone pipeline-model area (Fig. 2(b)) at the default scale."""
    return _DEFAULT.model_area(model)


def stage_breakdown(model: PipelineModel | str) -> Dict[str, float]:
    """Stage decomposition at the default scale."""
    return _DEFAULT.stage_breakdown(model)


def area_report(config_names) -> str:
    """Fig. 3 as text: per-config areas and deltas vs the M8 baseline."""
    from repro.metrics.tables import format_table

    base = config_area("M8")
    rows = []
    for name in config_names:
        a = config_area(name)
        rows.append([name, f"{a:.2f}", f"{100.0 * (a - base) / base:+.2f}%"])
    return format_table(
        ["config", "area_mm2", "delta_vs_M8"],
        rows,
        title="Fig. 3 — area of evaluated microarchitectures (0.18um)",
    )
