"""repro — a reproduction of *A Complexity-Effective Simultaneous
Multithreading Architecture* (Acosta, Falcon, Ramirez, Valero; ICPP 2005).

The package implements the paper's hdSMT architecture end to end: a
trace-driven, cycle-level multipipeline SMT simulator (SMTSIM-style) with
perceptron branch prediction, a banked two-level memory hierarchy, the
ICOUNT/FLUSH/L1MCOUNT fetch policies, the profile-based thread-to-pipeline
mapping heuristic with oracle BEST/WORST brackets, the Karlsruhe-style
area cost model, and synthetic SPECint2000 workloads.

Quick start::

    from repro import run_workload, config_area

    result = run_workload("2M4+2M2", ["eon", "gcc"], commit_target=10_000)
    print(result.ipc, result.ipc / config_area("2M4+2M2"))

See ``examples/`` for full scenarios and ``benchmarks/`` for the
regeneration of every table and figure in the paper.
"""

from repro.core import (
    M2,
    M4,
    M6,
    M8,
    BaselineParams,
    DynamicMappingResult,
    MicroarchConfig,
    PipelineModel,
    Processor,
    SimResult,
    STANDARD_CONFIG_NAMES,
    STANDARD_CONFIGS,
    get_config,
    get_model,
    heuristic_mapping,
    enumerate_mappings,
    parse_config_name,
    run_dynamic,
    run_simulation,
    run_workload,
)
from repro.area import AreaModel, config_area, pipeline_model_area, stage_breakdown
from repro.trace import (
    BENCHMARKS,
    BENCHMARK_NAMES,
    BenchmarkProfile,
    Trace,
    get_benchmark,
    profile_benchmark,
    trace_for,
)
from repro.workloads import WORKLOADS, WORKLOAD_NAMES, Workload, get_workload
from repro.metrics import harmonic_mean, performance_per_area

__version__ = "1.0.0"

__all__ = [
    "M2",
    "M4",
    "M6",
    "M8",
    "BaselineParams",
    "MicroarchConfig",
    "PipelineModel",
    "Processor",
    "SimResult",
    "STANDARD_CONFIG_NAMES",
    "STANDARD_CONFIGS",
    "get_config",
    "get_model",
    "heuristic_mapping",
    "enumerate_mappings",
    "parse_config_name",
    "run_simulation",
    "run_workload",
    "run_dynamic",
    "DynamicMappingResult",
    "AreaModel",
    "config_area",
    "pipeline_model_area",
    "stage_breakdown",
    "BENCHMARKS",
    "BENCHMARK_NAMES",
    "BenchmarkProfile",
    "Trace",
    "get_benchmark",
    "profile_benchmark",
    "trace_for",
    "WORKLOADS",
    "WORKLOAD_NAMES",
    "Workload",
    "get_workload",
    "harmonic_mean",
    "performance_per_area",
    "__version__",
]
