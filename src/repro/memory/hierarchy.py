"""Two-level cache hierarchy shared by every pipeline.

Latency model (Table 1, and the conventions spelled out in DESIGN.md):

* instruction or data access hitting L1 — ``l1_latency`` (3 cycles);
* L1 miss, L2 hit — ``l1_latency + l1_miss_penalty`` (3 + 22 = 25 cycles
  total; the paper's "miss penalty 22" is the L2 service time seen by L1);
* L2 miss — the above plus ``memory_latency`` (250 cycles);
* TLB miss on either path adds ``tlb_miss_penalty`` (300 cycles).

The separate ``l2_latency`` (12 cycles) is the L2 *probe* time; it sets
the FLUSH fetch-policy trigger threshold (``l1_latency + l2_latency``):
any load outstanding longer than that is assumed to have missed in L2
(Tullsen & Brown's rule adopted by the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.memory.cache import SetAssociativeCache
from repro.memory.tlb import TranslationBuffer

__all__ = ["MemoryParams", "MemoryHierarchy", "AccessResult"]


@dataclass(frozen=True)
class MemoryParams:
    """Every memory-system parameter from Table 1 (overridable for studies)."""

    l1i_size: int = 64 * 1024
    l1i_ways: int = 2
    l1i_banks: int = 8
    l1d_size: int = 64 * 1024
    l1d_ways: int = 2
    l1d_banks: int = 8
    l2_size: int = 512 * 1024
    l2_ways: int = 2
    l2_banks: int = 8
    line_bytes: int = 64
    l1_latency: int = 3
    l1_miss_penalty: int = 22
    l2_latency: int = 12
    memory_latency: int = 250
    itlb_entries: int = 48
    dtlb_entries: int = 128
    tlb_miss_penalty: int = 300
    page_bytes: int = 8192

    @property
    def l2_hit_total(self) -> int:
        """Total load-to-use latency for an L1-miss / L2-hit access."""
        return self.l1_latency + self.l1_miss_penalty

    @property
    def l2_miss_total(self) -> int:
        """Total latency for an access missing all the way to memory."""
        return self.l1_latency + self.l1_miss_penalty + self.memory_latency

    @property
    def flush_threshold(self) -> int:
        """Cycles after which FLUSH declares an outstanding load an L2 miss."""
        return self.l1_latency + self.l2_latency


class AccessResult(NamedTuple):
    """Outcome of one memory access (NamedTuple: cheap to build in the
    simulator's issue/fetch hot paths, immutable like the old dataclass)."""

    latency: int  #: total cycles until the value is available
    l1_hit: bool
    l2_hit: bool  #: meaningful only when ``not l1_hit``
    tlb_hit: bool
    bank: int  #: L1 bank servicing the access


class MemoryHierarchy:
    """Shared I/D L1s + unified L2 + TLBs, returning access latencies.

    One instance per simulated processor; pipelines and threads all probe
    the same arrays, so inter-thread interference (the phenomenon hdSMT's
    mapping policy tries to manage) emerges naturally.
    """

    __slots__ = (
        "params",
        "l1i",
        "l1d",
        "l2",
        "itlb",
        "dtlb",
        "_l1_lat",
        "_l1_miss_pen",
        "_mem_lat",
        "_tlb_pen",
    )

    def __init__(self, params: MemoryParams | None = None, max_threads: int = 8) -> None:
        p = params or MemoryParams()
        self.params = p
        self._l1_lat = p.l1_latency
        self._l1_miss_pen = p.l1_miss_penalty
        self._mem_lat = p.memory_latency
        self._tlb_pen = p.tlb_miss_penalty
        self.l1i = SetAssociativeCache(
            p.l1i_size, p.l1i_ways, p.line_bytes, p.l1i_banks, max_threads, "L1I"
        )
        self.l1d = SetAssociativeCache(
            p.l1d_size, p.l1d_ways, p.line_bytes, p.l1d_banks, max_threads, "L1D"
        )
        self.l2 = SetAssociativeCache(
            p.l2_size, p.l2_ways, p.line_bytes, p.l2_banks, max_threads, "L2"
        )
        self.itlb = TranslationBuffer(p.itlb_entries, p.page_bytes, "ITLB")
        self.dtlb = TranslationBuffer(p.dtlb_entries, p.page_bytes, "DTLB")

    # -- hot paths -------------------------------------------------------------
    #
    # The simulator's issue/fetch/commit loops only consume the latency
    # (or nothing, for retiring stores), so the *_latency variants below
    # perform the identical probe sequence without building an
    # AccessResult. The full-result methods remain the public API.

    def load_latency(self, addr: int, thread: int) -> int:
        """Latency-only :meth:`load` (identical probe sequence)."""
        latency = (
            self._l1_lat
            if self.dtlb.access(addr, thread)
            else self._l1_lat + self._tlb_pen
        )
        if not self.l1d.access(addr, thread):
            latency += self._l1_miss_pen
            if not self.l2.access(addr, thread):
                latency += self._mem_lat
        return latency

    def fetch_latency(self, pc: int, thread: int) -> int:
        """Latency-only :meth:`fetch` (identical probe sequence)."""
        latency = 0 if self.itlb.access(pc, thread) else self._tlb_pen
        if not self.l1i.access(pc, thread):
            latency += self._l1_miss_pen
            if not self.l2.access(pc, thread):
                latency += self._mem_lat
        return latency

    def retire_store(self, addr: int, thread: int) -> None:
        """Result-free :meth:`store` (identical probe sequence), for the
        commit stage's store-buffer drain."""
        self.dtlb.access(addr, thread)
        if not self.l1d.access(addr, thread):
            self.l2.access(addr, thread)

    def load(self, addr: int, thread: int) -> AccessResult:
        """Data load: DTLB + L1D + (on miss) L2. Returns total latency."""
        p = self.params
        tlb_hit = self.dtlb.access(addr, thread)
        latency = p.l1_latency if tlb_hit else p.l1_latency + p.tlb_miss_penalty
        l1_hit = self.l1d.access(addr, thread)
        l2_hit = True
        if not l1_hit:
            latency += p.l1_miss_penalty
            l2_hit = self.l2.access(addr, thread)
            if not l2_hit:
                latency += p.memory_latency
        return AccessResult(latency, l1_hit, l2_hit, tlb_hit, self.l1d.bank_of(addr))

    def store(self, addr: int, thread: int) -> AccessResult:
        """Data store at commit: write-allocate into L1D/L2, no stall
        returned to the pipeline (retirement-time store buffer drain)."""
        p = self.params
        tlb_hit = self.dtlb.access(addr, thread)
        l1_hit = self.l1d.access(addr, thread)
        l2_hit = True
        if not l1_hit:
            l2_hit = self.l2.access(addr, thread)
        latency = 0 if tlb_hit else p.tlb_miss_penalty
        return AccessResult(latency, l1_hit, l2_hit, tlb_hit, self.l1d.bank_of(addr))

    def fetch(self, pc: int, thread: int) -> AccessResult:
        """Instruction fetch: ITLB + L1I + (on miss) L2.

        Returns the *stall* the fetch packet suffers: 0 extra cycles on an
        L1I hit (the pipeline depth already covers the 3-cycle hit), the
        miss penalties otherwise.
        """
        p = self.params
        tlb_hit = self.itlb.access(pc, thread)
        latency = 0 if tlb_hit else p.tlb_miss_penalty
        l1_hit = self.l1i.access(pc, thread)
        l2_hit = True
        if not l1_hit:
            latency += p.l1_miss_penalty
            l2_hit = self.l2.access(pc, thread)
            if not l2_hit:
                latency += p.memory_latency
        return AccessResult(latency, l1_hit, l2_hit, tlb_hit, self.l1i.bank_of(pc))

    # -- maintenance -------------------------------------------------------------

    def reset(self) -> None:
        """Cold caches/TLBs (between independent simulations)."""
        self.l1i.invalidate_all()
        self.l1d.invalidate_all()
        self.l2.invalidate_all()
        self.itlb.invalidate_all()
        self.dtlb.invalidate_all()

    def reset_stats(self) -> None:
        """Zero every counter, keep contents warm (post-warm-up)."""
        self.l1i.reset_stats()
        self.l1d.reset_stats()
        self.l2.reset_stats()
        self.itlb.reset_stats()
        self.dtlb.reset_stats()

    def dcache_misses(self, thread: int) -> int:
        """Per-thread L1D miss count (the heuristic mapping's profile input)."""
        return self.l1d.stats.per_thread_misses[thread]
