"""Memory hierarchy substrate (Table 1 of the paper).

* L1 I-cache: 64 KB, 2-way, 8 banks — 3-cycle hit;
* L1 D-cache: 64 KB, 2-way, 8 banks — 3-cycle hit, 22-cycle miss penalty
  (L2 hit service time);
* unified L2: 512 KB, 2-way, 8 banks — 12-cycle access, misses go to main
  memory at 250 cycles;
* I-TLB 48 entries / D-TLB 128 entries, 300-cycle miss penalty.

All threads of all pipelines share every level (the hdSMT design point:
caches and register file stay shared; only the pipelines are clustered).
"""

from repro.memory.cache import SetAssociativeCache, CacheStats
from repro.memory.tlb import TranslationBuffer
from repro.memory.hierarchy import MemoryHierarchy, MemoryParams, AccessResult

__all__ = [
    "SetAssociativeCache",
    "CacheStats",
    "TranslationBuffer",
    "MemoryHierarchy",
    "MemoryParams",
    "AccessResult",
]
