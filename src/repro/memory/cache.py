"""Set-associative, banked, write-allocate cache model.

Timing-directed rather than data-carrying: the simulator only needs
hit/miss decisions and bank identifiers, so lines store tags only. LRU is
exact (2–4 ways in every configuration of the paper, so a recency list per
set costs nothing). Banking follows the paper's "8 banks" per cache: bank
conflicts are surfaced to the caller (the hierarchy decides whether to
charge them, keeping the hot path free of policy).

The hot path is :meth:`SetAssociativeCache.access`: one shift, one mask,
one short ``list.index`` scan per probe. Per the optimization guide the
structure-of-lists layout avoids allocating per-line objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["SetAssociativeCache", "CacheStats"]


@dataclass(slots=True)
class CacheStats:
    """Aggregate counters for one cache instance."""

    accesses: int = 0
    misses: int = 0
    evictions: int = 0
    per_thread_accesses: List[int] = field(default_factory=list)
    per_thread_misses: List[int] = field(default_factory=list)

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """Tag-only set-associative cache with exact LRU and banking.

    Parameters
    ----------
    size_bytes:
        Total capacity.
    ways:
        Associativity.
    line_bytes:
        Line size (power of two).
    banks:
        Number of independently-addressable banks (power of two); bank id
        is derived from the set index.
    max_threads:
        Sizes the per-thread statistic arrays.
    name:
        Used in reports.
    """

    __slots__ = (
        "name",
        "size_bytes",
        "ways",
        "line_bytes",
        "banks",
        "num_sets",
        "_line_shift",
        "_set_mask",
        "_tag_shift",
        "_bank_mask",
        "_tags",
        "_base",
        "stats",
    )

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        line_bytes: int = 64,
        banks: int = 8,
        max_threads: int = 8,
        name: str = "cache",
    ) -> None:
        if line_bytes & (line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")
        if banks & (banks - 1):
            raise ValueError("banks must be a power of two")
        num_sets = size_bytes // (ways * line_bytes)
        if num_sets <= 0 or num_sets & (num_sets - 1):
            raise ValueError(
                f"size/ways/line combination gives invalid set count: {num_sets}"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.banks = banks
        self.num_sets = num_sets
        self._line_shift = line_bytes.bit_length() - 1
        self._set_mask = num_sets - 1
        self._tag_shift = num_sets.bit_length() - 1
        self._bank_mask = banks - 1
        # _tags[set] is a recency-ordered list of tags (index 0 = MRU);
        # sets allocate lazily on first touch (None = not yet
        # materialized). A warm-state restore (:meth:`load_state`) is
        # copy-on-write: `_base` holds the shared, never-mutated snapshot
        # rows and a set copies its row the first time it is touched —
        # screening sweeps restore thousands of caches from one snapshot
        # and a short run touches only a fraction of the sets.
        self._tags: List[Optional[List[int]]] = [None] * num_sets
        self._base: Optional[List[List[int]]] = None
        self.stats = CacheStats(
            per_thread_accesses=[0] * max_threads,
            per_thread_misses=[0] * max_threads,
        )

    # -- hot path ------------------------------------------------------------
    #
    # Distinct threads are distinct address spaces: the line number is
    # scrambled with a per-thread constant (Fibonacci hashing) before the
    # set/tag split, modeling different physical frames — threads contend
    # for capacity but never falsely share lines.
    _THREAD_SALT = 2654435761

    def access(self, addr: int, thread: int = 0) -> bool:
        """Probe + fill: returns True on hit, False on miss (line filled)."""
        line = (addr >> self._line_shift) ^ (thread * self._THREAD_SALT)
        idx = line & self._set_mask
        tags = self._tags[idx]
        tag = line >> self._tag_shift
        st = self.stats
        st.accesses += 1
        st.per_thread_accesses[thread] += 1
        if tags is None:
            base = self._base
            tags = list(base[idx]) if base is not None else []
            self._tags[idx] = tags
        if tags:
            # MRU-first: the head hit is the overwhelmingly common case.
            if tags[0] == tag:
                return True
            if tag in tags:
                tags.remove(tag)
                tags.insert(0, tag)
                return True
        st.misses += 1
        st.per_thread_misses[thread] += 1
        if len(tags) >= self.ways:
            tags.pop()
            st.evictions += 1
        tags.insert(0, tag)
        return False

    def access_many(self, addrs, thread: int = 0, collect_misses: bool = False):
        """Batched :meth:`access` over an address sequence (warm-up path).

        Performs exactly the probe/fill/LRU sequence ``access`` would per
        address, with the loop constants hoisted and the statistics
        accumulated once — bit-identical final state and counters. When
        ``collect_misses`` is true, returns the missed addresses in order
        (the warm pass feeds them to the next cache level).
        """
        shift = self._line_shift
        set_mask = self._set_mask
        tag_shift = self._tag_shift
        salt = thread * self._THREAD_SALT
        all_tags = self._tags
        ways = self.ways
        accesses = 0
        misses: List[int] = []
        evictions = 0
        base = self._base
        for addr in addrs:
            line = (addr >> shift) ^ salt
            idx = line & set_mask
            tags = all_tags[idx]
            tag = line >> tag_shift
            accesses += 1
            if tags is None:
                tags = list(base[idx]) if base is not None else []
                all_tags[idx] = tags
            if tags:
                if tags[0] == tag:
                    continue
                if tag in tags:
                    tags.remove(tag)
                    tags.insert(0, tag)
                    continue
            misses.append(addr)
            if len(tags) >= ways:
                tags.pop()
                evictions += 1
            tags.insert(0, tag)
        st = self.stats
        st.accesses += accesses
        st.misses += len(misses)
        st.evictions += evictions
        st.per_thread_accesses[thread] += accesses
        st.per_thread_misses[thread] += len(misses)
        return misses if collect_misses else None

    def probe(self, addr: int, thread: int = 0) -> bool:
        """Non-allocating lookup (no LRU update, no statistics)."""
        line = (addr >> self._line_shift) ^ (thread * self._THREAD_SALT)
        idx = line & self._set_mask
        tags = self._tags[idx]
        if tags is None:
            base = self._base
            if base is None:
                return False
            tags = base[idx]
        return (line >> self._tag_shift) in tags

    def bank_of(self, addr: int) -> int:
        """Bank servicing this address (set-interleaved)."""
        return (addr >> self._line_shift) & self._bank_mask

    # -- state snapshot (warm-state caching) -----------------------------------

    def dump_state(self) -> tuple:
        """Copy of (lines, stats) for exact restore via :meth:`load_state`.

        Untouched (lazily unallocated) sets dump as empty lists, so the
        snapshot shape is independent of how the contents were built.
        """
        st = self.stats
        base = self._base
        if base is None:
            lines = [t[:] if t is not None else [] for t in self._tags]
        else:
            lines = [
                t[:] if t is not None else list(base[i])
                for i, t in enumerate(self._tags)
            ]
        return (
            lines,
            (
                st.accesses,
                st.misses,
                st.evictions,
                st.per_thread_accesses[:],
                st.per_thread_misses[:],
            ),
        )

    def load_state(self, snap: tuple) -> None:
        """Restore a :meth:`dump_state` snapshot (exact contents + stats).

        O(1) in the number of sets: the snapshot rows are adopted as the
        shared copy-on-write base and individual sets copy out lazily on
        first touch. The snapshot itself is never mutated, so many caches
        can restore from one snapshot concurrently.
        """
        lines, (acc, miss, evic, pta, ptm) = snap
        self._tags = [None] * self.num_sets
        self._base = lines
        st = self.stats
        st.accesses = acc
        st.misses = miss
        st.evictions = evic
        st.per_thread_accesses = pta[:]
        st.per_thread_misses = ptm[:]

    # -- maintenance -----------------------------------------------------------

    def invalidate_all(self) -> None:
        """Drop every line (used between independent simulations)."""
        self._tags = [None] * self.num_sets
        self._base = None

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        base = self._base
        if base is None:
            return sum(len(t) for t in self._tags if t is not None)
        return sum(
            len(t) if t is not None else len(base[i])
            for i, t in enumerate(self._tags)
        )

    def reset_stats(self) -> None:
        """Zero the counters without touching cache contents (used after a
        warm-up pass so measurements reflect steady state)."""
        st = self.stats
        st.accesses = 0
        st.misses = 0
        st.evictions = 0
        st.per_thread_accesses = [0] * len(st.per_thread_accesses)
        st.per_thread_misses = [0] * len(st.per_thread_misses)

    def storage_bits(self) -> int:
        """Data + tag storage in bits (for reporting; excluded from the
        paper's area model, which drops caches and the register file)."""
        tag_bits = 64 - self._line_shift - (self.num_sets.bit_length() - 1)
        return self.num_sets * self.ways * (self.line_bytes * 8 + tag_bits + 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{self.name}: {self.size_bytes >> 10}KB {self.ways}-way "
            f"{self.banks}-bank {self.line_bytes}B lines>"
        )
