"""Translation look-aside buffers.

Table 1: 48-entry I-TLB, 128-entry D-TLB, 300-cycle miss penalty. Entry
counts are not powers of two, so the TLBs are modeled fully associative
with exact LRU (an ordered dict keyed by thread + virtual page); threads
share the structure, tagged by address-space id as real SMTs do.

The LRU key packs the thread id above the page number in one int
(``page | thread << _THREAD_SHIFT``) — translations are the second-most
frequent simulator operation after cache probes, and an int key saves a
tuple allocation plus a tuple hash per access while remaining a bijection
of (thread, page), so hit/miss behaviour is bit-identical.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["TranslationBuffer"]


class TranslationBuffer:
    """Fully-associative, LRU, thread-tagged TLB."""

    __slots__ = (
        "entries",
        "page_bytes",
        "_page_shift",
        "_map",
        "_shared",
        "_last",
        "accesses",
        "misses",
    )

    #: bit position of the thread id inside a packed key; pages come from
    #: sub-2^48 addresses shifted by the page bits, so 50 clears any page.
    _THREAD_SHIFT = 50

    def __init__(self, entries: int, page_bytes: int = 8192, name: str = "tlb") -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        if page_bytes & (page_bytes - 1):
            raise ValueError("page_bytes must be a power of two")
        self.entries = entries
        self.page_bytes = page_bytes
        self._page_shift = page_bytes.bit_length() - 1
        self._map: "OrderedDict[int, bool]" = OrderedDict()
        #: True while ``_map`` is still the restored snapshot's own dict
        #: (copy-on-write: the first mutating access copies it out, so
        #: the snapshot survives however the live TLB churns afterwards).
        self._shared = False
        #: the current MRU key — repeated translations of the same page
        #: (the common case: sequential fetch) skip the OrderedDict churn
        self._last: "int | None" = None
        self.accesses = 0
        self.misses = 0

    def access(self, addr: int, thread: int = 0) -> bool:
        """Translate: True on TLB hit, False on miss (entry then filled)."""
        key = (addr >> self._page_shift) | (thread << self._THREAD_SHIFT)
        self.accesses += 1
        if key == self._last:  # already MRU: move_to_end would be a no-op
            return True
        if self._shared:  # first mutating access after a restore
            self._map = OrderedDict(self._map)
            self._shared = False
        m = self._map
        if key in m:
            m.move_to_end(key)
            self._last = key
            return True
        self.misses += 1
        if len(m) >= self.entries:
            m.popitem(last=False)
        m[key] = True
        self._last = key
        return False

    def access_many(self, addrs, thread: int = 0) -> None:
        """Batched :meth:`access` (warm-up path): same translation/LRU/fill
        sequence per address, loop constants hoisted, counters accumulated
        once — bit-identical final state."""
        shift = self._page_shift
        tbits = thread << self._THREAD_SHIFT
        if self._shared:  # warm streams always mutate: copy out up front
            self._map = OrderedDict(self._map)
            self._shared = False
        m = self._map
        last = self._last
        capacity = self.entries
        move_to_end = m.move_to_end
        popitem = m.popitem
        accesses = 0
        misses = 0
        for addr in addrs:
            key = (addr >> shift) | tbits
            accesses += 1
            if key == last:
                continue
            if key in m:
                move_to_end(key)
                last = key
                continue
            misses += 1
            if len(m) >= capacity:
                popitem(last=False)
            m[key] = True
            last = key
        self._last = last
        self.accesses += accesses
        self.misses += misses

    def dump_state(self) -> tuple:
        """Copy of (translations, MRU key, stats) for exact restore."""
        return (OrderedDict(self._map), self._last, self.accesses, self.misses)

    def load_state(self, snap: tuple) -> None:
        """Restore a :meth:`dump_state` snapshot, copy-on-write: the
        snapshot's dict is adopted shared and the first mutating access
        copies it out, so restore itself is O(1) and the snapshot can
        never alias post-restore churn."""
        m, last, accesses, misses = snap
        self._map = m
        self._shared = True
        self._last = last
        self.accesses = accesses
        self.misses = misses

    def invalidate_all(self) -> None:
        if self._shared:
            self._map = OrderedDict()
            self._shared = False
        else:
            self._map.clear()
        self._last = None

    def reset_stats(self) -> None:
        """Zero counters, keep translations (post-warm-up)."""
        self.accesses = 0
        self.misses = 0

    def invalidate_thread(self, thread: int) -> None:
        """Drop one thread's translations (context switch)."""
        if self._shared:
            self._map = OrderedDict(self._map)
            self._shared = False
        shift = self._THREAD_SHIFT
        stale = [k for k in self._map if k >> shift == thread]
        for k in stale:
            del self._map[k]
        if self._last is not None and self._last >> shift == thread:
            self._last = None

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __len__(self) -> int:
        return len(self._map)
