"""Translation look-aside buffers.

Table 1: 48-entry I-TLB, 128-entry D-TLB, 300-cycle miss penalty. Entry
counts are not powers of two, so the TLBs are modeled fully associative
with exact LRU (an ordered dict keyed by (thread, virtual page)); threads
share the structure, tagged by address-space id as real SMTs do.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

__all__ = ["TranslationBuffer"]


class TranslationBuffer:
    """Fully-associative, LRU, thread-tagged TLB."""

    __slots__ = ("entries", "page_bytes", "_page_shift", "_map", "accesses", "misses")

    def __init__(self, entries: int, page_bytes: int = 8192, name: str = "tlb") -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        if page_bytes & (page_bytes - 1):
            raise ValueError("page_bytes must be a power of two")
        self.entries = entries
        self.page_bytes = page_bytes
        self._page_shift = page_bytes.bit_length() - 1
        self._map: "OrderedDict[Tuple[int, int], bool]" = OrderedDict()
        self.accesses = 0
        self.misses = 0

    def access(self, addr: int, thread: int = 0) -> bool:
        """Translate: True on TLB hit, False on miss (entry then filled)."""
        key = (thread, addr >> self._page_shift)
        m = self._map
        self.accesses += 1
        if key in m:
            m.move_to_end(key)
            return True
        self.misses += 1
        if len(m) >= self.entries:
            m.popitem(last=False)
        m[key] = True
        return False

    def invalidate_all(self) -> None:
        self._map.clear()

    def reset_stats(self) -> None:
        """Zero counters, keep translations (post-warm-up)."""
        self.accesses = 0
        self.misses = 0

    def invalidate_thread(self, thread: int) -> None:
        """Drop one thread's translations (context switch)."""
        stale = [k for k in self._map if k[0] == thread]
        for k in stale:
            del self._map[k]

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __len__(self) -> int:
        return len(self._map)
