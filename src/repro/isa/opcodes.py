"""Instruction classes and their execution latencies.

The timing simulator only distinguishes instruction *classes*; plain module
level integer constants (not an ``enum``) keep the hot fetch/issue loops
free of attribute lookups, per the profiling guidance for tight Python
inner loops.
"""

from __future__ import annotations

# --- instruction classes -------------------------------------------------
OP_INT = 0  #: simple integer ALU operation (add, logic, shift, compare)
OP_MUL = 1  #: integer multiply (longer latency, integer unit)
OP_FP = 2  #: floating-point arithmetic
OP_LOAD = 3  #: memory load (latency resolved by the cache hierarchy)
OP_STORE = 4  #: memory store (retires through the cache at commit)
OP_BRANCH = 5  #: conditional branch
OP_CALL = 6  #: direct call (pushes the return-address stack)
OP_RETURN = 7  #: return (pops the return-address stack)
OP_NOP = 8  #: no-operation / padding

NUM_OP_CLASSES = 9

OP_CLASS_NAMES = (
    "int",
    "mul",
    "fp",
    "load",
    "store",
    "branch",
    "call",
    "return",
    "nop",
)

# --- execution latencies (cycles in the execute stage) -------------------
# Loads are the exception: their latency comes from the memory hierarchy at
# issue time; the value here is only the address-generation component.
EXEC_LATENCY = (
    1,  # OP_INT
    3,  # OP_MUL
    4,  # OP_FP
    1,  # OP_LOAD   (address generation; cache latency added on top)
    1,  # OP_STORE
    1,  # OP_BRANCH
    1,  # OP_CALL
    1,  # OP_RETURN
    1,  # OP_NOP
)

# --- functional-unit classes ---------------------------------------------
FU_INT = 0
FU_FP = 1
FU_LDST = 2
FU_CLASS_NAMES = ("int", "fp", "ldst")

_FU_OF_OP = (
    FU_INT,  # OP_INT
    FU_INT,  # OP_MUL
    FU_FP,  # OP_FP
    FU_LDST,  # OP_LOAD
    FU_LDST,  # OP_STORE
    FU_INT,  # OP_BRANCH
    FU_INT,  # OP_CALL
    FU_INT,  # OP_RETURN
    FU_INT,  # OP_NOP
)


def fu_class(op_class: int) -> int:
    """Return the functional-unit class (FU_INT/FU_FP/FU_LDST) for an op class."""
    return _FU_OF_OP[op_class]


def is_branch_class(op_class: int) -> bool:
    """True for any control-transfer class (branch, call, return)."""
    return op_class == OP_BRANCH or op_class == OP_CALL or op_class == OP_RETURN


def is_memory_class(op_class: int) -> bool:
    """True for loads and stores."""
    return op_class == OP_LOAD or op_class == OP_STORE
