"""Logical (architectural) register model.

Alpha-style: 32 integer plus 32 floating-point registers flattened into a
single 0..63 namespace so the renamer can use one map table per thread.
``REG_NONE`` marks an absent operand.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_LOGICAL_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Sentinel for "no register operand"; chosen as -1 so hot-path checks are
#: simple ``>= 0`` comparisons.
REG_NONE = -1


def int_reg(index: int) -> int:
    """Flattened id of integer register ``index`` (0..31)."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return index


def fp_reg(index: int) -> int:
    """Flattened id of floating-point register ``index`` (0..31)."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return NUM_INT_REGS + index


def is_fp_reg(reg: int) -> bool:
    """True when the flattened register id names an FP register."""
    return reg >= NUM_INT_REGS


def reg_name(reg: int) -> str:
    """Human-readable name ('r7', 'f3', or '-' for REG_NONE)."""
    if reg == REG_NONE:
        return "-"
    if reg < 0 or reg >= NUM_LOGICAL_REGS:
        raise ValueError(f"register id out of range: {reg}")
    if reg < NUM_INT_REGS:
        return f"r{reg}"
    return f"f{reg - NUM_INT_REGS}"
