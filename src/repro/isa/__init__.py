"""Instruction-set model used by the trace-driven simulator.

The paper's traces are Alpha AXP-21264 binaries; our synthetic substrate
keeps the same architectural shape: 32 integer + 32 floating-point logical
registers and a small set of instruction *classes* (the timing model only
needs the class, the register operands, the memory address for loads and
stores and the direction/target for branches).
"""

from repro.isa.opcodes import (
    OP_INT,
    OP_MUL,
    OP_FP,
    OP_LOAD,
    OP_STORE,
    OP_BRANCH,
    OP_CALL,
    OP_RETURN,
    OP_NOP,
    OP_CLASS_NAMES,
    EXEC_LATENCY,
    is_branch_class,
    is_memory_class,
    fu_class,
    FU_INT,
    FU_FP,
    FU_LDST,
    FU_CLASS_NAMES,
)
from repro.isa.registers import (
    NUM_INT_REGS,
    NUM_FP_REGS,
    NUM_LOGICAL_REGS,
    REG_NONE,
    int_reg,
    fp_reg,
    is_fp_reg,
    reg_name,
)
from repro.isa.instruction import Instruction, TraceEntry, pack_entry, unpack_entry

__all__ = [
    "OP_INT",
    "OP_MUL",
    "OP_FP",
    "OP_LOAD",
    "OP_STORE",
    "OP_BRANCH",
    "OP_CALL",
    "OP_RETURN",
    "OP_NOP",
    "OP_CLASS_NAMES",
    "EXEC_LATENCY",
    "is_branch_class",
    "is_memory_class",
    "fu_class",
    "FU_INT",
    "FU_FP",
    "FU_LDST",
    "FU_CLASS_NAMES",
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "NUM_LOGICAL_REGS",
    "REG_NONE",
    "int_reg",
    "fp_reg",
    "is_fp_reg",
    "reg_name",
    "Instruction",
    "TraceEntry",
    "pack_entry",
    "unpack_entry",
]
