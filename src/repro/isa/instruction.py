"""Trace-entry representation.

Two views of the same data:

* ``TraceEntry`` — a plain 7-tuple ``(op_class, dest, src1, src2, addr,
  taken, pc)`` used by the hot simulation loops (one list index plus tuple
  unpack per instruction, no attribute lookups).
* ``Instruction`` — a friendly dataclass for the public API, tests and
  examples, convertible to/from the packed tuple.

Fields
------
op_class : int       one of the ``repro.isa.opcodes`` OP_* constants
dest     : int       flattened destination register id or REG_NONE
src1     : int       first source register id or REG_NONE
src2     : int       second source register id or REG_NONE
addr     : int       byte address for loads/stores (0 otherwise)
taken    : int       1 if a control instruction is taken, else 0
pc       : int       byte address of the instruction
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.isa.opcodes import OP_CLASS_NAMES, is_branch_class, is_memory_class
from repro.isa.registers import REG_NONE, reg_name

TraceEntry = Tuple[int, int, int, int, int, int, int]

# Tuple field offsets, exported for hot loops that index instead of unpack.
F_OP = 0
F_DEST = 1
F_SRC1 = 2
F_SRC2 = 3
F_ADDR = 4
F_TAKEN = 5
F_PC = 6


@dataclass(frozen=True)
class Instruction:
    """One dynamic instruction of a trace (friendly view)."""

    op_class: int
    dest: int = REG_NONE
    src1: int = REG_NONE
    src2: int = REG_NONE
    addr: int = 0
    taken: bool = False
    pc: int = 0

    @property
    def is_branch(self) -> bool:
        return is_branch_class(self.op_class)

    @property
    def is_memory(self) -> bool:
        return is_memory_class(self.op_class)

    def pack(self) -> TraceEntry:
        """Pack into the hot-path tuple form."""
        return (
            self.op_class,
            self.dest,
            self.src1,
            self.src2,
            self.addr,
            1 if self.taken else 0,
            self.pc,
        )

    @classmethod
    def unpack(cls, entry: TraceEntry) -> "Instruction":
        """Build the friendly view from a packed tuple."""
        op, dest, src1, src2, addr, taken, pc = entry
        return cls(op, dest, src1, src2, addr, bool(taken), pc)

    def __str__(self) -> str:
        parts = [OP_CLASS_NAMES[self.op_class]]
        if self.dest != REG_NONE:
            parts.append(reg_name(self.dest))
        srcs = [reg_name(s) for s in (self.src1, self.src2) if s != REG_NONE]
        if srcs:
            parts.append("<- " + ",".join(srcs))
        if self.is_memory:
            parts.append(f"@{self.addr:#x}")
        if self.is_branch:
            parts.append("taken" if self.taken else "not-taken")
        return f"[{self.pc:#x}] " + " ".join(parts)


def pack_entry(instr: Instruction) -> TraceEntry:
    """Module-level alias of :meth:`Instruction.pack`."""
    return instr.pack()


def unpack_entry(entry: TraceEntry) -> Instruction:
    """Module-level alias of :meth:`Instruction.unpack`."""
    return Instruction.unpack(entry)
