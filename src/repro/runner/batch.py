"""BatchRunner: fan simulation jobs out over worker processes.

The experiment drivers describe work as :class:`~repro.runner.jobs.Job`
objects (picklable, content-hashable; see :mod:`repro.runner.jobs` for
the protocol) and hand lists of them to :meth:`BatchRunner.run`, which
preserves order: ``results[i]`` is the outcome of ``jobs[i]`` whether
the batch ran inline or across processes. Every job kind —
:class:`~repro.runner.jobs.SimJob`,
:class:`~repro.runner.screening.ScreenJob`,
:class:`~repro.runner.continuation.ContinuationJob` — flows through the
same dispatch, cache and trace-prepack path; the runner never
special-cases a job class.

Parallel batches are *supervised* (see :mod:`repro.runner.resilience`):
each job is submitted as its own future with a per-job timeout, failed
or timed-out jobs retry with exponential backoff (safe — every job is an
idempotent pure function of its identity), a broken pool is respawned
instead of propagating ``BrokenProcessPool``, and a pool that keeps
breaking degrades the batch to inline execution. The accumulated
:class:`~repro.runner.resilience.RunReport` (``runner.report``) records
how much fault handling a sweep needed.

A runner is built to stay alive: the worker pool, trace store and result
cache persist across any number of :meth:`BatchRunner.run` calls, which
is what lets the ``repro serve`` daemon (:mod:`repro.service`) execute
every request of a long-lived process on one shared runner.  After
:meth:`BatchRunner.close` a runner refuses new batches (``closed``).

Workers share two content-addressed stores through one directory:

* a :class:`~repro.trace.packed.PackedTraceStore` — before a parallel
  batch launches, the parent packs every trace the batch needs (each
  job's :meth:`~repro.runner.jobs.Job.trace_manifest`) into the store,
  so cold workers mmap the packed buffers instead of re-running
  :class:`~repro.trace.synthetic.TraceGenerator`;
* a warm-snapshot store (see :func:`repro.core.processor.set_warm_store`)
  — the first process to warm a trace set persists the structure state,
  every other process restores it.

The store directory defaults to ``REPRO_TRACE_CACHE`` (persistent across
runs) or, failing that, a private temporary directory cleaned up with the
runner. Pass ``trace_store=False`` to disable the machinery entirely.
"""

from __future__ import annotations

import logging
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Set, Tuple, Union

from repro.runner.cache import ResultCache
from repro.runner.distributed import DistributedExecutor, JobQueue
from repro.runner.jobs import SimJob
from repro.runner.resilience import RetryPolicy, RunReport, SupervisedExecutor

__all__ = ["BatchRunner", "SimJob", "resolve_workers"]

logger = logging.getLogger(__name__)

#: Fewer jobs than this run inline: process spawn + pickle overhead would
#: exceed the win (a full-length run takes ~100 ms, a screen far less).
_MIN_PARALLEL_JOBS = 3

#: Threshold for *heavy* jobs (``job.heavy`` — checkpointed screen
#: ladders, bundled continuation/screen jobs): each one amortizes its
#: dispatch overhead by construction, so two already justify the pool.
_MIN_PARALLEL_HEAVY = 2


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count: explicit argument > ``REPRO_WORKERS`` > cpu count."""
    if workers is not None:
        return max(1, workers)
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            # Log what the `from None` below swallows before refusing the
            # value — a sweep dying on a typo'd env var must say why.
            logger.warning(
                "invalid REPRO_WORKERS=%r: not an integer; refusing to "
                "guess a worker count",
                env,
            )
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from None
    return os.cpu_count() or 1


# Module-level so ProcessPoolExecutor can pickle it by reference. The
# worker consults/populates the shared on-disk cache itself, so cache
# hits skip the simulation entirely even inside the pool.
_WORKER_CACHE_DIR: Optional[str] = None


def _init_worker(cache_dir: Optional[str], store_dir: Optional[str]) -> None:
    global _WORKER_CACHE_DIR
    _WORKER_CACHE_DIR = cache_dir
    # Dedicated, bounded-lifetime simulation processes: the simulator's
    # object graph is acyclic (reference counting reclaims everything), so
    # cyclic-GC passes only cost time. Freezing the warm interpreter state
    # also keeps it off future (no-op) collections.
    import gc

    gc.disable()
    gc.freeze()
    if store_dir is not None:
        # Read-only for traces (the parent pre-packed the batch's traces);
        # read-write for warm snapshots (first warmer persists them).
        from repro.core.processor import set_warm_store
        from repro.trace.stream import set_trace_store

        set_trace_store(store_dir, save_on_generate=False)
        set_warm_store(store_dir)


def _execute_job(job):
    """Legacy worker entry point: raw result, no supervision side-band.

    Kept as the reference implementation the equivalence tests and the
    fault-tolerance overhead benchmark compare the supervised path
    against (see :meth:`BatchRunner._run_pool_map`).
    """
    cache = (
        ResultCache(_WORKER_CACHE_DIR)
        if _WORKER_CACHE_DIR is not None
        else None
    )
    return job.execute(cache)


def _execute_job_supervised(job):
    """Supervised worker entry point: ``(result, stats)``.

    The fault-injection hook runs first (a no-op without
    ``REPRO_FAULT_PLAN`` — see :mod:`repro.runner.faults`), standing in
    for the real worker failures the supervisor must survive. ``stats``
    carries worker-side recovery counters back to the parent's
    :class:`~repro.runner.resilience.RunReport`; the per-call
    :class:`~repro.runner.cache.ResultCache` makes its counter a
    this-job delta.
    """
    from repro.runner.faults import maybe_inject_fault

    maybe_inject_fault(job)
    cache = (
        ResultCache(_WORKER_CACHE_DIR)
        if _WORKER_CACHE_DIR is not None
        else None
    )
    result = job.execute(cache)
    stats = {"cache_fallbacks": cache.corrupt_fallbacks if cache else 0}
    return result, stats


class BatchRunner:
    """Execute batches of :class:`~repro.runner.jobs.Job` objects with
    optional parallelism and supervised fault tolerance.

    Parameters
    ----------
    workers:
        Process count; defaults to ``REPRO_WORKERS`` or the cpu count.
        ``1`` disables multiprocessing entirely (pure sequential).
    cache_dir:
        Directory for the on-disk result cache; defaults to the
        ``REPRO_RESULT_CACHE`` environment variable; None disables it.
    trace_store:
        Directory for the shared packed-trace / warm-snapshot store;
        ``None`` (the default) resolves to ``REPRO_TRACE_CACHE`` or — for
        parallel runners — a private temporary directory removed by
        :meth:`close`; ``False`` disables the store machinery.
    policy:
        :class:`~repro.runner.resilience.RetryPolicy` for the supervised
        dispatch (attempt budget, backoff, per-job timeout, respawn
        budget); defaults to :meth:`RetryPolicy.from_env`
        (``REPRO_JOB_TIMEOUT`` / ``REPRO_MAX_ATTEMPTS`` /
        ``REPRO_RETRY_BACKOFF`` / ``REPRO_MAX_POOL_RESPAWNS``).
    queue_dir:
        Distributed-execution job-queue directory; defaults to
        ``REPRO_DIST_QUEUE``; None (and no env) keeps execution local.
        When set, parallel batches are enqueued for ``repro worker``
        processes watching the same directory (see
        :mod:`repro.runner.distributed`), with automatic degradation to
        the local supervised pool when no worker shows up, the fleet
        goes dark, or progress stalls.
    mem_cache_mb:
        Budget for the result cache's in-process memory tier; ``None``
        reads ``REPRO_MEM_CACHE_MB`` (default 0 = disk only).  Long-lived
        callers (the serve daemon) opt in; one-shot sweeps gain nothing
        from it.

    Results are independent of the worker count — simulations are pure
    functions of their job — so callers may treat ``workers`` purely as a
    throughput knob. ``runner.report`` accumulates a structured
    :class:`~repro.runner.resilience.RunReport` of every recovery event
    across the runner's lifetime.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[Union[str, os.PathLike]] = None,
        trace_store: Union[None, bool, str, os.PathLike] = None,
        policy: Optional[RetryPolicy] = None,
        queue_dir: Optional[Union[str, os.PathLike]] = None,
        mem_cache_mb: Optional[float] = None,
    ) -> None:
        self._supervisor: Optional[SupervisedExecutor] = None  # before any raise
        self._own_store_tmp: Optional[tempfile.TemporaryDirectory] = None
        self._closed = False
        self.workers = resolve_workers(workers)
        self.policy = policy if policy is not None else RetryPolicy.from_env()
        self.report = RunReport()
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_RESULT_CACHE") or None
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.cache = (
            ResultCache(self.cache_dir, mem_cache_mb=mem_cache_mb)
            if self.cache_dir
            else None
        )
        if trace_store is None:
            trace_store = os.environ.get("REPRO_TRACE_CACHE") or None
        if trace_store is False:
            self.store_dir: Optional[str] = None
        elif trace_store is None:
            if self.workers > 1:
                self._own_store_tmp = tempfile.TemporaryDirectory(
                    prefix="repro-store-"
                )
                self.store_dir = self._own_store_tmp.name
            else:
                self.store_dir = None
        else:
            self.store_dir = str(trace_store)
        #: traces already packed into the store (parent-side memo)
        self._packed_triples: Set[Tuple[str, int, int]] = set()
        self.jobs_run = 0
        if queue_dir is None:
            queue_dir = os.environ.get("REPRO_DIST_QUEUE") or None
        self.queue_dir = str(queue_dir) if queue_dir is not None else None
        self.queue = JobQueue(self.queue_dir) if self.queue_dir else None
        self._distributor: Optional[DistributedExecutor] = None
        if self.queue is not None:
            # Publish the execution context so bare `repro worker --queue`
            # invocations share this runner's cache and trace store.
            self.queue.write_config(self.cache_dir, self.store_dir)

    # -- lifecycle ---------------------------------------------------------
    #
    # The worker pool persists across run() calls so an experiment sweep
    # pays process start-up once and the workers' process-local trace /
    # warm-state caches stay hot between batches. The supervisor respawns
    # it transparently when it breaks.

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(self.cache_dir, self.store_dir),
        )

    def _execute_inline(self, job):
        """Parent-process execution with the supervised ``(result, stats)``
        contract (the small-batch path and the degraded-pool fallback)."""
        cache = self.cache
        before = cache.corrupt_fallbacks if cache is not None else 0
        result = job.execute(cache)
        after = cache.corrupt_fallbacks if cache is not None else 0
        return result, {"cache_fallbacks": after - before}

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; a closed runner refuses new
        batches instead of silently recreating half its machinery."""
        return self._closed

    def close(self) -> None:
        """Shut the worker pool down (idempotent; double-close safe)."""
        self._closed = True
        if self._supervisor is not None:
            self._supervisor.close()
            self._supervisor = None
        if self._own_store_tmp is not None:
            self._own_store_tmp.cleanup()
            self._own_store_tmp = None
            self.store_dir = None

    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        # getattr guards: __init__ may have raised before the attributes
        # existed, and close() may already have run (double-cleanup).
        supervisor = getattr(self, "_supervisor", None)
        if supervisor is not None:
            supervisor.close(kill=True)
            self._supervisor = None
        own_tmp = getattr(self, "_own_store_tmp", None)
        if own_tmp is not None:
            own_tmp.cleanup()
            self._own_store_tmp = None

    # -- execution ---------------------------------------------------------

    def run(self, jobs: Sequence) -> List:
        """Execute every job; ``results[i]`` corresponds to ``jobs[i]``.

        Accepts any mix of :class:`~repro.runner.jobs.Job`
        implementations (:class:`~repro.runner.jobs.SimJob`,
        :class:`~repro.runner.screening.ScreenJob`,
        :class:`~repro.runner.continuation.ContinuationJob`, ...): one
        dispatch path, no per-kind cases.

        Parallel batches run supervised: per-job futures with timeout,
        retry/backoff, pool respawn and inline degradation (see
        :mod:`repro.runner.resilience`); results are bit-identical to
        sequential execution regardless of which recovery paths fire.
        ``KeyboardInterrupt`` cancels outstanding futures and shuts the
        pool down without waiting, so Ctrl-C on a sweep exits promptly
        instead of leaking workers.

        With a job queue configured (``queue_dir`` /
        ``REPRO_DIST_QUEUE``), batches big enough to parallelize are
        dispatched to the remote worker fleet instead, with the local
        supervised path as the fallback at every degradation point.
        """
        if self._closed:
            # The serving layer keeps one runner alive across thousands
            # of requests; a batch slipping in after drain/close would
            # otherwise resurrect the pool with its temp store gone.
            raise RuntimeError("BatchRunner is closed")
        jobs = list(jobs)
        self.jobs_run += len(jobs)
        if self.queue is not None and len(jobs) >= self._min_parallel(jobs):
            # Workers need the packed traces / warm snapshots just like
            # pool processes do — prepack before the first task lands.
            self._prepack_traces(jobs)
            if self._distributor is None:
                self._distributor = DistributedExecutor(
                    self.queue,
                    policy=self.policy,
                    report=self.report,
                    # The shared cache powers the straggler work-stealer's
                    # done-prefix probe (bundles cache per run).
                    cache=self.cache,
                )
            return self._distributor.run(jobs, fallback=self._run_local)
        return self._run_local(jobs)

    @staticmethod
    def _min_parallel(jobs: Sequence) -> int:
        return (
            _MIN_PARALLEL_HEAVY
            if any(job.heavy for job in jobs)
            else _MIN_PARALLEL_JOBS
        )

    def _run_local(self, jobs: Sequence) -> List:
        """The local execution ladder: inline for small batches or a
        single worker, the supervised pool otherwise.  Also the fallback
        the distributed front end drains into, so a remainder handed
        back mid-batch re-decides inline-vs-pool on its own size."""
        jobs = list(jobs)
        if self.workers <= 1 or len(jobs) < self._min_parallel(jobs):
            return self._run_inline(jobs)
        self._prepack_traces(jobs)
        if self._supervisor is None:
            self._supervisor = SupervisedExecutor(
                pool_factory=self._make_pool,
                worker_fn=_execute_job_supervised,
                inline_fn=self._execute_inline,
                policy=self.policy,
                report=self.report,
                max_inflight=self.workers,
            )
        try:
            return self._supervisor.run(jobs)
        except KeyboardInterrupt:
            # The supervisor already killed its pool and cancelled the
            # outstanding futures on the way out; drop it so a resumed
            # runner starts from a clean slate.
            self._supervisor = None
            raise

    def _run_inline(self, jobs: Sequence) -> List:
        """Sequential execution with the same report bookkeeping."""
        report = self.report
        report.batches += 1
        report.jobs += len(jobs)
        import time as _time

        t0 = _time.monotonic()
        results = []
        try:
            for job in jobs:
                j0 = _time.monotonic()
                result, stats = self._execute_inline(job)
                results.append(result)
                report.attempts += 1
                report.job_seconds.append(_time.monotonic() - j0)
                report.absorb_worker_stats(stats)
        finally:
            report.wall_seconds += _time.monotonic() - t0
        return results

    def _run_pool_map(self, jobs: Sequence) -> List:
        """The pre-resilience dispatch, verbatim: one ``pool.map`` over a
        private pool, no supervision.

        Not used by any production path — it is the A/B reference for the
        supervised path's equivalence tests and the no-fault overhead
        benchmark (``benchmarks/test_fault_tolerance.py``). One worker
        crash or hang kills/stalls the whole batch, which is exactly the
        behaviour the supervisor replaced.
        """
        jobs = list(jobs)
        self._prepack_traces(jobs)
        pool = self._make_pool()
        try:
            chunksize = max(1, len(jobs) // (self.workers * 4))
            return list(pool.map(_execute_job, jobs, chunksize=chunksize))
        finally:
            pool.shutdown(wait=True)

    def _prepack_traces(self, jobs: Sequence) -> None:
        """Pack the batch's traces and warm snapshots into the shared store.

        Distinct traces are generated (or taken from the parent's memo)
        exactly once, machine-wide: workers mmap the packed buffers and
        skip :class:`~repro.trace.synthetic.TraceGenerator` entirely. The
        matching post-warm structure snapshots are precomputed too, so
        concurrent workers hitting the same workload at the same moment
        load one snapshot instead of racing to compute identical ones.
        The needs of a job — whatever its kind — come uniformly from its
        :meth:`~repro.runner.jobs.Job.trace_manifest`.
        """
        if self.store_dir is None:
            return
        from repro.core.config import get_config
        from repro.core.processor import ensure_warm_snapshot
        from repro.trace.packed import PackedTrace, PackedTraceStore
        from repro.trace.stream import _JUNK_LEN, trace_for

        store: Optional[PackedTraceStore] = None
        packed_triples = self._packed_triples
        warm_sets = {}
        for job in jobs:
            for unit in job.trace_manifest():
                for triple in unit.triples:
                    if triple in packed_triples:
                        continue
                    if store is None:
                        store = PackedTraceStore(self.store_dir)
                    name, length, instance = triple
                    if not store.contains(name, length, instance, _JUNK_LEN):
                        trace = trace_for(name, length, instance)
                        store.save(
                            PackedTrace.from_trace(trace), name, length, instance
                        )
                    packed_triples.add(triple)
                if unit.config is not None:
                    config = unit.config
                    if isinstance(config, str):
                        config = get_config(config)
                    warm_sets.setdefault(
                        (config.params.memory, unit.triples), None
                    )
        for memory_params, triples in warm_sets:
            traces = [trace_for(*t) for t in triples]
            ensure_warm_snapshot(self.store_dir, memory_params, traces)

    def run_one(self, job):
        """Execute a single job inline (cache-aware)."""
        self.jobs_run += 1
        return job.execute(self.cache)
