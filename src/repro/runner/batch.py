"""BatchRunner: fan simulation jobs out over worker processes.

The experiment drivers describe each simulation as a :class:`SimJob`
(picklable, content-hashable) and hand lists of them to
:meth:`BatchRunner.run`, which preserves order: ``results[i]`` is the
outcome of ``jobs[i]`` whether the batch ran inline or across processes.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.config import MicroarchConfig
from repro.core.simulation import SimResult, run_simulation
from repro.runner.cache import ResultCache

__all__ = ["BatchRunner", "SimJob", "resolve_workers"]

#: Fewer jobs than this run inline: process spawn + pickle overhead would
#: exceed the win (a full-length run takes ~100 ms, a screen far less).
_MIN_PARALLEL_JOBS = 3


@dataclass(frozen=True)
class SimJob:
    """One :func:`~repro.core.simulation.run_simulation` call, as data.

    ``seed`` namespaces the synthetic-trace generation (the paper's fixed
    traces are seed 0); it participates in the cache key so alternative
    trace draws never collide.
    """

    config: Union[str, MicroarchConfig]
    benchmarks: Tuple[str, ...]
    mapping: Tuple[int, ...]
    commit_target: int
    trace_length: Optional[int] = None
    warmup: bool = True
    max_cycles: Optional[int] = None
    seed: int = 0

    def execute(self) -> SimResult:
        """Run the simulation described by this job (in this process)."""
        return run_simulation(
            self.config,
            self.benchmarks,
            self.mapping,
            self.commit_target,
            trace_length=self.trace_length,
            warmup=self.warmup,
            max_cycles=self.max_cycles,
            seed=self.seed,
        )


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count: explicit argument > ``REPRO_WORKERS`` > cpu count."""
    if workers is not None:
        return max(1, workers)
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from None
    return os.cpu_count() or 1


# Module-level so ProcessPoolExecutor can pickle it by reference. The
# worker consults/populates the shared on-disk cache itself, so cache
# hits skip the simulation entirely even inside the pool.
_WORKER_CACHE_DIR: Optional[str] = None


def _init_worker(cache_dir: Optional[str]) -> None:
    global _WORKER_CACHE_DIR
    _WORKER_CACHE_DIR = cache_dir


def _execute_job(job: SimJob) -> SimResult:
    if _WORKER_CACHE_DIR is not None:
        cache = ResultCache(_WORKER_CACHE_DIR)
        hit = cache.get(job)
        if hit is not None:
            return hit
        result = job.execute()
        cache.put(job, result)
        return result
    return job.execute()


class BatchRunner:
    """Execute batches of :class:`SimJob` with optional parallelism.

    Parameters
    ----------
    workers:
        Process count; defaults to ``REPRO_WORKERS`` or the cpu count.
        ``1`` disables multiprocessing entirely (pure sequential).
    cache_dir:
        Directory for the on-disk result cache; defaults to the
        ``REPRO_RESULT_CACHE`` environment variable; None disables it.

    Results are independent of the worker count — simulations are pure
    functions of their job — so callers may treat ``workers`` purely as a
    throughput knob.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[Union[str, os.PathLike]] = None,
    ) -> None:
        self._pool: Optional[ProcessPoolExecutor] = None  # before any raise
        self.workers = resolve_workers(workers)
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_RESULT_CACHE") or None
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.cache = ResultCache(self.cache_dir) if self.cache_dir else None
        self.jobs_run = 0

    # -- lifecycle ---------------------------------------------------------
    #
    # The worker pool persists across run() calls so an experiment sweep
    # pays process start-up once and the workers' process-local trace /
    # warm-state caches stay hot between batches.

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    # -- execution ---------------------------------------------------------

    def run(self, jobs: Sequence[SimJob]) -> List[SimResult]:
        """Execute every job; ``results[i]`` corresponds to ``jobs[i]``."""
        jobs = list(jobs)
        self.jobs_run += len(jobs)
        if self.workers <= 1 or len(jobs) < _MIN_PARALLEL_JOBS:
            return [_run_one(job, self.cache) for job in jobs]
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self.cache_dir,),
            )
        chunksize = max(1, len(jobs) // (self.workers * 4))
        return list(self._pool.map(_execute_job, jobs, chunksize=chunksize))

    def run_one(self, job: SimJob) -> SimResult:
        """Execute a single job inline (cache-aware)."""
        self.jobs_run += 1
        return _run_one(job, self.cache)


def _run_one(job: SimJob, cache: Optional[ResultCache]) -> SimResult:
    if cache is not None:
        hit = cache.get(job)
        if hit is not None:
            return hit
        result = job.execute()
        cache.put(job, result)
        return result
    return job.execute()
