"""Crash-consistent, filesystem-backed job queue for remote workers.

One directory is the whole coordination surface between the
:class:`~repro.runner.distributed.executor.DistributedExecutor` front
end and a fleet of ``repro worker`` processes — no broker, no sockets,
nothing that can itself crash.  Every record is a file, every write is
atomic, and every multi-party decision is settled by a filesystem
primitive that the kernel serializes:

``tasks/<task_id>.task``
    One enqueued job (pickled), written via temp-file + ``rename`` so a
    writer killed mid-write leaves only an ignorable ``*.tmp`` orphan,
    never a torn record.  Speculative re-dispatches are full task
    records named ``<base>~s<n>`` — the same payload under a second
    claimable identity (see :func:`base_task_id`).

``leases/<task_id>.lease``
    Ownership of a task.  Claimed with ``O_CREAT | O_EXCL`` — exactly
    one claimant wins, however many workers race — and carrying
    ``{owner, expiry}``.  The owner *renews* the lease (atomic rewrite)
    while it executes; a worker that dies or wedges stops renewing and
    the lease expires.  Reclaiming an expired lease is a ``rename`` to a
    unique tombstone: two racing reclaimers cannot both succeed, because
    the second ``rename`` of a gone file raises.  A lease file whose
    payload is unreadable (claimant died between ``open`` and ``write``)
    is still a valid claim: its age falls back to the file mtime.

``results/<base_id>.result``
    The published outcome.  Publication is *first-wins*: the payload is
    fully written and fsynced to a temp file, then ``os.link``\\ ed to
    the final name — the second publisher (a speculative duplicate, or
    a stale-leased worker racing its reclaimer) atomically loses and
    discards.  Execution is idempotent (jobs are pure functions of
    their cache identity), so whichever copy wins, the bytes are the
    same; first-wins just keeps the accounting exact.

``failures/<base_id>.a<n>``
    One failed execution, its 1-based ordinal claimed with
    ``O_CREAT | O_EXCL`` (the same protocol the fault harness uses), so
    the attempt budget is agreed machine-wide without locks.

``workers/<worker_id>.json``
    Worker registration + heartbeat (atomic rewrite each beat).  The
    front end's grace window and fleet-liveness checks read these.

``stop``
    Fleet shutdown marker: workers exit their poll loop when it
    appears.

``config.json``
    Front-end-published execution context (result-cache and shared
    trace-store directories) so ``repro worker --queue DIR`` needs no
    other flags.
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import time
import uuid
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.ioutil import atomic_write_bytes

__all__ = ["JobQueue", "Lease", "base_task_id"]

logger = logging.getLogger(__name__)

#: Suffix separating a speculative copy from its base task id.
_SPEC_SEP = "~"


def base_task_id(task_id: str) -> str:
    """The identity a task's result is published under: speculative
    copies (``<base>~s<n>``) collapse onto their base task."""
    return task_id.split(_SPEC_SEP, 1)[0]


class Lease:
    """A parsed lease file: who owns a task and until when."""

    __slots__ = ("task_id", "owner", "expiry", "path")

    def __init__(self, task_id: str, owner: str, expiry: float, path: Path):
        self.task_id = task_id
        self.owner = owner
        self.expiry = expiry
        self.path = path

    def expired(self, now: Optional[float] = None) -> bool:
        return (now if now is not None else time.time()) >= self.expiry


class JobQueue:
    """Filesystem-backed task queue (see the module docstring for the
    on-disk protocol).  Safe for any number of concurrent front ends and
    workers on one filesystem; every operation tolerates files vanishing
    underneath it (another party got there first)."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.tasks_dir = self.root / "tasks"
        self.leases_dir = self.root / "leases"
        self.results_dir = self.root / "results"
        self.failures_dir = self.root / "failures"
        self.workers_dir = self.root / "workers"
        for d in (self.tasks_dir, self.leases_dir, self.results_dir,
                  self.failures_dir, self.workers_dir):
            d.mkdir(parents=True, exist_ok=True)

    # -- shared execution context -----------------------------------------

    def write_config(self, cache_dir: Optional[str],
                     store_dir: Optional[str]) -> None:
        """Publish the front end's cache/store directories so bare
        ``repro worker --queue DIR`` invocations share them."""
        atomic_write_bytes(
            self.root / "config.json",
            json.dumps(
                {"cache_dir": cache_dir, "store_dir": store_dir}
            ).encode(),
        )

    def read_config(self) -> dict:
        try:
            return json.loads((self.root / "config.json").read_text())
        except (OSError, ValueError):
            return {}

    # -- task records ------------------------------------------------------

    def _task_path(self, task_id: str) -> Path:
        return self.tasks_dir / f"{task_id}.task"

    def enqueue(self, task_id: str, job) -> None:
        """Durably enqueue ``job`` under ``task_id`` (atomic write)."""
        atomic_write_bytes(self._task_path(task_id), pickle.dumps(job))

    def load_task(self, task_id: str):
        """The pickled job, or None when the record is gone or torn."""
        try:
            return pickle.loads(self._task_path(task_id).read_bytes())
        except FileNotFoundError:
            return None
        except Exception as exc:  # torn/corrupt record: not claimable
            logger.warning("unreadable task record %s (%s: %s)",
                           task_id, type(exc).__name__, exc)
            return None

    def task_ids(self) -> List[str]:
        """Enqueued task ids, oldest first (``*.tmp`` orphans of killed
        writers are invisible by construction)."""
        entries = []
        for p in self.tasks_dir.iterdir():
            if not p.name.endswith(".task"):
                continue
            try:
                entries.append((p.stat().st_mtime_ns, p.name[:-5]))
            except FileNotFoundError:
                continue  # consumed while scanning
        entries.sort()
        return [tid for _, tid in entries]

    def remove_task(self, task_id: str) -> None:
        try:
            self._task_path(task_id).unlink()
        except FileNotFoundError:
            pass

    # -- leases ------------------------------------------------------------

    def _lease_path(self, task_id: str) -> Path:
        return self.leases_dir / f"{task_id}.lease"

    def try_claim(self, task_id: str, owner: str, ttl: float) -> bool:
        """Claim ``task_id`` for ``owner``: exactly one concurrent
        claimant succeeds (``O_CREAT | O_EXCL``)."""
        path = self._lease_path(task_id)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            payload = json.dumps(
                {"owner": owner, "expiry": time.time() + ttl}
            ).encode()
            os.write(fd, payload)
            os.fsync(fd)
        finally:
            os.close(fd)
        return True

    def renew(self, task_id: str, owner: str, ttl: float) -> None:
        """Heartbeat: push the lease expiry ``ttl`` seconds out (atomic
        rewrite — readers always see a complete payload)."""
        atomic_write_bytes(
            self._lease_path(task_id),
            json.dumps({"owner": owner, "expiry": time.time() + ttl}).encode(),
        )

    def release(self, task_id: str, owner: Optional[str] = None) -> None:
        """Drop the lease on ``task_id``.  With ``owner`` given, only a
        lease still held by that owner is dropped — a worker returning
        from a long execution or backoff must not unlink a lease that
        was reclaimed and re-claimed by someone else meanwhile.  (The
        check-then-unlink race that remains is harmless: execution is
        idempotent and publishing first-wins.)"""
        if owner is not None:
            lease = self.read_lease(task_id)
            if lease is None or lease.owner not in (owner, "<unknown>"):
                return
        try:
            self._lease_path(task_id).unlink()
        except FileNotFoundError:
            pass

    def read_lease(self, task_id: str,
                   default_ttl: float = 30.0) -> Optional[Lease]:
        """The current lease on ``task_id`` or None.  A lease whose
        payload is unreadable (claimant died between create and write)
        still counts as claimed: its expiry falls back to the file
        mtime + ``default_ttl``."""
        path = self._lease_path(task_id)
        try:
            payload = json.loads(path.read_text())
            return Lease(task_id, str(payload["owner"]),
                         float(payload["expiry"]), path)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            try:
                mtime = path.stat().st_mtime
            except FileNotFoundError:
                return None
            return Lease(task_id, "<unknown>", mtime + default_ttl, path)

    def leases(self, default_ttl: float = 30.0) -> List[Lease]:
        out = []
        for p in self.leases_dir.iterdir():
            if not p.name.endswith(".lease"):
                continue
            lease = self.read_lease(p.name[: -len(".lease")], default_ttl)
            if lease is not None:
                out.append(lease)
        return out

    def reclaim(self, task_id: str) -> bool:
        """Break an (expired) lease; True for the exactly-one winner.

        The lease is renamed to a unique tombstone first: of two racing
        reclaimers, the loser's ``rename`` finds the source gone and
        raises, so precisely one party proceeds to make the task
        claimable again.  Callers check expiry first; the rename is the
        decision, not the policy.

        Tombstones are kept (until batch cleanup) as the durable record
        of reclamation events: workers and the front end race to
        reclaim, so the front end's own wins undercount — the
        :class:`~repro.runner.resilience.RunReport` reads
        :meth:`reclaim_count` instead.
        """
        path = self._lease_path(task_id)
        tombstone = path.with_name(path.name + f".rip-{uuid.uuid4().hex[:8]}")
        try:
            os.rename(path, tombstone)
        except FileNotFoundError:
            return False
        return True

    def reclaim_count(self, prefix: str = "") -> int:
        """How many leases (of one batch, or all) have been reclaimed —
        by anyone: the tombstone is the event record."""
        return sum(
            1
            for p in self.leases_dir.iterdir()
            if ".rip-" in p.name and p.name.startswith(prefix)
        )

    # -- results -----------------------------------------------------------

    def _result_path(self, base_id: str) -> Path:
        return self.results_dir / f"{base_id}.result"

    def publish(self, task_id: str, record: dict) -> bool:
        """Publish an execution's outcome under the task's *base* id.

        First-wins: the payload is fully written + fsynced to a temp
        file, then hard-linked to the final name.  Returns False when
        another execution (a speculative twin, a stale-leased original)
        already published — the bytes would have been identical anyway
        (idempotent jobs), the loser just discards.
        """
        final = self._result_path(base_task_id(task_id))
        tmp = final.with_name(final.name + f".pub-{uuid.uuid4().hex[:8]}.tmp")
        payload = pickle.dumps(record)
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        try:
            os.link(tmp, final)
            return True
        except FileExistsError:
            return False
        finally:
            try:
                tmp.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    def load_result(self, base_id: str) -> Optional[dict]:
        """The published record for ``base_id`` or None (a torn read is
        impossible: the link only ever exposes a complete payload)."""
        try:
            return pickle.loads(self._result_path(base_id).read_bytes())
        except FileNotFoundError:
            return None

    def has_result(self, base_id: str) -> bool:
        return self._result_path(base_id).exists()

    # -- failures ----------------------------------------------------------

    def record_failure(self, task_id: str, error: str) -> int:
        """Claim the next failure ordinal for the task's base id (the
        ``O_CREAT | O_EXCL`` counter protocol); returns the 1-based
        attempt number this failure was."""
        base = base_task_id(task_id)
        n = 1
        while True:
            marker = self.failures_dir / f"{base}.a{n}"
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                n += 1
                continue
            try:
                os.write(fd, error.encode(errors="replace"))
            finally:
                os.close(fd)
            return n

    def failure_count(self, base_id: str) -> int:
        n = 0
        while (self.failures_dir / f"{base_id}.a{n + 1}").exists():
            n += 1
        return n

    def last_failure(self, base_id: str) -> Optional[str]:
        n = self.failure_count(base_id)
        if not n:
            return None
        try:
            return (self.failures_dir / f"{base_id}.a{n}").read_text(
                errors="replace"
            )
        except OSError:  # pragma: no cover - race with cleanup
            return None

    # -- worker registry ---------------------------------------------------

    def heartbeat_worker(self, worker_id: str) -> None:
        """Register / refresh a worker's liveness record."""
        atomic_write_bytes(
            self.workers_dir / f"{worker_id}.json",
            json.dumps(
                {"worker": worker_id, "pid": os.getpid(), "time": time.time()}
            ).encode(),
        )

    def unregister_worker(self, worker_id: str) -> None:
        try:
            (self.workers_dir / f"{worker_id}.json").unlink()
        except FileNotFoundError:
            pass

    def live_workers(self, ttl: float) -> Dict[str, float]:
        """Workers whose heartbeat is fresher than ``ttl`` seconds."""
        now = time.time()
        out: Dict[str, float] = {}
        for p in self.workers_dir.iterdir():
            if not p.name.endswith(".json"):
                continue
            try:
                payload = json.loads(p.read_text())
                beat = float(payload["time"])
            except (OSError, ValueError, KeyError, TypeError):
                continue
            if now - beat < ttl:
                out[p.name[: -len(".json")]] = beat
        return out

    # -- fleet control -----------------------------------------------------

    @property
    def stop_path(self) -> Path:
        return self.root / "stop"

    def request_stop(self) -> None:
        """Ask the worker fleet to exit after the current task."""
        self.stop_path.touch()

    def stop_requested(self) -> bool:
        return self.stop_path.exists()

    def clear_stop(self) -> None:
        try:
            self.stop_path.unlink()
        except FileNotFoundError:
            pass

    # -- batch GC ----------------------------------------------------------

    def cleanup_batch(self, prefix: str) -> None:
        """Remove every artifact of one batch (tasks, leases, results,
        failure notes) once its results are collected.  Best-effort: a
        straggler republishing later leaves an orphan the next cleanup
        sweeps; ids are batch-unique so orphans can never collide."""
        for d, suffix in (
            (self.tasks_dir, ".task"),
            (self.leases_dir, ".lease"),
            (self.results_dir, ".result"),
            (self.failures_dir, ""),
        ):
            for p in list(d.iterdir()):
                if not p.name.startswith(prefix):
                    continue
                try:
                    p.unlink()
                except (FileNotFoundError, IsADirectoryError):
                    continue

    # -- introspection -----------------------------------------------------

    def pending(self) -> List[Tuple[str, bool]]:
        """(task_id, leased) for every task without a published result."""
        out = []
        for tid in self.task_ids():
            if self.has_result(base_task_id(tid)):
                continue
            out.append((tid, self._lease_path(tid).exists()))
        return out
