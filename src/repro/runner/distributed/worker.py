"""The remote worker: pull job bundles, renew leases, publish results.

``repro worker --queue DIR`` runs this loop.  A worker is deliberately
dumb — all batch intelligence (ordering, speculation, fallback) lives in
the front end — and deliberately killable: every step is crash-safe
because the queue's on-disk protocol is (see
:mod:`repro.runner.distributed.queue`).

Per task the worker:

1. **claims** the oldest unowned, unfailed-out task (``O_CREAT|O_EXCL``
   lease with its id and an expiry);
2. **executes** it through the same worker entry discipline as the
   local pool — the deterministic fault-injection hook first (scoped
   ``context="worker"``), then the job's cache-aware ``execute`` against
   the shared content-addressed :class:`~repro.runner.cache.ResultCache`
   — while a background thread renews the lease every
   ``heartbeat_interval`` seconds (a hung or killed worker stops
   renewing, the lease expires, and the front end reclaims it);
3. **publishes** ``{result, stats, seconds, worker, attempt}`` under the
   task's base id (first-wins: a speculative twin may have beaten it —
   harmless, execution is idempotent);
4. **releases** the lease.

A failed execution claims the next machine-wide failure ordinal for the
task; while attempts remain the worker backs off (the shared
:meth:`~repro.runner.resilience.RetryPolicy.backoff_for` schedule, with
``REPRO_RETRY_JITTER`` de-synchronizing a fleet that failed in lockstep)
before releasing the lease so someone — possibly itself — retries.  A
task at its attempt budget is left alone; the front end converts the
failure notes into the standard :class:`~repro.runner.resilience.JobError`.

The injected ``stale_lease`` fault op (worker-scoped) freezes lease
renewal and stalls before executing: the lease expires under a live
worker, the front end reclaims and re-dispatches, and the first-wins
publish settles the race — the takeover scenario the chaos lane pins.
"""

from __future__ import annotations

import logging
import os
import random
import threading
import time
from typing import Optional

from repro.runner.cache import ResultCache
from repro.runner.distributed.queue import JobQueue, base_task_id
from repro.runner.resilience import RetryPolicy

__all__ = ["Worker", "run_worker"]

logger = logging.getLogger(__name__)


class _LeaseRenewer(threading.Thread):
    """Renews one task's lease (and the worker heartbeat) until stopped.

    ``freeze()`` stops renewals without stopping execution — the
    ``stale_lease`` fault uses it to let a lease expire under a live
    worker.
    """

    def __init__(self, queue: JobQueue, task_id: str, owner: str,
                 ttl: float, interval: float) -> None:
        super().__init__(daemon=True)
        self.queue = queue
        self.task_id = task_id
        self.owner = owner
        self.ttl = ttl
        self.interval = interval
        self._stop = threading.Event()
        self._frozen = threading.Event()

    def freeze(self) -> None:
        self._frozen.set()

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:  # pragma: no cover - timing-driven thread body
        while not self._stop.wait(self.interval):
            if self._frozen.is_set():
                continue
            try:
                self.queue.renew(self.task_id, self.owner, self.ttl)
                self.queue.heartbeat_worker(self.owner)
            except OSError as exc:
                logger.warning("lease renewal failed for %s: %s",
                               self.task_id, exc)


class Worker:
    """One worker process' pull-execute-publish loop.

    Parameters
    ----------
    queue_dir:
        The shared queue directory (the whole coordination surface).
    worker_id:
        Stable identity for leases/heartbeats; defaults to
        ``w<hostpid>``.
    lease_ttl / heartbeat_interval:
        Lease lifetime and renewal cadence (renewal must outpace expiry;
        the default interval is a third of the ttl).
    policy:
        Shared :class:`~repro.runner.resilience.RetryPolicy` — the
        worker consults ``max_attempts`` (stop retrying a poisoned
        task) and ``backoff_for`` (post-failure delay).
    cache_dir / store_dir:
        Result cache and packed-trace/warm-snapshot store; default to
        the queue's ``config.json`` published by the front end.
    max_tasks / idle_exit:
        Optional exit conditions (tests and bounded fleets); a ``stop``
        marker in the queue always exits the loop.
    """

    def __init__(
        self,
        queue_dir: str | os.PathLike,
        worker_id: Optional[str] = None,
        lease_ttl: float = 10.0,
        heartbeat_interval: Optional[float] = None,
        policy: Optional[RetryPolicy] = None,
        cache_dir: Optional[str] = None,
        store_dir: Optional[str] = None,
        max_tasks: Optional[int] = None,
        idle_exit: Optional[float] = None,
        poll_interval: float = 0.05,
    ) -> None:
        self.queue = JobQueue(queue_dir)
        self.worker_id = worker_id or f"w{os.getpid()}"
        self.lease_ttl = max(0.2, float(lease_ttl))
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else self.lease_ttl / 3.0
        )
        self.policy = policy if policy is not None else RetryPolicy.from_env()
        config = self.queue.read_config()
        self.cache_dir = cache_dir if cache_dir is not None else config.get("cache_dir")
        self.store_dir = store_dir if store_dir is not None else config.get("store_dir")
        self.cache = ResultCache(self.cache_dir) if self.cache_dir else None
        self.max_tasks = max_tasks
        self.idle_exit = idle_exit
        self.poll_interval = poll_interval
        self.tasks_done = 0
        seed = os.environ.get("REPRO_RETRY_JITTER_SEED")
        self._rng = random.Random(
            f"{seed}:{self.worker_id}" if seed else None
        )

    # -- environment -------------------------------------------------------

    def _setup_process(self) -> None:
        """Same process discipline as the local pool's initializer: no
        cyclic GC for the acyclic simulator graph, shared stores wired."""
        import gc

        gc.disable()
        gc.freeze()
        if self.store_dir:
            from repro.core.processor import set_warm_store
            from repro.trace.stream import set_trace_store

            set_trace_store(self.store_dir, save_on_generate=False)
            set_warm_store(self.store_dir)

    # -- claiming ----------------------------------------------------------

    def _claim_next(self):
        """The oldest claimable task: no published result, no live lease,
        attempt budget not exhausted.  Expired leases are reclaimed on
        the way (the worker-side half of self-healing)."""
        for task_id in self.queue.task_ids():
            base = base_task_id(task_id)
            if self.queue.has_result(base):
                continue
            if self.queue.failure_count(base) >= self.policy.max_attempts:
                continue  # poisoned: the front end raises, not us
            lease = self.queue.read_lease(task_id, self.lease_ttl)
            if lease is not None:
                if not lease.expired():
                    continue
                if not self.queue.reclaim(task_id):
                    continue  # another reclaimer won the rename
            if self.queue.try_claim(task_id, self.worker_id, self.lease_ttl):
                job = self.queue.load_task(task_id)
                if job is None:
                    # Record consumed (batch cleaned up) or torn: drop
                    # the lease and move on.
                    self.queue.release(task_id, self.worker_id)
                    continue
                return task_id, job
        return None

    # -- execution ---------------------------------------------------------

    def _execute_claimed(self, task_id: str, job) -> None:
        from repro.runner.faults import maybe_inject_fault

        renewer = _LeaseRenewer(self.queue, task_id, self.worker_id,
                                self.lease_ttl, self.heartbeat_interval)
        renewer.start()
        t0 = time.monotonic()
        try:
            directive = maybe_inject_fault(job, context="worker")
            if directive is not None and directive.op == "stale_lease":
                # Chaos: stop renewing and stall past the ttl, then
                # execute anyway — the front end reclaims the expired
                # lease meanwhile and the publish race below settles it.
                renewer.freeze()
                time.sleep(directive.hang_seconds)
            before = self.cache.corrupt_fallbacks if self.cache else 0
            result = job.execute(self.cache)
            stats = {
                "cache_fallbacks":
                    (self.cache.corrupt_fallbacks - before) if self.cache else 0
            }
        except (KeyboardInterrupt, SystemExit):
            renewer.stop()
            self.queue.release(task_id, self.worker_id)
            raise
        except BaseException as exc:
            renewer.stop()
            attempt = self.queue.record_failure(
                task_id, f"{type(exc).__name__}: {exc}"
            )
            logger.warning("task %s failed (attempt %d/%d): %s: %s",
                           task_id, attempt, self.policy.max_attempts,
                           type(exc).__name__, exc)
            if attempt < self.policy.max_attempts:
                # Hold the lease through the backoff so the retry is
                # paced, then release it for any worker to take.
                time.sleep(self.policy.backoff_for(attempt, rng=self._rng))
            self.queue.release(task_id, self.worker_id)
            return
        renewer.stop()
        won = self.queue.publish(task_id, {
            "result": result,
            "stats": stats,
            "seconds": time.monotonic() - t0,
            "worker": self.worker_id,
            "task_id": task_id,
            "attempt": self.queue.failure_count(base_task_id(task_id)) + 1,
        })
        if not won:
            logger.info("task %s: another execution published first "
                        "(idempotent — identical bytes)", task_id)
        self.queue.release(task_id, self.worker_id)
        self.tasks_done += 1

    # -- the loop ----------------------------------------------------------

    def run(self) -> int:
        """Pull tasks until stopped; returns the number executed."""
        self._setup_process()
        self.queue.heartbeat_worker(self.worker_id)
        logger.info("worker %s serving queue %s", self.worker_id,
                    self.queue.root)
        last_activity = time.monotonic()
        try:
            while not self.queue.stop_requested():
                if (self.max_tasks is not None
                        and self.tasks_done >= self.max_tasks):
                    break
                claimed = self._claim_next()
                if claimed is None:
                    if (self.idle_exit is not None
                            and time.monotonic() - last_activity
                            > self.idle_exit):
                        break
                    self.queue.heartbeat_worker(self.worker_id)
                    time.sleep(self.poll_interval)
                    continue
                self._execute_claimed(*claimed)
                last_activity = time.monotonic()
        finally:
            self.queue.unregister_worker(self.worker_id)
        return self.tasks_done


def run_worker(args) -> int:
    """``repro worker`` CLI entry point (argparse namespace in, exit
    status out)."""
    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    worker = Worker(
        args.queue,
        worker_id=args.worker_id,
        lease_ttl=args.lease_ttl,
        heartbeat_interval=args.heartbeat,
        cache_dir=args.cache,
        store_dir=args.store,
        max_tasks=args.max_tasks,
        idle_exit=args.idle_exit,
    )
    done = worker.run()
    logger.info("worker %s exiting after %d task(s)", worker.worker_id, done)
    return 0
