"""The front-end half of distributed execution: enqueue, watch, heal.

:class:`DistributedExecutor` sits behind
:class:`~repro.runner.batch.BatchRunner` exactly where the local
:class:`~repro.runner.resilience.SupervisedExecutor` does, and makes the
same promise — ``results[i]`` is the bit-identical outcome of
``jobs[i]`` no matter what broke along the way — against a fleet of
``repro worker`` processes it does not control:

* **durable enqueue** — every job becomes an atomic task record in the
  :class:`~repro.runner.distributed.queue.JobQueue`; a front end killed
  after enqueue leaves nothing torn (orphaned records are swept by the
  next batch's cleanup of its own prefix and are harmless meanwhile —
  execution is idempotent and cache-backed).
* **grace-window degradation** — if no live worker registers within
  ``grace`` seconds of enqueue, the batch is withdrawn and handed to the
  local fallback (the supervised pool), so a sweep never blocks on an
  empty fleet.
* **lease reclamation** — a worker that dies or wedges stops renewing
  its lease; the watcher reclaims expired leases (exactly-one-winner
  rename) so the task becomes claimable again.  Workers reclaim too —
  self-healing is symmetric.
* **speculative re-dispatch** — once the completion-time distribution is
  known (``spec_quantile`` of the batch done), a task leased for longer
  than ``spec_factor`` × the median duration gets a speculative twin
  (``<base>~s1``).  First published result wins; the loser's bytes would
  have been identical (idempotency), so speculation is pure tail-latency
  insurance, never a correctness risk.
* **work stealing** — a straggling *continuation bundle* does better
  than a whole twin: the runs its worker already finished sit in the
  shared result cache (bundles cache per run), so the front end probes
  the cache for the done prefix, splits the un-started tail at run
  boundaries (:func:`~repro.runner.continuation.split_bundle`) and
  enqueues the parts as fresh sub-tasks (``<base>+p<j>`` — a separator
  the twin machinery ignores, so each part publishes under its own
  identity).  The bundle resolves from cached head + part results,
  byte-identical to unsplit execution; the straggler publishing first
  still wins.  ``REPRO_STEAL_PARTS`` fixes the part count (``0``
  disables stealing, falling back to whole twins); unset sizes it to
  the live fleet.
* **failure accounting** — worker-side failures claim machine-wide
  ordinals; when a task's count reaches the shared
  :class:`~repro.runner.resilience.RetryPolicy` attempt budget the
  watcher raises the standard :class:`~repro.runner.resilience.JobError`
  (last failure chained in the message), matching the local contract.
* **stall fallback** — if the fleet goes dark mid-batch (no live
  heartbeat past the grace window) or no result lands for
  ``stall_seconds``, the remaining jobs drain through the local
  fallback.  Termination is unconditional: every path either completes,
  degrades, or raises.

Every recovery event lands in the shared
:class:`~repro.runner.resilience.RunReport` (``enqueued`` /
``lease_reclaims`` / ``speculations`` / ``local_fallbacks``), so a sweep
reports how eventful its distributed execution was.
"""

from __future__ import annotations

import logging
import os
import statistics
import time
import uuid
from typing import Callable, Dict, List, Optional, Sequence

from repro.runner.distributed.queue import JobQueue, base_task_id
from repro.runner.resilience import JobError, RetryPolicy, RunReport

__all__ = ["DistributedExecutor"]

logger = logging.getLogger(__name__)

#: Suffix marking a speculative twin's task id (``<base>~s<n>``).
_SPEC_MARK = "~s"

#: Suffix marking a stolen sub-task (``<base>+p<j>``).  Deliberately not
#: ``~``: :func:`~repro.runner.distributed.queue.base_task_id` collapses
#: ``~`` suffixes onto the original task (first-wins publish), while
#: every stolen part must publish under its *own* identity.
_PART_MARK = "+p"


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        logger.warning("ignoring %s=%r: not a number", name, raw)
        return default


def _env_steal_parts() -> Optional[int]:
    raw = os.environ.get("REPRO_STEAL_PARTS")
    if not raw:
        return None
    try:
        return max(0, int(raw))
    except ValueError:
        logger.warning("ignoring REPRO_STEAL_PARTS=%r: not an integer", raw)
        return None


class DistributedExecutor:
    """Enqueue-and-watch driver over a :class:`JobQueue` worker fleet.

    Parameters (environment default in brackets; all timing knobs are
    seconds):

    grace [``REPRO_DIST_GRACE``, 5.0]
        How long to wait for a live worker before degrading the batch to
        the local fallback; also the patience for a fleet that goes dark
        mid-batch.
    lease_ttl [``REPRO_LEASE_TTL``, 10.0]
        Lease lifetime granted to workers and assumed when reading
        unparseable leases.  Workers renew at a third of this.
    spec_quantile [``REPRO_SPEC_QUANTILE``, 0.5]
        Fraction of the batch that must have completed before straggler
        speculation arms (the deadline needs a distribution to quantile).
    spec_factor [``REPRO_SPEC_FACTOR``, 3.0]
        A task leased longer than ``spec_factor * median(duration)``
        (floored at ``spec_min_seconds``) gets one speculative twin.
    stall_seconds [``REPRO_DIST_STALL``, 60.0]
        Result-progress watchdog: this long with pending tasks and no
        result at all drains the remainder through the local fallback.
    """

    def __init__(
        self,
        queue: JobQueue,
        policy: Optional[RetryPolicy] = None,
        report: Optional[RunReport] = None,
        grace: Optional[float] = None,
        lease_ttl: Optional[float] = None,
        poll_interval: float = 0.02,
        spec_quantile: Optional[float] = None,
        spec_factor: Optional[float] = None,
        spec_min_seconds: float = 1.0,
        stall_seconds: Optional[float] = None,
        cache=None,
        steal_parts: Optional[int] = None,
    ) -> None:
        self.queue = queue
        #: shared ResultCache for the work-stealer's done-prefix probe
        #: (None disables stealing; stragglers get whole twins)
        self.cache = cache
        #: stolen-sub-task count per straggler (``REPRO_STEAL_PARTS``;
        #: 0 disables stealing, None sizes to the live fleet)
        self.steal_parts = (
            steal_parts if steal_parts is not None else _env_steal_parts()
        )
        self.policy = policy if policy is not None else RetryPolicy.from_env()
        self.report = report if report is not None else RunReport()
        self.grace = (
            grace if grace is not None else _env_float("REPRO_DIST_GRACE", 5.0)
        )
        self.lease_ttl = (
            lease_ttl
            if lease_ttl is not None
            else _env_float("REPRO_LEASE_TTL", 10.0)
        )
        self.poll_interval = poll_interval
        self.spec_quantile = (
            spec_quantile
            if spec_quantile is not None
            else _env_float("REPRO_SPEC_QUANTILE", 0.5)
        )
        self.spec_factor = (
            spec_factor
            if spec_factor is not None
            else _env_float("REPRO_SPEC_FACTOR", 3.0)
        )
        self.spec_min_seconds = spec_min_seconds
        self.stall_seconds = (
            stall_seconds
            if stall_seconds is not None
            else _env_float("REPRO_DIST_STALL", 60.0)
        )

    # -- helpers -----------------------------------------------------------

    def _live_workers(self) -> Dict[str, float]:
        # A polling worker heartbeats every lease_ttl/3; treat anything
        # fresher than a full ttl as alive.
        return self.queue.live_workers(self.lease_ttl)

    # -- work stealing -----------------------------------------------------

    def _try_steal(self, job, base: str, steals: Dict[str, dict]) -> bool:
        """Steal a straggling bundle's un-started tail into sub-tasks.

        Bundles cache per *run*, so the shared cache knows exactly how
        far the straggler got: probe forward for the first uncached run
        (``cut``), split the tail at run boundaries and enqueue each
        part as ``<base>+p<j>``.  Returns True when a steal was set up
        (the caller then skips the whole-bundle twin).  A fully-cached
        bundle steals zero parts — the assembly path resolves it from
        the cache alone on the next loop pass."""
        if self.cache is None or self.steal_parts == 0:
            return False
        from repro.runner.continuation import ContinuationJob, split_bundle

        if not isinstance(job, ContinuationJob) or len(job.runs) < 2:
            return False
        runs = job.runs
        cut = 0
        while cut < len(runs) and self.cache.contains(runs[cut].as_sim_job()):
            cut += 1
        tail = runs[cut:]
        part_ids = []
        if tail:
            k = self.steal_parts or len(self._live_workers()) or 1
            parts = split_bundle(ContinuationJob(runs=tail), max(1, k))
            for j, part in enumerate(parts):
                pid = f"{base}{_PART_MARK}{j}"
                self.queue.enqueue(pid, part)
                part_ids.append(pid)
        steals[base] = {
            "cut": cut,
            "part_ids": part_ids,
            "collected": [None] * len(part_ids),
        }
        self.report.steals += 1
        logger.warning(
            "stealing straggler %s: %d/%d run(s) already cached, "
            "%d sub-task(s) enqueued for the tail",
            base, cut, len(runs), len(part_ids),
        )
        return True

    def _assemble_steal(self, job, steal: dict, report: RunReport):
        """The stolen bundle's result tuple: cached head + part results
        concatenated in part order — bit-identical to unsplit execution
        (contiguous split, order-stable join).  A head entry pruned
        between probe and assembly just recomputes inline (idempotent)."""
        head = []
        for run in job.runs[:steal["cut"]]:
            hit = self.cache.get(run.as_sim_job())
            if hit is None:
                hit = run.execute(self.cache)
            head.append(hit)
        tail = []
        for record in steal["collected"]:
            tail.extend(record["result"])
            report.attempts += 1
            report.job_seconds.append(float(record.get("seconds", 0.0)))
            report.absorb_worker_stats(record.get("stats"))
        return tuple(head) + tuple(tail)

    # -- execution ---------------------------------------------------------

    def run(self, jobs: Sequence, fallback: Callable[[List], List]) -> List:
        """Execute ``jobs`` through the worker fleet; ``fallback`` runs a
        job list locally (the supervised path) and is used when the
        fleet never shows up, goes dark, or stalls."""
        jobs = list(jobs)
        if not jobs:
            return []
        prefix = f"b{uuid.uuid4().hex[:10]}"
        task_ids = [f"{prefix}-j{i:04d}" for i in range(len(jobs))]
        for tid, job in zip(task_ids, jobs):
            self.queue.enqueue(tid, job)
        self.report.enqueued += len(jobs)

        # Grace window: a batch with no fleet must not hang — withdraw
        # and run locally.  (Workers that appear mid-wait are used.)
        deadline = time.monotonic() + self.grace
        while not self._live_workers():
            if time.monotonic() >= deadline:
                logger.warning(
                    "no live worker registered within the %.1fs grace "
                    "window; degrading batch of %d to local execution",
                    self.grace, len(jobs),
                )
                self.queue.cleanup_batch(prefix)
                self.report.local_fallbacks += 1
                return fallback(jobs)
            time.sleep(self.poll_interval)

        self.report.batches += 1
        self.report.jobs += len(jobs)
        t0 = time.monotonic()
        try:
            return self._watch(jobs, task_ids, prefix, fallback)
        finally:
            self.report.wall_seconds += time.monotonic() - t0
            # Reclamations are counted from the queue's tombstones, not
            # from this front end's own reclaim wins: surviving workers
            # race us for expired leases and their wins are events too.
            self.report.lease_reclaims += self.queue.reclaim_count(prefix)
            self.queue.cleanup_batch(prefix)

    def _watch(self, jobs: List, task_ids: List[str], prefix: str,
               fallback: Callable[[List], List]) -> List:
        report = self.report
        n = len(jobs)
        results: List = [None] * n
        pending: Dict[str, int] = {tid: i for i, tid in enumerate(task_ids)}
        durations: List[float] = []
        first_leased: Dict[str, float] = {}
        #: task_id -> (wall-clock expiry stamp, monotonic deadline): the
        #: lease file's wall stamp converted to this process' monotonic
        #: clock at first observation, so expiry countdowns survive
        #: wall-clock jumps (see the reclaim section below).
        lease_deadlines: Dict[str, Tuple[float, float]] = {}
        failures_counted: Dict[str, int] = {}
        spec_issued: set = set()
        #: base -> in-progress steal of a straggling bundle's tail
        steals: Dict[str, dict] = {}
        now = time.monotonic()
        last_result = now
        last_live = now

        while pending:
            progressed = False

            # -- harvest published results ----------------------------
            for base in list(pending):
                record = self.queue.load_result(base)
                if record is None:
                    continue
                i = pending.pop(base)
                steals.pop(base, None)  # the straggler won after all
                results[i] = record["result"]
                durations.append(float(record.get("seconds", 0.0)))
                report.attempts += 1
                report.job_seconds.append(float(record.get("seconds", 0.0)))
                report.absorb_worker_stats(record.get("stats"))
                progressed = True

            # -- harvest stolen sub-tasks ------------------------------
            for base, steal in list(steals.items()):
                if base not in pending:
                    del steals[base]
                    continue
                collected = steal["collected"]
                for j, pid in enumerate(steal["part_ids"]):
                    if collected[j] is None:
                        collected[j] = self.queue.load_result(pid)
                if any(record is None for record in collected):
                    continue
                i = pending.pop(base)
                del steals[base]
                results[i] = self._assemble_steal(jobs[i], steal, report)
                progressed = True

            if progressed:
                last_result = time.monotonic()
            if not pending:
                break

            # -- failure accounting (worker-side attempt ordinals) -----
            watched = [(base, base) for base in pending]
            watched.extend(
                (pid, base)
                for base, steal in steals.items()
                if base in pending
                for pid in steal["part_ids"]
            )
            for tid, base in watched:
                count = self.queue.failure_count(tid)
                seen = failures_counted.get(tid, 0)
                if count > seen:
                    failures_counted[tid] = count
                    report.attempts += count - seen
                    report.retries += min(count, self.policy.max_attempts - 1) - min(
                        seen, self.policy.max_attempts - 1
                    )
                if count >= self.policy.max_attempts:
                    report.failures += 1
                    last = self.queue.last_failure(tid) or "unknown error"
                    raise JobError(
                        f"job {pending[base]} ({tid}) failed on {count} "
                        f"distributed attempt(s); last failure: {last}",
                        job=jobs[pending[base]],
                        attempts=count,
                    )

            # -- reclaim expired leases (lost/hung workers) ------------
            # Lease files carry *wall-clock* expiry stamps (the only
            # clock comparable across worker machines), but this front
            # end enforces them on the monotonic clock like every other
            # deadline in this file: each observed stamp is converted to
            # a monotonic deadline exactly once, so an NTP step or
            # suspend/resume mid-wait can neither spuriously expire a
            # healthy lease nor immortalize a dead one.  A renewal
            # writes a fresh stamp, which re-converts.
            active_parts = {
                pid
                for base, steal in steals.items()
                if base in pending
                for pid in steal["part_ids"]
            }
            for lease in self.queue.leases(self.lease_ttl):
                base = base_task_id(lease.task_id)
                # A stolen part's id contains no "~", so its base is
                # itself — track it like a first-class task so a worker
                # dying mid-part still gets its lease reclaimed.
                if base not in pending and base not in active_parts:
                    lease_deadlines.pop(lease.task_id, None)
                    continue
                known = lease_deadlines.get(lease.task_id)
                if known is None or known[0] != lease.expiry:
                    deadline = time.monotonic() + max(
                        0.0, lease.expiry - time.time()
                    )
                    lease_deadlines[lease.task_id] = (lease.expiry, deadline)
                else:
                    deadline = known[1]
                if time.monotonic() >= deadline:
                    if self.queue.reclaim(lease.task_id):
                        logger.warning(
                            "reclaimed expired lease on %s (owner %s)",
                            lease.task_id, lease.owner,
                        )
                        first_leased.pop(lease.task_id, None)
                        lease_deadlines.pop(lease.task_id, None)
                else:
                    first_leased.setdefault(lease.task_id, time.monotonic())

            # -- speculative straggler re-dispatch ---------------------
            done = n - len(pending)
            if durations and done >= max(1, int(self.spec_quantile * n)):
                median = statistics.median(durations)
                threshold = max(self.spec_min_seconds,
                                self.spec_factor * median)
                now = time.monotonic()
                for tid, started in list(first_leased.items()):
                    base = base_task_id(tid)
                    if base not in pending or base in spec_issued:
                        continue
                    if _SPEC_MARK in tid or _PART_MARK in tid:
                        continue  # never speculate on a rescue dispatch
                    if now - started <= threshold:
                        continue
                    spec_issued.add(base)
                    if self._try_steal(jobs[pending[base]], base, steals):
                        logger.warning(
                            "task %s still running after %.2fs (median "
                            "%.2fs); stole its un-started tail",
                            tid, now - started, median,
                        )
                        continue
                    report.speculations += 1
                    logger.warning(
                        "task %s still running after %.2fs (median %.2fs); "
                        "dispatching speculative twin",
                        tid, now - started, median,
                    )
                    self.queue.enqueue(f"{base}{_SPEC_MARK}1", jobs[pending[base]])

            # -- fleet liveness + progress watchdogs -------------------
            now = time.monotonic()
            if self._live_workers():
                last_live = now
            dark = now - last_live > self.grace
            stalled = now - last_result > self.stall_seconds
            if dark or stalled:
                why = ("fleet went dark" if dark
                       else f"no result for {self.stall_seconds:.0f}s")
                logger.warning(
                    "%s with %d task(s) pending; draining remainder "
                    "through the local fallback", why, len(pending),
                )
                remaining = sorted(pending.values())
                # The fallback re-counts these jobs as its own batch;
                # un-count them here so report.jobs stays the number of
                # jobs submitted, not executions attempted.
                report.jobs -= len(remaining)
                report.local_fallbacks += 1
                local = fallback([jobs[i] for i in remaining])
                for i, r in zip(remaining, local):
                    results[i] = r
                return results

            time.sleep(self.poll_interval)

        return results
