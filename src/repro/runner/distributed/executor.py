"""The front-end half of distributed execution: enqueue, watch, heal.

:class:`DistributedExecutor` sits behind
:class:`~repro.runner.batch.BatchRunner` exactly where the local
:class:`~repro.runner.resilience.SupervisedExecutor` does, and makes the
same promise — ``results[i]`` is the bit-identical outcome of
``jobs[i]`` no matter what broke along the way — against a fleet of
``repro worker`` processes it does not control:

* **durable enqueue** — every job becomes an atomic task record in the
  :class:`~repro.runner.distributed.queue.JobQueue`; a front end killed
  after enqueue leaves nothing torn (orphaned records are swept by the
  next batch's cleanup of its own prefix and are harmless meanwhile —
  execution is idempotent and cache-backed).
* **grace-window degradation** — if no live worker registers within
  ``grace`` seconds of enqueue, the batch is withdrawn and handed to the
  local fallback (the supervised pool), so a sweep never blocks on an
  empty fleet.
* **lease reclamation** — a worker that dies or wedges stops renewing
  its lease; the watcher reclaims expired leases (exactly-one-winner
  rename) so the task becomes claimable again.  Workers reclaim too —
  self-healing is symmetric.
* **speculative re-dispatch** — once the completion-time distribution is
  known (``spec_quantile`` of the batch done), a task leased for longer
  than ``spec_factor`` × the median duration gets a speculative twin
  (``<base>~s1``).  First published result wins; the loser's bytes would
  have been identical (idempotency), so speculation is pure tail-latency
  insurance, never a correctness risk.
* **failure accounting** — worker-side failures claim machine-wide
  ordinals; when a task's count reaches the shared
  :class:`~repro.runner.resilience.RetryPolicy` attempt budget the
  watcher raises the standard :class:`~repro.runner.resilience.JobError`
  (last failure chained in the message), matching the local contract.
* **stall fallback** — if the fleet goes dark mid-batch (no live
  heartbeat past the grace window) or no result lands for
  ``stall_seconds``, the remaining jobs drain through the local
  fallback.  Termination is unconditional: every path either completes,
  degrades, or raises.

Every recovery event lands in the shared
:class:`~repro.runner.resilience.RunReport` (``enqueued`` /
``lease_reclaims`` / ``speculations`` / ``local_fallbacks``), so a sweep
reports how eventful its distributed execution was.
"""

from __future__ import annotations

import logging
import os
import statistics
import time
import uuid
from typing import Callable, Dict, List, Optional, Sequence

from repro.runner.distributed.queue import JobQueue, base_task_id
from repro.runner.resilience import JobError, RetryPolicy, RunReport

__all__ = ["DistributedExecutor"]

logger = logging.getLogger(__name__)

#: Suffix marking a speculative twin's task id (``<base>~s<n>``).
_SPEC_MARK = "~s"


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        logger.warning("ignoring %s=%r: not a number", name, raw)
        return default


class DistributedExecutor:
    """Enqueue-and-watch driver over a :class:`JobQueue` worker fleet.

    Parameters (environment default in brackets; all timing knobs are
    seconds):

    grace [``REPRO_DIST_GRACE``, 5.0]
        How long to wait for a live worker before degrading the batch to
        the local fallback; also the patience for a fleet that goes dark
        mid-batch.
    lease_ttl [``REPRO_LEASE_TTL``, 10.0]
        Lease lifetime granted to workers and assumed when reading
        unparseable leases.  Workers renew at a third of this.
    spec_quantile [``REPRO_SPEC_QUANTILE``, 0.5]
        Fraction of the batch that must have completed before straggler
        speculation arms (the deadline needs a distribution to quantile).
    spec_factor [``REPRO_SPEC_FACTOR``, 3.0]
        A task leased longer than ``spec_factor * median(duration)``
        (floored at ``spec_min_seconds``) gets one speculative twin.
    stall_seconds [``REPRO_DIST_STALL``, 60.0]
        Result-progress watchdog: this long with pending tasks and no
        result at all drains the remainder through the local fallback.
    """

    def __init__(
        self,
        queue: JobQueue,
        policy: Optional[RetryPolicy] = None,
        report: Optional[RunReport] = None,
        grace: Optional[float] = None,
        lease_ttl: Optional[float] = None,
        poll_interval: float = 0.02,
        spec_quantile: Optional[float] = None,
        spec_factor: Optional[float] = None,
        spec_min_seconds: float = 1.0,
        stall_seconds: Optional[float] = None,
    ) -> None:
        self.queue = queue
        self.policy = policy if policy is not None else RetryPolicy.from_env()
        self.report = report if report is not None else RunReport()
        self.grace = (
            grace if grace is not None else _env_float("REPRO_DIST_GRACE", 5.0)
        )
        self.lease_ttl = (
            lease_ttl
            if lease_ttl is not None
            else _env_float("REPRO_LEASE_TTL", 10.0)
        )
        self.poll_interval = poll_interval
        self.spec_quantile = (
            spec_quantile
            if spec_quantile is not None
            else _env_float("REPRO_SPEC_QUANTILE", 0.5)
        )
        self.spec_factor = (
            spec_factor
            if spec_factor is not None
            else _env_float("REPRO_SPEC_FACTOR", 3.0)
        )
        self.spec_min_seconds = spec_min_seconds
        self.stall_seconds = (
            stall_seconds
            if stall_seconds is not None
            else _env_float("REPRO_DIST_STALL", 60.0)
        )

    # -- helpers -----------------------------------------------------------

    def _live_workers(self) -> Dict[str, float]:
        # A polling worker heartbeats every lease_ttl/3; treat anything
        # fresher than a full ttl as alive.
        return self.queue.live_workers(self.lease_ttl)

    # -- execution ---------------------------------------------------------

    def run(self, jobs: Sequence, fallback: Callable[[List], List]) -> List:
        """Execute ``jobs`` through the worker fleet; ``fallback`` runs a
        job list locally (the supervised path) and is used when the
        fleet never shows up, goes dark, or stalls."""
        jobs = list(jobs)
        if not jobs:
            return []
        prefix = f"b{uuid.uuid4().hex[:10]}"
        task_ids = [f"{prefix}-j{i:04d}" for i in range(len(jobs))]
        for tid, job in zip(task_ids, jobs):
            self.queue.enqueue(tid, job)
        self.report.enqueued += len(jobs)

        # Grace window: a batch with no fleet must not hang — withdraw
        # and run locally.  (Workers that appear mid-wait are used.)
        deadline = time.monotonic() + self.grace
        while not self._live_workers():
            if time.monotonic() >= deadline:
                logger.warning(
                    "no live worker registered within the %.1fs grace "
                    "window; degrading batch of %d to local execution",
                    self.grace, len(jobs),
                )
                self.queue.cleanup_batch(prefix)
                self.report.local_fallbacks += 1
                return fallback(jobs)
            time.sleep(self.poll_interval)

        self.report.batches += 1
        self.report.jobs += len(jobs)
        t0 = time.monotonic()
        try:
            return self._watch(jobs, task_ids, prefix, fallback)
        finally:
            self.report.wall_seconds += time.monotonic() - t0
            # Reclamations are counted from the queue's tombstones, not
            # from this front end's own reclaim wins: surviving workers
            # race us for expired leases and their wins are events too.
            self.report.lease_reclaims += self.queue.reclaim_count(prefix)
            self.queue.cleanup_batch(prefix)

    def _watch(self, jobs: List, task_ids: List[str], prefix: str,
               fallback: Callable[[List], List]) -> List:
        report = self.report
        n = len(jobs)
        results: List = [None] * n
        pending: Dict[str, int] = {tid: i for i, tid in enumerate(task_ids)}
        durations: List[float] = []
        first_leased: Dict[str, float] = {}
        #: task_id -> (wall-clock expiry stamp, monotonic deadline): the
        #: lease file's wall stamp converted to this process' monotonic
        #: clock at first observation, so expiry countdowns survive
        #: wall-clock jumps (see the reclaim section below).
        lease_deadlines: Dict[str, Tuple[float, float]] = {}
        failures_counted: Dict[str, int] = {}
        spec_issued: set = set()
        now = time.monotonic()
        last_result = now
        last_live = now

        while pending:
            progressed = False

            # -- harvest published results ----------------------------
            for base in list(pending):
                record = self.queue.load_result(base)
                if record is None:
                    continue
                i = pending.pop(base)
                results[i] = record["result"]
                durations.append(float(record.get("seconds", 0.0)))
                report.attempts += 1
                report.job_seconds.append(float(record.get("seconds", 0.0)))
                report.absorb_worker_stats(record.get("stats"))
                progressed = True
            if progressed:
                last_result = time.monotonic()
            if not pending:
                break

            # -- failure accounting (worker-side attempt ordinals) -----
            for base in list(pending):
                count = self.queue.failure_count(base)
                seen = failures_counted.get(base, 0)
                if count > seen:
                    failures_counted[base] = count
                    report.attempts += count - seen
                    report.retries += min(count, self.policy.max_attempts - 1) - min(
                        seen, self.policy.max_attempts - 1
                    )
                if count >= self.policy.max_attempts:
                    report.failures += 1
                    last = self.queue.last_failure(base) or "unknown error"
                    raise JobError(
                        f"job {pending[base]} failed on {count} distributed "
                        f"attempt(s); last failure: {last}",
                        job=jobs[pending[base]],
                        attempts=count,
                    )

            # -- reclaim expired leases (lost/hung workers) ------------
            # Lease files carry *wall-clock* expiry stamps (the only
            # clock comparable across worker machines), but this front
            # end enforces them on the monotonic clock like every other
            # deadline in this file: each observed stamp is converted to
            # a monotonic deadline exactly once, so an NTP step or
            # suspend/resume mid-wait can neither spuriously expire a
            # healthy lease nor immortalize a dead one.  A renewal
            # writes a fresh stamp, which re-converts.
            for lease in self.queue.leases(self.lease_ttl):
                base = base_task_id(lease.task_id)
                if base not in pending:
                    lease_deadlines.pop(lease.task_id, None)
                    continue
                known = lease_deadlines.get(lease.task_id)
                if known is None or known[0] != lease.expiry:
                    deadline = time.monotonic() + max(
                        0.0, lease.expiry - time.time()
                    )
                    lease_deadlines[lease.task_id] = (lease.expiry, deadline)
                else:
                    deadline = known[1]
                if time.monotonic() >= deadline:
                    if self.queue.reclaim(lease.task_id):
                        logger.warning(
                            "reclaimed expired lease on %s (owner %s)",
                            lease.task_id, lease.owner,
                        )
                        first_leased.pop(lease.task_id, None)
                        lease_deadlines.pop(lease.task_id, None)
                else:
                    first_leased.setdefault(lease.task_id, time.monotonic())

            # -- speculative straggler re-dispatch ---------------------
            done = n - len(pending)
            if durations and done >= max(1, int(self.spec_quantile * n)):
                median = statistics.median(durations)
                threshold = max(self.spec_min_seconds,
                                self.spec_factor * median)
                now = time.monotonic()
                for tid, started in list(first_leased.items()):
                    base = base_task_id(tid)
                    if base not in pending or base in spec_issued:
                        continue
                    if _SPEC_MARK in tid:
                        continue  # never speculate on a speculation
                    if now - started <= threshold:
                        continue
                    spec_issued.add(base)
                    report.speculations += 1
                    logger.warning(
                        "task %s still running after %.2fs (median %.2fs); "
                        "dispatching speculative twin",
                        tid, now - started, median,
                    )
                    self.queue.enqueue(f"{base}{_SPEC_MARK}1", jobs[pending[base]])

            # -- fleet liveness + progress watchdogs -------------------
            now = time.monotonic()
            if self._live_workers():
                last_live = now
            dark = now - last_live > self.grace
            stalled = now - last_result > self.stall_seconds
            if dark or stalled:
                why = ("fleet went dark" if dark
                       else f"no result for {self.stall_seconds:.0f}s")
                logger.warning(
                    "%s with %d task(s) pending; draining remainder "
                    "through the local fallback", why, len(pending),
                )
                remaining = sorted(pending.values())
                # The fallback re-counts these jobs as its own batch;
                # un-count them here so report.jobs stays the number of
                # jobs submitted, not executions attempted.
                report.jobs -= len(remaining)
                report.local_fallbacks += 1
                local = fallback([jobs[i] for i in remaining])
                for i, r in zip(remaining, local):
                    results[i] = r
                return results

            time.sleep(self.poll_interval)

        return results
