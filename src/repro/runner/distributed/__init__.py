"""Distributed, elastic sweep execution behind the runner Job protocol.

The local half of fault tolerance (PR 6's supervised pool) assumed the
workers live in this process tree.  This package removes that
assumption: a crash-consistent filesystem
:class:`~repro.runner.distributed.queue.JobQueue` is the only shared
state, ``repro worker`` processes (:mod:`~repro.runner.distributed.
worker`) pull job bundles from it anywhere the filesystem is visible,
and a :class:`~repro.runner.distributed.executor.DistributedExecutor`
front end inside :class:`~repro.runner.batch.BatchRunner` enqueues,
watches, reclaims expired leases, speculatively re-dispatches
stragglers, and degrades to the local supervised pool whenever the
fleet disappoints.  Results are bit-identical to local execution by the
same argument as always: every job is a pure function of its cache
identity, so *where* it ran can never show in *what* it returned.
"""

from repro.runner.distributed.executor import DistributedExecutor
from repro.runner.distributed.queue import JobQueue, Lease, base_task_id
from repro.runner.distributed.worker import Worker, run_worker

__all__ = [
    "DistributedExecutor",
    "JobQueue",
    "Lease",
    "Worker",
    "base_task_id",
    "run_worker",
]
