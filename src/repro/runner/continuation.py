"""Batched full-length continuation scheduler.

The sweep tail used to be dominated by full-length runs dispatched as
one worker job each: after the screen phase picked every pair's
BEST/HEUR/WORST mappings, the pool drained through dozens of small jobs
whose per-job overhead (pickle, dispatch, result marshalling, cache
probing) rivalled the simulation itself at screen-sized windows.

:class:`ContinuationJob` packs many full-length runs into one worker
job: each :class:`ContinuationRun` resumes exactly the way a
:class:`~repro.runner.screening.ScreenJob` continues its checkpointed
processors — build the processor, restore the shared warm snapshot,
reset the measurement counters, run to the full commit target — so a
bundled run is bit-identical to the :class:`~repro.runner.batch.SimJob`
it replaces (``run_simulation`` performs the same four steps). The
experiment sweep partitions its post-screen plan into
``bundle_count`` bundles (defaulting to the worker count) with
:func:`plan_bundles`, so the pool executes a handful of large jobs
instead of draining per pair.

Runs are assigned round-robin: one (configuration, workload) pair's
BEST/HEUR/WORST runs land in different bundles, which balances the
expensive pairs across workers (traces and warm snapshots are shared
through the runner's content-addressed stores either way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.config import MicroarchConfig
from repro.core.simulation import (
    SimResult,
    default_trace_length,
    resolve_trace_triples,
)

__all__ = ["ContinuationRun", "ContinuationJob", "plan_bundles"]


@dataclass(frozen=True)
class ContinuationRun:
    """One full-length run riding inside a :class:`ContinuationJob`.

    The field set mirrors :class:`~repro.runner.batch.SimJob` (warm-up
    always on, no cycle cap — the experiment drivers' full-length runs
    never use either knob), so a run's identity is exactly the SimJob it
    replaces.
    """

    config: Union[str, MicroarchConfig]
    benchmarks: Tuple[str, ...]
    mapping: Tuple[int, ...]
    commit_target: int
    trace_length: Optional[int] = None
    seed: int = 0

    def execute(self) -> SimResult:
        """Run to the full commit target — by definition the SimJob this
        run replaces (one shared implementation, zero drift surface)."""
        return self.as_sim_job().execute()

    def trace_triples(self) -> List[Tuple[str, int, int]]:
        length = (
            self.trace_length
            if self.trace_length is not None
            else default_trace_length(self.commit_target)
        )
        return resolve_trace_triples(self.benchmarks, length, self.seed)

    def as_sim_job(self):
        """The :class:`~repro.runner.batch.SimJob` this run replaces.

        The runner caches bundle runs *per run* through this identity, so
        cache entries are independent of bundle composition (worker
        count, sweep shape) and interchange with entries written by the
        per-job scheduler this PR replaced.
        """
        from repro.runner.batch import SimJob

        return SimJob(
            config=self.config,
            benchmarks=self.benchmarks,
            mapping=self.mapping,
            commit_target=self.commit_target,
            trace_length=self.trace_length,
            seed=self.seed,
        )


@dataclass(frozen=True)
class ContinuationJob:
    """A bundle of full-length runs executed inside one worker.

    ``execute()`` returns one :class:`~repro.core.simulation.SimResult`
    per run, in run order. Traces and post-warm snapshots are shared
    within the worker through the process memo and (when the runner
    activated one) the content-addressed store, so a bundle pays the
    cold-start cost once per distinct workload rather than once per run.
    The result cache operates per *run*, not per bundle (each run caches
    as the :class:`~repro.runner.batch.SimJob` it replaces), so reuse
    survives re-bundling.
    """

    runs: Tuple[ContinuationRun, ...]

    #: BatchRunner parallelizes batches of heavy jobs at 2+ jobs (a
    #: bundle amortizes its dispatch overhead by construction).
    heavy = True

    @property
    def resume_count(self) -> int:
        """Full-length runs this bundle resumes (one result each)."""
        return len(self.runs)

    def execute(self) -> Tuple[SimResult, ...]:
        return tuple(run.execute() for run in self.runs)

    # -- shared-store integration ------------------------------------------
    #
    # Result caching is handled by the runner *per run* (each run caches
    # under its SimJob identity — see ContinuationRun.as_sim_job), so a
    # bundle defines no job-level cache hooks: cache reuse must not
    # depend on how the sweep happened to be bundled.

    def trace_triples(self) -> List[Tuple[str, int, int]]:
        """Distinct traces the bundle streams (parent pre-pack pass)."""
        seen = {}
        for run in self.runs:
            for triple in run.trace_triples():
                seen.setdefault(triple, None)
        return list(seen)


def plan_bundles(
    runs: Sequence[ContinuationRun], bundle_count: int
) -> List[ContinuationJob]:
    """Partition ``runs`` into at most ``bundle_count`` bundles.

    Round-robin assignment: ``runs[i]`` lands in bundle ``i % n``, so one
    pair's BEST/HEUR/WORST runs spread across bundles (cost balance) and
    the bundles partition the plan exactly — every run appears in exactly
    one bundle, in its original relative order. Deterministic in
    (runs, bundle_count); empty input produces no bundles.
    """
    if bundle_count < 1:
        raise ValueError("bundle_count must be >= 1")
    n = min(len(runs), bundle_count)
    if n == 0:
        return []
    buckets: List[List[ContinuationRun]] = [[] for _ in range(n)]
    for i, run in enumerate(runs):
        buckets[i % n].append(run)
    return [ContinuationJob(runs=tuple(b)) for b in buckets]
