"""Bundled run scheduler: many simulations per worker job.

The sweep used to be dominated at both ends by runs dispatched as one
worker job each: after the screen phase picked every pair's BEST/HEUR/
WORST mappings, the pool drained through dozens of small full-length
jobs — and in exact mode the screen phase itself dispatched one job per
candidate mapping (``max_mappings × pairs`` jobs), each paying pickle,
dispatch, result marshalling and cache probing that rivalled the
simulation itself at screen-sized windows.

:class:`ContinuationJob` packs many runs into one worker job: each
:class:`ContinuationRun` executes exactly the
:class:`~repro.runner.jobs.SimJob` it replaces (``as_sim_job`` — one
shared implementation, zero drift surface), so a bundled run is
bit-identical to the per-job dispatch. The experiment sweep partitions
its run plans — full-length continuations *and* exact-mode screens —
into ``bundle_count`` bundles (defaulting to the worker count) with
:func:`plan_bundles`, so the pool executes a handful of large jobs
instead of draining per run; :func:`run_bundled` wraps the round trip
and hands results back in original run order.

Runs are assigned round-robin: one (configuration, workload) pair's
BEST/HEUR/WORST runs (or a pair's screen candidates) land in different
bundles, which balances the expensive pairs across workers (traces and
warm snapshots are shared through the runner's content-addressed stores
either way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, List, Optional, Sequence, Tuple, Union

from repro.core.config import MicroarchConfig
from repro.core.simulation import (
    SimResult,
    default_trace_length,
    resolve_trace_triples,
)
from repro.runner.jobs import TraceUnit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.cache import ResultCache

__all__ = [
    "ContinuationRun",
    "ContinuationJob",
    "join_split_results",
    "plan_bundles",
    "run_bundled",
    "split_bundle",
    "unbundle_results",
]


@dataclass(frozen=True)
class ContinuationRun:
    """One run riding inside a :class:`ContinuationJob`.

    The field set mirrors :class:`~repro.runner.jobs.SimJob` (warm-up
    always on, no cycle cap — the experiment drivers' bundled runs never
    use either knob), so a run's identity is exactly the SimJob it
    replaces. ``commit_target`` is the full-length window for
    continuation runs and the screen window for bundled exact-mode
    screens — the scheduling is identical.
    """

    config: Union[str, MicroarchConfig]
    benchmarks: Tuple[str, ...]
    mapping: Tuple[int, ...]
    commit_target: int
    trace_length: Optional[int] = None
    seed: int = 0

    def execute(self, cache: Optional["ResultCache"] = None) -> SimResult:
        """Run to the commit target — by definition the SimJob this run
        replaces (one shared implementation, zero drift surface)."""
        return self.as_sim_job().execute(cache)

    def trace_triples(self) -> List[Tuple[str, int, int]]:
        length = (
            self.trace_length
            if self.trace_length is not None
            else default_trace_length(self.commit_target)
        )
        return resolve_trace_triples(self.benchmarks, length, self.seed)

    def as_sim_job(self):
        """The :class:`~repro.runner.jobs.SimJob` this run replaces.

        The runner caches bundle runs *per run* through this identity, so
        cache entries are independent of bundle composition (worker
        count, sweep shape) and interchange with entries written by the
        per-job scheduler this machinery replaced.
        """
        from repro.runner.jobs import SimJob

        return SimJob(
            config=self.config,
            benchmarks=self.benchmarks,
            mapping=self.mapping,
            commit_target=self.commit_target,
            trace_length=self.trace_length,
            seed=self.seed,
        )


@dataclass(frozen=True)
class ContinuationJob:
    """A bundle of runs executed inside one worker.

    ``execute()`` returns one :class:`~repro.core.simulation.SimResult`
    per run, in run order. Traces and post-warm snapshots are shared
    within the worker through the process memo and (when the runner
    activated one) the content-addressed store, so a bundle pays the
    cold-start cost once per distinct workload rather than once per run.
    The result cache operates per *run*, not per bundle (each run caches
    as the :class:`~repro.runner.jobs.SimJob` it replaces), so reuse
    survives re-bundling; the bundle itself never presents an identity
    to the cache.
    """

    runs: Tuple[ContinuationRun, ...]

    #: BatchRunner parallelizes batches of heavy jobs at 2+ jobs (a
    #: bundle amortizes its dispatch overhead by construction).
    heavy: ClassVar[bool] = True

    @property
    def resume_count(self) -> int:
        """Runs this bundle executes (one result each)."""
        return len(self.runs)

    def execute(
        self, cache: Optional["ResultCache"] = None
    ) -> Tuple[SimResult, ...]:
        return tuple(run.execute(cache) for run in self.runs)

    def trace_manifest(self) -> Tuple[TraceUnit, ...]:
        """One :class:`~repro.runner.jobs.TraceUnit` per bundled run (the
        parent's pre-pack pass dedups triples and warm sets itself)."""
        return tuple(
            TraceUnit(triples=tuple(run.trace_triples()), config=run.config)
            for run in self.runs
        )


def plan_bundles(
    runs: Sequence[ContinuationRun], bundle_count: int
) -> List[ContinuationJob]:
    """Partition ``runs`` into at most ``bundle_count`` bundles.

    Round-robin assignment: ``runs[i]`` lands in bundle ``i % n``, so one
    pair's BEST/HEUR/WORST runs (or screen candidates) spread across
    bundles (cost balance) and the bundles partition the plan exactly —
    every run appears in exactly one bundle, in its original relative
    order. Deterministic in (runs, bundle_count); empty input produces no
    bundles.
    """
    if bundle_count < 1:
        raise ValueError("bundle_count must be >= 1")
    n = min(len(runs), bundle_count)
    if n == 0:
        return []
    buckets: List[List[ContinuationRun]] = [[] for _ in range(n)]
    for i, run in enumerate(runs):
        buckets[i % n].append(run)
    return [ContinuationJob(runs=tuple(b)) for b in buckets]


def split_bundle(job: ContinuationJob, parts: int) -> List[ContinuationJob]:
    """Split ``job`` into at most ``parts`` *contiguous* sub-bundles.

    This is the work-stealing cut: unlike :func:`plan_bundles` (round
    robin over a fresh plan), a split must preserve the bundle's own run
    order so the straggler's already-cached head and the stolen tail
    never interleave.  The parts partition ``job.runs`` exactly — every
    run in exactly one part, original order, sizes differing by at most
    one (the first ``len(runs) % parts`` parts are one run larger) — so
    concatenating the parts' result tuples in part order is the
    bit-identical unsplit ``job.execute()`` tuple
    (:func:`join_split_results`; pinned by the hypothesis partition
    suite).  Deterministic in ``(job.runs, parts)``; a single-run bundle
    (or ``parts=1``) comes back whole.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    runs = job.runs
    n = min(len(runs), parts)
    if n == 0:
        return []
    if n == 1:
        return [job]
    base, extra = divmod(len(runs), n)
    out: List[ContinuationJob] = []
    start = 0
    for p in range(n):
        size = base + (1 if p < extra else 0)
        out.append(ContinuationJob(runs=runs[start:start + size]))
        start += size
    return out


def join_split_results(
    part_results: Sequence[Tuple[SimResult, ...]],
) -> Tuple[SimResult, ...]:
    """Invert :func:`split_bundle`: concatenate the parts' result tuples
    (in part order) back into the unsplit bundle's result tuple."""
    out: List[SimResult] = []
    for results in part_results:
        out.extend(results)
    return tuple(out)


def unbundle_results(
    bundle_results: Sequence[Tuple[SimResult, ...]], run_count: int
) -> List[SimResult]:
    """Invert :func:`plan_bundles`: flatten per-bundle result tuples back
    into original run order (bundle ``b`` owns runs ``b::n``)."""
    out: List[Optional[SimResult]] = [None] * run_count
    n = len(bundle_results)
    for b, results in enumerate(bundle_results):
        for i, r in zip(range(b, run_count, n), results):
            out[i] = r
    return out


def run_bundled(
    runner,
    runs: Sequence[ContinuationRun],
    bundle_count: Optional[int] = None,
) -> List[SimResult]:
    """Execute ``runs`` as round-robin bundles through ``runner`` and
    return results in original run order.

    ``bundle_count`` defaults to the runner's worker count; it is purely
    a scheduling knob — results are bit-identical to per-run dispatch
    for any value (pinned by ``tests/runner/test_continuation.py``).
    """
    n_bundles = bundle_count if bundle_count is not None else runner.workers
    if n_bundles < 1:
        n_bundles = 1
    jobs = plan_bundles(runs, n_bundles)
    return unbundle_results(runner.run(jobs), len(runs))
