"""Deterministic fault injection for the resilient runner.

Every recovery path in :mod:`repro.runner.resilience` is exercised by
real process-pool tests, not mocks: this module lets a test (or a chaos
CI lane) make a *worker* raise, hang past its timeout, or die outright
(``os._exit``) on the Nth execution of a matching job — deterministically,
however the pool schedules work across processes.

The plan is env-gated so it crosses the ``ProcessPoolExecutor`` boundary
for free:

``REPRO_FAULT_PLAN``
    JSON list of rules (or ``@/path/to/plan.json``). Each rule::

        {"match": "mcf",          # substring of repr(job); "" = any job
         "op": "raise",           # "raise" | "hang" | "die"
         "executions": [1],       # 1-based ordinals of matching
                                  # executions to fire on
         "hang_seconds": 3600.0,  # op == "hang"
         "exit_code": 17}         # op == "die"

``REPRO_FAULT_STATE``
    Directory for the cross-process execution counters (required when a
    plan is set). Ordinals are claimed with exclusive file creation
    (``O_CREAT | O_EXCL``), so concurrent workers agree on who is the
    Nth execution without locks.

Injection happens only in :func:`maybe_inject_fault`, called by the
worker-side entry point (``repro.runner.batch._execute_job_supervised``)
— never by the parent's inline path, so a degraded (inline) runner is
fault-free by construction, exactly like a real scheduler whose faults
live in the workers.

:func:`corrupt_cache_entry` is the parent-side half of the harness: it
truncates or garbles a chosen :class:`~repro.runner.cache.ResultCache`
entry so tests can drive the corrupt-entry recompute fallback.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

__all__ = [
    "ENV_FAULT_PLAN",
    "ENV_FAULT_STATE",
    "FaultRule",
    "InjectedFault",
    "load_fault_plan",
    "maybe_inject_fault",
    "corrupt_cache_entry",
]

ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"
ENV_FAULT_STATE = "REPRO_FAULT_STATE"


class InjectedFault(RuntimeError):
    """The exception an ``op: "raise"`` rule throws inside a worker."""


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: fire ``op`` on the Nth execution(s) of a
    job whose ``repr`` contains ``match``.

    ``scope`` restricts where the rule applies: ``"pool"`` (local
    process-pool workers), ``"worker"`` (remote ``repro worker``
    processes), or ``"any"`` (both, the default).  Out-of-scope
    executions neither fire nor consume ordinals, so one plan can
    target the two execution contexts independently.  The
    ``stale_lease`` op is remote-worker-only by construction (it
    freezes lease renewal — local pool workers hold no lease) and is
    returned to the caller to act on rather than raised/slept here.
    """

    match: str
    op: str
    executions: Tuple[int, ...] = (1,)
    hang_seconds: float = 3600.0
    exit_code: int = 17
    scope: str = "any"

    _OPS = ("raise", "hang", "die", "stale_lease")
    _SCOPES = ("any", "pool", "worker")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unknown fault op {self.op!r} (want {self._OPS})")
        if self.scope not in self._SCOPES:
            raise ValueError(
                f"unknown fault scope {self.scope!r} (want {self._SCOPES})"
            )

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultRule":
        return cls(
            match=str(payload.get("match", "")),
            op=str(payload["op"]).replace("-", "_"),
            executions=tuple(int(n) for n in payload.get("executions", [1])),
            hang_seconds=float(payload.get("hang_seconds", 3600.0)),
            exit_code=int(payload.get("exit_code", 17)),
            scope=str(payload.get("scope", "any")),
        )


def load_fault_plan(env: Optional[str] = None) -> List[FaultRule]:
    """Parse the fault plan from ``REPRO_FAULT_PLAN`` (inline JSON, or
    ``@path`` to a JSON file). No plan means no rules."""
    raw = env if env is not None else os.environ.get(ENV_FAULT_PLAN)
    if not raw:
        return []
    if raw.startswith("@"):
        raw = Path(raw[1:]).read_text()
    return [FaultRule.from_dict(r) for r in json.loads(raw)]


#: Parsed-plan cache keyed on the raw env value. maybe_inject_fault sits
#: on the production worker entry point and runs once per job execution,
#: so the plan is parsed (and an ``@file`` read from disk) once per
#: worker process, not per job — re-reading per job is both a per-job
#: cost and a stale-read hazard if the file changes mid-sweep.
_plan_cache: Tuple[Optional[str], Tuple[FaultRule, ...]] = (None, ())


def _active_plan() -> Tuple[FaultRule, ...]:
    global _plan_cache
    raw = os.environ.get(ENV_FAULT_PLAN)
    if not raw:
        return ()
    key, rules = _plan_cache
    if key != raw:
        rules = tuple(load_fault_plan(raw))
        _plan_cache = (raw, rules)
    return rules


def _claim_execution(state_dir: str, rule_index: int) -> int:
    """Atomically claim this execution's 1-based ordinal for one rule.

    The Nth claimer machine-wide gets N: each candidate ordinal is an
    ``O_CREAT | O_EXCL`` marker file, so exactly one process wins each
    number regardless of pool scheduling — the determinism the harness
    promises.
    """
    n = 1
    while True:
        marker = os.path.join(state_dir, f"rule{rule_index}.exec{n}")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            n += 1
            continue
        os.close(fd)
        return n


def maybe_inject_fault(job, context: str = "pool") -> Optional[FaultRule]:
    """Fire the first matching due fault for ``job``, if any.

    Called at the top of the worker-side execution paths — ``context``
    says which one: ``"pool"`` for local process-pool workers,
    ``"worker"`` for remote ``repro worker`` processes.  Rules scoped to
    the other context are skipped entirely (no ordinal consumed).  A
    no-op unless ``REPRO_FAULT_PLAN`` is set (the parsed plan is cached
    per process, keyed on the env value). ``REPRO_FAULT_STATE`` must
    name a directory when a plan is active — failing loudly beats a
    chaos suite that silently injects nothing.

    ``raise``/``hang``/``die`` execute here; a due ``stale_lease`` rule
    is *returned* for the remote worker to act on (freeze lease renewal
    and stall), since only that caller owns a lease.
    """
    plan = _active_plan()
    if not plan:
        return None
    state_dir = os.environ.get(ENV_FAULT_STATE)
    if not state_dir:
        raise RuntimeError(
            f"{ENV_FAULT_PLAN} is set but {ENV_FAULT_STATE} is not: the "
            "fault harness needs a shared state directory for its "
            "cross-process execution counters"
        )
    os.makedirs(state_dir, exist_ok=True)
    desc = repr(job)
    for rule_index, rule in enumerate(plan):
        if rule.scope != "any" and rule.scope != context:
            continue
        if rule.op == "stale_lease" and context != "worker":
            continue  # meaningless without a lease to go stale
        if rule.match and rule.match not in desc:
            continue
        ordinal = _claim_execution(state_dir, rule_index)
        if ordinal not in rule.executions:
            continue
        if rule.op == "raise":
            raise InjectedFault(
                f"injected fault: rule {rule_index} execution {ordinal} "
                f"of job matching {rule.match!r}"
            )
        if rule.op == "hang":
            time.sleep(rule.hang_seconds)
            return None
        if rule.op == "die":
            os._exit(rule.exit_code)
        if rule.op == "stale_lease":
            return rule
    return None


def corrupt_cache_entry(cache, job, mode: str = "truncate") -> Path:
    """Damage ``job``'s entry in a :class:`~repro.runner.cache.ResultCache`
    (parent-side fault injection for the recompute fallback).

    ``mode="truncate"`` cuts the JSON payload in half — a worker killed
    mid-write before atomic writes landed; ``mode="garbage"`` overwrites
    it with non-JSON bytes. Returns the damaged path; raises
    ``FileNotFoundError`` when no entry exists to damage.
    """
    path = cache._path(cache.job_key(job))
    data = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(data[: max(1, len(data) // 2)])
    elif mode == "garbage":
        path.write_bytes(b"\x00not json\xff" + data[:7])
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return path
