"""Supervised, fault-tolerant execution of runner jobs.

:class:`~repro.runner.batch.BatchRunner` used to drive its worker pool
with a single ``pool.map`` call: one worker OOM/segfault raised
``BrokenProcessPool`` and destroyed the whole sweep, a hung job stalled
it forever, and there was no retry story at all. This module replaces
that dispatch with a :class:`SupervisedExecutor` that submits jobs
individually and tracks each future:

* **per-job timeouts** — submissions are capped at the pool's worker
  count, so a job's deadline (assigned at submission, from its
  :class:`RetryPolicy`; heavy jobs — screen ladders, continuation
  bundles — get a proportionally larger budget) starts when the job
  actually starts running, not when the batch was enqueued: queued jobs
  cannot burn their wall-clock budget waiting for a worker. A hung
  worker cannot be cancelled, so an expired deadline kills the pool's
  processes outright and resubmits the surviving in-flight jobs; the
  timed-out job retries against its bounded attempt count, and the kill
  counts against the pool-respawn budget like any other break.
* **retry with exponential backoff** — failed or timed-out jobs are
  re-submitted after ``backoff_base * backoff_factor**(attempt-1)``
  seconds. Retries are free and safe because every job is a pure
  function of its ``cache_key_fields()`` identity (the idempotency
  contract of :mod:`repro.runner.jobs`), so a re-execution is
  bit-identical to the first.
* **pool self-healing** — a broken pool (worker killed, ``os._exit``,
  unpicklable crash) is respawned instead of propagating
  ``BrokenProcessPool``; in-flight jobs that never completed resubmit
  with no attempt penalty (the breakage is the pool's fault, not
  theirs), while one that already finished with a real job exception
  is charged the failed attempt like any other failure.
* **graceful degradation** — when the pool breaks more than
  ``max_pool_respawns`` times within one batch (deadline-triggered
  kills included), the remaining jobs drain *inline* in the parent
  under the same retry budget and :class:`JobError` contract, so a
  hostile environment degrades a sweep to sequential speed instead of
  killing it.

Results keep the BatchRunner ordering contract — ``results[i]`` is the
outcome of ``jobs[i]`` — and are bit-identical to the old ``pool.map``
path (pinned by ``tests/runner/test_resilience.py``). Every recovery
event is counted in a structured :class:`RunReport` threaded through the
experiment drivers and the CLI, so sweeps report how much fault handling
they needed.
"""

from __future__ import annotations

import heapq
import itertools
import logging
import os
import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "RetryPolicy",
    "RunReport",
    "SupervisedExecutor",
    "JobError",
    "JobTimeoutError",
]

logger = logging.getLogger(__name__)


class JobError(RuntimeError):
    """A job exhausted its attempt budget; the last failure is chained as
    ``__cause__``."""

    def __init__(self, message: str, job=None, attempts: int = 0) -> None:
        super().__init__(message)
        self.job = job
        self.attempts = attempts


class JobTimeoutError(JobError):
    """A job's final attempt exceeded its wall-clock budget."""


def _env_float(name: str, default: Optional[float]) -> Optional[float]:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        logger.warning("ignoring %s=%r: not a number", name, raw)
        return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        logger.warning("ignoring %s=%r: not an integer", name, raw)
        return default


@dataclass(frozen=True)
class RetryPolicy:
    """Fault-handling knobs for one :class:`SupervisedExecutor`.

    max_attempts:
        Executions a job may consume (first try included) before its
        failure propagates as :class:`JobError` / :class:`JobTimeoutError`.
    backoff_base / backoff_factor / backoff_max:
        Retry ``n`` waits ``backoff_base * backoff_factor**(n-1)``
        seconds (clamped to ``backoff_max``) before resubmitting.
    jitter:
        Fractional de-synchronization of the backoff schedule: each
        delay is scaled by a uniform draw from ``1 ± jitter/2``, so a
        whole bundle failed by one event does not retry in lockstep
        (the thundering-herd fix; also spreads a distributed fleet's
        post-failure re-claims).  ``0`` (the default) keeps delays
        exact; deterministic when the caller seeds the RNG
        (``REPRO_RETRY_JITTER_SEED``).
    timeout:
        Per-job wall-clock budget in seconds, measured from submission
        — which coincides with the job starting, because the executor
        caps in-flight submissions at the worker count. ``None``
        disables deadline tracking (a hung worker then blocks forever,
        as the old ``pool.map`` path did). Heavy jobs (``job.heavy`` —
        whole screen ladders, continuation bundles) get ``timeout *
        heavy_timeout_factor``.
    max_pool_respawns:
        Pool breakages tolerated within one batch before the executor
        degrades to inline execution for the remaining jobs.
    """

    max_attempts: int = 3
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    jitter: float = 0.0
    timeout: Optional[float] = None
    heavy_timeout_factor: float = 4.0
    max_pool_respawns: int = 3

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Policy from the environment: ``REPRO_JOB_TIMEOUT`` (seconds,
        unset disables deadlines), ``REPRO_MAX_ATTEMPTS``,
        ``REPRO_RETRY_BACKOFF`` (base seconds), ``REPRO_RETRY_JITTER``
        (fractional delay spread, e.g. ``0.5`` for ±25%),
        ``REPRO_MAX_POOL_RESPAWNS``."""
        return cls(
            max_attempts=max(1, _env_int("REPRO_MAX_ATTEMPTS", cls.max_attempts)),
            backoff_base=_env_float("REPRO_RETRY_BACKOFF", cls.backoff_base),
            jitter=max(0.0, _env_float("REPRO_RETRY_JITTER", cls.jitter)),
            timeout=_env_float("REPRO_JOB_TIMEOUT", None),
            max_pool_respawns=max(
                0, _env_int("REPRO_MAX_POOL_RESPAWNS", cls.max_pool_respawns)
            ),
        )

    def timeout_for(self, job) -> Optional[float]:
        """The job's wall-clock budget (heavy jobs get a larger one)."""
        if self.timeout is None or self.timeout <= 0:
            return None
        if getattr(job, "heavy", False):
            return self.timeout * self.heavy_timeout_factor
        return self.timeout

    def backoff_for(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based).

        With a nonzero ``jitter`` the clamped delay is scaled by a
        uniform draw from ``[1 - jitter/2, 1 + jitter/2]`` so concurrent
        retries spread out instead of stampeding; pass a seeded ``rng``
        for a deterministic schedule (tests), else the module RNG is
        used.
        """
        delay = self.backoff_base * self.backoff_factor ** max(0, attempt - 1)
        delay = min(self.backoff_max, max(0.0, delay))
        if self.jitter > 0.0 and delay > 0.0:
            draw = (rng if rng is not None else random).random()
            delay *= 1.0 + self.jitter * (draw - 0.5)
        return max(0.0, delay)


@dataclass
class RunReport:
    """Structured account of how much fault handling a run needed.

    Counters accumulate across every batch executed through one
    :class:`~repro.runner.batch.BatchRunner` (inline and pooled alike);
    ``job_seconds`` records the per-job wall clock of each completed job
    (successful attempt only, submission to completion).
    """

    jobs: int = 0
    batches: int = 0
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    failures: int = 0
    pool_respawns: int = 0
    inline_fallbacks: int = 0
    cache_fallbacks: int = 0
    #: -- distributed execution (see repro.runner.distributed) --------------
    #: jobs durably enqueued onto a remote-worker queue
    enqueued: int = 0
    #: expired leases broken so a lost/hung worker's task became claimable
    lease_reclaims: int = 0
    #: speculative straggler twins dispatched (first result wins)
    speculations: int = 0
    #: batches (or batch remainders) degraded from the worker fleet to
    #: the local supervised path (empty fleet, dark fleet, stall)
    local_fallbacks: int = 0
    #: straggling remote bundles whose un-started tail was stolen into
    #: fresh sub-tasks (see DistributedExecutor)
    steals: int = 0
    #: timed-out local bundles re-split across the pool instead of
    #: retried whole (see SupervisedExecutor._check_deadlines)
    split_rescues: int = 0
    wall_seconds: float = 0.0
    job_seconds: List[float] = field(default_factory=list)

    @property
    def eventful(self) -> bool:
        """True when any recovery machinery fired (a fault-free run of a
        healthy pool is not eventful)."""
        return bool(
            self.retries
            or self.timeouts
            or self.failures
            or self.pool_respawns
            or self.inline_fallbacks
            or self.cache_fallbacks
            or self.lease_reclaims
            or self.speculations
            or self.local_fallbacks
            or self.steals
            or self.split_rescues
        )

    def absorb_worker_stats(self, stats: Optional[Dict[str, int]]) -> None:
        """Fold one worker execution's side-band counters (currently the
        corrupt-cache-entry fallbacks it recovered from) into the report."""
        if stats:
            self.cache_fallbacks += int(stats.get("cache_fallbacks", 0))

    def merge(self, other: "RunReport") -> None:
        self.jobs += other.jobs
        self.batches += other.batches
        self.attempts += other.attempts
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.failures += other.failures
        self.pool_respawns += other.pool_respawns
        self.inline_fallbacks += other.inline_fallbacks
        self.cache_fallbacks += other.cache_fallbacks
        self.enqueued += other.enqueued
        self.lease_reclaims += other.lease_reclaims
        self.speculations += other.speculations
        self.local_fallbacks += other.local_fallbacks
        self.steals += other.steals
        self.split_rescues += other.split_rescues
        self.wall_seconds += other.wall_seconds
        self.job_seconds.extend(other.job_seconds)

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "batches": self.batches,
            "attempts": self.attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "failures": self.failures,
            "pool_respawns": self.pool_respawns,
            "inline_fallbacks": self.inline_fallbacks,
            "cache_fallbacks": self.cache_fallbacks,
            "enqueued": self.enqueued,
            "lease_reclaims": self.lease_reclaims,
            "speculations": self.speculations,
            "local_fallbacks": self.local_fallbacks,
            "steals": self.steals,
            "split_rescues": self.split_rescues,
            "wall_seconds": round(self.wall_seconds, 3),
            "job_seconds_total": round(sum(self.job_seconds), 3),
            "job_seconds_max": round(max(self.job_seconds, default=0.0), 3),
            "job_seconds": [round(s, 4) for s in self.job_seconds],
        }

    def describe(self) -> str:
        """One-line summary for sweep footers and logs."""
        line = (
            f"{self.jobs} jobs / {self.attempts} attempts in "
            f"{self.wall_seconds:.1f}s — {self.retries} retries, "
            f"{self.timeouts} timeouts, {self.pool_respawns} pool "
            f"respawns, {self.inline_fallbacks} inline fallbacks, "
            f"{self.cache_fallbacks} cache fallbacks, "
            f"{self.failures} hard failures"
        )
        if self.split_rescues:
            line += f", {self.split_rescues} split rescues"
        if self.enqueued or self.lease_reclaims or self.speculations \
                or self.local_fallbacks or self.steals:
            line += (
                f"; distributed: {self.enqueued} enqueued, "
                f"{self.lease_reclaims} lease reclaims, "
                f"{self.speculations} speculative re-dispatches, "
                f"{self.steals} steals, "
                f"{self.local_fallbacks} local fallbacks"
            )
        return line


@dataclass
class _Flight:
    """One in-flight submission.

    ``index`` is the job's position in the batch — or, for a sub-bundle
    of a re-split timed-out bundle, a ``(position, part)`` pair (see
    :class:`_SplitState`)."""

    index: object
    attempt: int
    started: float
    deadline: Optional[float]


@dataclass
class _SplitState:
    """A timed-out bundle re-split across the pool.

    ``parts`` are the contiguous sub-bundles of
    :func:`~repro.runner.continuation.split_bundle`; when every slot of
    ``results`` has landed, their concatenation (part order) is the
    bit-identical unsplit result tuple."""

    parts: List
    results: List
    remaining: int
    #: the attempt number the parts inherit — the split *is* the
    #: bundle's retry, so the total budget stays bounded by max_attempts
    attempt: int


class _BatchState:
    """Bookkeeping for one :meth:`SupervisedExecutor.run` call."""

    def __init__(self, n: int) -> None:
        self.results: List = [None] * n
        self.done: List[bool] = [False] * n
        self.remaining = n
        #: (index, attempt) pairs awaiting submission (``index`` as in
        #: :class:`_Flight`: batch position, or a (position, part) pair)
        self.queue: deque = deque((i, 1) for i in range(n))
        #: min-heap of (ready_time, seq, index, attempt) backoff timers
        self.retries: List[Tuple[float, int, object, int]] = []
        self.inflight: Dict[object, _Flight] = {}
        #: batch position -> in-progress re-split of a timed-out bundle
        self.splits: Dict[int, _SplitState] = {}
        self.pool_breaks = 0
        self.seq = itertools.count()


class SupervisedExecutor:
    """Per-job-future driver over a replaceable ``ProcessPoolExecutor``.

    ``pool_factory`` builds a fresh pool (called lazily and again after
    every respawn); ``worker_fn`` is the picklable module-level function
    submitted per job and must return ``(result, stats_dict)``;
    ``inline_fn`` executes a job in the parent with the same return
    contract (the degraded path, which never touches the pool).

    ``max_inflight`` caps concurrent submissions so jobs are handed to
    the pool only when a worker can take them — a queued-but-unstarted
    job must not burn its wall-clock budget waiting behind a long batch.
    ``None`` (the default) reads the cap off the pool's ``_max_workers``.
    """

    def __init__(
        self,
        pool_factory: Callable[[], object],
        worker_fn: Callable,
        inline_fn: Callable,
        policy: Optional[RetryPolicy] = None,
        report: Optional[RunReport] = None,
        max_inflight: Optional[int] = None,
    ) -> None:
        self._pool_factory = pool_factory
        self._worker_fn = worker_fn
        self._inline_fn = inline_fn
        self.policy = policy if policy is not None else RetryPolicy()
        self.report = report if report is not None else RunReport()
        self._max_inflight = max_inflight
        self._pool = None
        self._inline_only = False
        # Jitter RNG: seeded (deterministic schedule) when
        # REPRO_RETRY_JITTER_SEED is set, fresh entropy otherwise.
        seed = os.environ.get("REPRO_RETRY_JITTER_SEED")
        self._rng = random.Random(seed if seed else None)

    # -- pool lifecycle ----------------------------------------------------

    def pool(self):
        if self._pool is None:
            self._pool = self._pool_factory()
        return self._pool

    def _shutdown_pool(self, kill: bool = False) -> None:
        """Tear the current pool down; ``kill`` terminates its worker
        processes first (the only way to reclaim a hung worker)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if kill:
            for proc in list(getattr(pool, "_processes", {}).values() or []):
                try:
                    proc.terminate()
                except Exception:  # pragma: no cover - already-dead worker
                    pass
        try:
            pool.shutdown(wait=not kill, cancel_futures=True)
        except Exception:  # pragma: no cover - broken executor internals
            pass

    def close(self, kill: bool = False) -> None:
        """Shut the pool down (idempotent)."""
        self._shutdown_pool(kill=kill)

    # -- execution ---------------------------------------------------------

    def run(self, jobs: Sequence) -> List:
        """Execute every job with supervision; ``results[i]`` corresponds
        to ``jobs[i]`` exactly as the unsupervised path's did."""
        jobs = list(jobs)
        if not jobs:
            return []
        self._inline_only = False
        report = self.report
        report.batches += 1
        report.jobs += len(jobs)
        st = _BatchState(len(jobs))
        t0 = time.monotonic()
        try:
            self._drive(jobs, st)
        except BaseException:
            # A batch that raises (hard job failure, Ctrl-C) must not
            # leak a pool full of stale futures — or live workers — into
            # the next run() call or past the interpreter.
            self._shutdown_pool(kill=True)
            raise
        finally:
            report.wall_seconds += time.monotonic() - t0
        return st.results

    def _drive(self, jobs: List, st: _BatchState) -> None:
        while st.remaining:
            now = time.monotonic()
            while st.retries and st.retries[0][0] <= now:
                _, _, i, attempt = heapq.heappop(st.retries)
                st.queue.append((i, attempt))
            if self._inline_only:
                self._drain_inline(jobs, st)
                return
            self._submit_queued(jobs, st)
            if self._inline_only or not st.remaining:
                continue
            if not st.inflight:
                if st.retries:
                    # Waiting purely on backoff timers.
                    delay = st.retries[0][0] - time.monotonic()
                    if delay > 0:
                        time.sleep(min(delay, 0.5))
                continue
            finished = self._wait_for_events(st, self._wait_timeout(st))
            if self._harvest(finished, jobs, st):
                self._recover_pool_break(jobs, st)
                continue
            self._check_deadlines(jobs, st)

    def _submit_queued(self, jobs: List, st: _BatchState) -> None:
        while st.queue and not self._inline_only:
            pool = self.pool()
            # Submit only what the workers can start right now: an
            # eagerly-enqueued job would begin burning its wall-clock
            # budget (deadlines start at submission) while still waiting
            # for a worker, turning queue wait into spurious timeouts.
            cap = self._max_inflight
            if cap is None:
                cap = getattr(pool, "_max_workers", None)
            if cap is not None and len(st.inflight) >= max(1, cap):
                return
            i, attempt = st.queue[0]
            job = self._job_for(jobs, st, i)
            if job is None:
                # A part of a split that was since discarded (inline
                # degradation) or whose bundle already completed.
                st.queue.popleft()
                continue
            try:
                fut = pool.submit(self._worker_fn, job)
            except BrokenExecutor:
                self._recover_pool_break(jobs, st)
                continue
            st.queue.popleft()
            now = time.monotonic()
            budget = self.policy.timeout_for(job)
            st.inflight[fut] = _Flight(
                i, attempt, now, None if budget is None else now + budget
            )
            self.report.attempts += 1
            if attempt > 1:
                self.report.retries += 1

    # -- split-rescue plumbing ---------------------------------------------
    #
    # A timed-out continuation bundle can be re-split across the pool
    # (see _check_deadlines): its sub-bundles travel the normal queue/
    # retry/inflight machinery under (position, part) refs instead of a
    # bare batch position.  These helpers resolve either shape.

    @staticmethod
    def _job_for(jobs: List, st: _BatchState, ref):
        """The job object behind a queue/flight ref (None when the ref
        points at a discarded split or an already-done slot)."""
        if isinstance(ref, int):
            return None if st.done[ref] else jobs[ref]
        i, p = ref
        split = st.splits.get(i)
        if split is None or st.done[i] or split.results[p] is not None:
            return None
        return split.parts[p]

    @staticmethod
    def _ref_done(st: _BatchState, ref) -> bool:
        if isinstance(ref, int):
            return st.done[ref]
        i, p = ref
        split = st.splits.get(i)
        return st.done[i] or split is None or split.results[p] is not None

    def _wait_timeout(self, st: _BatchState) -> Optional[float]:
        bounds = [
            fl.deadline for fl in st.inflight.values() if fl.deadline is not None
        ]
        if st.retries:
            bounds.append(st.retries[0][0])
        if not bounds:
            return None
        return max(0.01, min(bounds) - time.monotonic())

    def _wait_for_events(self, st: _BatchState, timeout: Optional[float]):
        """Block until a future completes, a deadline nears, or a backoff
        timer is due (a method so tests can intercept it)."""
        done, _ = wait(
            list(st.inflight), timeout=timeout, return_when=FIRST_COMPLETED
        )
        return done

    def _harvest(self, finished, jobs: List, st: _BatchState) -> bool:
        """Absorb completed futures; True when the pool broke."""
        broken = False
        for fut in finished:
            fl = st.inflight.pop(fut, None)
            if fl is None or self._ref_done(st, fl.index):
                continue
            try:
                value = fut.result()
            except BrokenExecutor:
                # The pool's fault, not the job's: resubmit with no
                # attempt penalty (degradation is bounded by the
                # max_pool_respawns budget instead).
                broken = True
                st.queue.append((fl.index, fl.attempt))
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                self._record_failure(jobs, st, fl, exc)
            else:
                self._record_success(st, fl, value)
        return broken

    def _record_success(self, st: _BatchState, fl: _Flight, value) -> None:
        result, stats = value
        if isinstance(fl.index, int):
            st.results[fl.index] = result
            st.done[fl.index] = True
            st.remaining -= 1
        else:
            i, p = fl.index
            split = st.splits.get(i)
            if split is not None and not st.done[i]:
                split.results[p] = result
                split.remaining -= 1
                if split.remaining == 0:
                    # Contiguous split: concatenation in part order is
                    # the bit-identical unsplit bundle result.
                    joined: List = []
                    for part_result in split.results:
                        joined.extend(part_result)
                    st.results[i] = tuple(joined)
                    st.done[i] = True
                    st.remaining -= 1
                    del st.splits[i]
        self.report.job_seconds.append(time.monotonic() - fl.started)
        self.report.absorb_worker_stats(stats)

    def _record_failure(self, jobs, st: _BatchState, fl: _Flight, exc) -> None:
        if fl.attempt >= self.policy.max_attempts:
            self.report.failures += 1
            failed_job = self._job_for(jobs, st, fl.index)
            raise JobError(
                f"job {fl.index} failed after {fl.attempt} attempts: {exc!r}",
                job=failed_job,
                attempts=fl.attempt,
            ) from exc
        delay = self.policy.backoff_for(fl.attempt, rng=self._rng)
        logger.warning(
            "job %d attempt %d failed (%s: %s); retrying in %.2fs",
            fl.index,
            fl.attempt,
            type(exc).__name__,
            exc,
            delay,
        )
        heapq.heappush(
            st.retries,
            (time.monotonic() + delay, next(st.seq), fl.index, fl.attempt + 1),
        )

    def _salvage_inflight(self, jobs: List, st: _BatchState) -> None:
        """The pool is about to be torn down: keep results that beat the
        failure, charge completed failures their attempt, and requeue
        futures that never finished with no attempt penalty (the
        breakage is the pool's fault, not theirs)."""
        for fut, fl in list(st.inflight.items()):
            if self._ref_done(st, fl.index):
                continue
            if not fut.done() or fut.cancelled():
                st.queue.append((fl.index, fl.attempt))
                continue
            try:
                value = fut.result()
            except BrokenExecutor:
                # The pool died under the job: not the job's failure.
                st.queue.append((fl.index, fl.attempt))
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                # The job genuinely failed before the pool went down:
                # count the attempt (and propagate exhaustion) exactly
                # like a harvest-time failure — a deterministic failure
                # must not dodge max_attempts by riding pool breaks.
                self._record_failure(jobs, st, fl, exc)
            else:
                self._record_success(st, fl, value)
        st.inflight.clear()

    def _recover_pool_break(self, jobs: List, st: _BatchState) -> None:
        self._salvage_inflight(jobs, st)
        self._shutdown_pool(kill=True)
        st.pool_breaks += 1
        if st.pool_breaks > self.policy.max_pool_respawns:
            logger.error(
                "worker pool broke %d times; degrading %d remaining "
                "job(s) to inline execution",
                st.pool_breaks,
                st.remaining,
            )
            self._inline_only = True
            return
        delay = self.policy.backoff_for(st.pool_breaks, rng=self._rng)
        logger.warning(
            "worker pool broke (break %d/%d); respawning in %.2fs",
            st.pool_breaks,
            self.policy.max_pool_respawns,
            delay,
        )
        self.report.pool_respawns += 1
        if delay > 0:
            time.sleep(delay)
        # The fresh pool is created lazily by the next submission.

    def _check_deadlines(self, jobs: List, st: _BatchState) -> None:
        now = time.monotonic()
        expired = [
            (fut, fl)
            for fut, fl in st.inflight.items()
            if fl.deadline is not None and now >= fl.deadline and not fut.done()
        ]
        if not expired:
            return
        hung = False
        for fut, fl in expired:
            st.inflight.pop(fut)
            if fut.cancel():
                # Never started: the budget burned in the executor queue
                # (possible transiently around a pool respawn), not in
                # the job. Requeue with no penalty, no pool kill.
                st.queue.append((fl.index, fl.attempt))
                continue
            hung = True
            self.report.timeouts += 1
            timed_out = self._job_for(jobs, st, fl.index)
            budget = self.policy.timeout_for(timed_out)
            if fl.attempt >= self.policy.max_attempts:
                self.report.failures += 1
                raise JobTimeoutError(
                    f"job {fl.index} exceeded its {budget:.1f}s budget on "
                    f"final attempt {fl.attempt}",
                    job=timed_out,
                    attempts=fl.attempt,
                )
            delay = self.policy.backoff_for(fl.attempt, rng=self._rng)
            split = self._try_split(jobs, st, fl)
            if split:
                logger.warning(
                    "bundle %s attempt %d exceeded its %.1fs budget; "
                    "killing the pool and re-splitting into %d sub-bundles "
                    "(retrying in %.2fs)",
                    fl.index, fl.attempt, budget, split, delay,
                )
                for p in range(split):
                    heapq.heappush(
                        st.retries,
                        (now + delay, next(st.seq), (fl.index, p),
                         fl.attempt + 1),
                    )
                continue
            logger.warning(
                "job %s attempt %d exceeded its %.1fs budget; killing the "
                "pool and retrying in %.2fs",
                fl.index,
                fl.attempt,
                budget,
                delay,
            )
            heapq.heappush(
                st.retries,
                (now + delay, next(st.seq), fl.index, fl.attempt + 1),
            )
        if not hung:
            return
        # A running future cannot be cancelled: reclaim the hung worker
        # by killing the whole pool. The kill goes through the shared
        # recovery path so it salvages the innocent bystanders AND
        # counts against the respawn budget — an environment that hangs
        # repeatedly must degrade to inline like one that crashes
        # repeatedly.
        self._recover_pool_break(jobs, st)

    def _try_split(self, jobs: List, st: _BatchState, fl: _Flight) -> int:
        """Re-split a timed-out continuation bundle across the pool.

        Returns the part count (0 = not splittable; the caller falls
        back to the whole-bundle retry).  The parts inherit the
        bundle's next attempt number — the split *is* its retry — and a
        part that times out again retries whole (parts never re-split).
        ``REPRO_SPLIT_RETRY=0`` disables the rescue."""
        if not isinstance(fl.index, int):
            return 0  # never re-split a part
        if fl.index in st.splits:
            return 0
        if _env_int("REPRO_SPLIT_RETRY", 1) <= 0:
            return 0
        from repro.runner.continuation import ContinuationJob, split_bundle

        job = jobs[fl.index]
        if not isinstance(job, ContinuationJob) or len(job.runs) < 2:
            return 0
        cap = self._max_inflight if self._max_inflight else 2
        parts = split_bundle(job, max(2, cap))
        if len(parts) < 2:
            return 0
        st.splits[fl.index] = _SplitState(
            parts=parts,
            results=[None] * len(parts),
            remaining=len(parts),
            attempt=fl.attempt + 1,
        )
        self.report.split_rescues += 1
        return len(parts)

    def _drain_inline(self, jobs: List, st: _BatchState) -> None:
        """Degraded path: run the unfinished jobs in the parent under the
        same retry budget and :class:`JobError` failure contract as the
        supervised pool path (only deadlines are gone — an inline job
        cannot be reclaimed).  In-progress splits are discarded — their
        bundles re-run whole (partial part results are only wasted work;
        bit-identity is untouched) at the attempt number the split
        inherited."""
        # Carry each job's attempt count over so the total budget stays
        # bounded by max_attempts across both execution paths.  Part
        # refs ((position, part) pairs) fold back into their bundle.
        attempts: Dict[int, int] = {}

        def note(ref, a: int) -> None:
            i = ref if isinstance(ref, int) else ref[0]
            attempts[i] = max(attempts.get(i, a), a)

        for ref, a in st.queue:
            note(ref, a)
        for _, _, ref, a in st.retries:
            note(ref, a)
        for i, split in st.splits.items():
            note(i, split.attempt)
        st.queue.clear()
        st.retries.clear()
        st.splits.clear()
        for i, job in enumerate(jobs):
            if st.done[i]:
                continue
            self.report.inline_fallbacks += 1
            attempt = attempts.get(i, 1)
            while True:
                t0 = time.monotonic()
                self.report.attempts += 1
                if attempt > 1:
                    self.report.retries += 1
                try:
                    result, stats = self._inline_fn(job)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as exc:
                    if attempt >= self.policy.max_attempts:
                        self.report.failures += 1
                        raise JobError(
                            f"job {i} failed inline after {attempt} "
                            f"attempts: {exc!r}",
                            job=job,
                            attempts=attempt,
                        ) from exc
                    delay = self.policy.backoff_for(attempt, rng=self._rng)
                    logger.warning(
                        "job %d attempt %d failed inline (%s: %s); "
                        "retrying in %.2fs",
                        i,
                        attempt,
                        type(exc).__name__,
                        exc,
                        delay,
                    )
                    if delay > 0:
                        time.sleep(delay)
                    attempt += 1
                    continue
                st.results[i] = result
                st.done[i] = True
                st.remaining -= 1
                self.report.job_seconds.append(time.monotonic() - t0)
                self.report.absorb_worker_stats(stats)
                break
