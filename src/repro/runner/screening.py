"""Successive-halving screens for the oracle mapping search.

The BEST/WORST oracle policies rank every candidate thread-to-pipeline
mapping with a short *screen* simulation. Exact screening runs every
candidate at the full screen window — robust but wasteful: most of the
window is spent separating mappings that are nowhere near either tail.

:class:`HalvingScreen` plans the classic successive-halving alternative
(Jamieson & Talwalkar; the staged pruning used by design-space studies in
PAPERS.md): every candidate runs at a fraction of the window, the middle
of the pack is eliminated, survivors re-run at double the window, until
the final round runs the few remaining candidates at the full window.
Because the oracle needs *both* extremes, each round keeps the top and
bottom of the ranking and discards the middle — the argmax/argmin are
overwhelmingly likely to stay in their tail at every width, which the
reference-scenario equivalence test pins.

Pruning rounds rank by per-round *marginal* IPC — instructions committed
and cycles elapsed since the candidate's previous checkpoint, free from
the checkpoints the ladder keeps anyway. On the synthetic traces the
early window is phase-heavy, so cumulative IPC drags every later
ranking toward the (shared) start-up transient; the marginal ranking
sees only the fresh window each round and tracks full-window rank
better, which is what lets the ladder prune harder (a smaller ``keep``)
without disturbing the selected extremes. The *final* round always
scores by cumulative full-window IPC, so selection and reported scores
remain exactly what the exact screen produces for those candidates
(:mod:`tests.experiments.test_screening_equivalence` pins this on the
reference scenario).

:class:`HalvingScreen` only *plans*; :class:`ScreenJob` executes a whole
ladder for one (configuration, workload) pair inside one worker, keeping
survivors' :class:`~repro.core.processor.Processor` objects alive between
rounds so they *continue* executing instead of restarting (checkpointed
continuation — bit-identical to fresh longer runs). The experiment sweep
ships one ``ScreenJob`` per pair in a single cross-pair batch
(:func:`repro.experiments.performance.run_performance_experiment`);
parallelism is therefore pair-granular in screening mode, while exact
mode fans out per-candidate ``SimJob``\\ s.

With ``rounds=1`` the plan degenerates to the exact screen (every
candidate, full window).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import TYPE_CHECKING, ClassVar, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import MicroarchConfig, get_config
from repro.core.simulation import SimResult
from repro.runner.jobs import TraceUnit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.cache import ResultCache

__all__ = ["HalvingScreen", "ScreenJob", "ScreenResult"]

Mapping = Tuple[int, ...]


class HalvingScreen:
    """Round planner for one candidate set.

    Parameters
    ----------
    candidates:
        The mappings to screen (deduplicated, deterministic order).
    final_target:
        Commit target of the last round (the exact screen's window).
    rounds:
        Ladder length; round ``r`` runs at ``final_target / 2**(R-1-r)``
        (clamped to ``min_target``). ``1`` reproduces exact screening.
    keep:
        Fraction of survivors kept per pruning step (split between the
        top and bottom of the ranking).
    top_fraction:
        Share of each kept cohort taken from the *top* of the ranking
        (the rest comes from the bottom). The oracle's argmax is the
        contract-pinned selection, so the sweep biases survival toward
        the top tail; ``0.5`` reproduces the symmetric split.
    min_survivors:
        Pruning floor — once reached, the plan jumps straight to the
        final round.
    min_target:
        Smallest useful screen window; early rounds never go below it.
    """

    def __init__(
        self,
        candidates: Sequence[Mapping],
        final_target: int,
        *,
        rounds: int = 4,
        keep: float = 0.5,
        top_fraction: float = 0.5,
        min_survivors: int = 3,
        min_target: int = 150,
    ) -> None:
        if not candidates:
            raise ValueError("need at least one candidate mapping")
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not 0.0 < keep <= 1.0:
            raise ValueError("keep must be in (0, 1]")
        if not 0.0 < top_fraction <= 1.0:
            raise ValueError("top_fraction must be in (0, 1]")
        ladder: List[int] = []
        for r in range(rounds):
            target = max(min_target, final_target >> (rounds - 1 - r))
            if not ladder or target > ladder[-1]:
                ladder.append(target)
        ladder[-1] = final_target
        self.targets = ladder
        self.survivors: List[Mapping] = list(dict.fromkeys(candidates))
        self.keep = keep
        self.top_fraction = top_fraction
        self.min_survivors = min_survivors
        self._round = 0
        self.finished = False
        self.screens_run = 0
        self._final_scores: Dict[Mapping, float] = {}
        if len(self.survivors) <= min_survivors:
            self._round = len(self.targets) - 1  # nothing to prune

    # -- round protocol ----------------------------------------------------

    @property
    def round_target(self) -> int:
        """Commit target of the round currently awaiting results."""
        return self.targets[self._round]

    @property
    def is_final_round(self) -> bool:
        return self._round == len(self.targets) - 1

    def feed(self, scores: Dict[Mapping, float]) -> None:
        """Consume the current round's ``mapping -> score`` ranking.

        Non-final rounds prune to the ranking's two tails and advance the
        ladder; the final round freezes the scores :meth:`best` /
        :meth:`worst` select from. The planner is metric-agnostic:
        :class:`ScreenJob` feeds per-round *marginal* IPC on pruning
        rounds and cumulative full-window IPC on the final round, so
        selection ties break exactly as the exact screen's did.
        """
        if self.finished:
            raise RuntimeError("screen already finished")
        missing = [m for m in self.survivors if m not in scores]
        if missing:
            raise ValueError(f"round scores missing {len(missing)} mappings")
        self.screens_run += len(self.survivors)
        if self.is_final_round:
            self._final_scores = {m: scores[m] for m in self.survivors}
            self.finished = True
            return
        # Deterministic ranking: ties broken by the mapping tuple itself.
        order = sorted(self.survivors, key=lambda m: (-scores[m], m))
        k = max(self.min_survivors, ceil(len(order) * self.keep))
        if k >= len(order):
            self.survivors = order
        else:
            # The oracle needs *both* extremes: however top-biased the
            # split, at least one bottom-tail candidate must survive to
            # the final round or worst() degenerates to a top mapping.
            top = ceil(k * self.top_fraction)
            if top >= k and k > 1:
                top = k - 1
            bottom = k - top
            self.survivors = order[:top] + (order[-bottom:] if bottom else [])
        self._round += 1
        if len(self.survivors) <= self.min_survivors:
            self._round = len(self.targets) - 1  # pruning floor: go final

    # -- selection ---------------------------------------------------------

    def _require_finished(self) -> Dict[Mapping, float]:
        if not self.finished:
            raise RuntimeError("screen not finished")
        return self._final_scores

    def best(self) -> Mapping:
        """Argmax of the final round — ties resolved exactly as the seed
        driver's ``max((ipc, mapping))`` did."""
        scores = self._require_finished()
        return max(scores, key=lambda m: (scores[m], m))

    def worst(self) -> Mapping:
        """Argmin of the final round (seed ``min((ipc, mapping))``)."""
        scores = self._require_finished()
        return min(scores, key=lambda m: (scores[m], m))

    def final_scores(self) -> Dict[Mapping, float]:
        return dict(self._require_finished())


# ------------------------------------------------------------- screen jobs


@dataclass(frozen=True)
class ScreenResult:
    """Outcome of one :class:`ScreenJob`.

    ``final_scores`` holds the last round's ``mapping -> IPC`` — with
    ``rounds=1`` that is every candidate at the full window, exactly the
    scores the exact per-candidate screen produced. When the job carried
    a ``full_target``, ``full_results`` holds complete full-length
    :class:`~repro.core.simulation.SimResult` objects for the selected
    best/worst mappings (their checkpoints continued to the full window —
    bit-identical to fresh full-length runs).
    """

    final_scores: Tuple[Tuple[Mapping, float], ...]
    screens_run: int
    candidates: int
    full_results: Tuple[Tuple[Mapping, "SimResult"], ...] = ()

    def scores(self) -> Dict[Mapping, float]:
        return dict(self.final_scores)

    def best(self) -> Mapping:
        """Argmax over the final round (seed ``max((ipc, mapping))``)."""
        scores = self.scores()
        return max(scores, key=lambda m: (scores[m], m))

    def worst(self) -> Mapping:
        """Argmin over the final round (seed ``min((ipc, mapping))``)."""
        scores = self.scores()
        return min(scores, key=lambda m: (scores[m], m))


@dataclass(frozen=True)
class ScreenJob:
    """Screen one (configuration, workload)'s candidate mappings.

    One job covers the pair's whole screening ladder so it can
    *checkpoint*: candidates keep their :class:`~repro.core.processor.
    Processor` between rounds and survivors simply continue executing to
    the next window. A resumed simulation is bit-identical to a fresh
    longer one (the commit target only decides when the run stops), so
    the final round's scores equal what exact screening would have
    produced for the surviving candidates — successive halving then costs
    ``sum(round widths)`` instead of ``rounds × full width``.

    The checkpoints double as the marginal-IPC bookkeeping: pruning
    rounds rank survivors by ``Δcommitted / Δcycles`` since their last
    checkpoint (no extra simulation — the deltas fall out of state the
    job already holds), while the final round scores cumulatively.

    With ``rounds=1`` this is exact screening: every candidate runs the
    full window from scratch, no checkpoint retained.

    ``full_target`` (screening mode) folds the oracle's full-length runs
    into the job: after the ladder picks best/worst, their checkpointed
    processors keep executing to the full commit target and the job
    returns finished :class:`~repro.core.simulation.SimResult` objects.
    ``extra_fulls`` (e.g. the heuristic's mapping) are run fresh at the
    full target in the same job — bit-identical to separate full-length
    jobs, but sharing the pair's traces and warm snapshot in one worker.
    """

    config: Union[str, MicroarchConfig]
    benchmarks: Tuple[str, ...]
    candidates: Tuple[Mapping, ...]
    final_target: int
    rounds: int = 1

    #: BatchRunner parallelizes batches of heavy jobs at 2+ jobs (a
    #: whole ladder amortizes its dispatch overhead by construction).
    heavy: ClassVar[bool] = True
    keep: float = 0.5
    top_fraction: float = 0.5
    min_survivors: int = 3
    min_target: int = 150
    trace_length: Optional[int] = None
    seed: int = 0
    full_target: Optional[int] = None
    extra_fulls: Tuple[Mapping, ...] = ()

    def execute(self, cache: Optional["ResultCache"] = None) -> ScreenResult:
        """Run the ladder in this process (checkpointed continuation),
        serving from / populating ``cache`` when one is given (the whole
        ladder caches as one unit under :meth:`cache_key_fields`)."""
        if cache is not None:
            hit = cache.get(self)
            if hit is not None:
                return hit
        result = self._execute_ladder()
        if cache is not None:
            cache.put(self, result)
        return result

    def _execute_ladder(self) -> ScreenResult:
        from repro.core.processor import Processor
        from repro.core.simulation import default_trace_length, resolve_traces

        config = (
            get_config(self.config) if isinstance(self.config, str) else self.config
        )
        length = (
            self.trace_length
            if self.trace_length is not None
            else default_trace_length(self.final_target)
        )
        traces = resolve_traces(self.benchmarks, length, self.seed)
        screen = HalvingScreen(
            self.candidates,
            self.final_target,
            rounds=self.rounds,
            keep=self.keep,
            top_fraction=self.top_fraction,
            min_survivors=self.min_survivors,
            min_target=self.min_target,
        )
        checkpoints: Dict[Mapping, Processor] = {}
        #: per-mapping (cycles, committed) at the previous checkpoint —
        #: the basis of the pruning rounds' marginal-IPC ranking.
        progress: Dict[Mapping, Tuple[int, int]] = {}
        while not screen.finished:
            target = screen.round_target
            final_round = screen.is_final_round
            keep_procs = not final_round or self.full_target is not None
            scores: Dict[Mapping, float] = {}
            for m in screen.survivors:
                proc = checkpoints.pop(m, None)
                if proc is None:
                    prev_cycles = prev_committed = 0
                    proc = Processor(config, traces, m, target)
                    proc.warm()
                    # Steady-state measurement, as run_simulation does —
                    # keeps the folded full-length results bit-identical.
                    proc.mem.reset_stats()
                    proc.branch_unit.reset_stats()
                else:
                    # Continue the checkpointed run to the wider window —
                    # deterministic, so identical to a fresh longer run.
                    prev_cycles, prev_committed = progress[m]
                    proc.commit_target = target
                    proc.finished = False
                proc.run()
                if final_round:
                    # Selection + reported scores: cumulative full-window
                    # IPC, bit-equal to the exact screen's score.
                    scores[m] = proc.aggregate_ipc()
                else:
                    # Pruning: IPC over this round's fresh window only
                    # (for round 0 the two coincide exactly).
                    d_cycles = proc.cycle - prev_cycles
                    d_committed = sum(proc.committed) - prev_committed
                    scores[m] = (
                        d_committed / d_cycles
                        if d_cycles
                        else proc.aggregate_ipc()
                    )
                if keep_procs:
                    checkpoints[m] = proc
                    progress[m] = (proc.cycle, sum(proc.committed))
            screen.feed(scores)
            if not screen.finished:
                alive = set(screen.survivors)
                for m in list(checkpoints):
                    if m not in alive:
                        del checkpoints[m]
        final = screen.final_scores()
        full_results: List[Tuple[Mapping, "SimResult"]] = []
        if self.full_target is not None:
            from repro.core.simulation import collect_result

            done = set()
            for m in dict.fromkeys((screen.best(), screen.worst())):
                proc = checkpoints[m]
                proc.commit_target = self.full_target
                proc.finished = False
                proc.run()
                full_results.append(
                    (m, collect_result(proc, config.name, self.benchmarks, m,
                                       self.full_target))
                )
                done.add(m)
            for m in dict.fromkeys(self.extra_fulls):
                if m in done:
                    continue
                proc = Processor(config, traces, m, self.full_target)
                proc.warm()
                proc.mem.reset_stats()
                proc.branch_unit.reset_stats()
                proc.run()
                full_results.append(
                    (m, collect_result(proc, config.name, self.benchmarks, m,
                                       self.full_target))
                )
        checkpoints.clear()
        return ScreenResult(
            final_scores=tuple(sorted(final.items())),
            screens_run=screen.screens_run,
            candidates=len(self.candidates),
            full_results=tuple(full_results),
        )

    # -- shared-store / result-cache integration ---------------------------

    def trace_triples(self) -> List[Tuple[str, int, int]]:
        """Traces this job streams (for the parent's pre-pack pass)."""
        from repro.core.simulation import (
            default_trace_length,
            resolve_trace_triples,
        )

        length = (
            self.trace_length
            if self.trace_length is not None
            else default_trace_length(self.final_target)
        )
        return resolve_trace_triples(self.benchmarks, length, self.seed)

    def trace_manifest(self) -> Tuple[TraceUnit, ...]:
        """One unit: the whole ladder shares one trace set + warm set."""
        return (
            TraceUnit(triples=tuple(self.trace_triples()), config=self.config),
        )

    def cache_key_fields(self) -> dict:
        """Content-hash fields for the on-disk result cache."""
        config = self.config if isinstance(self.config, str) else repr(self.config)
        return {
            "kind": "screen",
            # Ranking-semantics salt: marginal-IPC pruning rounds (this
            # PR) can keep different survivors than cumulative ranking
            # did, so cached results from either regime must not alias.
            "ranking": "marginal-v1",
            "config": config,
            "benchmarks": list(self.benchmarks),
            "candidates": [list(m) for m in self.candidates],
            "final_target": self.final_target,
            "rounds": self.rounds,
            "keep": self.keep,
            "top_fraction": self.top_fraction,
            "min_survivors": self.min_survivors,
            "min_target": self.min_target,
            "trace_length": self.trace_length,
            "seed": self.seed,
            "full_target": self.full_target,
            "extra_fulls": [list(m) for m in self.extra_fulls],
        }

    def result_payload(self, result: ScreenResult) -> dict:
        from repro.runner.cache import sim_result_payload

        return {
            "kind": "screen",
            "final_scores": [[list(m), s] for m, s in result.final_scores],
            "screens_run": result.screens_run,
            "candidates": result.candidates,
            "full_results": [
                [list(m), sim_result_payload(r)]
                for m, r in result.full_results
            ],
        }

    def restore_result(self, payload: dict) -> ScreenResult:
        from repro.runner.cache import sim_result_restore

        return ScreenResult(
            final_scores=tuple(
                (tuple(m), s) for m, s in payload["final_scores"]
            ),
            screens_run=payload["screens_run"],
            candidates=payload["candidates"],
            full_results=tuple(
                (tuple(m), sim_result_restore(r))
                for m, r in payload["full_results"]
            ),
        )
