"""Parallel batch execution of simulations.

The paper's figures need BEST/WORST oracle sweeps — every distinct
thread-to-pipeline mapping of every (configuration, workload) pair is
screened with a short simulation. Those runs are embarrassingly parallel
and perfectly deterministic, so :class:`~repro.runner.batch.BatchRunner`
fans them out over a :class:`concurrent.futures.ProcessPoolExecutor`:

* **one job protocol** — every job kind implements
  :class:`~repro.runner.jobs.Job` (identity key, ``heavy`` scheduling
  hint, trace manifest, cache-aware ``execute``), so the runner has
  exactly one dispatch/cache/prepack path and new job kinds need no
  runner changes;
* **process-local caches** — each worker process keeps the module-level
  trace cache (:func:`repro.trace.stream.trace_for`) and warm-state cache
  (:mod:`repro.core.engine.warm`) warm across the jobs it executes, so a
  workload's traces are generated and warmed once per worker rather than
  once per job;
* **optional on-disk result cache** — jobs are content-addressed by
  (configuration, workload, mapping, commit target, trace length, seed)
  and their :class:`~repro.core.simulation.SimResult` is stored as JSON,
  so re-running an experiment sweep is free;
* **bit-identical results** — a simulation's outcome depends only on its
  arguments, never on scheduling, so parallel results equal sequential
  results exactly (asserted by ``tests/runner/test_batch_runner.py``);
* **shared packed-trace / warm-snapshot store** — before a parallel batch
  launches, the parent packs every trace the batch needs into a
  content-addressed store (``REPRO_TRACE_CACHE`` or a private temp dir);
  workers mmap the packed columns instead of regenerating traces, and the
  first process to warm a trace set persists the structure snapshot for
  the others;
* **successive-halving screens** — :class:`~repro.runner.screening.
  HalvingScreen` plans staged oracle screening (short windows eliminate
  the middle of the candidate pack before full-window runs), the
  ``--screening`` fast path of the experiment drivers;
* **bundled runs** — :class:`~repro.runner.continuation.ContinuationJob`
  packs the sweep's per-run work — post-screen full-length continuations
  *and* exact-mode screens — into a handful of bundles sized to the
  worker count (:func:`~repro.runner.continuation.plan_bundles` /
  :func:`~repro.runner.continuation.run_bundled`), so the pool executes
  a few large jobs instead of draining one job per run;
* **supervised, fault-tolerant dispatch** — parallel batches run through
  :class:`~repro.runner.resilience.SupervisedExecutor`: per-job futures
  with configurable timeouts (:class:`~repro.runner.resilience.
  RetryPolicy`), exponential-backoff retries (free and safe because jobs
  are idempotent), automatic pool respawn on ``BrokenProcessPool``, and
  inline degradation when the pool breaks repeatedly. Every recovery
  event lands in a structured
  :class:`~repro.runner.resilience.RunReport` (``runner.report``), and a
  deterministic fault-injection harness (:mod:`repro.runner.faults`,
  env-gated by ``REPRO_FAULT_PLAN``) exercises each path with real
  worker processes;
* **distributed, elastic execution** — with a queue directory configured
  (``REPRO_DIST_QUEUE`` / ``BatchRunner(queue_dir=...)``), parallel
  batches go through a crash-consistent filesystem
  :class:`~repro.runner.distributed.JobQueue` to a fleet of
  ``repro worker`` processes (lease-based ownership with heartbeats,
  first-wins result publishing, speculative straggler re-dispatch), and
  degrade to the local supervised pool whenever the fleet never shows,
  goes dark, or stalls — results stay bit-identical to local execution
  either way (see :mod:`repro.runner.distributed`).

Worker count: the ``workers`` argument, else the ``REPRO_WORKERS``
environment variable, else ``os.cpu_count()``. ``workers=1`` (or a batch
of fewer than two jobs) runs inline with no subprocess overhead.
"""

from repro.runner.batch import BatchRunner
from repro.runner.cache import ResultCache
from repro.runner.continuation import (
    ContinuationJob,
    ContinuationRun,
    plan_bundles,
    run_bundled,
)
from repro.runner.distributed import (
    DistributedExecutor,
    JobQueue,
    Worker,
)
from repro.runner.jobs import Job, SimJob, TraceUnit
from repro.runner.resilience import (
    JobError,
    JobTimeoutError,
    RetryPolicy,
    RunReport,
    SupervisedExecutor,
)
from repro.runner.screening import HalvingScreen

__all__ = [
    "BatchRunner",
    "Job",
    "SimJob",
    "TraceUnit",
    "ResultCache",
    "HalvingScreen",
    "ContinuationJob",
    "ContinuationRun",
    "plan_bundles",
    "run_bundled",
    "RetryPolicy",
    "RunReport",
    "SupervisedExecutor",
    "JobError",
    "JobTimeoutError",
    "DistributedExecutor",
    "JobQueue",
    "Worker",
]
