"""The unified runner job protocol.

Three job taxonomies grew side by side over the perf PRs — per-run
:class:`SimJob`, checkpointed :class:`~repro.runner.screening.ScreenJob`
ladders, and bundled
:class:`~repro.runner.continuation.ContinuationJob` continuations — each
with its own dispatch, caching and trace-prepack special case inside
:class:`~repro.runner.batch.BatchRunner`. This module collapses them
onto one :class:`Job` protocol, so the runner has exactly one
dispatch/cache/prepack path:

``heavy``
    Scheduling hint: a heavy job (a whole screen ladder, a continuation
    bundle) amortizes its dispatch overhead by construction, so the
    runner parallelizes batches of heavy jobs at 2+ jobs instead of 3+.

``execute(cache=None)``
    Run the job in this process. A cache-aware job consults/populates
    the given :class:`~repro.runner.cache.ResultCache` itself (under its
    own identity, or — for bundles — under each bundled run's identity,
    so reuse never depends on batch composition). ``execute()`` with no
    cache is always the raw computation.

``trace_manifest()``
    The job's trace needs, as :class:`TraceUnit` records — one per
    independent simulation the job contains. The BatchRunner parent
    iterates these to pre-pack traces and warm snapshots into the shared
    store before a parallel batch launches, with no per-job-kind
    special-casing.

``cache_key_fields()``
    The job's canonical identity for the on-disk result cache (see
    :meth:`~repro.runner.cache.ResultCache.job_key`). Jobs that cache at
    a finer grain (bundles cache per run) simply never present
    themselves to the cache.

:class:`SimJob` — one ``run_simulation`` call as data — lives here as
the protocol's reference implementation; the screen and continuation
jobs implement the same protocol in their own modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    ClassVar,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.core.config import MicroarchConfig
from repro.core.simulation import (
    SimResult,
    default_trace_length,
    resolve_trace_triples,
    run_simulation,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.cache import ResultCache

__all__ = ["Job", "SimJob", "TraceUnit"]

#: (benchmark, length, instance) — the identity of one synthetic trace.
Triple = Tuple[str, int, int]


@dataclass(frozen=True)
class TraceUnit:
    """Trace needs of one independent simulation inside a job.

    ``triples`` are the traces the simulation streams; ``config`` is the
    configuration whose memory parameters key the warm snapshot — or
    ``None`` when the simulation runs unwarmed (no snapshot to
    precompute).
    """

    triples: Tuple[Triple, ...]
    config: Union[str, MicroarchConfig, None]


@runtime_checkable
class Job(Protocol):
    """What :class:`~repro.runner.batch.BatchRunner` requires of a job."""

    heavy: bool

    def execute(self, cache: Optional["ResultCache"] = None) -> Any:
        """Run in this process (cache-aware when a cache is given)."""

    def trace_manifest(self) -> Sequence[TraceUnit]:
        """One :class:`TraceUnit` per independent simulation contained."""


@dataclass(frozen=True)
class SimJob:
    """One :func:`~repro.core.simulation.run_simulation` call, as data.

    ``seed`` namespaces the synthetic-trace generation (the paper's fixed
    traces are seed 0); it participates in the cache key so alternative
    trace draws never collide.
    """

    config: Union[str, MicroarchConfig]
    benchmarks: Tuple[str, ...]
    mapping: Tuple[int, ...]
    commit_target: int
    trace_length: Optional[int] = None
    warmup: bool = True
    max_cycles: Optional[int] = None
    seed: int = 0

    #: plain per-run jobs don't amortize dispatch; the runner requires a
    #: slightly larger batch before spinning up the pool.
    heavy: ClassVar[bool] = False

    def execute(self, cache: Optional["ResultCache"] = None) -> SimResult:
        """Run the simulation described by this job (in this process),
        serving from / populating ``cache`` when one is given."""
        if cache is not None:
            hit = cache.get(self)
            if hit is not None:
                return hit
        result = run_simulation(
            self.config,
            self.benchmarks,
            self.mapping,
            self.commit_target,
            trace_length=self.trace_length,
            warmup=self.warmup,
            max_cycles=self.max_cycles,
            seed=self.seed,
        )
        if cache is not None:
            cache.put(self, result)
        return result

    def trace_triples(self) -> List[Triple]:
        """The ``(benchmark, length, instance)`` traces this job streams —
        :func:`~repro.core.simulation.run_simulation`'s exact resolution,
        so the parent can pre-pack exactly what workers will look up."""
        length = (
            self.trace_length
            if self.trace_length is not None
            else default_trace_length(self.commit_target)
        )
        return resolve_trace_triples(self.benchmarks, length, self.seed)

    def trace_manifest(self) -> Tuple[TraceUnit, ...]:
        return (
            TraceUnit(
                triples=tuple(self.trace_triples()),
                config=self.config if self.warmup else None,
            ),
        )

    def cache_key_fields(self) -> dict:
        """Content-hash fields for the on-disk result cache.

        The field set (and therefore every existing cache key) is
        byte-identical to the pre-protocol ``ResultCache`` legacy
        hashing, so caches populated by earlier revisions keep hitting.
        """
        config = self.config if isinstance(self.config, str) else repr(self.config)
        return {
            "config": config,
            "benchmarks": list(self.benchmarks),
            "mapping": list(self.mapping),
            "commit_target": self.commit_target,
            "trace_length": self.trace_length,
            "warmup": self.warmup,
            "max_cycles": self.max_cycles,
            "seed": self.seed,
        }

    def result_payload(self, result: SimResult) -> dict:
        from repro.runner.cache import sim_result_payload

        return sim_result_payload(result)

    def restore_result(self, payload: dict) -> SimResult:
        from repro.runner.cache import sim_result_restore

        return sim_result_restore(payload)
