"""Content-addressed on-disk cache of simulation results.

A :class:`ResultCache` maps a :class:`~repro.runner.batch.SimJob` (or a
:class:`~repro.runner.screening.ScreenJob`) to a JSON file named by the
SHA-256 of the job's canonical description (its configuration — including
every microarchitectural parameter, so ablation variants never collide —
workload, mapping, commit target, trace length and seed, plus version
salts that invalidate stale entries when either the simulator's semantics
(:data:`ENGINE_VERSION`) or the packed-trace format
(:data:`~repro.trace.packed.PACK_FORMAT_VERSION`) change). Corrupted or
truncated entries degrade to a cache miss — the job simply recomputes and
overwrites. Writes are atomic (temp file + rename) so concurrent workers
can share one cache directory.
"""

from __future__ import annotations

import json
import logging
import os
from hashlib import sha256
from pathlib import Path
from typing import Optional

from repro.core.engine.options import engine_options_for, engine_variant_id
from repro.core.simulation import SimResult
from repro.ioutil import atomic_write_bytes
from repro.trace.packed import PACK_FORMAT_VERSION

__all__ = [
    "ResultCache",
    "ENGINE_VERSION",
    "sim_result_payload",
    "sim_result_restore",
]

logger = logging.getLogger(__name__)

#: Bump when the simulation engine's observable behaviour changes: cached
#: results are keyed on it, so stale caches invalidate themselves.
ENGINE_VERSION = 1


def sim_result_payload(result: SimResult) -> dict:
    """The canonical JSON shape of a :class:`SimResult` (single source of
    truth — the screen jobs embed the same shape for folded full runs)."""
    return {
        "config_name": result.config_name,
        "benchmarks": list(result.benchmarks),
        "mapping": list(result.mapping),
        "cycles": result.cycles,
        "committed": list(result.committed),
        "commit_target": result.commit_target,
        "ipc": result.ipc,
        "thread_ipc": list(result.thread_ipc),
        "stats": result.stats,
    }


def sim_result_restore(payload: dict) -> SimResult:
    """Inverse of :func:`sim_result_payload`."""
    return SimResult(
        config_name=payload["config_name"],
        benchmarks=tuple(payload["benchmarks"]),
        mapping=tuple(payload["mapping"]),
        cycles=payload["cycles"],
        committed=tuple(payload["committed"]),
        commit_target=payload["commit_target"],
        ipc=payload["ipc"],
        thread_ipc=tuple(payload["thread_ipc"]),
        stats=dict(payload["stats"]),
    )


class ResultCache:
    """Directory-backed result store, keyed by job content hash.

    Entries are sharded into 256 subdirectories by the first two hex
    characters of the key (``<dir>/ab/abcdef....json``): a cache shared
    by a worker fleet accumulates tens of thousands of entries, and one
    flat directory makes every ``O_CREAT``/rename/listdir pay a
    linear-scan tax on filesystems without indexed directories.  Reads
    are transparent across layouts — a pre-sharding flat entry still
    hits, and is migrated into its shard on first touch (plus a one-time
    bulk migration at construction), so existing caches upgrade in place
    with zero recomputes.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: misses caused by a *corrupt* entry (truncated/garbled payload),
        #: as opposed to a plain absent one — the second line of defense
        #: behind atomic writes, surfaced in the runner's RunReport.
        self.corrupt_fallbacks = 0
        self._migrate_flat_layout()

    def _migrate_flat_layout(self) -> None:
        """Move any flat-layout (pre-sharding) entries into their shards.

        ``os.replace`` is atomic and last-writer-wins, and both layouts'
        writers produce identical bytes for a given key, so racing
        migrators/writers are harmless.  A concurrently-vanished file
        (another migrator won) is skipped.
        """
        for path in self.directory.glob("*.json"):
            key = path.stem
            if len(key) != 64:
                continue  # not one of ours; leave it alone
            shard = self.directory / key[:2]
            shard.mkdir(exist_ok=True)
            try:
                os.replace(path, shard / path.name)
            except FileNotFoundError:
                continue

    # -- keying ------------------------------------------------------------

    @staticmethod
    def job_key(job) -> str:
        """Stable content hash of a job's full description.

        Every cacheable job describes itself through the protocol's
        ``cache_key_fields()`` (see :mod:`repro.runner.jobs`) — for a
        :class:`~repro.runner.jobs.SimJob` that is byte-identical to the
        legacy field set, so existing cache entries keep hitting. All
        keys are salted with the engine and packed-trace format
        versions, plus — whenever a non-generic engine variant (the
        codegen specialization) would execute the job — that variant's
        identity. Specialized and generic runs are bit-identical by
        contract, but the cache must not be able to *mask* a
        specialization bug by serving one variant's stale entry to the
        other; generic runs keep the legacy key bytes, so existing
        caches keep hitting.
        """
        fields = job.cache_key_fields()
        salts = {
            "engine": ENGINE_VERSION,
            "trace_format": PACK_FORMAT_VERSION,
        }
        variant = engine_variant_id(
            engine_options_for(getattr(job, "config", None))
        )
        if variant != "generic":
            salts["engine_variant"] = variant
        desc = json.dumps({**salts, **fields}, sort_keys=True)
        return sha256(desc.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def _flat_path(self, key: str) -> Path:
        """Where the pre-sharding layout kept this key."""
        return self.directory / f"{key}.json"

    # -- access ------------------------------------------------------------

    def get(self, job) -> Optional[SimResult]:
        """Return the cached result for ``job`` or None.

        Any unreadable payload — truncated file, invalid JSON, missing or
        mistyped fields — counts as a miss: the caller recomputes and the
        fresh ``put`` overwrites the damaged entry. An entry that *exists*
        but cannot be decoded additionally counts as a corrupt fallback
        (``corrupt_fallbacks``) and logs what was swallowed.
        """
        key = self.job_key(job)
        path = self._path(key)
        try:
            try:
                payload = json.loads(path.read_text())
            except FileNotFoundError:
                # Transparent flat-layout read: migrate the entry into
                # its shard, then serve it from there.
                flat = self._flat_path(key)
                path.parent.mkdir(exist_ok=True)
                os.replace(flat, path)
                payload = json.loads(path.read_text())
            result = job.restore_result(payload)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # ValueError covers json.JSONDecodeError; OSError covers an
            # unreadable file. The entry was there but unusable: recompute
            # (the fresh put overwrites it) and say why.
            self.misses += 1
            self.corrupt_fallbacks += 1
            logger.warning(
                "corrupt cache entry %s (%s: %s); recomputing",
                path.name,
                type(exc).__name__,
                exc,
            )
            return None
        self.hits += 1
        return result

    def put(self, job, result) -> None:
        """Store ``result`` under ``job``'s key (atomic write)."""
        payload = job.result_payload(result)
        path = self._path(self.job_key(job))
        path.parent.mkdir(exist_ok=True)
        atomic_write_bytes(path, json.dumps(payload).encode())

    def __len__(self) -> int:
        """Entry count in one ``os.scandir`` walk, each key counted once.

        The old implementation ran two full directory globs (``*.json``
        plus ``??/*.json``) — an O(N) double scan on fleet-scale caches
        that could also double-count an entry caught mid-migration
        (visible both flat and in its shard within the same pass).  One
        walk collects shard directories as it counts the flat stragglers,
        and a name set collapses a flat/sharded duplicate to one key.
        """
        seen = set()
        shards = []
        try:
            with os.scandir(self.directory) as entries:
                for entry in entries:
                    name = entry.name
                    if name.endswith(".json") and entry.is_file(
                        follow_symlinks=False
                    ):
                        seen.add(name)
                    elif len(name) == 2 and entry.is_dir(
                        follow_symlinks=False
                    ):
                        shards.append(entry.path)
        except FileNotFoundError:
            return 0
        for shard in shards:
            try:
                with os.scandir(shard) as entries:
                    seen.update(
                        e.name for e in entries if e.name.endswith(".json")
                    )
            except FileNotFoundError:
                continue  # shard vanished mid-walk (concurrent cleanup)
        return len(seen)
