"""Content-addressed on-disk cache of simulation results.

A :class:`ResultCache` maps a :class:`~repro.runner.batch.SimJob` to a
JSON file named by the SHA-256 of the job's canonical description (its
configuration — including every microarchitectural parameter, so ablation
variants never collide — workload, mapping, commit target, trace length
and seed, plus an engine-version salt that invalidates stale entries when
the simulator's semantics change). Writes are atomic (temp file + rename)
so concurrent workers can share one cache directory.
"""

from __future__ import annotations

import json
import os
import tempfile
from hashlib import sha256
from pathlib import Path
from typing import Optional

from repro.core.simulation import SimResult

__all__ = ["ResultCache", "ENGINE_VERSION"]

#: Bump when the simulation engine's observable behaviour changes: cached
#: results are keyed on it, so stale caches invalidate themselves.
ENGINE_VERSION = 1


class ResultCache:
    """Directory-backed result store, keyed by job content hash."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # -- keying ------------------------------------------------------------

    @staticmethod
    def job_key(job) -> str:
        """Stable content hash of a job's full description."""
        # repr() of the (frozen, nested) config dataclass covers every
        # parameter; named configs stay distinct from modified copies
        # because replace() changes the name or a parameter in the repr.
        config = job.config if isinstance(job.config, str) else repr(job.config)
        desc = json.dumps(
            {
                "engine": ENGINE_VERSION,
                "config": config,
                "benchmarks": list(job.benchmarks),
                "mapping": list(job.mapping),
                "commit_target": job.commit_target,
                "trace_length": job.trace_length,
                "warmup": job.warmup,
                "max_cycles": job.max_cycles,
                "seed": job.seed,
            },
            sort_keys=True,
        )
        return sha256(desc.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    # -- access ------------------------------------------------------------

    def get(self, job) -> Optional[SimResult]:
        """Return the cached result for ``job`` or None."""
        path = self._path(self.job_key(job))
        try:
            payload = json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return SimResult(
            config_name=payload["config_name"],
            benchmarks=tuple(payload["benchmarks"]),
            mapping=tuple(payload["mapping"]),
            cycles=payload["cycles"],
            committed=tuple(payload["committed"]),
            commit_target=payload["commit_target"],
            ipc=payload["ipc"],
            thread_ipc=tuple(payload["thread_ipc"]),
            stats=dict(payload["stats"]),
        )

    def put(self, job, result: SimResult) -> None:
        """Store ``result`` under ``job``'s key (atomic write)."""
        payload = {
            "config_name": result.config_name,
            "benchmarks": list(result.benchmarks),
            "mapping": list(result.mapping),
            "cycles": result.cycles,
            "committed": list(result.committed),
            "commit_target": result.commit_target,
            "ipc": result.ipc,
            "thread_ipc": list(result.thread_ipc),
            "stats": result.stats,
        }
        path = self._path(self.job_key(job))
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))
