"""Content-addressed, multi-tier cache of simulation results.

A :class:`ResultCache` maps a :class:`~repro.runner.batch.SimJob` (or a
:class:`~repro.runner.screening.ScreenJob`) to a JSON payload named by
the SHA-256 of the job's canonical description (its configuration —
including every microarchitectural parameter, so ablation variants never
collide — workload, mapping, commit target, trace length and seed, plus
version salts that invalidate stale entries when either the simulator's
semantics (:data:`ENGINE_VERSION`) or the packed-trace format
(:data:`~repro.trace.packed.PACK_FORMAT_VERSION`) change).

The store is tiered:

* **tier 0** — a bounded in-process LRU of deserialized payloads
  (``REPRO_MEM_CACHE_MB``; ``0``, the default, disables it).  A memory
  hit skips the disk read, the JSON parse and the shard path entirely;
  disk hits promote into it, puts write through it.  Entries are
  size-accounted by their serialized byte length.
* **tier 1** — a pluggable byte store behind the small
  :class:`CacheBackend` protocol (``get_bytes`` / ``put_bytes`` /
  ``scan`` / ``delete``).  The default :class:`FilesystemBackend` keeps
  the exact sharded on-disk layout (and key bytes) of the pre-tier
  cache, so existing caches keep hitting; a real KV store plugs in by
  implementing the same four methods.

Corrupted or truncated entries degrade to a cache miss — the job simply
recomputes and overwrites. Writes are atomic (temp file + rename) so
concurrent workers can share one cache directory.
"""

from __future__ import annotations

import json
import logging
import os
import time
from collections import OrderedDict
from hashlib import sha256
from pathlib import Path
from typing import Dict, Iterator, NamedTuple, Optional, Protocol, Tuple

from repro.core.engine.options import engine_options_for, engine_variant_id
from repro.core.simulation import SimResult
from repro.ioutil import atomic_write_bytes
from repro.trace.packed import PACK_FORMAT_VERSION

__all__ = [
    "CacheBackend",
    "CacheEntry",
    "FilesystemBackend",
    "ResultCache",
    "ENGINE_VERSION",
    "sim_result_payload",
    "sim_result_restore",
]

logger = logging.getLogger(__name__)

#: Bump when the simulation engine's observable behaviour changes: cached
#: results are keyed on it, so stale caches invalidate themselves.
ENGINE_VERSION = 1

#: Attribute the per-job key memo hides under (set via
#: ``object.__setattr__`` — every job kind is a frozen dataclass).
_KEY_MEMO_ATTR = "_repro_key_memo"


def sim_result_payload(result: SimResult) -> dict:
    """The canonical JSON shape of a :class:`SimResult` (single source of
    truth — the screen jobs embed the same shape for folded full runs)."""
    return {
        "config_name": result.config_name,
        "benchmarks": list(result.benchmarks),
        "mapping": list(result.mapping),
        "cycles": result.cycles,
        "committed": list(result.committed),
        "commit_target": result.commit_target,
        "ipc": result.ipc,
        "thread_ipc": list(result.thread_ipc),
        "stats": result.stats,
    }


def sim_result_restore(payload: dict) -> SimResult:
    """Inverse of :func:`sim_result_payload`."""
    return SimResult(
        config_name=payload["config_name"],
        benchmarks=tuple(payload["benchmarks"]),
        mapping=tuple(payload["mapping"]),
        cycles=payload["cycles"],
        committed=tuple(payload["committed"]),
        commit_target=payload["commit_target"],
        ipc=payload["ipc"],
        thread_ipc=tuple(payload["thread_ipc"]),
        stats=dict(payload["stats"]),
    )


class CacheEntry(NamedTuple):
    """One stored entry as seen by :meth:`CacheBackend.scan`."""

    key: str
    size: int
    mtime: float


class CacheBackend(Protocol):
    """What tier 1 requires of a byte store.

    The interface is deliberately tiny — content-addressed bytes under
    hex keys — so a real KV service (redis, s3, ...) drops in behind the
    same :class:`ResultCache` without touching any caller.  ``get_bytes``
    returns ``None`` for an absent key and may raise ``OSError`` for an
    entry that exists but cannot be read (surfaced as a corrupt
    fallback, not a crash).
    """

    def get_bytes(self, key: str) -> Optional[bytes]:
        """The stored payload for ``key``, or ``None`` when absent."""

    def put_bytes(self, key: str, payload: bytes) -> None:
        """Durably store ``payload`` under ``key`` (atomic, last-wins)."""

    def scan(self) -> Iterator[CacheEntry]:
        """Iterate every stored entry (for stats and GC)."""

    def delete(self, key: str) -> bool:
        """Remove ``key``; True when an entry was actually removed."""


class FilesystemBackend:
    """The sharded on-disk layout, unchanged bytes and unchanged keys.

    Entries are sharded into 256 subdirectories by the first two hex
    characters of the key (``<dir>/ab/abcdef....json``): a cache shared
    by a worker fleet accumulates tens of thousands of entries, and one
    flat directory makes every ``O_CREAT``/rename/listdir pay a
    linear-scan tax on filesystems without indexed directories.  Reads
    are transparent across layouts — a pre-sharding flat entry still
    hits, and is migrated into its shard on first touch (plus a one-time
    bulk migration at construction), so existing caches upgrade in place
    with zero recomputes.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._migrate_flat_layout()

    def _migrate_flat_layout(self) -> None:
        """Move any flat-layout (pre-sharding) entries into their shards.

        ``os.replace`` is atomic and last-writer-wins, and both layouts'
        writers produce identical bytes for a given key, so racing
        migrators/writers are harmless.  A concurrently-vanished file
        (another migrator won) is skipped.
        """
        for path in self.directory.glob("*.json"):
            key = path.stem
            if len(key) != 64:
                continue  # not one of ours; leave it alone
            shard = self.directory / key[:2]
            shard.mkdir(exist_ok=True)
            try:
                os.replace(path, shard / path.name)
            except FileNotFoundError:
                continue

    def path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def _flat_path(self, key: str) -> Path:
        """Where the pre-sharding layout kept this key."""
        return self.directory / f"{key}.json"

    def get_bytes(self, key: str) -> Optional[bytes]:
        path = self.path_for(key)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            pass
        # Transparent flat-layout read: migrate the entry into its
        # shard, then serve it from there.
        try:
            flat = self._flat_path(key)
            path.parent.mkdir(exist_ok=True)
            os.replace(flat, path)
            return path.read_bytes()
        except FileNotFoundError:
            return None

    def put_bytes(self, key: str, payload: bytes) -> None:
        path = self.path_for(key)
        path.parent.mkdir(exist_ok=True)
        atomic_write_bytes(path, payload)

    def scan(self) -> Iterator[CacheEntry]:
        """Every entry, flat/sharded duplicates collapsed to one key."""
        seen = set()
        shard_dirs = []
        try:
            with os.scandir(self.directory) as entries:
                for entry in entries:
                    name = entry.name
                    if name.endswith(".json") and entry.is_file(
                        follow_symlinks=False
                    ):
                        seen.add(name)
                        yield self._entry_for(entry)
                    elif len(name) == 2 and entry.is_dir(
                        follow_symlinks=False
                    ):
                        shard_dirs.append(entry.path)
        except FileNotFoundError:
            return
        for shard in shard_dirs:
            try:
                with os.scandir(shard) as entries:
                    for entry in entries:
                        if entry.name.endswith(".json") \
                                and entry.name not in seen:
                            yield self._entry_for(entry)
            except FileNotFoundError:
                continue  # shard vanished mid-walk (concurrent cleanup)

    @staticmethod
    def _entry_for(entry: os.DirEntry) -> CacheEntry:
        try:
            st = entry.stat(follow_symlinks=False)
            size, mtime = st.st_size, st.st_mtime
        except OSError:
            size, mtime = 0, 0.0
        return CacheEntry(entry.name[:-5], size, mtime)

    def delete(self, key: str) -> bool:
        removed = False
        for path in (self.path_for(key), self._flat_path(key)):
            try:
                path.unlink()
                removed = True
            except FileNotFoundError:
                pass
        return removed

    def count(self) -> int:
        """Entry count in one ``os.scandir`` walk, each key counted once.

        One walk collects shard directories as it counts the flat
        stragglers, and a name set collapses a flat/sharded duplicate
        (visible in both layouts mid-migration) to one key.
        """
        seen = set()
        shards = []
        try:
            with os.scandir(self.directory) as entries:
                for entry in entries:
                    name = entry.name
                    if name.endswith(".json") and entry.is_file(
                        follow_symlinks=False
                    ):
                        seen.add(name)
                    elif len(name) == 2 and entry.is_dir(
                        follow_symlinks=False
                    ):
                        shards.append(entry.path)
        except FileNotFoundError:
            return 0
        for shard in shards:
            try:
                with os.scandir(shard) as entries:
                    seen.update(
                        e.name for e in entries if e.name.endswith(".json")
                    )
            except FileNotFoundError:
                continue  # shard vanished mid-walk (concurrent cleanup)
        return len(seen)


def _env_mem_budget_mb() -> float:
    raw = os.environ.get("REPRO_MEM_CACHE_MB")
    if not raw:
        return 0.0
    try:
        return max(0.0, float(raw))
    except ValueError:
        logger.warning("ignoring REPRO_MEM_CACHE_MB=%r: not a number", raw)
        return 0.0


class ResultCache:
    """Tiered result store, keyed by job content hash.

    ``directory`` backs the default :class:`FilesystemBackend`; pass
    ``backend`` to substitute any :class:`CacheBackend`.  The memory
    tier is sized by ``mem_cache_mb`` (``None`` reads
    ``REPRO_MEM_CACHE_MB``, defaulting to 0 = disabled) — keeping the
    bare cache memory-less preserves the strict read-through-disk
    semantics the corruption-recovery machinery (and its tests) relies
    on; long-lived servers opt in.
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        *,
        backend: Optional[CacheBackend] = None,
        mem_cache_mb: Optional[float] = None,
    ) -> None:
        if backend is None:
            if directory is None:
                raise ValueError("ResultCache needs a directory or a backend")
            backend = FilesystemBackend(directory)
        self.backend = backend
        self.directory = (
            Path(directory)
            if directory is not None
            else getattr(backend, "directory", None)
        )
        self.hits = 0
        self.misses = 0
        #: misses caused by a *corrupt* entry (truncated/garbled payload),
        #: as opposed to a plain absent one — the second line of defense
        #: behind atomic writes, surfaced in the runner's RunReport.
        self.corrupt_fallbacks = 0
        #: per-tier hit split (``hits`` stays the total, as before)
        self.mem_hits = 0
        self.disk_hits = 0
        budget_mb = (
            mem_cache_mb if mem_cache_mb is not None else _env_mem_budget_mb()
        )
        self.mem_budget_bytes = int(max(0.0, budget_mb) * 1024 * 1024)
        #: key -> (payload, serialized size); insertion order = LRU order
        self._mem: "OrderedDict[str, Tuple[dict, int]]" = OrderedDict()
        self._mem_bytes = 0

    # -- keying ------------------------------------------------------------

    @staticmethod
    def job_key(job) -> str:
        """Stable content hash of a job's full description.

        Every cacheable job describes itself through the protocol's
        ``cache_key_fields()`` (see :mod:`repro.runner.jobs`) — for a
        :class:`~repro.runner.jobs.SimJob` that is byte-identical to the
        legacy field set, so existing cache entries keep hitting. All
        keys are salted with the engine and packed-trace format
        versions, plus — whenever a non-generic engine variant (the
        codegen specialization) would execute the job — that variant's
        identity. Specialized and generic runs are bit-identical by
        contract, but the cache must not be able to *mask* a
        specialization bug by serving one variant's stale entry to the
        other; generic runs keep the legacy key bytes, so existing
        caches keep hitting.

        The key is memoized on the job instance (jobs are frozen/
        immutable and every ``get``+``put`` pair used to re-serialize
        and re-hash the full description twice): the memo is validated
        against the salt tuple — engine version, trace format, active
        engine variant — so runtime engine-option flips or version
        monkeypatching recompute instead of serving a stale key.
        """
        variant = engine_variant_id(
            engine_options_for(getattr(job, "config", None))
        )
        salt_state = (ENGINE_VERSION, PACK_FORMAT_VERSION, variant)
        memo = getattr(job, _KEY_MEMO_ATTR, None)
        if memo is not None and memo[0] == salt_state:
            return memo[1]
        fields = job.cache_key_fields()
        salts = {
            "engine": ENGINE_VERSION,
            "trace_format": PACK_FORMAT_VERSION,
        }
        if variant != "generic":
            salts["engine_variant"] = variant
        desc = json.dumps({**salts, **fields}, sort_keys=True)
        key = sha256(desc.encode()).hexdigest()
        try:
            object.__setattr__(job, _KEY_MEMO_ATTR, (salt_state, key))
        except (AttributeError, TypeError):
            pass  # slotted/exotic job: correctness without the memo
        return key

    def _path(self, key: str) -> Path:
        """Filesystem location of ``key`` (filesystem backend only —
        kept for the fault-injection helpers and layout tests)."""
        return self.backend.path_for(key)

    def _flat_path(self, key: str) -> Path:
        """Where the pre-sharding layout kept this key."""
        return self.backend._flat_path(key)

    # -- the memory tier ---------------------------------------------------

    @property
    def mem_enabled(self) -> bool:
        return self.mem_budget_bytes > 0

    def _mem_get(self, key: str) -> Optional[dict]:
        entry = self._mem.get(key)
        if entry is None:
            return None
        self._mem.move_to_end(key)
        return entry[0]

    def _mem_put(self, key: str, payload: dict, size: int) -> None:
        if not self.mem_enabled or size > self.mem_budget_bytes:
            return
        old = self._mem.pop(key, None)
        if old is not None:
            self._mem_bytes -= old[1]
        self._mem[key] = (payload, size)
        self._mem_bytes += size
        while self._mem_bytes > self.mem_budget_bytes:
            _, (_, evicted) = self._mem.popitem(last=False)
            self._mem_bytes -= evicted

    def _mem_drop(self, key: str) -> None:
        entry = self._mem.pop(key, None)
        if entry is not None:
            self._mem_bytes -= entry[1]

    # -- access ------------------------------------------------------------

    def get(self, job):
        """Return the cached result for ``job`` or None.

        Any unreadable payload — truncated file, invalid JSON, missing or
        mistyped fields — counts as a miss: the caller recomputes and the
        fresh ``put`` overwrites the damaged entry. An entry that *exists*
        but cannot be decoded additionally counts as a corrupt fallback
        (``corrupt_fallbacks``) and logs what was swallowed.
        """
        key = self.job_key(job)
        if self.mem_enabled:
            payload = self._mem_get(key)
            if payload is not None:
                try:
                    result = job.restore_result(payload)
                except (ValueError, KeyError, TypeError):
                    # A foreign job shape under a colliding key cannot
                    # really happen, but degrade like the disk tier does.
                    self._mem_drop(key)
                else:
                    self.hits += 1
                    self.mem_hits += 1
                    return result
        try:
            raw = self.backend.get_bytes(key)
            if raw is None:
                self.misses += 1
                return None
            payload = json.loads(raw)
            result = job.restore_result(payload)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # ValueError covers json.JSONDecodeError; OSError covers an
            # unreadable file. The entry was there but unusable: recompute
            # (the fresh put overwrites it) and say why.
            self.misses += 1
            self.corrupt_fallbacks += 1
            logger.warning(
                "corrupt cache entry %s (%s: %s); recomputing",
                key,
                type(exc).__name__,
                exc,
            )
            return None
        self._mem_put(key, payload, len(raw))
        self.hits += 1
        self.disk_hits += 1
        return result

    def put(self, job, result) -> None:
        """Store ``result`` under ``job``'s key (write-through: atomic
        tier-1 write, then the memory tier)."""
        key = self.job_key(job)
        data = json.dumps(job.result_payload(result)).encode()
        self.backend.put_bytes(key, data)
        if self.mem_enabled:
            # Re-parse for the memory tier: result_payload may alias
            # live result internals (e.g. the stats dict), and a cached
            # payload must never share mutable state with a caller.
            self._mem_put(key, json.loads(data), len(data))

    def contains(self, job) -> bool:
        """Whether a result for ``job`` is already stored (no decode —
        the distributed work-stealer's done-prefix probe)."""
        key = self.job_key(job)
        if self.mem_enabled and key in self._mem:
            return True
        path = getattr(self.backend, "path_for", None)
        if path is not None:
            return path(key).exists()
        try:
            return self.backend.get_bytes(key) is not None
        except OSError:
            return False

    # -- introspection / GC ------------------------------------------------

    def stats(self) -> dict:
        """Entry count, byte totals and per-tier counters (the
        ``repro cache stats`` CLI payload)."""
        entries = 0
        total_bytes = 0
        for entry in self.backend.scan():
            entries += 1
            total_bytes += entry.size
        return {
            "entries": entries,
            "total_bytes": total_bytes,
            "hits": self.hits,
            "mem_hits": self.mem_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "corrupt_fallbacks": self.corrupt_fallbacks,
            "mem_entries": len(self._mem),
            "mem_bytes": self._mem_bytes,
            "mem_budget_bytes": self.mem_budget_bytes,
        }

    def prune(self, older_than_seconds: float) -> dict:
        """Remove entries last written more than ``older_than_seconds``
        ago (both tiers); returns ``{"removed", "removed_bytes",
        "kept"}``.  Safe against concurrent writers: a pruned entry that
        was being re-put simply wins the race in one direction or the
        other — either outcome is a valid cache state."""
        cutoff = time.time() - max(0.0, older_than_seconds)
        removed = 0
        removed_bytes = 0
        kept = 0
        for entry in list(self.backend.scan()):
            if entry.mtime >= cutoff:
                kept += 1
                continue
            if self.backend.delete(entry.key):
                removed += 1
                removed_bytes += entry.size
                self._mem_drop(entry.key)
            else:
                kept += 1
        return {
            "removed": removed,
            "removed_bytes": removed_bytes,
            "kept": kept,
        }

    def __len__(self) -> int:
        """Tier-1 entry count (the memory tier is a strict subset)."""
        count = getattr(self.backend, "count", None)
        if count is not None:
            return count()
        return sum(1 for _ in self.backend.scan())
