"""Small shared I/O helpers."""

from __future__ import annotations

import os
import tempfile

__all__ = ["atomic_write_bytes"]


def atomic_write_bytes(path: str | os.PathLike, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (temp file + rename).

    Concurrent writers race harmlessly — the last rename wins with a
    complete payload — and a failure mid-write leaves no partial file at
    ``path``: the payload is flushed and fsynced before the rename, so
    even a process killed mid-write (or a power cut straddling the
    rename) can only leave the old entry or the complete new one. Used by
    every on-disk store (results, packed traces, warm snapshots) so the
    write discipline stays in one place.
    """
    directory = os.path.dirname(os.fspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
