"""The persistent simulation service: asyncio front end, one shared pool.

:class:`ReproService` is the long-lived layer the ``repro serve`` daemon
runs: it accepts :mod:`~repro.service.protocol` requests over any number
of client connections, executes them on **one** shared
:class:`~repro.runner.batch.BatchRunner` (the supervised pool — or the
distributed fleet when the runner has a queue configured), and streams
progress plus the final canonical payload back.  Four tiers keep repeat
traffic off the simulator:

1. **single-flight coalescing** — requests are keyed by
   :func:`~repro.service.protocol.request_key`; N concurrent identical
   requests attach to one in-flight :class:`Flight` and every subscriber
   receives the *same encoded bytes* (the response is rendered once per
   flight, not once per client).
2. **rendered-frame cache** — a bounded LRU of canonical response
   frames keyed by flight key.  A repeat request whose frame is resident
   is answered with the exact bytes the first asker received — no job
   keying, no json/sha256, no disk, no dispatch-thread hop (sized by
   ``REPRO_MEM_CACHE_MB``; counted as ``cache_served`` + ``frame_served``).
3. **shared result cache** — a new flight first reads every job through
   the runner's tiered :class:`~repro.runner.cache.ResultCache`; a
   fully warm request is served without touching the pool at all.
4. **the pool itself** — cold jobs execute through ``runner.run`` with
   all of its supervision (retry, timeout, respawn, distributed
   backend), populating the cache for every later tenant.

Admission is bounded: at most ``max_queue`` flights may wait behind the
executing one, and requests beyond that are refused with a *retryable*
error frame (backpressure, not collapse).  Graceful drain
(:meth:`ReproService.drain`, wired to SIGTERM by the daemon) lets the
in-flight execution finish and publishes its result, fails every queued
flight with a retryable error, and refuses new work — so a restarting
client loses nothing but time, and the pool shuts down with no orphaned
worker processes.

A client that disconnects mid-stream only detaches its own subscription;
the flight (and the execution underneath it) continues for the
remaining subscribers and still populates the cache for the next asker.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import os
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, List, Optional, Tuple

from repro.service.protocol import (
    ProtocolError,
    encode_frame,
    jobs_for_request,
    read_frame,
    request_key,
    response_payload,
    version_banner,
)

__all__ = [
    "Flight",
    "ReproService",
    "ServiceBusy",
    "ServiceDraining",
    "ServiceError",
]

logger = logging.getLogger(__name__)

#: Default rendered-frame budget (MB) when ``REPRO_MEM_CACHE_MB`` is
#: unset: the daemon is the multi-tenant warm path, so its frame tier is
#: on unless explicitly zeroed.
_DEFAULT_FRAME_MB = 64.0


def _env_frame_budget_mb() -> float:
    raw = os.environ.get("REPRO_MEM_CACHE_MB")
    if raw is None:
        return _DEFAULT_FRAME_MB
    try:
        return max(0.0, float(raw))
    except ValueError:
        return _DEFAULT_FRAME_MB


class ServiceError(Exception):
    """An admission/execution failure reported to the client as an error
    frame; ``retryable`` tells the client whether resubmitting later can
    succeed (queue pressure, drain) or not (a bad request, a job that
    exhausted its attempt budget)."""

    retryable = False


class ServiceBusy(ServiceError):
    """The bounded request queue is full (backpressure)."""

    retryable = True


class ServiceDraining(ServiceError):
    """The service is draining (SIGTERM); resubmit to the next instance."""

    retryable = True


class Flight:
    """One in-flight request and everyone attached to it.

    The flight owns the response: ``response_bytes`` is the fully encoded
    result frame, rendered exactly once, so every subscriber — original
    or coalesced — writes identical bytes.  ``error`` carries a failure
    instead; ``done`` releases all waiters either way.
    """

    __slots__ = (
        "key",
        "kind",
        "jobs",
        "done",
        "response_bytes",
        "error",
        "retryable",
        "source",
        "subscribers",
        "state",
        "created",
        "started",
        "seconds",
    )

    def __init__(self, key: str, kind: str, jobs: List) -> None:
        self.key = key
        self.kind = kind
        self.jobs = jobs
        self.done = asyncio.Event()
        self.response_bytes: Optional[bytes] = None
        self.error: Optional[str] = None
        self.retryable = False
        self.source: Optional[str] = None
        self.subscribers = 1
        self.state = "queued"
        self.created = time.monotonic()
        self.started: Optional[float] = None
        self.seconds: Optional[float] = None

    def fail(self, error: str, retryable: bool) -> None:
        self.error = error
        self.retryable = retryable
        self.state = "failed"
        self.done.set()


class ReproService:
    """The serving layer over one shared :class:`BatchRunner`.

    Parameters
    ----------
    runner:
        The long-lived :class:`~repro.runner.batch.BatchRunner` every
        flight executes on.  The service serializes executions through a
        single dispatch thread (the runner parallelizes *inside* a
        batch), so the runner needs no thread safety of its own.
    cache:
        The shared :class:`~repro.runner.cache.ResultCache` consulted
        before the pool; normally ``runner.cache``.  ``None`` disables
        the warm tier (every flight executes) but keeps coalescing.
    max_queue:
        Bound on flights waiting behind the executing one; submissions
        beyond it are refused with :class:`ServiceBusy`.
    progress_interval:
        Seconds between progress heartbeats to waiting subscribers.
    frame_cache_mb:
        Budget for the rendered-frame LRU (tier 2 of the docstring's
        ladder).  ``None`` reads ``REPRO_MEM_CACHE_MB`` and falls back
        to 64 MB; ``0`` disables the tier (every repeat request re-keys
        through the result cache).
    """

    def __init__(
        self,
        runner,
        cache=None,
        max_queue: int = 64,
        progress_interval: float = 1.0,
        frame_cache_mb: Optional[float] = None,
    ) -> None:
        self.runner = runner
        self.cache = cache
        self.max_queue = max(1, int(max_queue))
        self.progress_interval = progress_interval
        if frame_cache_mb is None:
            frame_cache_mb = _env_frame_budget_mb()
        self.frame_budget_bytes = int(max(0.0, float(frame_cache_mb)) * 1024 * 1024)
        self._frames: "OrderedDict[str, bytes]" = OrderedDict()
        self._frame_bytes = 0
        self._flights: Dict[str, Flight] = {}
        self._backlog: Deque[Flight] = deque()
        self._wake = asyncio.Event()
        self._consumer: Optional[asyncio.Task] = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-exec"
        )
        self.draining = False
        self._drained = asyncio.Event()
        self._started = time.monotonic()
        self.stats = {
            "connections": 0,
            "requests": 0,
            "coalesced": 0,
            "cache_served": 0,
            "frame_served": 0,
            "executed": 0,
            "rejected": 0,
            "bad_requests": 0,
            "failures": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Start the flight consumer (call once, from the event loop)."""
        if self._consumer is None:
            self._consumer = asyncio.create_task(self._consume())

    async def drain(self) -> None:
        """Graceful shutdown: finish the in-flight execution, fail every
        queued flight with a retryable error, refuse new submissions.
        Idempotent; returns once the last execution has published."""
        self.draining = True
        while self._backlog:
            flight = self._backlog.popleft()
            self._flights.pop(flight.key, None)
            flight.fail("service is draining; retry against the next "
                        "instance", retryable=True)
        self._wake.set()
        if self._consumer is not None:
            await self._drained.wait()
        self._executor.shutdown(wait=True)

    async def close(self) -> None:
        """Drain, then stop the consumer task (the daemon's last step
        before closing the runner)."""
        await self.drain()
        if self._consumer is not None:
            self._consumer.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._consumer
            self._consumer = None

    # -- admission ---------------------------------------------------------

    def submit(self, kind: str, spec) -> Tuple[Flight, bool]:
        """Admit one request: returns ``(flight, coalesced)``.

        Raises :class:`ProtocolError` for a bad spec,
        :class:`ServiceDraining` / :class:`ServiceBusy` for admission
        refusals — queued and running flights still accept subscribers
        in both cases, because attaching costs nothing.
        """
        self.stats["requests"] += 1
        jobs = jobs_for_request(kind, spec)
        key = request_key(kind, jobs)
        flight = self._flights.get(key)
        if flight is not None:
            flight.subscribers += 1
            self.stats["coalesced"] += 1
            return flight, True
        if self.draining:
            raise ServiceDraining("service is draining")
        frame = self._frame_get(key)
        if frame is not None:
            # Rendered-frame hit: hand back a pre-landed flight carrying
            # the exact bytes the first asker received — no result-cache
            # keying, no dispatch-thread hop, never enters the table.
            flight = Flight(key, kind, jobs)
            flight.response_bytes = frame
            flight.source = "frame"
            flight.state = "done"
            flight.seconds = 0.0
            flight.done.set()
            self.stats["cache_served"] += 1
            self.stats["frame_served"] += 1
            return flight, False
        if len(self._backlog) >= self.max_queue:
            self.stats["rejected"] += 1
            raise ServiceBusy(
                f"request queue full ({self.max_queue} flights waiting)"
            )
        flight = Flight(key, kind, jobs)
        self._flights[key] = flight
        self._backlog.append(flight)
        self._wake.set()
        return flight, False

    # -- the rendered-frame tier -------------------------------------------

    def _frame_get(self, key: str) -> Optional[bytes]:
        frame = self._frames.get(key)
        if frame is not None:
            self._frames.move_to_end(key)
        return frame

    def _frame_put(self, key: str, frame: bytes) -> None:
        if len(frame) > self.frame_budget_bytes:
            return
        old = self._frames.pop(key, None)
        if old is not None:
            self._frame_bytes -= len(old)
        self._frames[key] = frame
        self._frame_bytes += len(frame)
        while self._frame_bytes > self.frame_budget_bytes and self._frames:
            _, evicted = self._frames.popitem(last=False)
            self._frame_bytes -= len(evicted)

    # -- execution ---------------------------------------------------------

    async def _consume(self) -> None:
        """FIFO flight executor: one execution at a time on the dispatch
        thread (the runner fans out *within* each batch)."""
        loop = asyncio.get_running_loop()
        while True:
            while not self._backlog:
                if self.draining:
                    self._drained.set()
                    return
                self._wake.clear()
                await self._wake.wait()
            flight = self._backlog.popleft()
            flight.state = "running"
            flight.started = time.monotonic()
            try:
                results, source = await loop.run_in_executor(
                    self._executor, self._execute, flight
                )
            except Exception as exc:  # noqa: BLE001 - reported to clients
                self.stats["failures"] += 1
                self._flights.pop(flight.key, None)
                flight.seconds = time.monotonic() - flight.started
                logger.warning(
                    "flight %s failed after %.2fs: %s: %s",
                    flight.key[:12], flight.seconds,
                    type(exc).__name__, exc,
                )
                flight.fail(f"{type(exc).__name__}: {exc}", retryable=False)
                continue
            flight.source = source
            flight.seconds = time.monotonic() - flight.started
            payload = response_payload(flight.kind, flight.jobs, results)
            flight.response_bytes = encode_frame(
                {
                    "type": "result",
                    "key": flight.key,
                    "kind": flight.kind,
                    "payload": payload,
                }
            )
            self.stats["cache_served" if source == "cache" else "executed"] += 1
            self._frame_put(flight.key, flight.response_bytes)
            # Completed flights leave the table: the next identical
            # request opens a new flight and is served by the frame or
            # result-cache warm tier.
            self._flights.pop(flight.key, None)
            flight.state = "done"
            flight.done.set()
            logger.info(
                "flight %s (%s, %d job(s), %d subscriber(s)) served from "
                "%s in %.3fs",
                flight.key[:12], flight.kind, len(flight.jobs),
                flight.subscribers, source, flight.seconds,
            )

    def _execute(self, flight: Flight):
        """Dispatch-thread body: warm tier first, then the shared pool."""
        if self.cache is not None:
            hits = [self.cache.get(job) for job in flight.jobs]
            if all(hit is not None for hit in hits):
                return hits, "cache"
        return self.runner.run(flight.jobs), "pool"

    # -- introspection -----------------------------------------------------

    def status(self) -> dict:
        report = getattr(self.runner, "report", None)
        return {
            "versions": version_banner(),
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "draining": self.draining,
            "queued_flights": len(self._backlog),
            "open_flights": len(self._flights),
            **self.stats,
            "runner_jobs": getattr(self.runner, "jobs_run", None),
            "frame_entries": len(self._frames),
            "frame_bytes": self._frame_bytes,
            "cache_entries": len(self.cache) if self.cache is not None else None,
            "report": report.as_dict() if report is not None else None,
        }

    # -- the connection handler --------------------------------------------

    async def handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One client session: hello, then frames until EOF.  Raised
        connection errors detach only this subscriber — never the
        flight."""
        self.stats["connections"] += 1
        try:
            writer.write(
                encode_frame({"type": "hello", "server": "repro-serve",
                              "versions": version_banner()})
            )
            await writer.drain()
            while True:
                try:
                    frame = await read_frame(reader)
                except ProtocolError as exc:
                    self.stats["bad_requests"] += 1
                    await self._send(
                        writer,
                        {"type": "error", "error": str(exc),
                         "retryable": False},
                    )
                    return
                if frame is None:
                    return
                if not await self._dispatch(frame, writer):
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; flights keep flying
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _send(self, writer: asyncio.StreamWriter, message: dict) -> None:
        writer.write(encode_frame(message))
        await writer.drain()

    async def _send_raw(self, writer: asyncio.StreamWriter, data: bytes) -> None:
        writer.write(data)
        await writer.drain()

    async def _dispatch(self, frame: dict, writer) -> bool:
        """Handle one frame; False ends the session (drain request)."""
        ftype = frame["type"]
        req_id = frame.get("id")
        if ftype == "ping":
            await self._send(writer, {"type": "pong"})
            return True
        if ftype == "status":
            await self._send(writer, {"type": "status",
                                      "stats": self.status()})
            return True
        if ftype == "drain":
            await self._send(writer, {"type": "draining"})
            # The daemon's signal path calls drain() too; from a client
            # frame it runs as a task so this session can end cleanly.
            asyncio.ensure_future(self.drain())
            return False
        if ftype == "submit":
            await self._handle_submit(frame, writer, req_id)
            return True
        self.stats["bad_requests"] += 1
        await self._send(
            writer,
            {"type": "error", "error": f"unknown frame type {ftype!r}",
             "retryable": False, "id": req_id},
        )
        return True

    async def _handle_submit(self, frame: dict, writer, req_id) -> None:
        try:
            flight, coalesced = self.submit(
                str(frame.get("kind")), frame.get("spec")
            )
        except ProtocolError as exc:
            self.stats["bad_requests"] += 1
            await self._send(
                writer,
                {"type": "error", "error": str(exc), "retryable": False,
                 "id": req_id},
            )
            return
        except ServiceError as exc:
            await self._send(
                writer,
                {"type": "error", "error": str(exc),
                 "retryable": exc.retryable, "id": req_id},
            )
            return
        await self._send(
            writer,
            {"type": "ack", "key": flight.key, "coalesced": coalesced,
             "id": req_id},
        )
        await self._stream_flight(flight, writer, req_id)

    async def _stream_flight(self, flight: Flight, writer, req_id) -> None:
        """Progress heartbeats until the flight lands, then the shared
        response bytes (or this flight's error)."""
        while not flight.done.is_set():
            try:
                await asyncio.wait_for(
                    flight.done.wait(), timeout=self.progress_interval
                )
                break
            except asyncio.TimeoutError:
                anchor = flight.started or flight.created
                await self._send(
                    writer,
                    {
                        "type": "progress",
                        "key": flight.key,
                        "state": flight.state,
                        "elapsed": round(time.monotonic() - anchor, 3),
                        "id": req_id,
                    },
                )
        if flight.response_bytes is not None:
            await self._send_raw(writer, flight.response_bytes)
        else:
            await self._send(
                writer,
                {"type": "error",
                 "error": flight.error or "flight failed",
                 "retryable": flight.retryable, "id": req_id},
            )
