"""``repro serve`` / ``repro submit`` / ``repro status`` CLI bodies.

The daemon is the productionised entry point over
:class:`~repro.service.server.ReproService`: structured logging instead
of prints, a pid-owned listening endpoint (unix socket or loopback TCP),
signal-driven graceful drain (SIGTERM/SIGINT: the in-flight execution
finishes and publishes, queued requests get a retryable error, the pool
shuts down with no orphaned workers), and a result cache that always
exists — ``--cache`` / ``REPRO_RESULT_CACHE``, or a private temporary
directory so coalescing and the warm tier work even for a throwaway
instance.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import os
import signal
import sys
import tempfile
from pathlib import Path
from typing import Optional

from repro.service.client import ServiceClient, ServiceRequestError
from repro.service.protocol import MAX_FRAME_BYTES, canonical_dumps
from repro.service.server import ReproService

__all__ = ["run_serve", "run_submit", "run_status"]

logger = logging.getLogger(__name__)


def _configure_logging(quiet: bool) -> None:
    logging.basicConfig(
        level=logging.WARNING if quiet else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )


async def _serve(service: ReproService, socket_path: Optional[str],
                 host: str, port: Optional[int]) -> None:
    """Accept until a termination signal, then drain gracefully."""
    await service.start()
    if socket_path is not None:
        # A stale socket file from a killed predecessor would fail bind.
        with contextlib.suppress(FileNotFoundError):
            os.unlink(socket_path)
        server = await asyncio.start_unix_server(
            service.handle_connection, path=socket_path,
            limit=MAX_FRAME_BYTES,
        )
        endpoint = socket_path
    else:
        server = await asyncio.start_server(
            service.handle_connection, host=host, port=port,
            limit=MAX_FRAME_BYTES,
        )
        endpoint = f"{host}:{port}"
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)
    logger.info("repro serve listening on %s", endpoint)
    try:
        await stop.wait()
        logger.info("termination signal: draining (in-flight finishes, "
                    "queued requests get a retryable error)")
    finally:
        server.close()
        await server.wait_closed()
        await service.close()
        if socket_path is not None:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(socket_path)
    logger.info("drained: %s", service.status())


def run_serve(args) -> int:
    """``repro serve`` entry point (argparse namespace in, status out)."""
    from repro.runner import BatchRunner, RetryPolicy

    _configure_logging(args.quiet)
    if (args.socket is None) == (args.port is None):
        print("error: give exactly one of --socket or --port",
              file=sys.stderr)
        return 2
    cache_dir = args.cache or os.environ.get("REPRO_RESULT_CACHE")
    own_cache_tmp = None
    if not cache_dir:
        # The warm tier and the idempotency contract need a cache; a
        # private one still serves this instance's repeat traffic.
        own_cache_tmp = tempfile.TemporaryDirectory(prefix="repro-serve-cache-")
        cache_dir = own_cache_tmp.name
        logger.info("no result cache configured; using private %s "
                    "(set --cache/REPRO_RESULT_CACHE to share across "
                    "instances)", cache_dir)
    policy = RetryPolicy.from_env()
    # Long-lived instance: turn the result cache's memory tier on (same
    # budget knob as the frame tier) unless REPRO_MEM_CACHE_MB says 0.
    from repro.service.server import _env_frame_budget_mb

    runner = BatchRunner(
        workers=args.jobs,
        cache_dir=cache_dir,
        policy=policy,
        queue_dir=args.queue,
        mem_cache_mb=_env_frame_budget_mb(),
    )
    service = ReproService(
        runner,
        cache=runner.cache,
        max_queue=args.max_queue,
        progress_interval=args.progress_interval,
    )
    try:
        asyncio.run(_serve(service, args.socket, args.host, args.port))
    finally:
        # The drain already let the in-flight batch finish; closing the
        # runner shuts the supervised pool down (no orphaned workers).
        runner.close()
        if own_cache_tmp is not None:
            own_cache_tmp.cleanup()
    return 0


def _parse_request(args) -> tuple:
    """(kind, spec) from ``repro submit`` flags or ``--request`` JSON."""
    if args.request:
        text = args.request
        if text.startswith("@"):
            text = Path(text[1:]).read_text()
        payload = json.loads(text)
        if not isinstance(payload, dict) or "kind" not in payload:
            raise ValueError("request JSON must be an object with "
                             "'kind' and 'spec'")
        return str(payload["kind"]), payload.get("spec")
    if not args.benchmarks:
        raise ValueError("give benchmark names (or --request JSON)")
    mapping = (
        [int(t) for t in args.mapping.split(",")]
        if args.mapping
        else [0] * len(args.benchmarks)
    )
    spec = {
        "config": args.config,
        "benchmarks": list(args.benchmarks),
        "mapping": mapping,
        "commit_target": args.target,
        "seed": args.seed,
    }
    if args.trace_length is not None:
        spec["trace_length"] = args.trace_length
    return "simulate", spec


def _client(args) -> ServiceClient:
    return ServiceClient(
        socket_path=args.socket, host=args.host, port=args.port,
        timeout=args.timeout,
    )


def run_submit(args) -> int:
    """``repro submit``: one request in, canonical payload JSON out."""
    _configure_logging(quiet=True)
    try:
        kind, spec = _parse_request(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def progress(frame: dict) -> None:
        if not args.quiet:
            print(
                f"[{frame.get('state')}] {frame.get('elapsed')}s",
                file=sys.stderr,
            )

    client = _client(args)
    try:
        client.submit(kind, spec, on_progress=progress)
    except ServiceRequestError as exc:
        kindword = "retryable" if exc.retryable else "permanent"
        print(f"error ({kindword}): {exc}", file=sys.stderr)
        return 3 if exc.retryable else 1
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach service: {exc}", file=sys.stderr)
        return 3
    # The canonical payload text, byte-identical to what the server
    # rendered — the smoke lane diffs this against the CLI-path bytes.
    print(client.last_payload_text)
    return 0


def run_status(args) -> int:
    """``repro status``: the server's counters + run report as JSON."""
    _configure_logging(quiet=True)
    client = _client(args)
    try:
        stats = client.status()
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach service: {exc}", file=sys.stderr)
        return 3
    print(canonical_dumps(stats) if args.porcelain
          else json.dumps(stats, indent=2, sort_keys=True))
    return 0
