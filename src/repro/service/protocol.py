"""The versioned wire protocol of the simulation service.

One frame = one JSON object on one line (newline-delimited JSON), always
encoded *canonically* — sorted keys, compact separators — so a given
message has exactly one byte representation.  That is a correctness
feature, not a nicety: the server caches a flight's encoded response and
hands the same bytes to every coalesced subscriber, and a warm (cache
served) response must be byte-identical to the cold execution that
populated it.

Client → server frames::

    {"type": "submit", "kind": "simulate"|"sweep"|"screen",
     "spec": {...}, "id": "<client tag, optional>"}
    {"type": "status"}        server counters + run report
    {"type": "ping"}          liveness probe
    {"type": "drain"}         begin graceful drain (admin)

Server → client frames::

    {"type": "hello", "versions": {...}}          on connect
    {"type": "ack", "key": ..., "coalesced": ...} request accepted
    {"type": "progress", "state": ..., ...}       heartbeat while waiting
    {"type": "result", "key": ..., "payload": ...}
    {"type": "error", "error": ..., "retryable": ...}
    {"type": "pong"} / {"type": "status", "stats": {...}}

Requests carry *serialized jobs, not code*: a ``spec`` is a plain-JSON
description that maps onto the runner's :class:`~repro.runner.jobs.Job`
protocol (:func:`jobs_for_request`), and the response payload is the
same canonical :func:`~repro.runner.cache.sim_result_payload` shape the
result cache stores.  Request identity (:func:`request_key`) is the
SHA-256 of the jobs' own ``cache_key_fields()`` salted with the
protocol, engine and packed-trace format versions — exactly the salting
discipline of the result cache, so a request key can never alias across
engine revisions, and two spellings of the same request (list vs tuple,
key order) coalesce onto one key.
"""

from __future__ import annotations

import asyncio
import json
from hashlib import sha256
from typing import List, Optional, Sequence

from repro.core.engine.options import engine_variant_id
from repro.runner import cache as _cache
from repro.runner.jobs import SimJob
from repro.runner.screening import ScreenJob
from repro.trace import packed as _packed

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "canonical_dumps",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "version_banner",
    "jobs_for_request",
    "request_key",
    "response_payload",
    "REQUEST_KINDS",
]

#: Bump on any incompatible frame/spec change; both request keys and the
#: connect-time hello carry it, so mismatched peers fail loudly and a
#: protocol change can never serve a stale coalesced response.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's encoded size (a sweep response carries one
#: ``sim_result_payload`` per simulation; 16 MiB is orders of magnitude
#: above any real sweep and merely stops a garbage peer from ballooning
#: the read buffer).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: The request kinds the service accepts.
REQUEST_KINDS = ("simulate", "sweep", "screen")


class ProtocolError(ValueError):
    """A malformed frame or request spec (client error, not retryable)."""


# -- framing ---------------------------------------------------------------


def canonical_dumps(obj) -> str:
    """The one true JSON encoding (sorted keys, compact separators).

    Everything byte-sensitive — frames, response payloads, request-key
    material — goes through here, so byte identity follows from value
    identity.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def encode_frame(message: dict) -> bytes:
    """One frame: canonical JSON + newline."""
    return canonical_dumps(message).encode() + b"\n"


def decode_frame(line: bytes) -> dict:
    """Parse one received line into a frame dict."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    try:
        frame = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(frame, dict) or not isinstance(frame.get("type"), str):
        raise ProtocolError("frame must be an object with a string 'type'")
    return frame


async def read_frame(reader: asyncio.StreamReader) -> Optional[dict]:
    """The next frame from an asyncio stream, or None at EOF."""
    try:
        line = await reader.readline()
    except ValueError:  # stream limit overrun: unframeable garbage
        raise ProtocolError(
            f"frame exceeds the {MAX_FRAME_BYTES}-byte limit"
        ) from None
    if not line:
        return None
    if not line.endswith(b"\n"):
        raise ProtocolError("truncated frame (connection lost mid-line)")
    return decode_frame(line)


def version_banner() -> dict:
    """The version tuple both the hello frame and request keys carry."""
    return {
        "protocol": PROTOCOL_VERSION,
        "engine": _cache.ENGINE_VERSION,
        "trace_format": _packed.PACK_FORMAT_VERSION,
    }


# -- request specs → jobs --------------------------------------------------


def _require(spec: dict, key: str):
    try:
        return spec[key]
    except KeyError:
        raise ProtocolError(f"spec missing required field {key!r}") from None


def _check_unknown(spec: dict, allowed: frozenset, what: str) -> None:
    unknown = set(spec) - set(allowed)
    if unknown:
        raise ProtocolError(f"unknown {what} field(s): {sorted(unknown)}")


_SIM_FIELDS = frozenset(
    {
        "config",
        "benchmarks",
        "mapping",
        "commit_target",
        "trace_length",
        "warmup",
        "max_cycles",
        "seed",
    }
)

_SCREEN_FIELDS = frozenset(
    {
        "config",
        "benchmarks",
        "candidates",
        "final_target",
        "rounds",
        "keep",
        "top_fraction",
        "min_survivors",
        "min_target",
        "trace_length",
        "seed",
        "full_target",
        "extra_fulls",
    }
)


def _opt_int(spec: dict, key: str) -> Optional[int]:
    value = spec.get(key)
    return None if value is None else int(value)


def sim_job_from_spec(spec: dict) -> SimJob:
    """One ``simulate`` spec → :class:`~repro.runner.jobs.SimJob`.

    Only string configuration names travel over the wire (serialized
    jobs, not code): the server resolves them against its own registry.
    """
    if not isinstance(spec, dict):
        raise ProtocolError("simulate spec must be an object")
    _check_unknown(spec, _SIM_FIELDS, "simulate spec")
    config = _require(spec, "config")
    if not isinstance(config, str):
        raise ProtocolError("spec 'config' must be a configuration name")
    try:
        return SimJob(
            config=config,
            benchmarks=tuple(str(b) for b in _require(spec, "benchmarks")),
            mapping=tuple(int(t) for t in _require(spec, "mapping")),
            commit_target=int(_require(spec, "commit_target")),
            trace_length=_opt_int(spec, "trace_length"),
            warmup=bool(spec.get("warmup", True)),
            max_cycles=_opt_int(spec, "max_cycles"),
            seed=int(spec.get("seed", 0)),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad simulate spec: {exc}") from None


def screen_job_from_spec(spec: dict) -> ScreenJob:
    """One ``screen`` spec → :class:`~repro.runner.screening.ScreenJob`."""
    if not isinstance(spec, dict):
        raise ProtocolError("screen spec must be an object")
    _check_unknown(spec, _SCREEN_FIELDS, "screen spec")
    config = _require(spec, "config")
    if not isinstance(config, str):
        raise ProtocolError("spec 'config' must be a configuration name")
    try:
        return ScreenJob(
            config=config,
            benchmarks=tuple(str(b) for b in _require(spec, "benchmarks")),
            candidates=tuple(
                tuple(int(t) for t in m) for m in _require(spec, "candidates")
            ),
            final_target=int(_require(spec, "final_target")),
            rounds=int(spec.get("rounds", 1)),
            keep=float(spec.get("keep", 0.5)),
            top_fraction=float(spec.get("top_fraction", 0.5)),
            min_survivors=int(spec.get("min_survivors", 3)),
            min_target=int(spec.get("min_target", 150)),
            trace_length=_opt_int(spec, "trace_length"),
            seed=int(spec.get("seed", 0)),
            full_target=_opt_int(spec, "full_target"),
            extra_fulls=tuple(
                tuple(int(t) for t in m) for m in spec.get("extra_fulls", ())
            ),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad screen spec: {exc}") from None


def jobs_for_request(kind: str, spec) -> List:
    """Deserialize one request into its runner jobs.

    ``simulate`` and ``screen`` are one job each; ``sweep`` is an ordered
    list of simulate specs (``{"sims": [...]}``) executed as one batch,
    so the shared runner parallelizes across the request exactly as the
    figures CLI does.
    """
    if kind == "simulate":
        return [sim_job_from_spec(spec)]
    if kind == "screen":
        return [screen_job_from_spec(spec)]
    if kind == "sweep":
        if not isinstance(spec, dict):
            raise ProtocolError("sweep spec must be an object")
        _check_unknown(spec, frozenset({"sims"}), "sweep spec")
        sims = _require(spec, "sims")
        if not isinstance(sims, list) or not sims:
            raise ProtocolError("sweep spec 'sims' must be a non-empty list")
        return [sim_job_from_spec(s) for s in sims]
    raise ProtocolError(
        f"unknown request kind {kind!r} (expected one of {REQUEST_KINDS})"
    )


def request_key(kind: str, jobs: Sequence) -> str:
    """Single-flight / idempotency identity of one request.

    Hashes the jobs' own cache-key fields under the version salts, so a
    request key changes exactly when the cached results it would read
    change — the coalescing tier and the result cache can never disagree
    about what "identical" means. Like the result cache, the key is
    additionally salted with the active engine variant whenever it is
    not the generic one (the codegen specialization): bit-identical by
    contract, but a specialization bug must not be maskable by a
    coalesced or cached response. Generic runs keep the legacy key
    bytes.
    """
    variant = engine_variant_id()
    extra = {} if variant == "generic" else {"engine_variant": variant}
    desc = canonical_dumps(
        {
            **version_banner(),
            **extra,
            "kind": kind,
            "jobs": [job.cache_key_fields() for job in jobs],
        }
    )
    return sha256(desc.encode()).hexdigest()


def response_payload(kind: str, jobs: Sequence, results: Sequence):
    """The response payload for one executed request: each result in its
    canonical cache shape (``sim_result_payload`` / the screen payload),
    a single object for single-job kinds, an ordered list for sweeps."""
    payloads = [job.result_payload(r) for job, r in zip(jobs, results)]
    return payloads if kind == "sweep" else payloads[0]
