"""Thin synchronous client for the ``repro serve`` daemon.

One :class:`ServiceClient` talks the newline-delimited JSON protocol of
:mod:`repro.service.protocol` over a unix socket or TCP.  Each call
opens its own connection (the daemon is cheap to connect to and the
service's coalescing/caching make repeat requests nearly free), so the
client is trivially usable from threads and subprocesses.

``submit`` returns the decoded response payload *and* keeps the raw
canonical payload text in :attr:`ServiceClient.last_payload_text` — the
exact bytes the server rendered — so callers can assert byte identity
(the smoke lane compares a service response against the same sweep run
through the figures CLI path byte for byte).
"""

from __future__ import annotations

import json
import socket
from typing import Callable, Optional

from repro.service.protocol import (
    PROTOCOL_VERSION,
    MAX_FRAME_BYTES,
    ProtocolError,
    canonical_dumps,
    encode_frame,
)

__all__ = ["ServiceClient", "ServiceRequestError"]


class ServiceRequestError(RuntimeError):
    """The server answered with an error frame; ``retryable`` mirrors the
    frame, so callers can tell backpressure/drain (resubmit later) from a
    permanent refusal (bad spec, exhausted job)."""

    def __init__(self, message: str, retryable: bool = False) -> None:
        super().__init__(message)
        self.retryable = retryable


class ServiceClient:
    """Connect-per-call client for the simulation service.

    Exactly one of ``socket_path`` (unix domain) or ``port`` (TCP, with
    ``host``) selects the endpoint — the same pair of knobs ``repro
    serve`` listens on.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: Optional[float] = 60.0,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("give exactly one of socket_path or port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout
        #: canonical text of the last result payload (byte-identity probe)
        self.last_payload_text: Optional[str] = None

    # -- plumbing ----------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        return sock

    @staticmethod
    def _read_frame(stream) -> dict:
        line = stream.readline(MAX_FRAME_BYTES + 2)
        if not line:
            raise ConnectionError("server closed the connection")
        if not line.endswith(b"\n"):
            raise ProtocolError("truncated frame from server")
        frame = json.loads(line)
        if not isinstance(frame, dict) or "type" not in frame:
            raise ProtocolError("malformed frame from server")
        return frame

    def _session(self):
        """(socket, buffered reader, hello frame) for one exchange."""
        sock = self._connect()
        stream = sock.makefile("rb")
        hello = self._read_frame(stream)
        if hello.get("type") != "hello":
            raise ProtocolError(f"expected hello, got {hello.get('type')!r}")
        versions = hello.get("versions") or {}
        if versions.get("protocol") != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol mismatch: server speaks "
                f"{versions.get('protocol')!r}, client {PROTOCOL_VERSION}"
            )
        return sock, stream, hello

    def _roundtrip(self, request: dict, want: str) -> dict:
        sock, stream, _ = self._session()
        try:
            sock.sendall(encode_frame(request))
            frame = self._read_frame(stream)
            if frame.get("type") == "error":
                raise ServiceRequestError(
                    str(frame.get("error")),
                    retryable=bool(frame.get("retryable")),
                )
            if frame.get("type") != want:
                raise ProtocolError(
                    f"expected {want!r} frame, got {frame.get('type')!r}"
                )
            return frame
        finally:
            stream.close()
            sock.close()

    # -- the verbs ---------------------------------------------------------

    def hello(self) -> dict:
        """The server's connect-time version banner."""
        sock, stream, hello = self._session()
        stream.close()
        sock.close()
        return hello

    def ping(self) -> bool:
        return self._roundtrip({"type": "ping"}, "pong")["type"] == "pong"

    def status(self) -> dict:
        """Server counters, flight state and the runner's RunReport."""
        return self._roundtrip({"type": "status"}, "status")["stats"]

    def drain(self) -> None:
        """Ask the server to drain gracefully (admin verb)."""
        self._roundtrip({"type": "drain"}, "draining")

    def submit(
        self,
        kind: str,
        spec,
        request_id: Optional[str] = None,
        on_progress: Optional[Callable[[dict], None]] = None,
    ):
        """Submit one request and block until its result frame lands.

        Progress frames are fed to ``on_progress`` as they arrive.
        Returns the decoded payload (``sim_result_payload`` shape, or a
        list of them for sweeps); raises :class:`ServiceRequestError`
        with ``retryable`` set for backpressure/drain refusals.
        """
        sock, stream, _ = self._session()
        try:
            request = {"type": "submit", "kind": kind, "spec": spec}
            if request_id is not None:
                request["id"] = request_id
            sock.sendall(encode_frame(request))
            acked = False
            while True:
                frame = self._read_frame(stream)
                ftype = frame.get("type")
                if ftype == "error":
                    raise ServiceRequestError(
                        str(frame.get("error")),
                        retryable=bool(frame.get("retryable")),
                    )
                if ftype == "ack":
                    acked = True
                    continue
                if ftype == "progress":
                    if on_progress is not None:
                        on_progress(frame)
                    continue
                if ftype == "result":
                    if not acked:
                        raise ProtocolError("result frame before ack")
                    payload = frame["payload"]
                    self.last_payload_text = canonical_dumps(payload)
                    return payload
                raise ProtocolError(f"unexpected frame type {ftype!r}")
        finally:
            stream.close()
            sock.close()
