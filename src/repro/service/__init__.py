"""Simulation-as-a-service: the persistent ``repro serve`` daemon.

The service layer turns the batch tool into a serving system: a
long-lived asyncio daemon (:mod:`repro.service.server`) accepts
simulate/sweep/screen requests as serialized Job-protocol payloads over
a versioned wire protocol (:mod:`repro.service.protocol`), executes them
on one shared :class:`~repro.runner.batch.BatchRunner`, coalesces
concurrent identical requests onto single flights, serves warm requests
straight from the sharded :class:`~repro.runner.cache.ResultCache`, and
streams progress plus the canonical result payload back through the thin
client (:mod:`repro.service.client` / ``repro submit``).
"""

from repro.service.client import ServiceClient, ServiceRequestError
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    jobs_for_request,
    request_key,
)
from repro.service.server import (
    Flight,
    ReproService,
    ServiceBusy,
    ServiceDraining,
    ServiceError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "jobs_for_request",
    "request_key",
    "Flight",
    "ReproService",
    "ServiceBusy",
    "ServiceDraining",
    "ServiceError",
    "ServiceClient",
    "ServiceRequestError",
]
