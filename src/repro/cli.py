"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run
    Simulate one workload on one configuration (heuristic mapping) and
    print the result.
areas
    Print the Fig. 3 area table for any set of configurations.
profile
    Print the benchmark profile table the mapping heuristic consumes.
figures
    Regenerate Figs. 4 and 5 plus the §5 summary at a chosen scale
    (writes the same artifacts as the benchmark harness).
workloads
    List the paper's workload tables.
worker
    Serve a distributed job queue: claim leased tasks, execute them
    against the shared result cache, publish results
    (see :mod:`repro.runner.distributed`). Pair with
    ``figures --queue DIR`` or ``REPRO_DIST_QUEUE``.
serve
    Run the persistent simulation service: an asyncio daemon over one
    shared :class:`~repro.runner.BatchRunner` that accepts
    simulate/sweep/screen requests, coalesces concurrent identical
    requests onto single flights, serves warm requests from the shared
    result cache, and drains gracefully on SIGTERM
    (see :mod:`repro.service`).
submit / status
    Thin clients for a running ``repro serve`` daemon: submit one
    request and print the canonical result payload; print the server's
    counters and run report.
cache
    Inspect (``stats``) or garbage-collect (``prune --older-than``) the
    shared result cache on disk
    (see :class:`~repro.runner.cache.ResultCache`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from repro.area.model import area_report, config_area
from repro.core.config import STANDARD_CONFIG_NAMES
from repro.core.engine.options import EngineOptions, set_engine_options
from repro.core.simulation import run_workload
from repro.experiments.performance import (
    fig4_table,
    fig5_table,
    run_performance_experiment,
)
from repro.experiments.scale import ExperimentScale, default_scale
from repro.experiments.summary import headline_summary, summary_report
from repro.metrics.tables import format_table
from repro.runner import BatchRunner, RetryPolicy
from repro.trace.benchmarks import BENCHMARK_NAMES
from repro.trace.profiling import profile_benchmark
from repro.workloads.definitions import WORKLOADS, get_workload

__all__ = ["main"]


def _cmd_run(args: argparse.Namespace) -> int:
    if args.workload:
        benchmarks = list(get_workload(args.workload).benchmarks)
    else:
        benchmarks = args.benchmarks
    if not benchmarks:
        print("error: give --workload or benchmark names", file=sys.stderr)
        return 2
    r = run_workload(args.config, benchmarks, commit_target=args.target)
    area = config_area(args.config)
    print(r.describe())
    print(f"area = {area:.1f} mm2   IPC/mm2 = {r.ipc / area:.5f}")
    for k in ("l1d_miss_rate", "branch_mispredict_rate", "flushes"):
        print(f"  {k} = {r.stats[k]:.4f}")
    return 0


def _cmd_areas(args: argparse.Namespace) -> int:
    names = args.configs or list(STANDARD_CONFIG_NAMES)
    print(area_report(names))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    names = args.benchmarks or list(BENCHMARK_NAMES)
    rows = []
    for n in sorted(names, key=lambda n: profile_benchmark(n).misses_per_kilo_instruction):
        p = profile_benchmark(n)
        rows.append(
            [n, f"{p.misses_per_kilo_instruction:.2f}", f"{p.l1d_miss_rate:.4f}", p.l2_misses]
        )
    print(
        format_table(
            ["benchmark", "L1D MPKI", "L1D miss rate", "L2 misses"],
            rows,
            title="Profile pass (the heuristic's §2.1 input)",
        )
    )
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    rows = [
        [w.name, ", ".join(w.benchmarks), w.workload_class]
        for w in WORKLOADS.values()
    ]
    print(format_table(["id", "benchmarks", "class"], rows, title="Tables 2 & 3"))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    # Engine tuning flags travel as env vars (worker processes inherit
    # them) and through the typed EngineOptions switchboard locally.
    if args.codegen:
        os.environ["REPRO_CODEGEN"] = "1"
    if args.numpy_decode:
        os.environ["REPRO_NUMPY_DECODE"] = "1"
    if args.codegen or args.numpy_decode:
        set_engine_options(EngineOptions.from_env())
    scale = default_scale()
    if args.scale:
        scale = ExperimentScale().scaled(args.scale)
    workloads = args.workloads or None
    policy = RetryPolicy.from_env()
    if args.job_timeout is not None:
        policy = replace(policy, timeout=args.job_timeout)
    if args.max_attempts is not None:
        policy = replace(policy, max_attempts=max(1, args.max_attempts))
    with BatchRunner(
        workers=args.jobs, policy=policy, queue_dir=args.queue
    ) as runner:
        results = run_performance_experiment(
            workload_names=workloads,
            scale=scale,
            progress=not args.quiet,
            runner=runner,
            screening=args.screening,
            bundle_count=args.bundles,
        )
        report = runner.report
    for cls in ("ILP", "MEM", "MIX"):
        print(fig4_table(results, cls))
        print()
        print(fig5_table(results, cls))
        print()
    print(summary_report(headline_summary(results)))
    if not args.quiet and report.jobs:
        print(f"\nrun report: {report.describe()}")
    if args.report_json:
        path = Path(args.report_json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report.as_dict(), indent=2) + "\n")
        if not args.quiet:
            print(f"run report written to {path}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.runner.distributed import run_worker

    return run_worker(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.daemon import run_serve

    return run_serve(args)


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.daemon import run_submit

    return run_submit(args)


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service.daemon import run_status

    return run_status(args)


def _parse_age(text: str) -> float:
    """An age in seconds from ``3600`` / ``15m`` / ``12h`` / ``7d``."""
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    t = text.strip().lower()
    mult = units.get(t[-1:])
    if mult is not None:
        t = t[:-1]
    else:
        mult = 1.0
    return float(t) * mult


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.runner.cache import ResultCache

    cache_dir = args.cache or os.environ.get("REPRO_RESULT_CACHE")
    if not cache_dir:
        print("error: give --cache DIR or set REPRO_RESULT_CACHE",
              file=sys.stderr)
        return 2
    cache = ResultCache(cache_dir)
    if args.cache_cmd == "stats":
        print(json.dumps(cache.stats(), indent=2, sort_keys=True))
        return 0
    try:
        age = _parse_age(args.older_than)
    except ValueError:
        print(f"error: bad age {args.older_than!r} "
              "(use e.g. 3600, 15m, 12h, 7d)", file=sys.stderr)
        return 2
    print(json.dumps(cache.prune(age), indent=2, sort_keys=True))
    return 0


def _add_endpoint_args(parser: argparse.ArgumentParser) -> None:
    """The service endpoint knobs shared by serve/submit/status."""
    parser.add_argument(
        "--socket",
        default=None,
        help="unix-domain socket path of the service endpoint",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="TCP host when using --port (default: loopback)",
    )
    parser.add_argument(
        "--port", type=int, default=None, help="TCP port of the endpoint"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="hdSMT reproduction (Acosta et al., ICPP 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one workload")
    p_run.add_argument("--config", default="M8")
    p_run.add_argument("--workload", help="paper workload id (e.g. 2W4)")
    p_run.add_argument("benchmarks", nargs="*", help="benchmark names")
    p_run.add_argument("--target", type=int, default=8000)
    p_run.set_defaults(func=_cmd_run)

    p_areas = sub.add_parser("areas", help="Fig. 3 area table")
    p_areas.add_argument("configs", nargs="*")
    p_areas.set_defaults(func=_cmd_areas)

    p_prof = sub.add_parser("profile", help="benchmark profiles (heuristic input)")
    p_prof.add_argument("benchmarks", nargs="*")
    p_prof.set_defaults(func=_cmd_profile)

    p_wl = sub.add_parser("workloads", help="list Tables 2 & 3")
    p_wl.set_defaults(func=_cmd_workloads)

    p_fig = sub.add_parser("figures", help="regenerate Figs. 4/5 + summary")
    p_fig.add_argument("--scale", type=float, help="window scale factor")
    p_fig.add_argument("--workloads", nargs="*", help="restrict workload ids")
    p_fig.add_argument("--quiet", action="store_true")
    p_fig.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for the mapping sweeps "
        "(default: REPRO_WORKERS or all cores)",
    )
    p_fig.add_argument(
        "--bundles",
        type=int,
        default=None,
        help="job bundles per batch (default: the worker count) — caps "
        "how many worker jobs the exact-mode screens and the "
        "full-length continuations are packed into; purely a "
        "scheduling knob — results are identical for any value",
    )
    p_fig.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="per-job wall-clock budget in seconds for the supervised "
        "dispatch (heavy jobs get 4x); timed-out jobs retry with "
        "backoff (default: REPRO_JOB_TIMEOUT, unset = no deadline)",
    )
    p_fig.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="executions a failing job may consume before the sweep "
        "aborts (default: REPRO_MAX_ATTEMPTS or 3; retries are safe — "
        "jobs are idempotent)",
    )
    p_fig.add_argument(
        "--screening",
        action="store_true",
        help="successive-halving oracle screening: prune mapping "
        "candidates with short checkpointed screens (ranked by "
        "per-round marginal IPC; the final round scores cumulative "
        "full-window IPC, so selection ties break exactly as the exact "
        "screen's) before full-window runs (validated approximation — "
        "identical oracle selection on the reference scenario; default "
        "is the exact screen, whose per-candidate jobs are bundled "
        "into at most --bundles worker jobs)",
    )
    p_fig.add_argument(
        "--queue",
        default=None,
        help="distributed job-queue directory (default: REPRO_DIST_QUEUE; "
        "unset = local execution) — parallel batches are served by "
        "`repro worker --queue DIR` processes watching the same "
        "directory, degrading to the local pool when none shows up",
    )
    p_fig.add_argument(
        "--report-json",
        metavar="PATH",
        default=None,
        help="write the final RunReport (jobs, retries, lease reclaims, "
        "speculative re-dispatches, ...) as JSON to PATH",
    )
    p_fig.add_argument(
        "--codegen",
        action="store_true",
        help="run the per-config specialized cycle-loop engine "
        "(bit-identical to the generic engine, which remains the "
        "mid-run fallback; equivalent to REPRO_CODEGEN=1, exported so "
        "pool/queue workers inherit it)",
    )
    p_fig.add_argument(
        "--numpy-decode",
        action="store_true",
        help="decode packed-trace blocks through numpy (equivalent to "
        "REPRO_NUMPY_DECODE=1, exported so workers inherit it; ignored "
        "when numpy is unavailable)",
    )
    p_fig.set_defaults(func=_cmd_figures)

    p_wrk = sub.add_parser(
        "worker",
        help="serve a distributed job queue (repro worker --queue DIR)",
    )
    p_wrk.add_argument("--queue", required=True, help="shared queue directory")
    p_wrk.add_argument(
        "--worker-id",
        default=None,
        help="stable identity for leases/heartbeats (default: w<pid>)",
    )
    p_wrk.add_argument(
        "--lease-ttl",
        type=float,
        default=10.0,
        help="lease lifetime in seconds; a worker that stops renewing "
        "for this long forfeits its task (default: 10)",
    )
    p_wrk.add_argument(
        "--heartbeat",
        type=float,
        default=None,
        help="lease/heartbeat renewal interval (default: lease-ttl / 3)",
    )
    p_wrk.add_argument(
        "--cache",
        default=None,
        help="result-cache directory (default: the queue's config.json, "
        "published by the front end)",
    )
    p_wrk.add_argument(
        "--store",
        default=None,
        help="packed-trace / warm-snapshot store directory (default: the "
        "queue's config.json)",
    )
    p_wrk.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        help="exit after executing this many tasks (default: serve "
        "until a stop marker appears)",
    )
    p_wrk.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        help="exit after this many seconds without claimable work "
        "(default: keep polling)",
    )
    p_wrk.set_defaults(func=_cmd_worker)

    p_srv = sub.add_parser(
        "serve",
        help="run the persistent simulation service (daemon)",
    )
    _add_endpoint_args(p_srv)
    p_srv.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for the shared BatchRunner "
        "(default: REPRO_WORKERS or all cores)",
    )
    p_srv.add_argument(
        "--cache",
        default=None,
        help="shared result-cache directory (default: REPRO_RESULT_CACHE; "
        "unset = a private temporary cache for this instance)",
    )
    p_srv.add_argument(
        "--queue",
        default=None,
        help="distributed job-queue directory (default: REPRO_DIST_QUEUE; "
        "unset = the local supervised pool)",
    )
    p_srv.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="flights allowed to wait behind the executing one before "
        "submissions are refused with a retryable error (default: 64)",
    )
    p_srv.add_argument(
        "--progress-interval",
        type=float,
        default=1.0,
        help="seconds between progress heartbeats to waiting clients",
    )
    p_srv.add_argument("--quiet", action="store_true")
    p_srv.set_defaults(func=_cmd_serve)

    p_sub = sub.add_parser(
        "submit",
        help="submit one request to a running `repro serve` daemon",
    )
    _add_endpoint_args(p_sub)
    p_sub.add_argument(
        "--request",
        default=None,
        help="full request as JSON ({\"kind\": ..., \"spec\": ...}); "
        "@FILE reads it from a file; overrides the simulate flags",
    )
    p_sub.add_argument("--config", default="M8")
    p_sub.add_argument("benchmarks", nargs="*", help="benchmark names")
    p_sub.add_argument(
        "--mapping",
        default=None,
        help="comma-separated thread-to-pipeline mapping "
        "(default: all threads on pipeline 0)",
    )
    p_sub.add_argument("--target", type=int, default=8000)
    p_sub.add_argument("--trace-length", type=int, default=None)
    p_sub.add_argument("--seed", type=int, default=0)
    p_sub.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="client-side socket timeout in seconds (default: 600)",
    )
    p_sub.add_argument("--quiet", action="store_true")
    p_sub.set_defaults(func=_cmd_submit)

    p_st = sub.add_parser(
        "status",
        help="print a running service's counters and run report",
    )
    _add_endpoint_args(p_st)
    p_st.add_argument(
        "--timeout", type=float, default=10.0, help="socket timeout (s)"
    )
    p_st.add_argument(
        "--porcelain",
        action="store_true",
        help="single-line canonical JSON instead of pretty-printed",
    )
    p_st.set_defaults(func=_cmd_status)

    p_cache = sub.add_parser(
        "cache",
        help="inspect or garbage-collect the shared result cache",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_cmd", required=True)
    p_cstats = cache_sub.add_parser(
        "stats",
        help="entry count, total bytes, per-tier hit/miss/corrupt counters",
    )
    p_cprune = cache_sub.add_parser(
        "prune",
        help="delete entries older than an age (GC)",
    )
    for p in (p_cstats, p_cprune):
        p.add_argument(
            "--cache",
            default=None,
            help="cache directory (default: REPRO_RESULT_CACHE)",
        )
        p.set_defaults(func=_cmd_cache)
    p_cprune.add_argument(
        "--older-than",
        required=True,
        dest="older_than",
        help="age threshold: seconds, or 15m / 12h / 7d",
    )

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
