"""Figures 4 and 5: performance and performance-per-area comparison.

For every (microarchitecture, workload) pair the paper reports three
measurements:

* **BEST** — an oracle mapping policy: the best thread-to-pipeline
  mapping found by trying them all;
* **HEUR** — the profile-based heuristic of §2.1;
* **WORST** — the worst possible mapping.

For the monolithic baseline only one measurement exists, and for
two-threaded workloads on homogeneous configurations the three coincide
(all distinct mappings are equivalent).

The oracle search is two-phase for tractability: every distinct mapping
(after symmetry dedup) is *screened* with a short window, and only the
argmax/argmin are re-simulated at full length. Results are memoized per
process so Fig. 4, Fig. 5 and the headline summary share one sweep.

Scheduling: the sweep plans every (configuration, workload) pair first
and executes two *cross-pair* batches — all pairs' screens, then all
pairs' remaining full-length runs — through a
:class:`~repro.runner.batch.BatchRunner`, so the worker pool stays
saturated to the tail of the sweep instead of draining at every pair
boundary. In exact mode the candidate screens of *all* pairs are packed
into worker-count-sized :class:`~repro.runner.continuation.
ContinuationJob` bundles (at most ``bundle_count`` jobs instead of one
job per candidate mapping); in screening mode the batch holds one
checkpointed ladder job per pair (pair-level granularity — the
checkpoints must live in one worker). Full-length runs are bundled the
same way: the single-mapping pairs' only runs and every pair's
post-screen BEST/HEUR/WORST continuations ship in bundles sized to the
worker count (``bundle_count`` overrides; the CLI exposes it as
``--bundles``), so the sweep executes a handful of large jobs at both
ends instead of draining one job per run. Pass ``workers=`` (or set
``REPRO_WORKERS``) to fan out over processes; results are bit-identical
to the sequential path regardless.

``screening=True`` swaps the exact oracle screens for successive halving
(:class:`~repro.runner.screening.ScreenJob`): every candidate runs a
fraction of the screen window, the middle of the ranking is pruned, and
survivors *continue* from their checkpoints to the doubled window; the
selected best/worst (and the heuristic) continue straight to full
length. Pruning rounds rank by per-round *marginal* IPC (free from the
checkpoints; see the _SCREEN_* knobs below), the final round by
cumulative full-window IPC so selections tie-break exactly as exact
mode's. The mode is an approximation — tests assert it selects the same
oracle mapping as exact mode on the reference scenario — and exact mode
stays the default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.area.model import config_area
from repro.core.config import STANDARD_CONFIG_NAMES, get_config
from repro.core.mapping import enumerate_mappings, heuristic_mapping
from repro.core.simulation import SimResult, default_trace_length
from repro.experiments.scale import ExperimentScale, default_scale
from repro.metrics.stats import harmonic_mean
from repro.metrics.tables import format_grouped_bars
from repro.runner import BatchRunner
from repro.runner.continuation import (
    ContinuationRun,
    plan_bundles,
    run_bundled,
    unbundle_results,
)
from repro.runner.screening import ScreenJob
from repro.trace.profiling import profile_benchmark
from repro.workloads.definitions import WORKLOADS, Workload, get_workload

__all__ = [
    "WorkloadResult",
    "evaluate_config_workload",
    "run_performance_experiment",
    "class_size_means",
    "fig4_table",
    "fig5_table",
    "clear_result_cache",
]

#: Figures 4/5 x-axis order.
DEFAULT_CONFIGS: Tuple[str, ...] = STANDARD_CONFIG_NAMES


@dataclass(frozen=True)
class WorkloadResult:
    """BEST/HEUR/WORST results for one configuration on one workload."""

    config: str
    workload: str
    best: SimResult
    heur: SimResult
    worst: SimResult
    mappings_screened: int

    @property
    def area(self) -> float:
        return config_area(self.config)

    def ipc(self, which: str) -> float:
        return getattr(self, which).ipc

    def ppa(self, which: str) -> float:
        return getattr(self, which).ipc / self.area

    @property
    def degenerate(self) -> bool:
        """True when only one distinct mapping exists (all three equal)."""
        return self.mappings_screened <= 1


_CACHE: Dict[tuple, WorkloadResult] = {}

#: Successive-halving ladder for ``screening=True``: round 0 runs at
#: ``screen_target / 2**(rounds-1)`` (clamped to _SCREEN_MIN_TARGET) and
#: each pruning keeps _SCREEN_KEEP of the ranking, split between its two
#: tails. Pruning rounds rank by per-round *marginal* IPC (free from the
#: ladder's checkpoints), which tracks the full-window ranking well
#: enough to prune harder than the cumulative ladder did (keep 0.5 →
#: 0.35); survival is biased toward the top tail (2/3 top, 1/3 bottom)
#: because the contract-pinned selection is the oracle's argmax (the
#: planner still guarantees at least one bottom-tail survivor per round,
#: so the argmin lineage always reaches the final round). The parameters
#: were chosen against exact screening over a 10-pair spread: identical
#: BEST on the reference scenario, BEST-match elsewhere equal to the
#: symmetric cumulative ladder (4/10), ~16% fewer screen cycles. (0.67
#: is deliberate — ``ceil(k * frac)`` differs from 2/3 at small k and
#: the validation ran against this exact value.)
_SCREEN_ROUNDS = 4
_SCREEN_MIN_TARGET = 150
_SCREEN_KEEP = 0.35
_SCREEN_TOP_FRACTION = 0.67


def clear_result_cache() -> None:
    """Drop memoized experiment results (tests)."""
    _CACHE.clear()


def _profiled_misses(benchmarks: Sequence[str]) -> List[float]:
    return [profile_benchmark(b).misses_per_kilo_instruction for b in benchmarks]


def _cache_key(config_name: str, workload_name: str, scale: ExperimentScale,
               screening: bool) -> tuple:
    key = (config_name, workload_name, scale.cache_key)
    return key + ("screening",) if screening else key


@dataclass
class _PairPlan:
    """Execution state of one (configuration, workload) pair in a sweep."""

    config_name: str
    workload: Workload
    key: tuple
    #: the only mapping (monolithic / degenerate pairs); exclusive with screen
    single_map: Optional[Tuple[int, ...]] = None
    heur_map: Optional[Tuple[int, ...]] = None
    #: exact mode: candidates screened as bundled ContinuationRuns
    candidates: Optional[List[Tuple[int, ...]]] = None
    #: screening mode: the pair's checkpointed halving ladder
    screen_job: Optional[ScreenJob] = None
    candidates_count: int = 1
    single_result: Optional[SimResult] = None
    best_map: Optional[Tuple[int, ...]] = None
    worst_map: Optional[Tuple[int, ...]] = None
    full_results: Dict[Tuple[int, ...], SimResult] = field(default_factory=dict)


def _plan_pair(config_name: str, workload: Workload, scale: ExperimentScale,
               screening: bool) -> _PairPlan:
    """Classify a pair and build its screening plan (no simulation)."""
    key = _cache_key(config_name, workload.name, scale, screening)
    config = get_config(config_name)
    benchmarks = workload.benchmarks
    n = len(benchmarks)
    if config.is_monolithic:
        return _PairPlan(config_name, workload, key, single_map=(0,) * n)
    heur_map = heuristic_mapping(config, _profiled_misses(benchmarks))
    candidates = enumerate_mappings(
        config, n, max_mappings=scale.max_mappings, must_include=[heur_map]
    )
    if len(candidates) <= 1:
        return _PairPlan(config_name, workload, key, single_map=heur_map,
                         heur_map=heur_map)
    if not screening:
        # Exact mode: the seed's per-candidate screens, batched across
        # pairs and packed into worker-count-sized bundles by
        # _execute_plans (per-run results and cache identities are
        # exactly the per-job scheduler's).
        return _PairPlan(
            config_name, workload, key, heur_map=heur_map,
            candidates=list(candidates), candidates_count=len(candidates),
        )
    # Screening mode: one checkpointed halving ladder per pair. Screens
    # run over the full-length trace window (screens, full runs and the
    # folded best/worst continuations share one trace set and warm
    # snapshot per pair) and the job continues the selected best/worst
    # checkpoints — plus the heuristic's mapping — straight to the full
    # commit target.
    screen_job = ScreenJob(
        config_name,
        tuple(benchmarks),
        tuple(candidates),
        scale.screen_target,
        rounds=_SCREEN_ROUNDS,
        keep=_SCREEN_KEEP,
        top_fraction=_SCREEN_TOP_FRACTION,
        min_target=_SCREEN_MIN_TARGET,
        trace_length=default_trace_length(scale.commit_target),
        full_target=scale.commit_target,
        extra_fulls=(heur_map,),
    )
    return _PairPlan(
        config_name,
        workload,
        key,
        heur_map=heur_map,
        screen_job=screen_job,
        candidates_count=len(candidates),
    )


def _execute_plans(plans: Sequence[_PairPlan], scale: ExperimentScale,
                   runner: BatchRunner, progress: bool = False,
                   bundle_count: Optional[int] = None) -> None:
    """Run every plan's screens and full-length runs as cross-pair batches
    and publish the finished :class:`WorkloadResult` objects to the memo.

    Two batches total: every pair's screens (exact mode: the candidate
    screens of *all* pairs — plus the single-mapping pairs' only runs —
    bundled together; screening mode: one
    :class:`~repro.runner.screening.ScreenJob` ladder per pair), then
    every pair's still-missing full-length BEST/HEUR/WORST runs — so the
    worker pool never drains between pairs.

    Per-run work ships as :class:`~repro.runner.continuation.
    ContinuationJob` bundles: ``bundle_count`` (default: the runner's
    worker count) caps the number of worker jobs, each bundle executing
    its runs back-to-back inside one process. Exact-mode screens are
    bundled exactly like full-length continuations, so the screen batch
    is at most ``bundle_count`` jobs (plus the screening-mode ladders)
    instead of one job per candidate mapping — with bit-identical
    results and unchanged per-run cache identities
    (:meth:`~repro.runner.continuation.ContinuationRun.as_sim_job`).
    """
    n_bundles = bundle_count if bundle_count is not None else runner.workers
    if n_bundles < 1:
        n_bundles = 1

    # --- phase 1: screens (plus single-mapping pairs' only runs) ---------
    # One bundled run list covers the exact-mode candidate screens and
    # the single-mapping pairs' full runs; ``owners[i]`` describes
    # ``runs[i]`` and ``unbundle_results`` restores run order, so the
    # bookkeeping is index-aligned regardless of bundling.
    runs: List[ContinuationRun] = []
    owners: List[Tuple[str, _PairPlan, Optional[Tuple[int, ...]]]] = []
    ladder_jobs: List[ScreenJob] = []
    ladder_plans: List[_PairPlan] = []
    for p in plans:
        if p.single_map is not None:
            runs.append(
                ContinuationRun(p.config_name, p.workload.benchmarks,
                                p.single_map, scale.commit_target)
            )
            owners.append(("single", p, None))
        elif p.candidates is not None:
            for m in p.candidates:
                runs.append(
                    ContinuationRun(p.config_name, p.workload.benchmarks, m,
                                    scale.screen_target)
                )
                owners.append(("screen", p, m))
        elif p.screen_job is not None:
            ladder_jobs.append(p.screen_job)
            ladder_plans.append(p)
    bundles = plan_bundles(runs, n_bundles)
    batch: List = bundles + ladder_jobs
    if batch:
        if progress:  # pragma: no cover - console feedback only
            print(f"  screening phase: {len(runs)} runs + "
                  f"{len(ladder_jobs)} ladders in {len(batch)} jobs ...",
                  flush=True)
        results = runner.run(batch)
        flat = unbundle_results(results[:len(bundles)], len(runs))
        exact_scores: Dict[int, List[Tuple[float, Tuple[int, ...]]]] = {}
        for (kind, p, m), r in zip(owners, flat):
            if kind == "screen":
                exact_scores.setdefault(id(p), []).append((r.ipc, m))
            else:
                p.single_result = r
        for p, r in zip(ladder_plans, results[len(bundles):]):
            p.best_map = r.best()
            p.worst_map = r.worst()
            p.full_results.update(dict(r.full_results))
        for p in plans:
            screened = exact_scores.get(id(p))
            if screened is not None:
                p.best_map = max(screened)[1]
                p.worst_map = min(screened)[1]

    # --- phase 2: full-length continuations (bundled across pairs) ------
    # Screening-mode ladders already folded the best/worst/heuristic full
    # runs; exact mode resumes all three (deduplicated) here, packed into
    # at most ``n_bundles`` worker jobs.
    full_runs: List[ContinuationRun] = []
    full_owners: List[Tuple[_PairPlan, Tuple[int, ...]]] = []
    for p in plans:
        if p.best_map is None:
            continue
        unique_maps = list(dict.fromkeys(
            [p.heur_map, p.best_map, p.worst_map]
        ))
        for m in unique_maps:
            if m in p.full_results:
                continue
            full_runs.append(
                ContinuationRun(p.config_name, p.workload.benchmarks, m,
                                scale.commit_target)
            )
            full_owners.append((p, m))
    if full_runs:
        if progress:  # pragma: no cover - console feedback only
            print(f"  full-length continuations: {len(full_runs)} runs "
                  f"in {min(len(full_runs), n_bundles)} bundles ...",
                  flush=True)
        for (p, m), r in zip(full_owners,
                             run_bundled(runner, full_runs, n_bundles)):
            p.full_results[m] = r

    # --- assembly --------------------------------------------------------
    for p in plans:
        if p.single_map is not None:
            res = p.single_result
            out = WorkloadResult(p.config_name, p.workload.name,
                                 res, res, res, 1)
        else:
            heur_res = p.full_results[p.heur_map]
            best_res = p.full_results[p.best_map]
            worst_res = p.full_results[p.worst_map]
            # The full-length runs may disagree with the screening order
            # at the margin; restore the BEST >= HEUR >= WORST invariant
            # over the runs actually measured (the oracle, by definition,
            # can pick any of them).
            trio = [heur_res, best_res, worst_res]
            best_res = max(trio, key=lambda r: r.ipc)
            worst_res = min(trio, key=lambda r: r.ipc)
            out = WorkloadResult(p.config_name, p.workload.name, best_res,
                                 heur_res, worst_res, p.candidates_count)
        _CACHE[p.key] = out


def evaluate_config_workload(
    config_name: str,
    workload: Workload | str,
    scale: Optional[ExperimentScale] = None,
    runner: Optional[BatchRunner] = None,
    screening: bool = False,
) -> WorkloadResult:
    """Produce the BEST/HEUR/WORST triple for one configuration/workload.

    ``runner`` executes the oracle screens (and the full-length runs) —
    in parallel when it has multiple workers; a sequential runner is
    created when omitted. Results are identical either way.
    """
    if isinstance(workload, str):
        workload = get_workload(workload)
    scale = scale or default_scale()
    key = _cache_key(config_name, workload.name, scale, screening)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    if runner is None:
        runner = BatchRunner(workers=1)
    plan = _plan_pair(config_name, workload, scale, screening)
    _execute_plans([plan], scale, runner)
    return _CACHE[key]


def run_performance_experiment(
    config_names: Sequence[str] = DEFAULT_CONFIGS,
    workload_names: Optional[Sequence[str]] = None,
    scale: Optional[ExperimentScale] = None,
    progress: bool = False,
    workers: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
    screening: bool = False,
    bundle_count: Optional[int] = None,
) -> Dict[str, Dict[str, WorkloadResult]]:
    """The full sweep behind Figs. 4 and 5: results[config][workload].

    ``workers`` (or an explicit ``runner``) parallelizes the sweep; every
    screening round is one batch *across* all (configuration, workload)
    pairs, so the pool stays saturated through the sweep tail. The
    produced tables are identical to a sequential sweep.

    ``screening=True`` enables successive-halving oracle screening — a
    validated approximation (same selections as exact mode on the
    reference scenario, asserted by tests) that roughly halves screening
    work; the default remains the exact screen.

    ``bundle_count`` caps the number of full-length
    :class:`~repro.runner.continuation.ContinuationJob` bundles per batch
    (default: the runner's worker count); results are identical for any
    value — it is purely a scheduling knob.

    Parallel batches run supervised (retry/timeout/pool respawn; see
    :mod:`repro.runner.resilience`); with ``progress=True`` the sweep
    footer prints the runner's :class:`~repro.runner.resilience.RunReport`
    so long sweeps say how much fault handling they needed.
    """
    scale = scale or default_scale()
    if workload_names is None:
        workload_names = list(WORKLOADS)
    created = runner is None
    if created:
        runner = BatchRunner(workers=workers)
    try:
        pairs: List[Tuple[str, Workload]] = []
        for cn in config_names:
            config = get_config(cn)
            for wn in workload_names:
                w = get_workload(wn)
                if w.num_threads > config.contexts_for(w.num_threads):
                    continue  # workload does not fit this configuration
                pairs.append((cn, w))
        todo = [
            _plan_pair(cn, w, scale, screening)
            for cn, w in pairs
            if _cache_key(cn, w.name, scale, screening) not in _CACHE
        ]
        if todo:
            if progress:  # pragma: no cover - console feedback only
                print(f"  sweep: {len(todo)} (config, workload) pairs ...",
                      flush=True)
            _execute_plans(todo, scale, runner, progress=progress,
                           bundle_count=bundle_count)
            if progress:  # pragma: no cover - console feedback only
                print(f"  {runner.report.describe()}", flush=True)
                if runner.report.eventful:
                    print("  (recovery events occurred; results are "
                          "bit-identical regardless)", flush=True)
        results: Dict[str, Dict[str, WorkloadResult]] = {
            cn: {} for cn in config_names
        }
        for cn, w in pairs:
            results[cn][w.name] = _CACHE[
                _cache_key(cn, w.name, scale, screening)
            ]
        return results
    finally:
        if created:
            runner.close()


# ---------------------------------------------------------------- summaries


def class_size_means(
    results: Mapping[str, Mapping[str, WorkloadResult]],
    workload_class: str,
    metric: str = "ipc",
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Harmonic-mean summary: out[group][config][series].

    Groups are '2 THREADS', '4 THREADS', '6 THREADS' and 'HMEAN' (overall,
    as in the figures); series are BEST/HEUR/WORST.
    """
    sizes = sorted(
        {WORKLOADS[w].num_threads for per in results.values() for w in per}
    )
    groups = [f"{s} THREADS" for s in sizes] + ["HMEAN"]
    out: Dict[str, Dict[str, Dict[str, float]]] = {g: {} for g in groups}
    for config, per in results.items():
        for size in sizes + [None]:
            vals: Dict[str, List[float]] = {"BEST": [], "HEUR": [], "WORST": []}
            for wn, wr in per.items():
                w = WORKLOADS[wn]
                if w.workload_class != workload_class:
                    continue
                if size is not None and w.num_threads != size:
                    continue
                for series in ("BEST", "HEUR", "WORST"):
                    r = wr.ipc(series.lower()) if metric == "ipc" else wr.ppa(series.lower())
                    vals[series].append(r)
            if not vals["HEUR"]:
                continue
            group = f"{size} THREADS" if size is not None else "HMEAN"
            out[group][config] = {
                s: harmonic_mean(v) for s, v in vals.items() if v
            }
    return {g: d for g, d in out.items() if d}


def fig4_table(
    results: Mapping[str, Mapping[str, WorkloadResult]], workload_class: str
) -> str:
    """Fig. 4(a/b/c) for one workload class, as text."""
    means = class_size_means(results, workload_class, metric="ipc")
    groups = list(means)
    bars = [c for c in results if any(c in means[g] for g in groups)]
    return format_grouped_bars(
        groups,
        bars,
        means,
        title=f"Fig. 4 — IPC, {workload_class} workloads (BEST/HEUR/WORST, hmean)",
        value_fmt="{:.3f}",
    )


def fig5_table(
    results: Mapping[str, Mapping[str, WorkloadResult]], workload_class: str
) -> str:
    """Fig. 5(a/b/c) for one workload class, as text (IPC per mm²)."""
    means = class_size_means(results, workload_class, metric="ppa")
    groups = list(means)
    bars = [c for c in results if any(c in means[g] for g in groups)]
    return format_grouped_bars(
        groups,
        bars,
        means,
        title=f"Fig. 5 — IPC/mm2, {workload_class} workloads (BEST/HEUR/WORST, hmean)",
        value_fmt="{:.5f}",
    )
