"""Figures 4 and 5: performance and performance-per-area comparison.

For every (microarchitecture, workload) pair the paper reports three
measurements:

* **BEST** — an oracle mapping policy: the best thread-to-pipeline
  mapping found by trying them all;
* **HEUR** — the profile-based heuristic of §2.1;
* **WORST** — the worst possible mapping.

For the monolithic baseline only one measurement exists, and for
two-threaded workloads on homogeneous configurations the three coincide
(all distinct mappings are equivalent).

The oracle search is two-phase for tractability: every distinct mapping
(after symmetry dedup) is *screened* with a short window, and only the
argmax/argmin are re-simulated at full length. Results are memoized per
process so Fig. 4, Fig. 5 and the headline summary share one sweep.

The screens of one (configuration, workload) pair are independent, so
they execute through a :class:`~repro.runner.batch.BatchRunner` — pass
``workers=`` (or set ``REPRO_WORKERS``) to fan them out over processes;
results are bit-identical to the sequential path regardless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.area.model import config_area
from repro.core.config import STANDARD_CONFIG_NAMES, get_config
from repro.core.mapping import enumerate_mappings, heuristic_mapping
from repro.core.simulation import SimResult
from repro.experiments.scale import ExperimentScale, default_scale
from repro.metrics.stats import harmonic_mean
from repro.metrics.tables import format_grouped_bars
from repro.runner import BatchRunner, SimJob
from repro.trace.profiling import profile_benchmark
from repro.workloads.definitions import WORKLOADS, Workload, get_workload

__all__ = [
    "WorkloadResult",
    "evaluate_config_workload",
    "run_performance_experiment",
    "class_size_means",
    "fig4_table",
    "fig5_table",
    "clear_result_cache",
]

#: Figures 4/5 x-axis order.
DEFAULT_CONFIGS: Tuple[str, ...] = STANDARD_CONFIG_NAMES


@dataclass(frozen=True)
class WorkloadResult:
    """BEST/HEUR/WORST results for one configuration on one workload."""

    config: str
    workload: str
    best: SimResult
    heur: SimResult
    worst: SimResult
    mappings_screened: int

    @property
    def area(self) -> float:
        return config_area(self.config)

    def ipc(self, which: str) -> float:
        return getattr(self, which).ipc

    def ppa(self, which: str) -> float:
        return getattr(self, which).ipc / self.area

    @property
    def degenerate(self) -> bool:
        """True when only one distinct mapping exists (all three equal)."""
        return self.mappings_screened <= 1


_CACHE: Dict[Tuple[str, str, tuple], WorkloadResult] = {}


def clear_result_cache() -> None:
    """Drop memoized experiment results (tests)."""
    _CACHE.clear()


def _profiled_misses(benchmarks: Sequence[str]) -> List[float]:
    return [profile_benchmark(b).misses_per_kilo_instruction for b in benchmarks]


def evaluate_config_workload(
    config_name: str,
    workload: Workload | str,
    scale: Optional[ExperimentScale] = None,
    runner: Optional[BatchRunner] = None,
) -> WorkloadResult:
    """Produce the BEST/HEUR/WORST triple for one configuration/workload.

    ``runner`` executes the oracle screens (and the full-length runs) —
    in parallel when it has multiple workers; a sequential runner is
    created when omitted. Results are identical either way.
    """
    if isinstance(workload, str):
        workload = get_workload(workload)
    scale = scale or default_scale()
    key = (config_name, workload.name, scale.cache_key)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    if runner is None:
        runner = BatchRunner(workers=1)

    config = get_config(config_name)
    benchmarks = workload.benchmarks
    n = len(benchmarks)

    if config.is_monolithic:
        mapping = (0,) * n
        res = runner.run_one(
            SimJob(config_name, benchmarks, mapping, scale.commit_target)
        )
        out = WorkloadResult(config_name, workload.name, res, res, res, 1)
        _CACHE[key] = out
        return out

    heur_map = heuristic_mapping(config, _profiled_misses(benchmarks))
    candidates = enumerate_mappings(
        config,
        n,
        max_mappings=scale.max_mappings,
        must_include=[heur_map],
    )
    if len(candidates) <= 1:
        res = runner.run_one(
            SimJob(config_name, benchmarks, heur_map, scale.commit_target)
        )
        out = WorkloadResult(config_name, workload.name, res, res, res, 1)
        _CACHE[key] = out
        return out

    # Phase 1: short screens rank the mappings (one batch, fanned out).
    screen_results = runner.run(
        [
            SimJob(config_name, benchmarks, m, scale.screen_target)
            for m in candidates
        ]
    )
    screened: List[Tuple[float, Tuple[int, ...]]] = [
        (r.ipc, m) for r, m in zip(screen_results, candidates)
    ]
    best_map = max(screened)[1]
    worst_map = min(screened)[1]

    # Phase 2: full-length runs of the heuristic and the two extremes
    # (re-using runs when mappings coincide).
    unique_maps = list(dict.fromkeys([heur_map, best_map, worst_map]))
    full_results = runner.run(
        [
            SimJob(config_name, benchmarks, m, scale.commit_target)
            for m in unique_maps
        ]
    )
    full: Dict[Tuple[int, ...], SimResult] = dict(zip(unique_maps, full_results))

    heur_res = full[heur_map]
    best_res = full[best_map]
    worst_res = full[worst_map]
    # The full-length runs may disagree with the screening order at the
    # margin; restore the BEST >= HEUR >= WORST invariant over the runs
    # actually measured (the oracle, by definition, can pick any of them).
    trio = [heur_res, best_res, worst_res]
    best_res = max(trio, key=lambda r: r.ipc)
    worst_res = min(trio, key=lambda r: r.ipc)
    out = WorkloadResult(
        config_name, workload.name, best_res, heur_res, worst_res, len(candidates)
    )
    _CACHE[key] = out
    return out


def run_performance_experiment(
    config_names: Sequence[str] = DEFAULT_CONFIGS,
    workload_names: Optional[Sequence[str]] = None,
    scale: Optional[ExperimentScale] = None,
    progress: bool = False,
    workers: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
) -> Dict[str, Dict[str, WorkloadResult]]:
    """The full sweep behind Figs. 4 and 5: results[config][workload].

    ``workers`` (or an explicit ``runner``) parallelizes the oracle
    screening within each (configuration, workload) pair; the produced
    tables are identical to a sequential sweep.
    """
    scale = scale or default_scale()
    if workload_names is None:
        workload_names = list(WORKLOADS)
    created = runner is None
    if created:
        runner = BatchRunner(workers=workers)
    try:
        results: Dict[str, Dict[str, WorkloadResult]] = {}
        for cn in config_names:
            config = get_config(cn)
            per: Dict[str, WorkloadResult] = {}
            for wn in workload_names:
                w = get_workload(wn)
                if w.num_threads > config.contexts_for(w.num_threads):
                    continue  # workload does not fit this configuration
                if progress:  # pragma: no cover - console feedback only
                    print(f"  [{cn}] {wn} ...", flush=True)
                per[wn] = evaluate_config_workload(cn, w, scale, runner=runner)
            results[cn] = per
        return results
    finally:
        if created:
            runner.close()


# ---------------------------------------------------------------- summaries


def class_size_means(
    results: Mapping[str, Mapping[str, WorkloadResult]],
    workload_class: str,
    metric: str = "ipc",
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Harmonic-mean summary: out[group][config][series].

    Groups are '2 THREADS', '4 THREADS', '6 THREADS' and 'HMEAN' (overall,
    as in the figures); series are BEST/HEUR/WORST.
    """
    sizes = sorted(
        {WORKLOADS[w].num_threads for per in results.values() for w in per}
    )
    groups = [f"{s} THREADS" for s in sizes] + ["HMEAN"]
    out: Dict[str, Dict[str, Dict[str, float]]] = {g: {} for g in groups}
    for config, per in results.items():
        for size in sizes + [None]:
            vals: Dict[str, List[float]] = {"BEST": [], "HEUR": [], "WORST": []}
            for wn, wr in per.items():
                w = WORKLOADS[wn]
                if w.workload_class != workload_class:
                    continue
                if size is not None and w.num_threads != size:
                    continue
                for series in ("BEST", "HEUR", "WORST"):
                    r = wr.ipc(series.lower()) if metric == "ipc" else wr.ppa(series.lower())
                    vals[series].append(r)
            if not vals["HEUR"]:
                continue
            group = f"{size} THREADS" if size is not None else "HMEAN"
            out[group][config] = {
                s: harmonic_mean(v) for s, v in vals.items() if v
            }
    return {g: d for g, d in out.items() if d}


def fig4_table(
    results: Mapping[str, Mapping[str, WorkloadResult]], workload_class: str
) -> str:
    """Fig. 4(a/b/c) for one workload class, as text."""
    means = class_size_means(results, workload_class, metric="ipc")
    groups = list(means)
    bars = [c for c in results if any(c in means[g] for g in groups)]
    return format_grouped_bars(
        groups,
        bars,
        means,
        title=f"Fig. 4 — IPC, {workload_class} workloads (BEST/HEUR/WORST, hmean)",
        value_fmt="{:.3f}",
    )


def fig5_table(
    results: Mapping[str, Mapping[str, WorkloadResult]], workload_class: str
) -> str:
    """Fig. 5(a/b/c) for one workload class, as text (IPC per mm²)."""
    means = class_size_means(results, workload_class, metric="ppa")
    groups = list(means)
    bars = [c for c in results if any(c in means[g] for g in groups)]
    return format_grouped_bars(
        groups,
        bars,
        means,
        title=f"Fig. 5 — IPC/mm2, {workload_class} workloads (BEST/HEUR/WORST, hmean)",
        value_fmt="{:.5f}",
    )
