"""Ablation studies (ours; motivated by DESIGN.md's design-choice list).

A1 — fetch policy: the paper asserts L1MCOUNT for multipipeline configs
     and FLUSH for the baseline; this ablation swaps policies to measure
     how much each choice matters.
A2 — register latency: hdSMT pays a 2-cycle register file; sweep 1..3 to
     price that tax.
A3 — fetch-buffer size: the decoupling buffers are 32/16 entries; sweep
     them to check the decoupling claim.
A4 — mapping policy: heuristic vs random vs round-robin vs oracle.

Every ablation's variant runs are independent simulations, so each
driver batches them through a :class:`~repro.runner.batch.BatchRunner`
(``workers=`` or ``REPRO_WORKERS`` parallelizes; results are identical
to the sequential path). Runs ship as worker-count-sized bundles
(:func:`~repro.runner.continuation.run_bundled`) — including the A4
oracle's exact per-candidate screens — so dispatch overhead never
scales with the variant or candidate count; results come back in run
order, preserving the seed path's first-strict-max tie-breaks.
"""

from __future__ import annotations

import logging
from contextlib import contextmanager
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import MicroarchConfig, get_config
from repro.core.mapping import (
    enumerate_mappings,
    heuristic_mapping,
    random_mapping,
    round_robin_mapping,
)
from repro.core.models import PipelineModel
from repro.core.simulation import SimResult
from repro.experiments.scale import ExperimentScale, default_scale
from repro.metrics.tables import format_table
from repro.runner import BatchRunner
from repro.runner.continuation import ContinuationRun, run_bundled
from repro.runner.screening import ScreenJob
from repro.trace.profiling import profile_benchmark
from repro.workloads.definitions import Workload, get_workload

__all__ = [
    "ablation_fetch_policy",
    "ablation_register_latency",
    "ablation_fetch_buffer",
    "ablation_mapping_policy",
]

logger = logging.getLogger(__name__)


@contextmanager
def _runner_for(runner: Optional[BatchRunner], workers: Optional[int]):
    """Yield the given runner, or a temporary one closed on exit.

    ``workers=None`` defers to the BatchRunner default (``REPRO_WORKERS``,
    then the cpu count), matching the module docstring's promise. When a
    temporary runner's supervised dispatch had to recover from faults
    (retries, pool respawns, corrupt cache entries, ...), the runner's
    :class:`~repro.runner.resilience.RunReport` is logged before closing
    — a caller-provided runner keeps its own cumulative report instead.
    """
    if runner is not None:
        yield runner
        return
    own = BatchRunner(workers=workers)
    try:
        yield own
    finally:
        if own.report.eventful:
            logger.info("ablation batch: %s", own.report.describe())
        own.close()


def _heur_map(config: MicroarchConfig, benchmarks: Sequence[str]) -> Tuple[int, ...]:
    if config.is_monolithic:
        return (0,) * len(benchmarks)
    misses = [profile_benchmark(b).misses_per_kilo_instruction for b in benchmarks]
    return heuristic_mapping(config, misses)


def ablation_fetch_policy(
    config_name: str = "2M4+2M2",
    workload_name: str = "4W6",
    policies: Sequence[str] = ("l1mcount", "icount", "flush", "roundrobin"),
    scale: Optional[ExperimentScale] = None,
    workers: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
) -> Dict[str, SimResult]:
    """A1: same configuration/mapping, different fetch policies."""
    scale = scale or default_scale()
    base = get_config(config_name)
    w = get_workload(workload_name)
    mapping = _heur_map(base, w.benchmarks)
    variants = [
        replace(base, name=f"{config_name}[{pol}]", fetch_policy=pol)
        for pol in policies
    ]
    with _runner_for(runner, workers) as rn:
        results = run_bundled(
            rn,
            [
                ContinuationRun(cfg, w.benchmarks, mapping, scale.commit_target)
                for cfg in variants
            ],
        )
    return dict(zip(policies, results))


def ablation_register_latency(
    config_name: str = "2M4+2M2",
    workload_name: str = "4W8",
    latencies: Sequence[int] = (1, 2, 3),
    scale: Optional[ExperimentScale] = None,
    workers: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
) -> Dict[int, SimResult]:
    """A2: price of the multipipeline register-file tax."""
    scale = scale or default_scale()
    base = get_config(config_name)
    w = get_workload(workload_name)
    mapping = _heur_map(base, w.benchmarks)
    variants = [
        replace(
            base,
            name=f"{config_name}[rf={lat}]",
            params=replace(base.params, reg_latency=lat),
        )
        for lat in latencies
    ]
    with _runner_for(runner, workers) as rn:
        results = run_bundled(
            rn,
            [
                ContinuationRun(cfg, w.benchmarks, mapping, scale.commit_target)
                for cfg in variants
            ],
        )
    return dict(zip(latencies, results))


def ablation_fetch_buffer(
    config_name: str = "2M4+2M2",
    workload_name: str = "4W1",
    sizes: Sequence[int] = (4, 8, 16, 32, 64),
    scale: Optional[ExperimentScale] = None,
    workers: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
) -> Dict[int, SimResult]:
    """A3: decoupling-buffer size sweep (all pipelines get `size`)."""
    scale = scale or default_scale()
    base = get_config(config_name)
    w = get_workload(workload_name)
    mapping = _heur_map(base, w.benchmarks)
    variants = []
    for size in sizes:
        pipes = tuple(
            PipelineModel(
                name=p.name,
                contexts=p.contexts,
                width=p.width,
                threads_per_cycle=p.threads_per_cycle,
                iq_entries=p.iq_entries,
                fq_entries=p.fq_entries,
                lq_entries=p.lq_entries,
                int_units=p.int_units,
                fp_units=p.fp_units,
                ldst_units=p.ldst_units,
                fetch_buffer=size,
            )
            for p in base.pipelines
        )
        variants.append(
            replace(base, name=f"{config_name}[buf={size}]", pipelines=pipes)
        )
    with _runner_for(runner, workers) as rn:
        results = run_bundled(
            rn,
            [
                ContinuationRun(cfg, w.benchmarks, mapping, scale.commit_target)
                for cfg in variants
            ],
        )
    return dict(zip(sizes, results))


def ablation_mapping_policy(
    config_name: str = "2M4+2M2",
    workload_name: str = "4W6",
    scale: Optional[ExperimentScale] = None,
    workers: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
    screening: bool = False,
) -> Dict[str, SimResult]:
    """A4: heuristic vs blind policies vs the (screened) oracle.

    ``screening=True`` prunes the oracle candidates with successive
    halving (same machinery as the performance sweep's ``--screening``);
    the default screens every candidate at the full screen window.
    """
    scale = scale or default_scale()
    config = get_config(config_name)
    w = get_workload(workload_name)
    n = w.num_threads
    heur = _heur_map(config, w.benchmarks)
    maps: Dict[str, Tuple[int, ...]] = {
        "heuristic": heur,
        "random": random_mapping(config, n),
        "roundrobin": round_robin_mapping(config, n),
    }
    # Screened oracle.
    candidates = enumerate_mappings(
        config, n, max_mappings=scale.max_mappings, must_include=[heur]
    )
    with _runner_for(runner, workers) as rn:
        if screening:
            # Successive halving: one checkpointed ladder in one worker.
            outcome = rn.run(
                [
                    ScreenJob(
                        config_name,
                        tuple(w.benchmarks),
                        tuple(candidates),
                        scale.screen_target,
                        rounds=4,
                    )
                ]
            )[0]
            maps["oracle-best"] = outcome.best()
            maps["oracle-worst"] = outcome.worst()
        else:
            # Exact screen: every candidate at the full screen window,
            # packed into worker-count-sized bundles (results come back
            # in candidate order, so the seed path's first-strict-max
            # tie-breaks are preserved exactly).
            screens = run_bundled(
                rn,
                [
                    ContinuationRun(config_name, tuple(w.benchmarks), m,
                                    scale.screen_target)
                    for m in candidates
                ],
            )
            best_map, best_ipc = heur, -1.0
            worst_map, worst_ipc = heur, float("inf")
            for m, r in zip(candidates, screens):
                if r.ipc > best_ipc:
                    best_map, best_ipc = m, r.ipc
                if r.ipc < worst_ipc:
                    worst_map, worst_ipc = m, r.ipc
            maps["oracle-best"] = best_map
            maps["oracle-worst"] = worst_map
        unique_maps = list(dict.fromkeys(maps.values()))
        full = dict(
            zip(
                unique_maps,
                run_bundled(
                    rn,
                    [
                        ContinuationRun(config_name, tuple(w.benchmarks), m,
                                        scale.commit_target)
                        for m in unique_maps
                    ],
                ),
            )
        )
    out: Dict[str, SimResult] = {name: full[m] for name, m in maps.items()}
    # The screening window can disagree with the full window at the
    # margin; an oracle is by definition at least as good as any policy
    # it brackets, so restore the bracket over the measured full runs.
    out["oracle-best"] = max(out.values(), key=lambda r: r.ipc)
    out["oracle-worst"] = min(out.values(), key=lambda r: r.ipc)
    return out


def ablation_report(results: Dict, label: str) -> str:
    """Generic 'variant vs IPC' table for any of the ablations."""
    rows: List[List[object]] = []
    for k, r in results.items():
        rows.append([str(k), f"{r.ipc:.3f}", r.cycles])
    return format_table([label, "IPC", "cycles"], rows, title=f"Ablation: {label}")
