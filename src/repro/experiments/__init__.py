"""Experiment drivers that regenerate every table and figure of the paper.

* :mod:`repro.experiments.scale` — scaling knobs (env `REPRO_SIM_SCALE`);
* :mod:`repro.experiments.performance` — Figs. 4 & 5 (IPC and IPC/mm²,
  BEST/HEUR/WORST per configuration × workload, harmonic-mean summaries);
* :mod:`repro.experiments.summary` — the §5 headline numbers;
* :mod:`repro.experiments.ablations` — additional studies (fetch policy,
  register latency, fetch-buffer size, mapping policies).
"""

from repro.experiments.scale import ExperimentScale, default_scale
from repro.experiments.performance import (
    WorkloadResult,
    evaluate_config_workload,
    run_performance_experiment,
    fig4_table,
    fig5_table,
    class_size_means,
)
from repro.experiments.summary import headline_summary, HeadlineSummary

__all__ = [
    "ExperimentScale",
    "default_scale",
    "WorkloadResult",
    "evaluate_config_workload",
    "run_performance_experiment",
    "fig4_table",
    "fig5_table",
    "class_size_means",
    "headline_summary",
    "HeadlineSummary",
]
