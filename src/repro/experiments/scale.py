"""Experiment scaling knobs.

The paper simulates 300M-instruction traces; a pure-Python cycle-level
simulator reproduces the same steady-state *rates* from much shorter
windows (the synthetic traces are stationary). `REPRO_SIM_SCALE` scales
the default windows up or down (e.g. ``REPRO_SIM_SCALE=4`` for a longer,
lower-noise run; ``0.25`` for a quick smoke pass).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ExperimentScale", "default_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Window sizes for the experiment drivers.

    commit_target:
        Instructions the first-finishing thread commits in a *measured*
        run (the paper's 300M, scaled down).
    screen_target:
        Shorter window used to rank candidate mappings for the oracle
        BEST/WORST policies; the argmax/argmin are re-run at full length.
    max_mappings:
        Cap on distinct mappings screened per (config, workload); beyond
        it a deterministic sample (always containing the heuristic's
        mapping) is used, making BEST/WORST sampled oracles.
    """

    commit_target: int = 8_000
    screen_target: int = 1_500
    max_mappings: int = 36

    def scaled(self, factor: float) -> "ExperimentScale":
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return ExperimentScale(
            commit_target=max(500, int(self.commit_target * factor)),
            screen_target=max(300, int(self.screen_target * factor)),
            max_mappings=self.max_mappings,
        )

    @property
    def cache_key(self) -> tuple:
        return (self.commit_target, self.screen_target, self.max_mappings)


def default_scale() -> ExperimentScale:
    """The default scale, adjusted by the REPRO_SIM_SCALE env var."""
    base = ExperimentScale()
    factor = os.environ.get("REPRO_SIM_SCALE")
    if factor:
        base = base.scaled(float(factor))
    cap = os.environ.get("REPRO_MAX_MAPPINGS")
    if cap:
        base = ExperimentScale(
            commit_target=base.commit_target,
            screen_target=base.screen_target,
            max_mappings=int(cap),
        )
    return base
