"""Headline numbers of §5.

The paper's summary claims, regenerated from the Fig. 4/5 sweep:

* hdSMT improves performance-per-area over the monolithic SMT baseline by
  ~13 % and over homogeneously clustered SMT by ~14 % (best-PPA hdSMT,
  HEUR mapping);
* monolithic SMT keeps a ~6 % raw-performance edge over hdSMT, while
  hdSMT beats homogeneous clustering by ~7 % raw;
* the heuristic's accuracy (HEUR/BEST) is high and configuration
  dependent: 92 % on 2M4+2M2, 96 % on 1M6+2M4+2M2, 88 % on 3M4+2M2 in
  the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.config import (
    HETEROGENEOUS_CONFIG_NAMES,
    HOMOGENEOUS_CONFIG_NAMES,
)
from repro.experiments.performance import (
    WorkloadResult,
    run_performance_experiment,
)
from repro.experiments.scale import ExperimentScale
from repro.metrics.stats import harmonic_mean, heuristic_accuracy, relative_improvement
from repro.metrics.tables import format_table
from repro.workloads.definitions import WORKLOADS

__all__ = ["HeadlineSummary", "headline_summary", "summary_report"]


@dataclass
class HeadlineSummary:
    """Computed counterparts of the paper's §5 claims."""

    #: hmean PPA per config (HEUR mapping) over the common workload set
    ppa_by_config: Dict[str, float] = field(default_factory=dict)
    #: hmean raw IPC per config (HEUR mapping)
    ipc_by_config: Dict[str, float] = field(default_factory=dict)
    best_ppa_hdsmt: str = ""
    best_ipc_hdsmt: str = ""
    #: PPA improvement of the best hdSMT over the M8 baseline (paper: +13 %)
    ppa_gain_vs_monolithic: float = 0.0
    #: PPA improvement of the best hdSMT over the best homogeneous (+14 %)
    ppa_gain_vs_homogeneous: float = 0.0
    #: raw-IPC edge of M8 over the best hdSMT (paper: +6 %)
    ipc_gain_monolithic_vs_hdsmt: float = 0.0
    #: raw-IPC edge of the best hdSMT over the best homogeneous (+7 %)
    ipc_gain_hdsmt_vs_homogeneous: float = 0.0
    #: per-config heuristic accuracy, PPA-based (paper: 92/96/88 %)
    heuristic_accuracy: Dict[str, float] = field(default_factory=dict)


def _common_workloads(results: Mapping[str, Mapping[str, WorkloadResult]]) -> List[str]:
    """Workloads evaluated on every configuration (fair hmean base)."""
    sets = [set(per) for per in results.values() if per]
    if not sets:
        return []
    common = set.intersection(*sets)
    return [w for w in WORKLOADS if w in common]


def headline_summary(
    results: Optional[Mapping[str, Mapping[str, WorkloadResult]]] = None,
    scale: Optional[ExperimentScale] = None,
    config_names: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
) -> HeadlineSummary:
    """Compute the §5 headline numbers (running the sweep if needed).

    ``workers`` is forwarded to :func:`run_performance_experiment`'s
    :class:`~repro.runner.batch.BatchRunner` when the sweep must run.
    """
    if results is None:
        results = run_performance_experiment(scale=scale, workers=workers)
    common = _common_workloads(results)
    if not common:
        raise ValueError("no common workloads across configurations")
    out = HeadlineSummary()
    for config, per in results.items():
        out.ipc_by_config[config] = harmonic_mean([per[w].ipc("heur") for w in common])
        out.ppa_by_config[config] = harmonic_mean([per[w].ppa("heur") for w in common])

    hetero = [c for c in HETEROGENEOUS_CONFIG_NAMES if c in results]
    homog = [c for c in HOMOGENEOUS_CONFIG_NAMES if c in results]
    if not hetero or not homog or "M8" not in results:
        return out

    out.best_ppa_hdsmt = max(hetero, key=lambda c: out.ppa_by_config[c])
    out.best_ipc_hdsmt = max(hetero, key=lambda c: out.ipc_by_config[c])
    best_homog_ppa = max(homog, key=lambda c: out.ppa_by_config[c])
    best_homog_ipc = max(homog, key=lambda c: out.ipc_by_config[c])

    out.ppa_gain_vs_monolithic = relative_improvement(
        out.ppa_by_config[out.best_ppa_hdsmt], out.ppa_by_config["M8"]
    )
    out.ppa_gain_vs_homogeneous = relative_improvement(
        out.ppa_by_config[out.best_ppa_hdsmt], out.ppa_by_config[best_homog_ppa]
    )
    out.ipc_gain_monolithic_vs_hdsmt = relative_improvement(
        out.ipc_by_config["M8"], out.ipc_by_config[out.best_ipc_hdsmt]
    )
    out.ipc_gain_hdsmt_vs_homogeneous = relative_improvement(
        out.ipc_by_config[out.best_ipc_hdsmt], out.ipc_by_config[best_homog_ipc]
    )

    # Heuristic accuracy per heterogeneous config (PPA-based HEUR/BEST over
    # the workloads where a real mapping choice existed).
    for config in hetero:
        per = results[config]
        heur_vals, best_vals = [], []
        for w in common:
            wr = per[w]
            if wr.degenerate:
                continue
            heur_vals.append(wr.ppa("heur"))
            best_vals.append(wr.ppa("best"))
        if heur_vals:
            out.heuristic_accuracy[config] = heuristic_accuracy(heur_vals, best_vals)
    return out


def summary_report(summary: HeadlineSummary) -> str:
    """The §5 claims, ours vs the paper's, as a text table."""
    rows = [
        [
            "PPA gain: best hdSMT vs monolithic SMT",
            f"{100 * summary.ppa_gain_vs_monolithic:+.1f}%",
            "+13%",
        ],
        [
            "PPA gain: best hdSMT vs homogeneous clustered",
            f"{100 * summary.ppa_gain_vs_homogeneous:+.1f}%",
            "+14%",
        ],
        [
            "raw IPC: monolithic vs best hdSMT",
            f"{100 * summary.ipc_gain_monolithic_vs_hdsmt:+.1f}%",
            "+6%",
        ],
        [
            "raw IPC: best hdSMT vs homogeneous clustered",
            f"{100 * summary.ipc_gain_hdsmt_vs_homogeneous:+.1f}%",
            "+7%",
        ],
    ]
    for config, acc in summary.heuristic_accuracy.items():
        paper = {"2M4+2M2": "92%", "1M6+2M4+2M2": "96%", "3M4+2M2": "88%"}.get(
            config, "-"
        )
        rows.append([f"heuristic accuracy on {config}", f"{100 * acc:.0f}%", paper])
    return format_table(
        ["claim", "measured", "paper"], rows, title="§5 headline summary"
    )
