"""Branch prediction substrate.

Matches Table 1 of the paper:

* perceptron direction predictor — "4K local, 256 perceps": a 4096-entry
  local-history table feeding 256 perceptrons that also see per-thread
  global history (Jimenez-style hybrid input vector);
* 256-entry, 4-way set-associative branch target buffer;
* 256-entry return-address stack, replicated per thread.
"""

from repro.branch.perceptron import PerceptronPredictor
from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.branch.unit import BranchUnit, BranchPrediction

__all__ = [
    "PerceptronPredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "BranchUnit",
    "BranchPrediction",
]
