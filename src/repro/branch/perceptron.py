"""Perceptron branch direction predictor.

The paper's Table 1 lists "perceptron (4K local, 256 perceps)": 256
perceptrons selected by a PC hash, each seeing a concatenation of the
thread's *global* history and the branch's *local* history taken from a
4096-entry local-history table (Jimenez & Lin's hybrid input arrangement).

Prediction: ``y = w0 + sum_i w_i * x_i`` with ``x_i in {-1, +1}`` history
bits; predict taken when ``y >= 0``. Training (on mispredict or when
``|y| <= theta``) nudges every weight toward the outcome; the classic
threshold ``theta = floor(1.93 * H + 14)`` controls training aggressiveness
and weights saturate at +/-``WEIGHT_LIMIT`` (signed 8-bit in hardware).

The implementation is deliberately scalar Python: a prediction touches
``H+1`` small ints, and at roughly one branch per simulated cycle this is
cheaper than paying per-call numpy dispatch overhead (per the profiling
guidance: measure the realistic call pattern, not the bulk one).
"""

from __future__ import annotations

from typing import List

__all__ = ["PerceptronPredictor"]


class PerceptronPredictor:
    """Hybrid global/local perceptron predictor shared by all threads.

    Parameters
    ----------
    num_perceptrons:
        Number of weight vectors (paper: 256). Must be a power of two.
    local_entries:
        Local-history table entries (paper: 4096). Must be a power of two.
    global_bits:
        Bits of per-thread global history in the input vector.
    local_bits:
        Bits of per-branch local history in the input vector.
    max_threads:
        Number of hardware threads (each gets a private global history).
    """

    __slots__ = (
        "num_perceptrons",
        "local_entries",
        "global_bits",
        "local_bits",
        "history_length",
        "theta",
        "weight_limit",
        "_weights",
        "_local_history",
        "_global_history",
        "_hist_shared",
        "_pred_mask_local",
        "_pred_mask_global",
        "lookups",
        "mispredicts",
        "trainings",
    )

    WEIGHT_LIMIT = 127

    def __init__(
        self,
        num_perceptrons: int = 256,
        local_entries: int = 4096,
        global_bits: int = 12,
        local_bits: int = 10,
        max_threads: int = 8,
    ) -> None:
        if num_perceptrons & (num_perceptrons - 1):
            raise ValueError("num_perceptrons must be a power of two")
        if local_entries & (local_entries - 1):
            raise ValueError("local_entries must be a power of two")
        self.num_perceptrons = num_perceptrons
        self.local_entries = local_entries
        self.global_bits = global_bits
        self.local_bits = local_bits
        self.history_length = global_bits + local_bits
        self.theta = int(1.93 * self.history_length + 14)
        self.weight_limit = self.WEIGHT_LIMIT
        # weights[p] is a list of history_length+1 ints (w0 = bias first).
        self._weights: List[List[int]] = [
            [0] * (self.history_length + 1) for _ in range(num_perceptrons)
        ]
        self._local_history = [0] * local_entries
        self._global_history = [0] * max_threads
        #: True while the history tables are still the restored snapshot's
        #: own lists (copy-on-write: the first shift copies them out).
        self._hist_shared = False
        self._pred_mask_local = (1 << local_bits) - 1
        self._pred_mask_global = (1 << global_bits) - 1
        self.lookups = 0
        self.mispredicts = 0
        self.trainings = 0

    # -- internal helpers ---------------------------------------------------

    def _index(self, pc: int) -> int:
        word = pc >> 2
        return (word ^ (word >> 8)) & (self.num_perceptrons - 1)

    def _local_index(self, pc: int) -> int:
        return (pc >> 2) & (self.local_entries - 1)

    def _inputs(self, thread: int, pc: int) -> int:
        """Concatenated (global, local) history bits as one integer."""
        g = self._global_history[thread] & self._pred_mask_global
        loc = self._local_history[self._local_index(pc)] & self._pred_mask_local
        return (g << self.local_bits) | loc

    def _output(self, weights: List[int], inputs: int) -> int:
        y = weights[0]
        # Loop over history bits; bit i of `inputs` maps to weight i+1.
        for i in range(1, self.history_length + 1):
            if inputs & 1:
                y += weights[i]
            else:
                y -= weights[i]
            inputs >>= 1
        return y

    # -- public API ---------------------------------------------------------

    def predict(self, thread: int, pc: int) -> bool:
        """Predict the direction of the branch at ``pc`` for ``thread``."""
        self.lookups += 1
        word = pc >> 2
        weights = self._weights[(word ^ (word >> 8)) & (self.num_perceptrons - 1)]
        g = self._global_history[thread] & self._pred_mask_global
        loc = self._local_history[word & (self.local_entries - 1)] & self._pred_mask_local
        inputs = (g << self.local_bits) | loc
        y = weights[0]
        for w in weights[1:]:
            if inputs & 1:
                y += w
            else:
                y -= w
            inputs >>= 1
        return y >= 0

    def predict_with_confidence(self, thread: int, pc: int) -> tuple[bool, int]:
        """Return ``(taken, |y|)`` — the margin doubles as confidence."""
        self.lookups += 1
        weights = self._weights[self._index(pc)]
        y = self._output(weights, self._inputs(thread, pc))
        return y >= 0, abs(y)

    def update(self, thread: int, pc: int, taken: bool) -> None:
        """Train on the resolved outcome and shift both histories.

        Called at branch resolution. Histories are updated speculatively in
        real front ends; the trace-driven model trains and shifts together,
        which is the standard SMTSIM simplification.
        """
        word = pc >> 2
        idx = (word ^ (word >> 8)) & (self.num_perceptrons - 1)
        weights = self._weights[idx]
        li = word & (self.local_entries - 1)
        g = self._global_history[thread] & self._pred_mask_global
        loc = self._local_history[li] & self._pred_mask_local
        inputs = (g << self.local_bits) | loc
        y = weights[0]
        bits = inputs
        for w in weights[1:]:
            if bits & 1:
                y += w
            else:
                y -= w
            bits >>= 1
        pred = y >= 0
        if pred != taken:
            self.mispredicts += 1
        if pred != taken or (y if y >= 0 else -y) <= self.theta:
            self.trainings += 1
            t = 1 if taken else -1
            limit = self.weight_limit
            neg = -limit
            w0 = weights[0] + t
            trained = [limit if w0 > limit else (neg if w0 < neg else w0)]
            append = trained.append
            bits = inputs
            for w in weights[1:]:
                w = w + t if bits & 1 else w - t
                append(limit if w > limit else (neg if w < neg else w))
                bits >>= 1
            # Rows are *replaced*, never mutated in place: restored
            # snapshots share row objects with live predictors (row-level
            # copy-on-write) and stay valid whatever trains afterwards.
            self._weights[idx] = trained
        # history shifts
        if self._hist_shared:
            self._local_history = self._local_history[:]
            self._global_history = self._global_history[:]
            self._hist_shared = False
        bit = 1 if taken else 0
        self._global_history[thread] = (
            (self._global_history[thread] << 1) | bit
        ) & self._pred_mask_global
        self._local_history[li] = (
            (self._local_history[li] << 1) | bit
        ) & self._pred_mask_local

    def update_many(self, thread: int, pcs, outcomes) -> None:
        """Batched :meth:`update` over one thread's resolved branches
        (warm-up path): identical training sequence, one bound call."""
        update = self.update
        for pc, taken in zip(pcs, outcomes):
            update(thread, pc, taken)

    def dump_state(self) -> tuple:
        """(weights, histories, stats) snapshot for exact restore.

        O(perceptrons), not O(weights): rows are shared, not copied —
        safe because training replaces rows instead of mutating them
        (see :meth:`update`), so a snapshot's rows can never change
        under it. History lists are small and copied outright.
        """
        return (
            self._weights[:],
            self._local_history[:],
            self._global_history[:],
            self.lookups,
            self.mispredicts,
            self.trainings,
        )

    def load_state(self, snap: tuple) -> None:
        """Restore a :meth:`dump_state` snapshot, copy-on-write: the
        row list is adopted shallowly (rows are immutable-by-convention)
        and the history tables stay the snapshot's own lists until the
        first post-restore shift copies them out — restoring thousands
        of screening candidates from one snapshot costs O(perceptrons)
        each, and no amount of post-restore training aliases back."""
        weights, local, global_, lookups, mispredicts, trainings = snap
        self._weights = list(weights)
        self._local_history = local
        self._global_history = global_
        self._hist_shared = True
        self.lookups = lookups
        self.mispredicts = mispredicts
        self.trainings = trainings

    def reset_thread(self, thread: int) -> None:
        """Clear one thread's global history (context switch)."""
        if self._hist_shared:
            self._local_history = self._local_history[:]
            self._global_history = self._global_history[:]
            self._hist_shared = False
        self._global_history[thread] = 0

    def reset_stats(self) -> None:
        """Zero counters, keep weights/history (post-warm-up)."""
        self.lookups = 0
        self.mispredicts = 0
        self.trainings = 0

    @property
    def mispredict_rate(self) -> float:
        """Fraction of trained branches that were mispredicted."""
        if self.lookups == 0:
            return 0.0
        return self.mispredicts / max(1, self.lookups)

    def storage_bits(self) -> int:
        """Total predictor storage in bits (for the area model)."""
        weight_bits = 8 * (self.history_length + 1) * self.num_perceptrons
        local_bits = self.local_bits * self.local_entries
        return weight_bits + local_bits
