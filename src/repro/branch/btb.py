"""Branch target buffer: 256 entries, 4-way set associative (Table 1).

Stores the target of taken control transfers. A direction prediction of
"taken" with a BTB miss cannot steer fetch and costs a small front-end
bubble (modeled by the core, not here). True-LRU within each set: with
4 ways a per-set recency list is exact and cheap.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["BranchTargetBuffer"]


class BranchTargetBuffer:
    """Set-associative BTB keyed by instruction PC.

    Threads share the structure (as in SMTSIM); tags embed the thread id so
    different address spaces do not alias to the same target.
    """

    __slots__ = ("entries", "ways", "sets", "_tags", "_targets",
                 "_base_tags", "_base_targets", "lookups", "hits")

    def __init__(self, entries: int = 256, ways: int = 4) -> None:
        if entries % ways:
            raise ValueError("entries must be a multiple of ways")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        if self.sets & (self.sets - 1):
            raise ValueError("number of sets must be a power of two")
        # Per set: parallel recency-ordered lists (index 0 = MRU). After
        # a warm-state restore (:meth:`load_state`) rows are None and
        # `_base_*` hold the shared, never-mutated snapshot rows; a set
        # copies its rows out the first time it is touched — the same
        # copy-on-write scheme as SetAssociativeCache.
        self._tags: List[Optional[List[int]]] = [[] for _ in range(self.sets)]
        self._targets: List[Optional[List[int]]] = [[] for _ in range(self.sets)]
        self._base_tags: Optional[List[List[int]]] = None
        self._base_targets: Optional[List[List[int]]] = None
        self.lookups = 0
        self.hits = 0

    def _set_tag(self, thread: int, pc: int) -> tuple[int, int]:
        word = pc >> 2
        s = word & (self.sets - 1)
        tag = (word >> 6) ^ (thread << 58)  # keep thread ids from aliasing
        return s, tag

    def lookup(self, thread: int, pc: int) -> Optional[int]:
        """Return the predicted target or None on a BTB miss."""
        self.lookups += 1
        s, tag = self._set_tag(thread, pc)
        tags = self._tags[s]
        if tags is None:  # copy the restored set out of the shared base
            tags = self._base_tags[s][:]
            self._tags[s] = tags
            self._targets[s] = self._base_targets[s][:]
        try:
            i = tags.index(tag)
        except ValueError:
            return None
        self.hits += 1
        if i:
            # move to MRU position
            targets = self._targets[s]
            tags.insert(0, tags.pop(i))
            targets.insert(0, targets.pop(i))
        return self._targets[s][0]

    def update(self, thread: int, pc: int, target: int) -> None:
        """Install/refresh the target of a taken control transfer."""
        s, tag = self._set_tag(thread, pc)
        tags = self._tags[s]
        if tags is None:  # copy the restored set out of the shared base
            tags = self._base_tags[s][:]
            self._tags[s] = tags
            self._targets[s] = self._base_targets[s][:]
        targets = self._targets[s]
        try:
            i = tags.index(tag)
        except ValueError:
            if len(tags) >= self.ways:
                tags.pop()
                targets.pop()
            tags.insert(0, tag)
            targets.insert(0, target)
            return
        tags.insert(0, tags.pop(i))
        targets.pop(i)
        targets.insert(0, target)

    def update_many(self, thread: int, pcs, targets) -> None:
        """Batched :meth:`update` over taken control transfers (warm-up
        path): identical install/refresh sequence, one bound call."""
        update = self.update
        for pc, target in zip(pcs, targets):
            update(thread, pc, target)

    def dump_state(self) -> tuple:
        """Copy of (tags, targets, stats) for exact restore. Sets not
        yet copied out of a restored base dump from the base rows, so
        the snapshot shape is independent of how the contents were
        built."""
        bt = self._base_tags
        if bt is None:
            tags = [t[:] for t in self._tags]
            targets = [t[:] for t in self._targets]
        else:
            bg = self._base_targets
            tags = [t[:] if t is not None else bt[i][:]
                    for i, t in enumerate(self._tags)]
            targets = [t[:] if t is not None else bg[i][:]
                       for i, t in enumerate(self._targets)]
        return (tags, targets, self.lookups, self.hits)

    def load_state(self, snap: tuple) -> None:
        """Restore a :meth:`dump_state` snapshot (exact contents + stats).

        O(1) per set rather than O(entries): the snapshot rows become
        the shared copy-on-write base and each set copies out lazily on
        first touch. The snapshot itself is never mutated, so many BTBs
        can restore from one snapshot concurrently."""
        tags, targets, lookups, hits = snap
        self._tags = [None] * self.sets
        self._targets = [None] * self.sets
        self._base_tags = tags
        self._base_targets = targets
        self.lookups = lookups
        self.hits = hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset_stats(self) -> None:
        """Zero counters, keep targets (post-warm-up)."""
        self.lookups = 0
        self.hits = 0

    def storage_bits(self) -> int:
        """Approximate storage: 64-bit tag+target per entry (area model)."""
        return self.entries * (64 + 64)
