"""Combined front-end branch unit: direction predictor + BTB + per-thread RAS.

The fetch engine calls :meth:`BranchUnit.predict` for every control
instruction in a fetch packet and :meth:`BranchUnit.resolve` when the
branch executes. The unit classifies the outcome:

* *direction mispredict* — full squash + redirect (wrong-path fetch in
  between), the expensive case;
* *BTB miss on a predicted/actual taken branch* — fetch cannot steer, a
  short decode-time bubble (the core charges ``btb_miss_penalty``);
* *RAS hit/mispredict* for returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.branch.btb import BranchTargetBuffer
from repro.branch.perceptron import PerceptronPredictor
from repro.branch.ras import ReturnAddressStack
from repro.isa.opcodes import OP_BRANCH, OP_CALL, OP_RETURN

__all__ = ["BranchUnit", "BranchPrediction"]


@dataclass(frozen=True)
class BranchPrediction:
    """Outcome of a front-end prediction for one control instruction."""

    taken: bool  #: predicted direction
    target_known: bool  #: BTB/RAS supplied a target for a taken prediction
    direction_mispredict: bool  #: predicted direction differs from the trace
    target_mispredict: bool  #: direction right, but target unknown/wrong


class BranchUnit:
    """Shared predictor state plus per-thread return stacks."""

    __slots__ = ("predictor", "btb", "rases", "stats_resolved", "stats_dir_miss", "stats_tgt_miss")

    def __init__(
        self,
        max_threads: int,
        num_perceptrons: int = 256,
        local_entries: int = 4096,
        btb_entries: int = 256,
        btb_ways: int = 4,
        ras_entries: int = 256,
    ) -> None:
        self.predictor = PerceptronPredictor(
            num_perceptrons=num_perceptrons,
            local_entries=local_entries,
            max_threads=max_threads,
        )
        self.btb = BranchTargetBuffer(entries=btb_entries, ways=btb_ways)
        self.rases: List[ReturnAddressStack] = [
            ReturnAddressStack(ras_entries) for _ in range(max_threads)
        ]
        self.stats_resolved = 0
        self.stats_dir_miss = 0
        self.stats_tgt_miss = 0

    def predict(
        self, thread: int, pc: int, op_class: int, actual_taken: bool, actual_target: int
    ) -> BranchPrediction:
        """Predict one control instruction during fetch.

        The trace supplies the actual direction/target, so the unit can
        immediately classify the prediction; the *timing* consequences
        (when the squash happens) are the core's job.
        """
        if op_class == OP_CALL:
            # Calls are unconditionally taken; push the return address.
            self.rases[thread].push(pc + 4)
            target = self.btb.lookup(thread, pc)
            known = target is not None and target == actual_target
            return BranchPrediction(True, known, False, not known)
        if op_class == OP_RETURN:
            target = self.rases[thread].pop()
            known = target is not None and target == actual_target
            return BranchPrediction(True, known, False, not known)
        # Conditional branch.
        pred_taken = self.predictor.predict(thread, pc)
        dir_miss = pred_taken != actual_taken
        if pred_taken:
            target = self.btb.lookup(thread, pc)
            known = target is not None and target == actual_target
        else:
            known = True  # fall-through target always known
        tgt_miss = (not dir_miss) and actual_taken and not known
        return BranchPrediction(pred_taken, known, dir_miss, tgt_miss)

    def resolve(self, thread: int, pc: int, op_class: int, taken: bool, target: int) -> None:
        """Train predictor/BTB at branch resolution (execute stage)."""
        self.stats_resolved += 1
        if op_class == OP_BRANCH:
            self.predictor.update(thread, pc, taken)
        if taken:
            self.btb.update(thread, pc, target)

    def note_direction_mispredict(self) -> None:
        self.stats_dir_miss += 1

    def note_target_mispredict(self) -> None:
        self.stats_tgt_miss += 1

    def clear_thread(self, thread: int) -> None:
        """Reset per-thread speculation state (context switch)."""
        self.predictor.reset_thread(thread)
        self.rases[thread].clear()

    def reset_stats(self) -> None:
        """Zero counters, keep learned state (post-warm-up)."""
        self.predictor.reset_stats()
        self.btb.reset_stats()
        self.stats_resolved = 0
        self.stats_dir_miss = 0
        self.stats_tgt_miss = 0
