"""Return-address stack, 256 entries, replicated per thread (Table 1).

Classic circular overwrite-on-overflow behaviour: a push beyond capacity
overwrites the oldest entry, so deep recursion corrupts the bottom of the
stack (and produces the occasional return mispredict), matching hardware.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["ReturnAddressStack"]


class ReturnAddressStack:
    """One thread's return-address stack."""

    __slots__ = ("capacity", "_buf", "_top", "_count", "pushes", "pops", "underflows")

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._buf: List[int] = [0] * capacity
        self._top = 0  # index of next free slot
        self._count = 0
        self.pushes = 0
        self.pops = 0
        self.underflows = 0

    def push(self, return_pc: int) -> None:
        """Push a return address (call instruction fetched)."""
        self.pushes += 1
        self._buf[self._top] = return_pc
        self._top = (self._top + 1) % self.capacity
        if self._count < self.capacity:
            self._count += 1

    def pop(self) -> Optional[int]:
        """Pop the predicted return target; None when empty (underflow)."""
        self.pops += 1
        if self._count == 0:
            self.underflows += 1
            return None
        self._top = (self._top - 1) % self.capacity
        self._count -= 1
        return self._buf[self._top]

    def peek(self) -> Optional[int]:
        """Top of stack without popping (None when empty)."""
        if self._count == 0:
            return None
        return self._buf[(self._top - 1) % self.capacity]

    def clear(self) -> None:
        """Flush the stack (context switch)."""
        self._top = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def storage_bits(self) -> int:
        return self.capacity * 64
