"""Profile runs feeding the heuristic mapping policy.

Section 2.1 of the paper: "By means of profile information, the active
threads are arranged by the number of data cache misses and assigned to
the pipelines." This module is that profile pass — each benchmark's trace
is run alone through the L1D/L2 of the baseline memory hierarchy and its
data-cache misses counted. Results are memoized per (benchmark, length).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.isa.opcodes import OP_LOAD, OP_STORE
from repro.memory.hierarchy import MemoryHierarchy, MemoryParams
from repro.trace.stream import trace_for

__all__ = ["DCacheProfile", "profile_benchmark", "profile_workload", "clear_profile_cache"]


@dataclass(frozen=True)
class DCacheProfile:
    """Solo-run data-cache behaviour of one benchmark trace."""

    benchmark: str
    instructions: int
    accesses: int
    l1d_misses: int
    l2_misses: int

    @property
    def l1d_miss_rate(self) -> float:
        return self.l1d_misses / self.accesses if self.accesses else 0.0

    @property
    def misses_per_kilo_instruction(self) -> float:
        """L1D MPKI — the heuristic's sort key, normalized per instruction
        so different window lengths stay comparable."""
        return 1000.0 * self.l1d_misses / self.instructions if self.instructions else 0.0


_CACHE: Dict[Tuple[str, int], DCacheProfile] = {}


def profile_benchmark(
    name: str, length: int = 20_000, params: MemoryParams | None = None
) -> DCacheProfile:
    """Run one benchmark's trace alone through the data-side hierarchy.

    The trace is streamed through once as cache warm-up and counted on a
    second pass — the paper's profiles are steady-state rates over 300M
    instructions, so the cold-start transient of our short windows must
    not contaminate the sort key.
    """
    key = (name, length)
    if params is None and key in _CACHE:
        return _CACHE[key]
    trace = trace_for(name, length)
    mem = MemoryHierarchy(params, max_threads=1)
    # Warm-up pass.
    for e in trace.entries:
        op = e[0]
        if op == OP_LOAD or op == OP_STORE:
            mem.l1d.access(e[4], 0)
    l1_before = mem.l1d.stats.misses
    l2_before = mem.l2.stats.misses
    acc_before = mem.l1d.stats.accesses
    # Measured pass.
    for e in trace.entries:
        op = e[0]
        if op == OP_LOAD:
            mem.load(e[4], 0)
        elif op == OP_STORE:
            mem.store(e[4], 0)
    prof = DCacheProfile(
        benchmark=name,
        instructions=trace.length,
        accesses=mem.l1d.stats.accesses - acc_before,
        l1d_misses=mem.l1d.stats.misses - l1_before,
        l2_misses=mem.l2.stats.misses - l2_before,
    )
    if params is None:
        _CACHE[key] = prof
    return prof


def profile_workload(
    benchmarks: List[str], length: int = 20_000
) -> List[DCacheProfile]:
    """Profiles for every thread of a workload, in workload order."""
    return [profile_benchmark(b, length) for b in benchmarks]


def clear_profile_cache() -> None:
    """Drop memoized profiles (tests)."""
    _CACHE.clear()
