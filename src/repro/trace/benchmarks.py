"""Statistical profiles of the 12 SPECint2000 benchmarks.

Each profile captures the published qualitative character of the benchmark
(instruction mix, branch predictability, working-set size / memory
boundedness, code footprint, instruction-level parallelism) as generator
parameters. Absolute rates will not match hardware counters from 2005; the
*ordering* across benchmarks — which is all the paper's workload classes
and mapping heuristic consume — does:

* memory-bound (paper's MEM class): mcf >> twolf > vpr > perlbmk;
* ILP-bound (paper's ILP class): eon, gap, vortex, gzip, bzip2, crafty,
  gcc, parser — small working sets, predictable branches;
* large code footprints (gcc, vortex, crafty, perlbmk) stress the I-cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = [
    "BenchmarkProfile",
    "BENCHMARKS",
    "BENCHMARK_NAMES",
    "ILP_BENCHMARKS",
    "MEM_BENCHMARKS",
    "get_benchmark",
]


@dataclass(frozen=True)
class BenchmarkProfile:
    """Generator parameters for one synthetic benchmark.

    Fractions are of all dynamic instructions unless stated otherwise and
    the remainder after loads/stores/branches/mul/fp is simple integer ALU
    work.
    """

    name: str
    workload_class: str  #: "ILP" or "MEM" (paper's classification)

    # --- instruction mix -------------------------------------------------
    load_frac: float = 0.25
    store_frac: float = 0.10
    branch_frac: float = 0.13  #: conditional branches + calls + returns
    mul_frac: float = 0.02
    fp_frac: float = 0.00

    # --- dependency structure (ILP) --------------------------------------
    #: mean register dependency distance in instructions (geometric);
    #: larger means more independent work in flight (more ILP).
    dep_distance_mean: float = 5.0
    #: probability an instruction has a second source operand.
    two_src_frac: float = 0.45

    # --- static branch population ----------------------------------------
    #: fraction of static conditional branches that are loop back-edges
    #: (taken n-1 of n, highly predictable).
    loop_branch_frac: float = 0.40
    #: fraction that follow a history-correlated (perceptron-learnable)
    #: pattern; the rest are biased-random.
    pattern_branch_frac: float = 0.35
    #: taken-probability of the biased-random branches.
    random_branch_bias: float = 0.70
    #: mean iteration count of loop branches.
    loop_trip_mean: float = 12.0
    #: fraction of control transfers that are calls (matched by returns).
    call_frac: float = 0.08

    # --- memory behaviour --------------------------------------------------
    #: pages touched by the hot data set (reuse-heavy region).
    hot_pages: int = 6
    #: pages of the full working set (cold/streaming region).
    cold_pages: int = 24
    #: probability a data access goes to the hot region.
    hot_frac: float = 0.85
    #: probability a data access is part of a sequential/stride stream.
    stream_frac: float = 0.60
    #: probability a load's address depends on the previous load
    #: (pointer chasing — serializes misses, kills memory-level parallelism).
    chain_frac: float = 0.05

    # --- code footprint ------------------------------------------------------
    num_blocks: int = 1200  #: static basic blocks

    def __post_init__(self) -> None:
        total = self.load_frac + self.store_frac + self.branch_frac + self.mul_frac + self.fp_frac
        if total >= 1.0:
            raise ValueError(f"{self.name}: instruction-mix fractions sum to {total} >= 1")
        if self.workload_class not in ("ILP", "MEM"):
            raise ValueError(f"{self.name}: workload_class must be ILP or MEM")

    @property
    def int_frac(self) -> float:
        """Remaining fraction: simple integer ALU instructions."""
        return 1.0 - (
            self.load_frac + self.store_frac + self.branch_frac + self.mul_frac + self.fp_frac
        )

    @property
    def working_set_bytes(self) -> int:
        """Total data footprint (hot + cold regions), 8 KB pages."""
        return (self.hot_pages + self.cold_pages) * 8192

    @property
    def mean_block_size(self) -> float:
        """Mean basic-block length implied by the branch fraction (every
        block ends in exactly one control instruction)."""
        return 1.0 / self.branch_frac

    @property
    def code_bytes(self) -> int:
        """Approximate static code footprint."""
        return int(self.num_blocks * self.mean_block_size * 4)


# ---------------------------------------------------------------------------
# The 12 SPECint2000 profiles. Page counts assume 8 KB pages; L1D covers
# 8 pages (64 KB), the D-TLB covers 128 pages (1 MB), L2 covers 64 pages.
# ---------------------------------------------------------------------------

BENCHMARKS: Dict[str, BenchmarkProfile] = {
    p.name: p
    for p in (
        # ---------------- ILP class ----------------
        BenchmarkProfile(
            name="gzip",
            workload_class="ILP",
            load_frac=0.20,
            store_frac=0.09,
            branch_frac=0.12,
            mul_frac=0.01,
            dep_distance_mean=5.5,
            loop_branch_frac=0.50,
            pattern_branch_frac=0.35,
            random_branch_bias=0.85,
            hot_pages=5,
            cold_pages=8,
            hot_frac=0.90,
            stream_frac=0.75,
            num_blocks=700,
        ),
        BenchmarkProfile(
            name="gcc",
            workload_class="ILP",
            load_frac=0.25,
            store_frac=0.13,
            branch_frac=0.16,
            mul_frac=0.01,
            dep_distance_mean=4.5,
            loop_branch_frac=0.35,
            pattern_branch_frac=0.45,
            random_branch_bias=0.82,
            call_frac=0.12,
            hot_pages=6,
            cold_pages=8,
            hot_frac=0.90,
            stream_frac=0.60,
            num_blocks=3600,  # famously large code footprint
        ),
        BenchmarkProfile(
            name="crafty",
            workload_class="ILP",
            load_frac=0.27,
            store_frac=0.07,
            branch_frac=0.11,
            mul_frac=0.02,
            dep_distance_mean=5.2,
            loop_branch_frac=0.35,
            pattern_branch_frac=0.50,
            random_branch_bias=0.85,
            hot_pages=6,
            cold_pages=10,
            hot_frac=0.88,
            stream_frac=0.50,
            num_blocks=2200,
        ),
        BenchmarkProfile(
            name="eon",
            workload_class="ILP",
            load_frac=0.25,
            store_frac=0.14,
            branch_frac=0.09,
            mul_frac=0.02,
            fp_frac=0.08,  # the one SPECint with real FP content
            dep_distance_mean=6.0,
            loop_branch_frac=0.55,
            pattern_branch_frac=0.38,
            random_branch_bias=0.90,
            call_frac=0.14,
            hot_pages=4,
            cold_pages=4,
            hot_frac=0.95,
            stream_frac=0.70,
            num_blocks=900,
        ),
        BenchmarkProfile(
            name="gap",
            workload_class="ILP",
            load_frac=0.24,
            store_frac=0.12,
            branch_frac=0.11,
            mul_frac=0.03,
            dep_distance_mean=5.0,
            loop_branch_frac=0.50,
            pattern_branch_frac=0.40,
            random_branch_bias=0.85,
            hot_pages=6,
            cold_pages=10,
            hot_frac=0.88,
            stream_frac=0.65,
            num_blocks=1400,
        ),
        BenchmarkProfile(
            name="vortex",
            workload_class="ILP",
            load_frac=0.28,
            store_frac=0.16,
            branch_frac=0.14,
            mul_frac=0.01,
            dep_distance_mean=5.5,
            loop_branch_frac=0.40,
            pattern_branch_frac=0.50,
            random_branch_bias=0.88,
            call_frac=0.15,
            hot_pages=7,
            cold_pages=14,
            hot_frac=0.85,
            stream_frac=0.55,
            num_blocks=3000,
        ),
        BenchmarkProfile(
            name="bzip2",
            workload_class="ILP",
            load_frac=0.26,
            store_frac=0.11,
            branch_frac=0.11,
            mul_frac=0.02,
            dep_distance_mean=5.0,
            loop_branch_frac=0.45,
            pattern_branch_frac=0.40,
            random_branch_bias=0.92,
            hot_pages=6,
            cold_pages=12,
            hot_frac=0.86,
            stream_frac=0.70,
            num_blocks=650,
        ),
        BenchmarkProfile(
            name="parser",
            workload_class="ILP",
            load_frac=0.24,
            store_frac=0.09,
            branch_frac=0.15,
            mul_frac=0.01,
            dep_distance_mean=4.2,
            loop_branch_frac=0.35,
            pattern_branch_frac=0.45,
            random_branch_bias=0.90,
            hot_pages=7,
            cold_pages=14,
            hot_frac=0.85,
            stream_frac=0.45,
            chain_frac=0.08,
            num_blocks=1600,
        ),
        # ---------------- MEM class ----------------
        BenchmarkProfile(
            name="mcf",
            workload_class="MEM",
            load_frac=0.31,
            store_frac=0.09,
            branch_frac=0.16,
            mul_frac=0.01,
            dep_distance_mean=3.6,
            loop_branch_frac=0.30,
            pattern_branch_frac=0.35,
            random_branch_bias=0.78,
            hot_pages=48,
            cold_pages=768,  # 6 MB: far beyond L2, pounds the D-TLB too
            hot_frac=0.52,
            stream_frac=0.15,
            chain_frac=0.30,  # pointer chasing: little memory-level parallelism
            num_blocks=500,
        ),
        BenchmarkProfile(
            name="twolf",
            workload_class="MEM",
            load_frac=0.28,
            store_frac=0.07,
            branch_frac=0.13,
            mul_frac=0.02,
            dep_distance_mean=3.6,
            loop_branch_frac=0.30,
            pattern_branch_frac=0.35,
            random_branch_bias=0.80,
            hot_pages=24,
            cold_pages=96,  # ~1 MB: misses L1 heavily, L2 partially
            hot_frac=0.62,
            stream_frac=0.25,
            chain_frac=0.22,
            num_blocks=1100,
        ),
        BenchmarkProfile(
            name="vpr",
            workload_class="MEM",
            load_frac=0.29,
            store_frac=0.10,
            branch_frac=0.12,
            mul_frac=0.02,
            fp_frac=0.03,
            dep_distance_mean=3.8,
            loop_branch_frac=0.30,
            pattern_branch_frac=0.35,
            random_branch_bias=0.82,
            hot_pages=20,
            cold_pages=72,  # ~0.7 MB
            hot_frac=0.66,
            stream_frac=0.30,
            chain_frac=0.18,
            num_blocks=1000,
        ),
        BenchmarkProfile(
            name="perlbmk",
            workload_class="MEM",
            load_frac=0.27,
            store_frac=0.15,
            branch_frac=0.15,
            mul_frac=0.01,
            dep_distance_mean=4.0,
            loop_branch_frac=0.30,
            pattern_branch_frac=0.45,
            random_branch_bias=0.82,
            call_frac=0.13,
            hot_pages=16,
            cold_pages=40,  # ~0.4 MB: mildest of the MEM set
            hot_frac=0.72,
            stream_frac=0.35,
            chain_frac=0.12,
            num_blocks=2600,
        ),
    )
}

BENCHMARK_NAMES = tuple(BENCHMARKS)
ILP_BENCHMARKS = tuple(n for n, p in BENCHMARKS.items() if p.workload_class == "ILP")
MEM_BENCHMARKS = tuple(n for n, p in BENCHMARKS.items() if p.workload_class == "MEM")


def get_benchmark(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by SPEC name (KeyError lists options)."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(BENCHMARK_NAMES)}"
        ) from None
