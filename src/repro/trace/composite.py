"""Composite traces: programs whose behaviour changes mid-run.

The paper's conclusion motivates *dynamic* mapping with "the dynamic
changes in program behaviour during execution". The stationary synthetic
benchmarks cannot exercise that, so a composite trace splices two
benchmark streams: the thread behaves like benchmark A for the first
``switch_at`` instructions of every window, then like benchmark B. A
profile-based static mapping (taken on the A phase) becomes stale the
moment the B phase starts — exactly the scenario dynamic remapping wins.
"""

from __future__ import annotations

from typing import List

from repro.isa.instruction import TraceEntry
from repro.trace.benchmarks import get_benchmark
from repro.trace.stream import Trace
from repro.trace.synthetic import StaticProgram, TraceGenerator

__all__ = ["composite_trace"]


def composite_trace(
    name_a: str,
    name_b: str,
    length: int,
    switch_at: int | None = None,
    seed: int = 0,
) -> Trace:
    """A trace that behaves like ``name_a`` then like ``name_b``.

    Parameters
    ----------
    name_a, name_b:
        Benchmark names for the two phases.
    length:
        Total window length (instructions).
    switch_at:
        Instruction index of the phase change (default: midpoint).

    The entries of phase B keep their own code addresses (a different
    program region), so the phase change also shows up in the I-stream.
    """
    if switch_at is None:
        switch_at = length // 2
    if not 0 < switch_at < length:
        raise ValueError("switch_at must fall inside the window")
    prof_a = get_benchmark(name_a)
    prof_b = get_benchmark(name_b)
    gen_a = TraceGenerator(StaticProgram(prof_a, seed=0), seed=seed)
    gen_b = TraceGenerator(StaticProgram(prof_b, seed=1), seed=seed + 1)
    entries: List[TraceEntry] = gen_a.generate(switch_at)
    entries += gen_b.generate(length - switch_at)
    junk = gen_a.generate_junk(1024) + gen_b.generate_junk(1024)
    # The composite reports phase A's profile (what an offline profiling
    # pass over the *start* of execution would see — the stale input a
    # static mapping policy consumes).
    return Trace(f"{name_a}->{name_b}", prof_a, entries, junk)
