"""Synthetic SPECint2000 trace substrate.

The paper drives its simulator with Alpha traces of the 12 SPECint2000
benchmarks (300M-instruction SimPoint segments, ref inputs). Those traces
are not redistributable, so this package builds the closest synthetic
equivalent (see DESIGN.md §5): each benchmark gets a *statistical profile*
(instruction mix, dependency-distance distribution, static branch
population, working-set/locality model, code footprint) and a seeded
generator that walks a synthetic control-flow graph emitting a dynamic
instruction trace. The profiles preserve the property the paper's
evaluation actually depends on: the relative ordering of benchmarks by
memory-boundedness and ILP (the basis of the ILP/MEM/MIX workload classes
and of the heuristic mapping policy).
"""

from repro.trace.benchmarks import (
    BenchmarkProfile,
    BENCHMARKS,
    BENCHMARK_NAMES,
    ILP_BENCHMARKS,
    MEM_BENCHMARKS,
    get_benchmark,
)
from repro.trace.synthetic import StaticProgram, TraceGenerator, generate_trace
from repro.trace.packed import (
    PACK_FORMAT_VERSION,
    PackedTrace,
    PackedTraceStore,
    WarmSequences,
)
from repro.trace.stream import (
    FETCH_BLOCK,
    FETCH_MASK,
    FETCH_SHIFT,
    Trace,
    trace_for,
    clear_trace_cache,
    set_trace_store,
    active_trace_store,
)
from repro.trace.profiling import DCacheProfile, profile_benchmark, profile_workload
from repro.trace.composite import composite_trace

__all__ = [
    "BenchmarkProfile",
    "BENCHMARKS",
    "BENCHMARK_NAMES",
    "ILP_BENCHMARKS",
    "MEM_BENCHMARKS",
    "get_benchmark",
    "StaticProgram",
    "TraceGenerator",
    "generate_trace",
    "PACK_FORMAT_VERSION",
    "PackedTrace",
    "PackedTraceStore",
    "WarmSequences",
    "FETCH_BLOCK",
    "FETCH_MASK",
    "FETCH_SHIFT",
    "Trace",
    "trace_for",
    "clear_trace_cache",
    "set_trace_store",
    "active_trace_store",
    "DCacheProfile",
    "composite_trace",
    "profile_benchmark",
    "profile_workload",
]
