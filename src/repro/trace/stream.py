"""Trace objects consumed by the simulator, with a process-wide cache.

A :class:`Trace` bundles the correct-path entries, a wrong-path junk pool
and the benchmark identity. Entry access wraps modulo the generated length
— the synthetic streams are stationary, so wrapping mimics the paper's
practice of letting slower threads keep executing until the first thread
retires its full instruction budget.

``trace_for`` memoizes generated traces so that every microarchitecture /
mapping evaluated on a workload sees *exactly* the same instruction
stream (paired comparison, and a large speedup for the oracle mapping
search).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.isa.instruction import TraceEntry
from repro.trace.benchmarks import BenchmarkProfile, get_benchmark
from repro.trace.synthetic import StaticProgram, TraceGenerator

__all__ = ["Trace", "trace_for", "clear_trace_cache"]


class Trace:
    """An immutable dynamic instruction stream for one thread."""

    __slots__ = ("name", "profile", "entries", "junk", "length")

    def __init__(
        self,
        name: str,
        profile: BenchmarkProfile,
        entries: List[TraceEntry],
        junk: List[TraceEntry],
    ) -> None:
        if not entries:
            raise ValueError("trace must contain at least one instruction")
        if not junk:
            raise ValueError("trace needs a wrong-path junk pool")
        self.name = name
        self.profile = profile
        self.entries = entries
        self.junk = junk
        self.length = len(entries)

    def entry(self, index: int) -> TraceEntry:
        """Correct-path entry ``index`` (wraps modulo the trace length)."""
        return self.entries[index % self.length]

    def next_pc(self, index: int) -> int:
        """PC of the instruction after ``index`` — i.e. the actual target
        of the instruction at ``index`` along the executed path."""
        return self.entries[(index + 1) % self.length][6]

    def junk_entry(self, index: int) -> TraceEntry:
        """Wrong-path pool entry (wraps)."""
        return self.junk[index % len(self.junk)]

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Trace {self.name}: {self.length} instructions>"


_CACHE: Dict[Tuple[str, int, int], Trace] = {}
_JUNK_LEN = 2048


def trace_for(name: str, length: int, instance: int = 0) -> Trace:
    """Return (building if needed) the trace for benchmark ``name``.

    ``instance`` differentiates multiple occurrences of the same benchmark
    so, e.g., the two copies of twolf across workloads 2W4 and 2W6 are the
    same stream (paper traces are fixed per benchmark), while a benchmark
    running against itself in a hypothetical workload could use distinct
    instances.
    """
    key = (name, length, instance)
    trace = _CACHE.get(key)
    if trace is None:
        profile = get_benchmark(name)
        program = StaticProgram(profile, seed=0)
        gen = TraceGenerator(program, seed=instance)
        entries = gen.generate(length)
        junk = gen.generate_junk(_JUNK_LEN)
        trace = Trace(name, profile, entries, junk)
        _CACHE[key] = trace
    return trace


def clear_trace_cache() -> None:
    """Drop all memoized traces (tests / memory pressure)."""
    _CACHE.clear()
