"""Trace objects consumed by the simulator, with a process-wide cache.

A :class:`Trace` bundles the correct-path entries, a wrong-path junk pool
and the benchmark identity. Entry access wraps modulo the generated length
— the synthetic streams are stationary, so wrapping mimics the paper's
practice of letting slower threads keep executing until the first thread
retires its full instruction budget.

``trace_for`` memoizes generated traces so that every microarchitecture /
mapping evaluated on a workload sees *exactly* the same instruction
stream (paired comparison, and a large speedup for the oracle mapping
search).

A process may additionally activate a :class:`~repro.trace.packed.
PackedTraceStore` via :func:`set_trace_store`: ``trace_for`` then serves
cache misses from the store's mmap-backed packed buffers before falling
back to :class:`~repro.trace.synthetic.TraceGenerator` — this is how
BatchRunner workers skip trace generation entirely. Store-served traces
are *packed-backed*: ``Trace.entry`` reads straight out of the shared
buffers (zero copy).

The simulator's fetch engine reads traces through :meth:`Trace.
fetch_view`: per-trace block tables whose :data:`FETCH_BLOCK`-entry
blocks decode lazily from the packed int64 columns (or slice out of the
explicit tuple lists) the first time fetch touches them. A short
screening run on a store-served trace therefore decodes only the prefix
it actually fetches — the full tuple lists never materialize — while a
full-length run amortizes exactly one decode per block and keeps
list-indexed access speed in the hot loop. Decoded blocks are cached on
the Trace, so the oracle sweeps that re-simulate one workload dozens of
times decode each block once per process.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import TraceEntry
from repro.trace.benchmarks import BenchmarkProfile, get_benchmark
from repro.trace.packed import PackedTrace, PackedTraceStore, WarmSequences, warm_sequences
from repro.trace.synthetic import StaticProgram, TraceGenerator

try:  # optional numpy block-decode path; see set_numpy_decode
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

__all__ = [
    "FETCH_BLOCK",
    "FETCH_MASK",
    "FETCH_SHIFT",
    "Trace",
    "trace_for",
    "clear_trace_cache",
    "set_trace_store",
    "active_trace_store",
    "set_numpy_decode",
    "numpy_decode_active",
]

#: Fetch-view block geometry: the fetch engine addresses trace entries as
#: ``blocks[index >> FETCH_SHIFT][index & FETCH_MASK]``. 1024 entries per
#: block keeps the decode batch big enough for C-speed ``zip`` transposes
#: while a 150-commit screening window still touches only one block.
FETCH_SHIFT = 10
FETCH_BLOCK = 1 << FETCH_SHIFT
FETCH_MASK = FETCH_BLOCK - 1

#: Column-block decode strategy. ``REPRO_NUMPY_DECODE=1`` selects the
#: numpy transpose (``np.frombuffer`` column views stacked and
#: ``tolist``-ed, rows re-tupled); anything else — including numpy being
#: absent, the automatic fallback — selects the pure-python ``zip`` of
#: column slices. The zip transpose measured *faster* on CPython
#: 3.11/3.12 (~150 µs vs ~250 µs per 1024-entry block: numpy's
#: ``tolist`` re-boxes every int64, which the tuple build then pays
#: again), so numpy decode is an opt-in for interpreters where the
#: balance tips the other way, not the default. Both paths are pinned
#: bit-identical by tests/core/test_fetch_column_equivalence.py.
_NUMPY_DECODE = _np is not None and os.environ.get("REPRO_NUMPY_DECODE") == "1"


def set_numpy_decode(enabled: bool) -> bool:
    """Select (True) or deselect the numpy block-decode path; returns the
    resulting state (False when numpy is unavailable — the pure-python
    path is the permanent fallback).

    Prefer the typed switchboard —
    ``repro.core.engine.options.set_engine_options(EngineOptions(
    numpy_decode=True))`` — which calls this; the env var and this
    setter remain as the low-level fallback spelling.
    """
    global _NUMPY_DECODE
    _NUMPY_DECODE = bool(enabled) and _np is not None
    return _NUMPY_DECODE


def numpy_decode_active() -> bool:
    return _NUMPY_DECODE


def _transpose_block(c, lo: int, hi: int) -> List[TraceEntry]:
    """Decode one block of the 7 int64 column slices into entry tuples.

    The numpy path builds the block with ``np.frombuffer`` column views
    (zero-copy over ``array('q')`` buffers and mmap-backed memoryviews
    alike), one C-level stack + ``tolist``, and re-tuples the rows so the
    result is indistinguishable from the zip transpose — exact python
    ints, exact tuples.
    """
    if _NUMPY_DECODE:
        frombuffer = _np.frombuffer
        block = _np.stack(
            [frombuffer(col, dtype=_np.int64)[lo:hi] for col in c], axis=1
        )
        return list(map(tuple, block.tolist()))
    return list(zip(c[0][lo:hi], c[1][lo:hi], c[2][lo:hi],
                    c[3][lo:hi], c[4][lo:hi], c[5][lo:hi],
                    c[6][lo:hi]))


class Trace:
    """An immutable dynamic instruction stream for one thread.

    Backed either by explicit tuple lists (``entries``/``junk``) or by a
    :class:`~repro.trace.packed.PackedTrace` (``packed=``), in which case
    the tuple lists materialize lazily and :meth:`entry` serves reads
    directly from the packed columns until then.
    """

    __slots__ = ("name", "profile", "length", "junk_length", "packed", "key",
                 "_entries", "_junk", "_warm_seqs", "_entry_blocks",
                 "_junk_blocks")

    def __init__(
        self,
        name: str,
        profile: BenchmarkProfile,
        entries: Optional[List[TraceEntry]] = None,
        junk: Optional[List[TraceEntry]] = None,
        *,
        packed: Optional[PackedTrace] = None,
        key: Optional[Tuple[str, int, int]] = None,
    ) -> None:
        if packed is None:
            if not entries:
                raise ValueError("trace must contain at least one instruction")
            if not junk:
                raise ValueError("trace needs a wrong-path junk pool")
            self.length = len(entries)
            self.junk_length = len(junk)
        else:
            # PackedTrace's constructor enforces non-empty entries/junk.
            self.length = packed.length
            self.junk_length = packed.junk_length
        self.name = name
        self.profile = profile
        self.packed = packed
        self.key = key  # (name, length, instance) when built by trace_for
        self._entries = entries
        self._junk = junk
        self._warm_seqs: Optional[WarmSequences] = None
        self._entry_blocks: Optional[List[Optional[List[TraceEntry]]]] = None
        self._junk_blocks: Optional[List[Optional[List[TraceEntry]]]] = None

    # -- lazy materialization ---------------------------------------------

    @property
    def entries(self) -> List[TraceEntry]:
        """Correct-path tuple list (materialized from packed on first use)."""
        e = self._entries
        if e is None:
            e = self.packed.materialize_entries()
            self._entries = e
        return e

    @property
    def junk(self) -> List[TraceEntry]:
        """Wrong-path pool tuple list (materialized on first use)."""
        j = self._junk
        if j is None:
            j = self.packed.materialize_junk()
            self._junk = j
        return j

    # -- element access ----------------------------------------------------

    def entry(self, index: int) -> TraceEntry:
        """Correct-path entry ``index`` (wraps modulo the trace length)."""
        e = self._entries
        if e is not None:
            return e[index % self.length]
        return self.packed.entry(index % self.length)

    def next_pc(self, index: int) -> int:
        """PC of the instruction after ``index`` — i.e. the actual target
        of the instruction at ``index`` along the executed path."""
        i = (index + 1) % self.length
        e = self._entries
        if e is not None:
            return e[i][6]
        return self.packed.columns[6][i]

    def junk_entry(self, index: int) -> TraceEntry:
        """Wrong-path pool entry (wraps)."""
        j = self._junk
        if j is not None:
            return j[index % self.junk_length]
        return self.packed.junk_entry(index % self.junk_length)

    # -- column-backed fetch views -----------------------------------------

    def fetch_view(self) -> Tuple[list, list]:
        """``(entry_blocks, junk_blocks)`` block tables for the fetch
        engine: entry ``i`` lives at ``entry_blocks[i >> FETCH_SHIFT]
        [i & FETCH_MASK]``. Slots start ``None`` and fill via
        :meth:`entry_block` / :meth:`junk_block` the first time fetch
        touches them — no full-trace tuple-list materialization.
        """
        blocks = self._entry_blocks
        if blocks is None:
            blocks = [None] * ((self.length + FETCH_MASK) >> FETCH_SHIFT)
            self._entry_blocks = blocks
            self._junk_blocks = [None] * (
                (self.junk_length + FETCH_MASK) >> FETCH_SHIFT
            )
        return blocks, self._junk_blocks

    def entry_block(self, block: int) -> List[TraceEntry]:
        """Decode (and cache) correct-path block ``block``: an exact
        tuple-for-tuple window of the stream, built by one C-speed
        transpose of the packed int64 column slices (``zip``, or the
        opt-in numpy path — see :func:`set_numpy_decode`; or sliced
        straight out of the explicit tuple list when one exists)."""
        if self._entry_blocks is None:
            self.fetch_view()
        lo = block << FETCH_SHIFT
        hi = lo + FETCH_BLOCK
        e = self._entries
        if e is not None:
            blk = e[lo:hi]
        else:
            blk = _transpose_block(self.packed.columns, lo, hi)
        self._entry_blocks[block] = blk
        return blk

    def junk_block(self, block: int) -> List[TraceEntry]:
        """Decode (and cache) wrong-path pool block ``block``."""
        if self._junk_blocks is None:
            self.fetch_view()
        lo = block << FETCH_SHIFT
        hi = lo + FETCH_BLOCK
        j = self._junk
        if j is not None:
            blk = j[lo:hi]
        else:
            blk = _transpose_block(self.packed.junk_columns, lo, hi)
        self._junk_blocks[block] = blk
        return blk

    # -- derived views -----------------------------------------------------

    def warm_sequences(self) -> WarmSequences:
        """Per-structure warm-up access sequences (computed once)."""
        seqs = self._warm_seqs
        if seqs is None:
            packed = self.packed
            if packed is None:
                packed = PackedTrace.from_entries(self.name, self._entries,
                                                  self._junk)
                self.packed = packed
            seqs = warm_sequences(packed)
            self._warm_seqs = seqs
        return seqs

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Trace {self.name}: {self.length} instructions>"


_CACHE: Dict[Tuple[str, int, int], Trace] = {}
_JUNK_LEN = 2048

#: Process-wide packed store consulted by ``trace_for`` (None = disabled).
_STORE: Optional[PackedTraceStore] = None


def set_trace_store(
    directory: Optional[str | os.PathLike],
    save_on_generate: bool = True,
) -> Optional[PackedTraceStore]:
    """Activate (or with ``None`` deactivate) the process trace store.

    Returns the active store. BatchRunner workers activate the parent's
    store with ``save_on_generate=False`` — the parent pre-packed every
    trace the batch needs, so workers only ever read.
    """
    global _STORE
    if directory is None:
        _STORE = None
    else:
        _STORE = PackedTraceStore(directory, save_on_generate=save_on_generate)
    return _STORE


def active_trace_store() -> Optional[PackedTraceStore]:
    return _STORE


def trace_for(name: str, length: int, instance: int = 0) -> Trace:
    """Return (building if needed) the trace for benchmark ``name``.

    ``instance`` differentiates multiple occurrences of the same benchmark
    so, e.g., the two copies of twolf across workloads 2W4 and 2W6 are the
    same stream (paper traces are fixed per benchmark), while a benchmark
    running against itself in a hypothetical workload could use distinct
    instances.

    Lookup order: process memo, then the active packed store (zero-copy
    mmap load), then generation — which optionally persists the packed
    form back to the store for other processes.
    """
    key = (name, length, instance)
    trace = _CACHE.get(key)
    if trace is None:
        profile = get_benchmark(name)
        store = _STORE
        packed = (
            store.load(name, length, instance, _JUNK_LEN)
            if store is not None
            else None
        )
        if packed is not None:
            trace = Trace(name, profile, packed=packed, key=key)
        else:
            program = StaticProgram(profile, seed=0)
            gen = TraceGenerator(program, seed=instance)
            entries = gen.generate(length)
            junk = gen.generate_junk(_JUNK_LEN)
            trace = Trace(name, profile, entries, junk, key=key)
            if store is not None and store.save_on_generate:
                store.save(PackedTrace.from_trace(trace), name, length, instance)
        _CACHE[key] = trace
    return trace


def clear_trace_cache() -> None:
    """Drop all memoized traces (tests / memory pressure)."""
    _CACHE.clear()
