"""Packed trace columns and the content-addressed on-disk trace store.

A generated :class:`~repro.trace.stream.Trace` is a list of 7-int tuples
— compact for the simulator's fetch loop but expensive to *regenerate*:
the synthetic walk costs ~10 ms per 6k-instruction window, and every
BatchRunner worker used to pay it again for every trace it touched.

:class:`PackedTrace` stores the same stream as seven flat little arrays
(one int64 column per tuple field, entries and wrong-path junk pool
alike). Columns round-trip exactly (``list(zip(*columns))`` rebuilds the
original tuples) and serialize as raw buffers:

* :class:`PackedTraceStore` is a content-addressed directory of packed
  traces, keyed by the SHA-256 of the trace identity (benchmark, window
  length, instance) plus :data:`PACK_FORMAT_VERSION`. Writes are atomic
  so concurrent workers can share one store.
* :meth:`PackedTraceStore.load` maps the file with ``mmap`` and exposes
  the columns as zero-copy ``memoryview`` casts — a cold worker gets a
  usable trace for the cost of an ``open``, and the OS page cache shares
  the bytes between every worker on the machine.

The columns double as the input to the vectorized warm-up:
:func:`warm_sequences` precomputes, per structure, exactly the access
sequence the old per-entry warm loop would have issued (d-side addresses,
conditional-branch outcomes, taken-control targets, fetch PCs), so
:meth:`~repro.core.processor.Processor.warm` can stream each structure in
one batched pass — bit-identical state, a fraction of the dispatch cost.
"""

from __future__ import annotations

import json
import mmap
import os
import sys
from array import array
from hashlib import sha256
from pathlib import Path
from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.ioutil import atomic_write_bytes
from repro.isa.instruction import TraceEntry
from repro.isa.opcodes import OP_BRANCH, OP_CALL, OP_LOAD, OP_RETURN, OP_STORE

try:  # numpy accelerates packing/warm-sequence extraction; optional.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

__all__ = [
    "PACK_FORMAT_VERSION",
    "PackedTrace",
    "PackedTraceStore",
    "WarmSequences",
    "warm_sequences",
]

#: Bump when the on-disk packed layout (or the packed semantics) change:
#: store keys embed it, so stale files become unreachable rather than
#: misread, and the simulation result cache salts its keys with it.
PACK_FORMAT_VERSION = 1

NUM_COLUMNS = 7  # (op, dest, src1, src2, addr, taken, pc)

_MAGIC = b"RPKTRC01"
_ITEM = 8  # bytes per column element (int64)


def _columns_from_entries(entries: Sequence[TraceEntry]) -> Tuple[array, ...]:
    """Transpose tuples into int64 columns (exact, order-preserving)."""
    return tuple(array("q", col) for col in zip(*entries))


class PackedTrace:
    """One trace as flat int64 columns (entries + wrong-path junk pool).

    ``columns``/``junk_columns`` are any indexable int64 sequences —
    ``array('q')`` when packed in-process, zero-copy ``memoryview`` casts
    over an ``mmap`` when loaded from a :class:`PackedTraceStore`.
    """

    __slots__ = ("name", "length", "junk_length", "columns", "junk_columns",
                 "_buffer")

    def __init__(
        self,
        name: str,
        columns: Tuple[Sequence[int], ...],
        junk_columns: Tuple[Sequence[int], ...],
        buffer=None,
    ) -> None:
        if len(columns) != NUM_COLUMNS or len(junk_columns) != NUM_COLUMNS:
            raise ValueError(f"packed traces carry {NUM_COLUMNS} columns")
        self.name = name
        self.length = len(columns[0])
        self.junk_length = len(junk_columns[0])
        if not self.length:
            raise ValueError("packed trace must contain at least one instruction")
        if not self.junk_length:
            raise ValueError("packed trace needs a wrong-path junk pool")
        self.columns = columns
        self.junk_columns = junk_columns
        self._buffer = buffer  # keeps an mmap (if any) alive

    # -- construction ------------------------------------------------------

    @classmethod
    def from_entries(
        cls,
        name: str,
        entries: Sequence[TraceEntry],
        junk: Sequence[TraceEntry],
    ) -> "PackedTrace":
        return cls(name, _columns_from_entries(entries), _columns_from_entries(junk))

    @classmethod
    def from_trace(cls, trace) -> "PackedTrace":
        """Pack a :class:`~repro.trace.stream.Trace` (or reuse its backing)."""
        packed = getattr(trace, "packed", None)
        if packed is not None:
            return packed
        return cls.from_entries(trace.name, trace.entries, trace.junk)

    # -- element access ----------------------------------------------------

    def entry(self, index: int) -> TraceEntry:
        """Entry ``index`` as the simulator's 7-tuple (built on demand)."""
        c = self.columns
        return (c[0][index], c[1][index], c[2][index], c[3][index],
                c[4][index], c[5][index], c[6][index])

    def junk_entry(self, index: int) -> TraceEntry:
        c = self.junk_columns
        return (c[0][index], c[1][index], c[2][index], c[3][index],
                c[4][index], c[5][index], c[6][index])

    def materialize_entries(self) -> List[TraceEntry]:
        """The full correct-path tuple list (exact round trip)."""
        return list(zip(*self.columns))

    def materialize_junk(self) -> List[TraceEntry]:
        return list(zip(*self.junk_columns))

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize: magic, padded JSON header, then raw column buffers."""
        header = json.dumps(
            {
                "version": PACK_FORMAT_VERSION,
                "name": self.name,
                "length": self.length,
                "junk_length": self.junk_length,
                "byteorder": sys.byteorder,
            }
        ).encode()
        pad = (-(len(_MAGIC) + 4 + len(header))) % _ITEM
        header += b" " * pad
        parts = [_MAGIC, len(header).to_bytes(4, "little"), header]
        for col in self.columns:
            parts.append(_as_bytes(col))
        for col in self.junk_columns:
            parts.append(_as_bytes(col))
        return b"".join(parts)

    @classmethod
    def from_buffer(cls, buf, buffer_owner=None) -> "PackedTrace":
        """Rebuild from :meth:`to_bytes` output — zero-copy when ``buf``
        supports the buffer protocol (e.g. an ``mmap``)."""
        view = memoryview(buf)
        if bytes(view[: len(_MAGIC)]) != _MAGIC:
            raise ValueError("not a packed trace (bad magic)")
        hlen = int.from_bytes(view[len(_MAGIC): len(_MAGIC) + 4], "little")
        hstart = len(_MAGIC) + 4
        meta = json.loads(bytes(view[hstart: hstart + hlen]))
        if meta.get("version") != PACK_FORMAT_VERSION:
            raise ValueError(f"packed trace format {meta.get('version')!r} "
                             f"!= {PACK_FORMAT_VERSION}")
        if meta.get("byteorder") != sys.byteorder:
            raise ValueError("packed trace byte order mismatch")
        length = meta["length"]
        junk_length = meta["junk_length"]
        off = hstart + hlen
        expected = off + (length + junk_length) * NUM_COLUMNS * _ITEM
        if len(view) < expected:
            raise ValueError("packed trace truncated")
        cols = []
        for _ in range(NUM_COLUMNS):
            cols.append(view[off: off + length * _ITEM].cast("q"))
            off += length * _ITEM
        junk_cols = []
        for _ in range(NUM_COLUMNS):
            junk_cols.append(view[off: off + junk_length * _ITEM].cast("q"))
            off += junk_length * _ITEM
        return cls(meta["name"], tuple(cols), tuple(junk_cols),
                   buffer=buffer_owner if buffer_owner is not None else buf)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PackedTrace {self.name}: {self.length}+{self.junk_length}>"


def _as_bytes(col) -> bytes:
    if isinstance(col, array):
        return col.tobytes()
    return bytes(memoryview(col).cast("B"))


# ---------------------------------------------------------------- warm seqs


class WarmSequences(NamedTuple):
    """Per-structure access sequences for one trace's warm-up pass.

    Each field is exactly the argument stream the structure would have
    seen from the seed per-entry warm loop, in the same order — batching
    them preserves bit-identical post-warm state because the modeled
    structures are independent of one another.
    """

    mem_addrs: list  #: load/store data addresses, program order
    branch_pcs: list  #: conditional-branch PCs, program order
    branch_taken: list  #: their outcomes (bools)
    btb_pcs: list  #: taken control-transfer PCs (branch/call/return)
    btb_targets: list  #: matching targets (PC of the next entry)
    fetch_pcs: list  #: every correct-path PC (I-side warm stream)
    junk_pcs: list  #: wrong-path pool PCs (I-side, resident in L1I/L2)


def warm_sequences(packed: PackedTrace) -> WarmSequences:
    """Extract :class:`WarmSequences` from packed columns (numpy-backed
    when available; the pure-Python fallback is exact but slower)."""
    if _np is not None:
        return _warm_sequences_numpy(packed)
    return _warm_sequences_python(packed)


def _warm_sequences_numpy(packed: PackedTrace) -> WarmSequences:
    np = _np
    op = np.frombuffer(packed.columns[0], dtype=np.int64)
    addr = np.frombuffer(packed.columns[4], dtype=np.int64)
    taken = np.frombuffer(packed.columns[5], dtype=np.int64)
    pc = np.frombuffer(packed.columns[6], dtype=np.int64)

    mem_mask = (op == OP_LOAD) | (op == OP_STORE)
    br_mask = op == OP_BRANCH
    ctl_mask = br_mask | (op == OP_CALL) | (op == OP_RETURN)
    btb_mask = ctl_mask & (taken != 0)
    next_pc = np.roll(pc, -1)

    return WarmSequences(
        mem_addrs=addr[mem_mask].tolist(),
        branch_pcs=pc[br_mask].tolist(),
        branch_taken=(taken[br_mask] != 0).tolist(),
        btb_pcs=pc[btb_mask].tolist(),
        btb_targets=next_pc[btb_mask].tolist(),
        fetch_pcs=pc.tolist(),
        junk_pcs=list(packed.junk_columns[6]),
    )


def _warm_sequences_python(packed: PackedTrace) -> WarmSequences:
    ops = packed.columns[0]
    addrs = packed.columns[4]
    takens = packed.columns[5]
    pcs = packed.columns[6]
    n = packed.length
    mem_addrs: list = []
    branch_pcs: list = []
    branch_taken: list = []
    btb_pcs: list = []
    btb_targets: list = []
    for i in range(n):
        op = ops[i]
        if op == OP_LOAD or op == OP_STORE:
            mem_addrs.append(addrs[i])
            continue
        if op == OP_BRANCH:
            branch_pcs.append(pcs[i])
            branch_taken.append(bool(takens[i]))
            if takens[i]:
                btb_pcs.append(pcs[i])
                btb_targets.append(pcs[(i + 1) % n])
        elif (op == OP_CALL or op == OP_RETURN) and takens[i]:
            btb_pcs.append(pcs[i])
            btb_targets.append(pcs[(i + 1) % n])
    return WarmSequences(
        mem_addrs=mem_addrs,
        branch_pcs=branch_pcs,
        branch_taken=branch_taken,
        btb_pcs=btb_pcs,
        btb_targets=btb_targets,
        fetch_pcs=list(pcs),
        junk_pcs=list(packed.junk_columns[6]),
    )


# -------------------------------------------------------------------- store


class PackedTraceStore:
    """Content-addressed directory of packed traces, mmap-served.

    The key covers the full trace identity — benchmark name, window
    length, instance (the seed namespace) and junk-pool length — plus
    :data:`PACK_FORMAT_VERSION`, so a format bump simply orphans old
    files. ``save`` is atomic (temp file + rename); ``load`` returns
    ``None`` for missing, truncated or otherwise unreadable files, so a
    corrupted store degrades to regeneration, never to a wrong trace.
    """

    def __init__(self, directory: str | os.PathLike,
                 save_on_generate: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: whether ``trace_for`` should persist freshly generated traces
        self.save_on_generate = save_on_generate
        self.hits = 0
        self.misses = 0

    # -- keying ------------------------------------------------------------

    @staticmethod
    def trace_key(name: str, length: int, instance: int, junk_length: int) -> str:
        desc = json.dumps(
            {
                "format": PACK_FORMAT_VERSION,
                "name": name,
                "length": length,
                "instance": instance,
                "junk_length": junk_length,
            },
            sort_keys=True,
        )
        return sha256(desc.encode()).hexdigest()

    def _path(self, name: str, length: int, instance: int, junk_length: int) -> Path:
        return self.directory / (
            self.trace_key(name, length, instance, junk_length) + ".trace"
        )

    # -- access ------------------------------------------------------------

    def contains(self, name: str, length: int, instance: int,
                 junk_length: int) -> bool:
        return self._path(name, length, instance, junk_length).exists()

    def load(self, name: str, length: int, instance: int,
             junk_length: int) -> Optional[PackedTrace]:
        """mmap the stored trace, or None (missing/corrupt → regenerate)."""
        path = self._path(name, length, instance, junk_length)
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            self.misses += 1
            return None
        try:
            try:
                mapped = mmap.mmap(fd, 0, access=mmap.ACCESS_READ)
            finally:
                os.close(fd)
            packed = PackedTrace.from_buffer(mapped, buffer_owner=mapped)
            if packed.length != length or packed.name != name:
                raise ValueError("stored trace does not match its key")
        except ValueError:
            self.misses += 1
            return None
        self.hits += 1
        return packed

    def save(self, packed: PackedTrace, name: str, length: int,
             instance: int) -> None:
        """Persist ``packed`` under its identity key (atomic write)."""
        path = self._path(name, length, instance, packed.junk_length)
        if path.exists():
            return
        atomic_write_bytes(path, packed.to_bytes())

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.trace"))
