"""Synthetic program and trace generation.

Two layers:

* :class:`StaticProgram` — a seeded synthetic control-flow graph for one
  benchmark: basic blocks laid out contiguously in a code segment, each
  ending in exactly one control instruction (conditional branch, call or
  return). Conditional branches are assigned one of three *behaviours*:

  - ``LOOP``   — taken ``trip-1`` times out of ``trip`` (back edge);
  - ``PATTERN``— outcome is a fixed signed-linear function of the branch's
    own outcome history: exactly the function class a perceptron predictor
    can learn, so these become predictable after warm-up;
  - ``BIASED`` — independent Bernoulli with a per-branch bias.

  The mixture fractions come from the benchmark profile and set the
  steady-state mispredict rate.

* :class:`TraceGenerator` — walks the CFG emitting packed
  :data:`~repro.isa.instruction.TraceEntry` tuples: per-instruction
  register operands with a geometric dependency-distance distribution
  (the ILP knob), and a data-address stream mixing sequential streams, a
  hot reuse region and clustered cold-region accesses (the memory knob,
  including ``chain_frac`` pointer-chasing that serializes cache misses).

Everything is deterministic given ``(profile, seed)``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.isa.instruction import TraceEntry
from repro.isa.opcodes import (
    OP_BRANCH,
    OP_CALL,
    OP_FP,
    OP_INT,
    OP_LOAD,
    OP_MUL,
    OP_RETURN,
    OP_STORE,
)
from repro.isa.registers import NUM_INT_REGS, REG_NONE, fp_reg
from repro.trace.benchmarks import BenchmarkProfile

__all__ = ["StaticProgram", "TraceGenerator", "generate_trace"]

# Terminator kinds.
TERM_BRANCH = 0
TERM_CALL = 1
TERM_RET = 2

# Conditional-branch behaviours.
KIND_LOOP = 0
KIND_PATTERN = 1
KIND_BIASED = 2

CODE_BASE = 0x0040_0000  #: code segment base address
DATA_BASE = 0x1000_0000  #: data segment base address
_MAX_CALL_DEPTH = 64


class StaticProgram:
    """Seeded synthetic CFG for one benchmark profile."""

    __slots__ = (
        "profile",
        "seed",
        "num_blocks",
        "block_pc",
        "block_size",
        "block_term",
        "block_target",
        "branch_kind",
        "branch_param",
        "branch_taps",
        "func_entries",
        "code_bytes",
    )

    def __init__(self, profile: BenchmarkProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed
        rng = random.Random(f"program:{profile.name}:{seed}")
        n = profile.num_blocks
        self.num_blocks = n

        mean_size = profile.mean_block_size
        lo = max(2, int(mean_size - 3))
        hi = int(mean_size + 3)
        sizes = [rng.randint(lo, hi) for _ in range(n)]

        # Contiguous layout: block b+1 starts right after block b, so a
        # not-taken branch (or a call's return) lands at pc_end + 4.
        pcs: List[int] = []
        pc = CODE_BASE
        for s in sizes:
            pcs.append(pc)
            pc += 4 * s
        self.block_pc = pcs
        self.block_size = sizes
        self.code_bytes = pc - CODE_BASE

        # Function entries: targets for calls. Kept few — real programs
        # call a small set of hot utility functions — so calls do not blow
        # up the instruction working set.
        num_funcs = max(3, n // 150)
        self.func_entries = sorted(rng.sample(range(1, n), num_funcs))

        call_p = profile.call_frac
        terms: List[int] = []
        targets: List[int] = []
        kinds: List[int] = []
        params: List[float] = []
        taps: List[Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]] = []
        loop_p = profile.loop_branch_frac
        pattern_p = profile.pattern_branch_frac
        for b in range(n):
            r = rng.random()
            if r < call_p:
                terms.append(TERM_CALL)
                targets.append(rng.choice(self.func_entries))
                kinds.append(KIND_BIASED)
                params.append(1.0)
                taps.append(None)
                continue
            if r < 2 * call_p:
                terms.append(TERM_RET)
                targets.append(0)  # resolved by the walker's call stack
                kinds.append(KIND_BIASED)
                params.append(1.0)
                taps.append(None)
                continue
            terms.append(TERM_BRANCH)
            kr = rng.random()
            if kr < loop_p:
                kinds.append(KIND_LOOP)
                # Geometric-ish trip count around the profile mean, >= 2.
                trip = max(2, int(rng.expovariate(1.0 / profile.loop_trip_mean)) + 2)
                params.append(float(trip))
                target = max(self._region_start(b), b - rng.randint(0, 2))
                targets.append(target)  # back edge, within the region
                taps.append(None)
            elif kr < loop_p + pattern_p:
                kinds.append(KIND_PATTERN)
                params.append(0.0)
                targets.append(self._forward_target(rng, b, n))
                tap_pos = tuple(sorted(rng.sample(range(10), 6)))
                tap_sign = tuple(rng.choice((-1, 1)) for _ in tap_pos)
                taps.append((tap_pos, tap_sign))
            else:
                kinds.append(KIND_BIASED)
                bias = min(
                    0.98, max(0.02, rng.gauss(profile.random_branch_bias, 0.10))
                )
                params.append(bias)
                targets.append(self._forward_target(rng, b, n))
                taps.append(None)
        # The last block cannot fall through (there is no next block), so
        # its terminator is an always-taken branch back to the program
        # start: not-taken branches then always land at pc+4, the
        # invariant the front end's fall-through handling relies on.
        last = n - 1
        terms[last] = TERM_BRANCH
        kinds[last] = KIND_BIASED
        params[last] = 1.0
        targets[last] = 0
        taps[last] = None

        self.block_term = terms
        self.block_target = targets
        self.branch_kind = kinds
        self.branch_param = params
        self.branch_taps = taps

    #: Blocks per code region. Execution concentrates inside one region
    #: at a time (a program phase); only rare "bridge" jumps move to the
    #: next region. This gives the instruction stream the hot-loop
    #: locality of real programs — without it the walk streams through
    #: the whole code footprint and 6-thread workloads thrash the shared
    #: L1I into permanent fetch stalls.
    REGION_BLOCKS = 48
    #: Probability a forward target leaves the current region.
    REGION_BRIDGE_P = 0.03

    @classmethod
    def _region_start(cls, b: int) -> int:
        return (b // cls.REGION_BLOCKS) * cls.REGION_BLOCKS

    def _forward_target(self, rng: random.Random, b: int, n: int) -> int:
        """Region-local forward target with a rare phase-change bridge."""
        start = self._region_start(b)
        size = min(self.REGION_BLOCKS, n - start)
        if rng.random() < self.REGION_BRIDGE_P:
            return (start + self.REGION_BLOCKS) % n  # next region's head
        return start + (b - start + rng.randint(1, 20)) % size

    def static_branch_count(self) -> int:
        """Number of static conditional branches in the program."""
        return sum(1 for t in self.block_term if t == TERM_BRANCH)


class TraceGenerator:
    """Walks a :class:`StaticProgram`, emitting a dynamic instruction trace."""

    __slots__ = (
        "program",
        "profile",
        "rng",
        "_cur_block",
        "_call_stack",
        "_loop_count",
        "_branch_hist",
        "_recent_dests",
        "_last_load_dest",
        "_dest_cursor",
        "_stream_ptrs",
        "_stream_idx",
        "_cold_page",
        "_hot_base",
        "_cold_base",
        "_hot_pool",
        "_hot_pool_pos",
        "_mix_cum",
        "_dep_p",
        "_phase_budget",
        "_region_ptr",
    )

    #: Mean instructions per program phase; when a phase expires the next
    #: conditional branch jumps to the next code region. Guarantees the
    #: walk covers the whole code footprint over time (phase behaviour a
    #: la SimPoint) instead of trapping in one hot region forever. Each
    #: phase change costs a surprise mispredict, so phases are long.
    PHASE_INSTRS = 2500

    #: number of independent sequential access streams
    NUM_STREAMS = 4
    #: probability a cold access jumps to a fresh cold page (clustering)
    COLD_JUMP_P = 0.35
    #: probability a stream pointer advances after an access (an 8-byte
    #: stride advanced half the time = ~16 touches per 64-byte line, the
    #: spatial+temporal locality of a typical scan loop)
    STREAM_ADVANCE_P = 0.5
    #: hot-region temporal-reuse pool: recently-touched addresses that
    #: model stack/global locality (reuse distance far below L1 capacity)
    HOT_POOL_SIZE = 48
    HOT_POOL_REUSE_P = 0.90

    def __init__(self, program: StaticProgram, seed: int = 0) -> None:
        self.program = program
        self.profile = program.profile
        p = self.profile
        self.rng = random.Random(f"walk:{p.name}:{program.seed}:{seed}")
        self._cur_block = 0
        self._call_stack: List[int] = []
        self._loop_count = [0] * program.num_blocks
        self._branch_hist = [0] * program.num_blocks
        self._recent_dests: List[int] = [1, 2, 3, 4]
        self._last_load_dest = REG_NONE
        self._dest_cursor = 1
        page = 8192
        self._hot_base = DATA_BASE
        self._cold_base = DATA_BASE + p.hot_pages * page
        self._stream_ptrs = [
            self._cold_base + i * (p.cold_pages * page // max(1, self.NUM_STREAMS))
            for i in range(self.NUM_STREAMS)
        ]
        self._stream_idx = 0
        self._cold_page = 0
        # Seed the hot pool with a few addresses so early reuse works.
        self._hot_pool = [
            self._hot_base + self.rng.randrange(p.hot_pages * page // 8) * 8
            for _ in range(8)
        ]
        self._hot_pool_pos = 0
        self._phase_budget = self._draw_phase()
        self._region_ptr = 0
        # Cumulative thresholds over body (non-control) instruction classes:
        # (load, store, mul, fp, int).
        body_total = p.load_frac + p.store_frac + p.mul_frac + p.fp_frac + p.int_frac
        c1 = p.load_frac / body_total
        c2 = c1 + p.store_frac / body_total
        c3 = c2 + p.mul_frac / body_total
        c4 = c3 + p.fp_frac / body_total
        self._mix_cum = (c1, c2, c3, c4)
        self._dep_p = 1.0 / max(1.0, p.dep_distance_mean)

    def _draw_phase(self) -> int:
        """Phase length: mean PHASE_INSTRS with +/-60% jitter."""
        lo = int(self.PHASE_INSTRS * 0.4)
        hi = int(self.PHASE_INSTRS * 1.6)
        return self.rng.randint(lo, hi)

    # ------------------------------------------------------------------ regs

    def _next_dest(self, is_fp: bool) -> int:
        """Round-robin destination allocation over r1..r30 (or f1..f30)."""
        self._dest_cursor += 1
        if self._dest_cursor >= 31:
            self._dest_cursor = 1
        if is_fp:
            return fp_reg(self._dest_cursor)
        return self._dest_cursor

    def _dep_source(self) -> int:
        """A source register at a geometric dependency distance."""
        rng = self.rng
        recents = self._recent_dests
        if rng.random() < 0.85:
            # geometric distance, 1 = the immediately preceding producer
            d = 1
            while rng.random() > self._dep_p and d < len(recents):
                d += 1
            return recents[-d]
        return rng.randint(1, NUM_INT_REGS - 2)

    def _note_dest(self, reg: int) -> None:
        recents = self._recent_dests
        recents.append(reg)
        if len(recents) > 32:
            del recents[0]

    # --------------------------------------------------------------- address

    def _data_address(self) -> int:
        """Next data address from the stream/hot/cold mixture.

        * *stream* — one of ``NUM_STREAMS`` sequential scans over the cold
          region, advancing slowly (spatial locality: ~16 touches/line);
        * *hot* — drawn from a small recently-used pool most of the time
          (temporal locality: stack/globals, reuse distance « L1), with
          occasional fresh addresses refreshing the pool;
        * *cold* — clustered page-at-a-time random accesses over the full
          working set (the capacity/TLB-missing part; its weight is what
          separates the MEM benchmarks from the ILP ones).
        """
        p = self.profile
        rng = self.rng
        page = 8192
        r = rng.random()
        if r < p.stream_frac:
            i = self._stream_idx
            self._stream_idx = (i + 1) % self.NUM_STREAMS
            addr = self._stream_ptrs[i]
            if rng.random() < self.STREAM_ADVANCE_P:
                nxt = addr + 8
                if nxt >= self._cold_base + p.cold_pages * page:
                    nxt = self._cold_base
                self._stream_ptrs[i] = nxt
            return addr
        if rng.random() < p.hot_frac:
            pool = self._hot_pool
            if rng.random() < self.HOT_POOL_REUSE_P:
                return pool[rng.randrange(len(pool))]
            addr = self._hot_base + rng.randrange(p.hot_pages * page // 8) * 8
            if len(pool) < self.HOT_POOL_SIZE:
                pool.append(addr)
            else:
                pool[self._hot_pool_pos] = addr
                self._hot_pool_pos = (self._hot_pool_pos + 1) % self.HOT_POOL_SIZE
            return addr
        if rng.random() < self.COLD_JUMP_P:
            self._cold_page = rng.randrange(max(1, p.cold_pages))
        return self._cold_base + self._cold_page * page + rng.randrange(page // 8) * 8

    # ---------------------------------------------------------------- branch

    def _branch_outcome(self, b: int) -> bool:
        """Resolve the behaviour state machine of static branch ``b``."""
        prog = self.program
        kind = prog.branch_kind[b]
        if kind == KIND_LOOP:
            trip = int(prog.branch_param[b])
            c = self._loop_count[b] + 1
            if c >= trip:
                self._loop_count[b] = 0
                taken = False
            else:
                self._loop_count[b] = c
                taken = True
        elif kind == KIND_PATTERN:
            hist = self._branch_hist[b]
            pos, sign = prog.branch_taps[b]  # type: ignore[misc]
            s = 0
            for j, g in zip(pos, sign):
                s += g if (hist >> j) & 1 else -g
            taken = s >= 0
        else:
            taken = self.rng.random() < prog.branch_param[b]
        self._branch_hist[b] = ((self._branch_hist[b] << 1) | (1 if taken else 0)) & 0x3FF
        return taken

    # ------------------------------------------------------------------ main

    def generate(self, n: int) -> List[TraceEntry]:
        """Emit ``n`` dynamic instructions (packed tuples)."""
        out: List[TraceEntry] = []
        append = out.append
        prog = self.program
        p = self.profile
        rng = self.rng
        mix = self._mix_cum
        two_src = p.two_src_frac
        chain = p.chain_frac
        while len(out) < n:
            b = self._cur_block
            pc = prog.block_pc[b]
            size = prog.block_size[b]
            # ---- body instructions ------------------------------------
            for k in range(size - 1):
                ipc = pc + 4 * k
                r = rng.random()
                if r < mix[0]:  # load
                    if chain and self._last_load_dest != REG_NONE and rng.random() < chain:
                        src1 = self._last_load_dest
                    else:
                        src1 = self._dep_source()
                    dest = self._next_dest(False)
                    append((OP_LOAD, dest, src1, REG_NONE, self._data_address(), 0, ipc))
                    self._note_dest(dest)
                    self._last_load_dest = dest
                elif r < mix[1]:  # store
                    src1 = self._dep_source()
                    src2 = self._dep_source()
                    append((OP_STORE, REG_NONE, src1, src2, self._data_address(), 0, ipc))
                elif r < mix[2]:  # mul
                    src1 = self._dep_source()
                    src2 = self._dep_source() if rng.random() < two_src else REG_NONE
                    dest = self._next_dest(False)
                    append((OP_MUL, dest, src1, src2, 0, 0, ipc))
                    self._note_dest(dest)
                elif r < mix[3]:  # fp
                    src1 = self._dep_source()
                    src2 = self._dep_source() if rng.random() < two_src else REG_NONE
                    dest = self._next_dest(True)
                    append((OP_FP, dest, src1, src2, 0, 0, ipc))
                    self._note_dest(dest)
                else:  # plain int ALU
                    src1 = self._dep_source()
                    src2 = self._dep_source() if rng.random() < two_src else REG_NONE
                    dest = self._next_dest(False)
                    append((OP_INT, dest, src1, src2, 0, 0, ipc))
                    self._note_dest(dest)
            # ---- terminator ---------------------------------------------
            tpc = pc + 4 * (size - 1)
            term = prog.block_term[b]
            if term == TERM_CALL:
                append((OP_CALL, REG_NONE, REG_NONE, REG_NONE, 0, 1, tpc))
                if len(self._call_stack) >= _MAX_CALL_DEPTH:
                    del self._call_stack[0]
                self._call_stack.append((b + 1) % prog.num_blocks)
                self._cur_block = prog.block_target[b]
            elif term == TERM_RET:
                append((OP_RETURN, REG_NONE, REG_NONE, REG_NONE, 0, 1, tpc))
                if self._call_stack:
                    self._cur_block = self._call_stack.pop()
                else:
                    self._cur_block = rng.randrange(prog.num_blocks)
            else:
                src1 = self._dep_source()
                if self._phase_budget <= 0:
                    # Phase change: this branch jumps (taken) to the head
                    # of the next code region. The behaviour state machine
                    # still advances so it resumes coherently later.
                    self._branch_outcome(b)
                    append((OP_BRANCH, REG_NONE, src1, REG_NONE, 0, 1, tpc))
                    rb = StaticProgram.REGION_BLOCKS
                    nregions = max(1, prog.num_blocks // rb)
                    self._region_ptr = (self._region_ptr + 1) % nregions
                    self._cur_block = self._region_ptr * rb
                    self._phase_budget = self._draw_phase()
                else:
                    taken = self._branch_outcome(b)
                    append(
                        (OP_BRANCH, REG_NONE, src1, REG_NONE, 0, 1 if taken else 0, tpc)
                    )
                    if taken:
                        self._cur_block = prog.block_target[b]
                    else:
                        self._cur_block = (b + 1) % prog.num_blocks
            self._phase_budget -= size
        del out[n:]
        return out

    def generate_junk(self, n: int) -> List[TraceEntry]:
        """Wrong-path filler instructions (no control transfers).

        Fetched after a mispredicted branch until it resolves; they consume
        fetch/rename/issue bandwidth, queue slots and rename registers, and
        their loads pollute the caches — the costs wrong-path execution
        exists to model.
        """
        out: List[TraceEntry] = []
        append = out.append
        rng = self.rng
        p = self.profile
        pc = CODE_BASE + self.program.code_bytes  # distinct bogus region
        for i in range(n):
            ipc = pc + 4 * (i % 4096)
            dest = 1 + (i % 30)
            src1 = 1 + ((i * 7) % 30)
            if rng.random() < p.load_frac:
                append((OP_LOAD, dest, src1, REG_NONE, self._data_address(), 0, ipc))
            else:
                append((OP_INT, dest, src1, REG_NONE, 0, 0, ipc))
        return out


def generate_trace(
    profile: BenchmarkProfile, n: int, seed: int = 0, program_seed: int = 0
) -> List[TraceEntry]:
    """Convenience: build program + walker and emit ``n`` instructions."""
    program = StaticProgram(profile, program_seed)
    return TraceGenerator(program, seed).generate(n)
