"""Unit tests: pipeline models — must match Fig. 2(a) exactly."""

import pytest

from repro.core.models import M2, M4, M6, M8, MODELS_BY_NAME, PipelineModel, get_model


FIG_2A = {
    # name: (contexts, width, threads/cycle, queues, int, fp, ldst)
    "M8": (4, 8, 2, 64, 6, 3, 4),
    "M6": (2, 6, 2, 32, 4, 2, 2),
    "M4": (2, 4, 2, 32, 3, 2, 2),
    "M2": (1, 2, 1, 16, 1, 1, 1),
}


@pytest.mark.parametrize("name", list(FIG_2A))
def test_fig_2a_resources(name):
    ctx, width, tpc, q, i, f, ls = FIG_2A[name]
    m = get_model(name)
    assert m.contexts == ctx
    assert m.width == width
    assert m.threads_per_cycle == tpc
    assert m.iq_entries == m.fq_entries == m.lq_entries == q
    assert m.int_units == i
    assert m.fp_units == f
    assert m.ldst_units == ls


def test_fetch_buffer_sizes_match_section_4():
    assert M6.fetch_buffer == 32
    assert M4.fetch_buffer == 32
    assert M2.fetch_buffer == 16


def test_registry():
    assert set(MODELS_BY_NAME) == {"M8", "M6", "M4", "M2"}
    with pytest.raises(KeyError):
        get_model("M5")


def test_totals():
    assert M8.total_queue_entries == 192
    assert M8.total_fu == 13
    assert M2.total_fu == 3


def test_validation():
    with pytest.raises(ValueError):
        PipelineModel("bad", 0, 4, 2, 32, 32, 32, 3, 2, 2, 32)
    with pytest.raises(ValueError):
        PipelineModel("bad", 1, 4, 2, 32, 32, 32, 3, 2, 2, 32)  # tpc > contexts
