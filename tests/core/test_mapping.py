"""Unit tests: the paper's 7-step heuristic and the oracle enumeration."""

import pytest

from repro.core.config import get_config
from repro.core.mapping import (
    canonical_mapping,
    count_mappings,
    describe_mapping,
    enumerate_mappings,
    heuristic_mapping,
    mapping_contexts_ok,
    random_mapping,
    round_robin_mapping,
)


def pipes(cfg_name):
    return [p.name for p in get_config(cfg_name).pipelines]


# ------------------------------------------------------------- heuristic


def test_heuristic_monolithic_trivial():
    cfg = get_config("M8")
    assert heuristic_mapping(cfg, [5.0, 1.0]) == (0, 0)


def test_heuristic_two_threads_hetero():
    """Fewest misses -> widest pipeline; contexts > threads, so the widest
    pipeline is dedicated (step 4) and the other thread takes the next."""
    cfg = get_config("2M4+2M2")  # pipelines: M4,M4,M2,M2 / contexts 2,2,1,1
    m = heuristic_mapping(cfg, [10.0, 1.0])
    # thread 1 (1.0 misses) -> pipeline 0 (M4, dedicated);
    # thread 0 (10.0) -> pipeline 1 (the other M4).
    assert m == (1, 0)


def test_heuristic_four_threads_2m4_2m2():
    cfg = get_config("2M4+2M2")
    # misses ascending: t3 < t2 < t1 < t0
    m = heuristic_mapping(cfg, [40.0, 30.0, 20.0, 10.0])
    # Step 4: 6 contexts > 4 threads -> t3 alone on M4[0].
    # Then t2 -> M4[1], t1 -> M4[1] (fills it), t0 -> M2[2].
    assert m == (2, 1, 1, 0)


def test_heuristic_six_threads_big_config():
    cfg = get_config("1M6+2M4+2M2")  # M6,M4,M4,M2,M2 / contexts 2,2,2,1,1
    m = heuristic_mapping(cfg, [60, 50, 40, 30, 20, 10])
    # t5 -> M6 dedicated; t4,t3 -> M4[1]; t2,t1 -> M4[2]; t0 -> M2[3].
    assert m == (3, 2, 2, 1, 1, 0)


def test_heuristic_no_dedication_when_contexts_equal_threads():
    cfg = get_config("1M6+2M4+2M2")  # 8 contexts
    m = heuristic_mapping(cfg, list(range(8, 0, -1)))
    # 8 threads == 8 contexts: step 4 does not fire; M6 hosts two threads.
    assert sum(1 for p in m if p == 0) == 2


def test_heuristic_tie_break_stable():
    cfg = get_config("2M4+2M2")
    m1 = heuristic_mapping(cfg, [1.0, 1.0])
    m2 = heuristic_mapping(cfg, [1.0, 1.0])
    assert m1 == m2
    assert m1 == (0, 1)  # workload order breaks the tie


def test_heuristic_overflow_raises():
    cfg = get_config("2M4+2M2")
    with pytest.raises(ValueError):
        heuristic_mapping(cfg, [1.0] * 7)
    with pytest.raises(ValueError):
        heuristic_mapping(cfg, [])


# ------------------------------------------------------------ enumeration


def test_monolithic_single_mapping():
    cfg = get_config("M8")
    assert enumerate_mappings(cfg, 4) == [(0, 0, 0, 0)]


def test_two_threads_homogeneous_single_class():
    """§5: on homogeneous configs the 2-thread BEST/HEUR/WORST coincide —
    there must be exactly one distinct (non-dominated) mapping."""
    for name in ("3M4", "4M4"):
        assert count_mappings(get_config(name), 2) == 1


def test_two_threads_hetero_classes():
    cfg = get_config("2M4+2M2")
    maps = enumerate_mappings(cfg, 2)
    # {M4,M4}, {t0 M4, t1 M2}, {t0 M2, t1 M4}, {M2,M2}
    assert len(maps) == 4


def test_enumeration_respects_contexts():
    cfg = get_config("2M4+2M2")
    for m in enumerate_mappings(cfg, 6):
        assert mapping_contexts_ok(cfg, m)


def test_enumeration_contains_heuristic():
    cfg = get_config("1M6+2M4+2M2")
    heur = heuristic_mapping(cfg, [60, 50, 40, 30, 20, 10])
    maps = enumerate_mappings(cfg, 6, max_mappings=10, must_include=[heur])
    keys = {canonical_mapping(cfg, m) for m in maps}
    assert canonical_mapping(cfg, heur) in keys
    assert len(maps) <= 10


def test_canonical_dedup_symmetric_pipelines():
    cfg = get_config("2M4+2M2")
    # Swapping the two M4s yields the same canonical class.
    assert canonical_mapping(cfg, (0, 1)) == canonical_mapping(cfg, (1, 0))
    # Mapping to an M4 vs an M2 differs.
    assert canonical_mapping(cfg, (0, 2)) != canonical_mapping(cfg, (0, 1))


def test_wasteful_mappings_excluded_by_default():
    cfg = get_config("3M4")
    maps = enumerate_mappings(cfg, 2)
    # Sharing one M4 while the others are empty is dominated.
    assert all(len(set(m)) == 2 for m in maps)
    with_wasteful = enumerate_mappings(cfg, 2, include_wasteful=True)
    assert len(with_wasteful) > len(maps)


def test_mapping_counts_hand_checked():
    # 4 threads on 3M4 (caps 2,2,2): occupancy (2,1,1): choose the pair: 6.
    assert count_mappings(get_config("3M4"), 4) == 6
    # 6 threads on 3M4: perfect pairing of 6 into 3 unordered pairs: 15.
    assert count_mappings(get_config("3M4"), 6) == 15
    # 4 threads on 4M4: only (1,1,1,1) survives domination: 1 class.
    assert count_mappings(get_config("4M4"), 4) == 1


def test_sampling_cap_deterministic():
    cfg = get_config("1M6+2M4+2M2")
    a = enumerate_mappings(cfg, 6, max_mappings=12, seed=0)
    b = enumerate_mappings(cfg, 6, max_mappings=12, seed=0)
    assert a == b
    c = enumerate_mappings(cfg, 6, max_mappings=12, seed=1)
    assert a != c  # different sample (astronomically unlikely to collide)


# ------------------------------------------------------- blind baselines


def test_round_robin_spreads():
    cfg = get_config("2M4+2M2")
    m = round_robin_mapping(cfg, 4)
    assert mapping_contexts_ok(cfg, m)
    assert len(set(m)) == 4  # one thread per pipeline first pass


def test_random_mapping_valid_and_deterministic():
    cfg = get_config("1M6+2M4+2M2")
    m1 = random_mapping(cfg, 4, seed=3)
    m2 = random_mapping(cfg, 4, seed=3)
    assert m1 == m2
    assert mapping_contexts_ok(cfg, m1)


def test_describe_mapping_smoke():
    cfg = get_config("2M4+2M2")
    s = describe_mapping(cfg, (0, 2), ["eon", "mcf"])
    assert "eon" in s and "mcf" in s and "M2" in s
