"""Unit tests: fetch-policy priority orders."""

import pytest

from repro.core.config import get_config
from repro.core.fetch_policies import (
    FlushPolicy,
    ICountPolicy,
    L1MCountPolicy,
    RoundRobinPolicy,
    make_policy,
)
from repro.core.processor import Processor
from repro.trace.stream import trace_for


def make_proc(cfg_name="2M4+2M2", benches=("eon", "mcf"), mapping=(0, 2)):
    cfg = get_config(cfg_name)
    traces = [trace_for(b, 1000) for b in benches]
    return Processor(cfg, traces, mapping, commit_target=100)


def test_make_policy():
    assert isinstance(make_policy("icount"), ICountPolicy)
    assert isinstance(make_policy("flush"), FlushPolicy)
    assert isinstance(make_policy("l1mcount"), L1MCountPolicy)
    assert isinstance(make_policy("roundrobin"), RoundRobinPolicy)
    with pytest.raises(KeyError):
        make_policy("nope")


def test_flush_flag():
    assert make_policy("flush").flushing
    assert not make_policy("icount").flushing
    assert not make_policy("l1mcount").flushing


def test_icount_prefers_emptier_thread():
    proc = make_proc()
    proc.icount[0] = 10
    proc.icount[1] = 2
    pol = ICountPolicy()
    assert pol.sort_key(proc, 1) < pol.sort_key(proc, 0)


def test_l1mcount_prefers_fewer_inflight_loads():
    proc = make_proc()
    proc.inflight_loads[0] = 3
    proc.inflight_loads[1] = 0
    proc.icount[0] = 0
    proc.icount[1] = 50
    pol = L1MCountPolicy()
    # Loads dominate icount.
    assert pol.sort_key(proc, 1) < pol.sort_key(proc, 0)


def test_l1mcount_tie_broken_by_pipeline_width():
    # Thread 0 on M4 (width 4), thread 1 on M2 (width 2); equal loads.
    proc = make_proc(mapping=(0, 2))
    pol = L1MCountPolicy()
    proc.icount[0] = proc.icount[1] = 0
    assert pol.sort_key(proc, 0) < pol.sort_key(proc, 1)


def test_l1mcount_final_tie_is_icount():
    proc = make_proc(benches=("eon", "gcc"), mapping=(0, 1))  # both M4
    pol = L1MCountPolicy()
    proc.icount[0] = 5
    proc.icount[1] = 1
    assert pol.sort_key(proc, 1) < pol.sort_key(proc, 0)


def test_round_robin_rotates():
    proc = make_proc(benches=("eon", "gcc"), mapping=(0, 1))
    pol = RoundRobinPolicy()
    proc.cycle = 0
    first_at_0 = min(range(2), key=lambda t: pol.sort_key(proc, t))
    proc.cycle = 1
    first_at_1 = min(range(2), key=lambda t: pol.sort_key(proc, t))
    assert first_at_0 != first_at_1
