"""Back-compat contract of the ``repro.core.processor`` shim.

PR 5 decomposed the processor monolith into the ``repro.core.engine``
package; the old module survives as a re-export shim so every existing
import site (tests, runner workers, pickled references) keeps working.
The contract: every public name previously importable from
``repro.core.processor`` still imports from the old path **and is the
same object** as the engine definition — re-exports, not copies, so
monkeypatching/state mutation through either path stays coherent.
"""

import importlib

import pytest

import repro.core.engine as engine_pkg
import repro.core.processor as shim
from repro.core.engine.engine import Processor as EngineProcessor
from repro.core.engine.state import Pipeline as EnginePipeline
from repro.core.engine import warm as warm_module

#: Every name the pre-split module exported (its ``__all__`` plus the
#: module-level constants tests imported directly).
LEGACY_PUBLIC_NAMES = [
    "Processor",
    "Pipeline",
    "clear_warm_cache",
    "set_warm_store",
    "ensure_warm_snapshot",
    "warm_snapshot_path",
    "S_FREE",
    "S_WAITING",
    "S_READY",
    "S_ISSUED",
    "S_DONE",
    "FL_WRONGPATH",
    "FL_MISPRED",
    "FL_LOADCTR",
    "EV_COMPLETE",
    "EV_FLUSHCHK",
]


@pytest.mark.parametrize("name", LEGACY_PUBLIC_NAMES)
def test_legacy_name_importable_and_identical(name):
    """``from repro.core.processor import <name>`` still works and hands
    out the engine package's object itself."""
    module = importlib.import_module("repro.core.processor")
    via_shim = getattr(module, name)
    via_engine = getattr(engine_pkg, name)
    assert via_shim is via_engine


def test_legacy_all_is_superset_of_pre_split_exports():
    for name in ("Processor", "Pipeline", "clear_warm_cache",
                 "set_warm_store", "ensure_warm_snapshot",
                 "warm_snapshot_path"):
        assert name in shim.__all__


def test_core_classes_are_the_engine_definitions():
    assert shim.Processor is EngineProcessor
    assert shim.Pipeline is EnginePipeline


def test_warm_store_state_is_shared_through_the_shim(tmp_path):
    """The shim's ``set_warm_store`` must mutate the engine's store
    global (one state, two import paths), and ``clear_warm_cache`` must
    drop the engine-side memo."""
    try:
        shim.set_warm_store(str(tmp_path))
        assert warm_module._WARM_STORE_DIR == str(tmp_path)
    finally:
        shim.set_warm_store(None)
    assert warm_module._WARM_STORE_DIR is None

    warm_module._WARM_CACHE[("sentinel",)] = ((), None)
    shim.clear_warm_cache()
    assert ("sentinel",) not in warm_module._WARM_CACHE


def test_shim_is_thin():
    """The old module must stay a re-export shim (< 100 lines), not grow
    logic back."""
    import inspect

    source = inspect.getsource(shim)
    assert len(source.splitlines()) < 100
    assert "class Processor" not in source
