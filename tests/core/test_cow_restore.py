"""Copy-on-write warm-snapshot restores must never alias mutated state.

Caches restore copy-on-write since PR 2; this PR extends the scheme to
the perceptron, BTB and TLB. The contract for every structure:

* ``load_state`` is cheap (it adopts, rather than copies, the snapshot's
  payload), and
* no amount of post-restore mutation — training, installs, LRU churn,
  invalidations — may leak back into the snapshot or into a sibling
  restored from the same snapshot.

Each test restores *two* instances from *one* snapshot, hammers one, and
asserts both the snapshot and the untouched sibling still dump the
original state bit-for-bit.
"""

import copy

from repro.branch.btb import BranchTargetBuffer
from repro.branch.perceptron import PerceptronPredictor
from repro.memory.cache import SetAssociativeCache
from repro.memory.tlb import TranslationBuffer


def _pcs(n, stride=4, base=0x40_0000):
    return [base + stride * i for i in range(n)]


# ----------------------------------------------------------------- helpers


def _train_perceptron(p, n=2000, thread=0, phase=0):
    for i, pc in enumerate(_pcs(n, base=0x40_0000 + phase)):
        p.update(thread, pc, (i * 2654435761 + phase) % 3 == 0)


def _populate_btb(b, n=600, thread=0, phase=0):
    for i, pc in enumerate(_pcs(n, base=0x40_0000 + phase)):
        b.update(thread, pc, pc + 4 * ((i % 7) + 1))
        b.lookup(thread, pc - 4 * (i % 5))


def _churn_tlb(t, n=3000, thread=0, phase=0):
    for i in range(n):
        t.access(0x1000_0000 + phase + (i * 8192 * 3) % (500 * 8192), thread)


def _assert_cow(make, mutate):
    """The shared scheme: snapshot → restore twice → mutate one."""
    origin = make()
    snap = origin.dump_state()
    frozen = copy.deepcopy(snap)  # independent record of the snapshot

    a, b = make(), make()
    a.load_state(snap)
    b.load_state(snap)
    mutate(a)

    assert snap == frozen, "mutation leaked into the snapshot"
    assert b.dump_state() == frozen, "mutation aliased a sibling restore"
    # A fresh restore from the same snapshot still sees the original.
    c = make()
    c.load_state(snap)
    assert c.dump_state() == frozen


# ------------------------------------------------------------------- tests


def test_perceptron_restore_does_not_alias_training():
    def make():
        p = PerceptronPredictor()
        _train_perceptron(p, 1500)
        return p

    _assert_cow(make, lambda p: _train_perceptron(p, 3000, thread=1, phase=64))


def test_perceptron_reset_thread_does_not_alias():
    p = PerceptronPredictor()
    _train_perceptron(p, 500)
    snap = p.dump_state()
    frozen = copy.deepcopy(snap)
    q = PerceptronPredictor()
    q.load_state(snap)
    q.reset_thread(0)
    assert snap == frozen


def test_btb_restore_does_not_alias_installs():
    def make():
        b = BranchTargetBuffer()
        _populate_btb(b, 500)
        return b

    _assert_cow(make, lambda b: _populate_btb(b, 1200, thread=2, phase=128))


def test_btb_lookup_mru_move_does_not_alias():
    """Even a read path (lookup's MRU move) mutates recency order and
    must copy the set out of the shared base first."""
    b = BranchTargetBuffer()
    _populate_btb(b, 400)
    snap = b.dump_state()
    frozen = copy.deepcopy(snap)
    r = BranchTargetBuffer()
    r.load_state(snap)
    for pc in _pcs(400):
        r.lookup(0, pc)
    assert snap == frozen


def test_tlb_restore_does_not_alias_churn():
    def make():
        t = TranslationBuffer(entries=128)
        _churn_tlb(t, 2000)
        return t

    _assert_cow(make, lambda t: _churn_tlb(t, 4000, thread=3, phase=4096))


def test_tlb_invalidations_do_not_alias():
    t = TranslationBuffer(entries=64)
    _churn_tlb(t, 500)
    snap = t.dump_state()
    frozen = copy.deepcopy(snap)

    r = TranslationBuffer(entries=64)
    r.load_state(snap)
    r.invalidate_thread(0)
    assert snap == frozen

    r.load_state(snap)
    r.invalidate_all()
    assert snap == frozen
    assert len(r) == 0


def test_cache_restore_does_not_alias_fills():
    """The PR 2 precedent, pinned alongside the new structures."""

    def make():
        c = SetAssociativeCache(32 * 1024, 2, name="cow")
        for i in range(4000):
            c.access((i * 2654435761) % (1 << 22))
        return c

    def mutate(c):
        for i in range(6000):
            c.access((i * 40503) % (1 << 22), thread=1)

    _assert_cow(make, mutate)


def test_restored_structures_behave_identically_to_eager_copies():
    """Behavioural equivalence: a COW-restored structure must produce
    exactly the same outcome stream as one rebuilt from deep copies."""
    p = PerceptronPredictor()
    _train_perceptron(p, 1000)
    snap = p.dump_state()

    a = PerceptronPredictor()
    a.load_state(snap)
    b = PerceptronPredictor()
    b.load_state(copy.deepcopy(snap))

    outcomes_a = []
    outcomes_b = []
    for i, pc in enumerate(_pcs(3000)):
        taken = (i * 2654435761) % 5 < 2
        outcomes_a.append(a.predict(0, pc))
        a.update(0, pc, taken)
        outcomes_b.append(b.predict(0, pc))
        b.update(0, pc, taken)
    assert outcomes_a == outcomes_b
    assert a.dump_state() == b.dump_state()
