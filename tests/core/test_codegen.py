"""The codegen engine: generation, caching, binding and bit-identity.

The deopt *paths* (flush storm, far event, warm restore) are covered by
the lockstep property suite in
``tests/properties/test_codegen_deopt_lockstep.py``; this module pins
the machinery around them: spec extraction, constant folding into the
generated sources, the compile cache (same config -> same source,
compiled once), the constructor's setup hook, source dumping, and
whole-run bit-identity against the generic engine.
"""

from dataclasses import replace

import pytest

import repro.core.engine.codegen as codegen
from repro.core.config import get_config
from repro.core.engine.options import EngineOptions
from repro.core.processor import Processor
from repro.trace.stream import trace_for

CODEGEN_ON = EngineOptions(codegen=True)
CODEGEN_OFF = EngineOptions(codegen=False)


def _traces(benches, length=1500):
    seen = {}
    out = []
    for b in benches:
        inst = seen.get(b, 0)
        seen[b] = inst + 1
        out.append(trace_for(b, length, instance=inst))
    return out


def _proc(name, benches, mapping, target=400, options=CODEGEN_ON):
    cfg = replace(get_config(name), engine_options=options)
    return Processor(cfg, _traces(benches), mapping, target)


def _final_state(proc):
    return (
        proc.cycle,
        proc.finished,
        tuple(proc.committed),
        tuple(pl.issued_total for pl in proc.pipelines),
        tuple(proc.stat_mispredicts),
        tuple(proc.stat_flushes),
        tuple(proc.stat_squashed),
        tuple(proc.stat_fetched),
        tuple(proc.stat_wrongpath_fetched),
        proc.stat_icache_stalls,
        proc.stat_btb_bubbles,
        proc.aggregate_ipc(),
    )


def test_same_config_compiles_once_and_shares_engine():
    codegen.clear_codegen_cache()
    a = _proc("2M4+2M2", ("gzip", "twolf"), (0, 2))
    assert codegen.compile_count == 1
    b = _proc("2M4+2M2", ("gcc", "mcf"), (0, 2))
    assert codegen.compile_count == 1  # same shape: cache hit
    assert a._codegen_engine is b._codegen_engine
    # Same config -> same generated source, deterministically.
    eng = a._codegen_engine
    assert eng.sources == codegen.compile_engine(eng.spec).sources
    # A different shape compiles separately.
    _proc("M8", ("gzip", "twolf"), (0, 0))
    assert codegen.compile_count == 2


def test_spec_captures_construction_constants():
    proc = _proc("2M4+2M2", ("gzip", "twolf"), (0, 2))
    spec = codegen.spec_for(proc)
    assert spec.num_threads == 2
    assert spec.num_pipes == 2  # only pipelines hosting threads
    assert spec.rob_entries == proc.rob_entries
    assert spec.wheel_mask == proc._wheel_mask
    assert spec.flushing is False and spec.monolithic is False
    mono = _proc("M8", ("gzip", "twolf"), (0, 0))
    mspec = codegen.spec_for(mono)
    assert mspec.flushing is True and mspec.monolithic is True


def test_generated_sources_fold_constants_to_literals():
    proc = _proc("2M4+2M2", ("gzip", "twolf"), (0, 2))
    eng = proc._codegen_engine
    for name in ("fetch", "issue_pipeline", "commit"):
        src = eng.sources[name]
        for attr in (
            "self.rob_entries",
            "self._wheel_mask",
            "self._fetch_width",
            "self._fetch_threads",
            "self._extra_reg",
            "self._l1_lat",
            "self._flush_thr",
            "self._policy_kind",
            "self.policy.flushing",
        ):
            assert attr not in src, f"{attr} left unfolded in {name}"
    # The cycle loop re-reads those attributes exactly once — in the
    # entry guard that revalidates the folded constants; its body runs
    # on literals.
    loop_src = eng.sources["cycle_loop"]
    guard, _, body = loop_src.partition('return self._codegen_deopt("entry"')
    assert f"self.rob_entries != {proc.rob_entries}" in guard
    assert "self.rob_entries" not in body
    assert "self._wheel_mask" not in body
    assert f"not wheel[cyc & {proc._wheel_mask}]" in body
    assert f"r = {proc.rob_entries}" in eng.sources["issue_pipeline"]
    assert "flushing = False" in eng.sources["issue_pipeline"]
    # The word-bounded substitution must not corrupt neighbours of the
    # folded names.
    assert "self._fetch_thread" in eng.sources["fetch"]
    assert "self.rob_head" in eng.sources["commit"]


def test_setup_hook_binds_compiled_engine():
    proc = _proc("2M4+2M2", ("gzip", "twolf"), (0, 2))
    eng = proc._codegen_engine
    assert proc._run_impl.__func__ is eng.cycle_loop
    assert proc._fetch_impl.__func__ is eng.fetch
    assert proc._issue_impl.__func__ is eng.issue
    assert proc._commit_impl.__func__ is eng.commit
    assert proc._issue.__func__ is eng.issue_pipeline
    assert proc.codegen_deopts == {}
    generic = _proc("2M4+2M2", ("gzip", "twolf"), (0, 2), options=CODEGEN_OFF)
    assert generic._run_impl.__func__ is Processor._generic_run
    assert not hasattr(generic, "_codegen_engine")


@pytest.mark.parametrize(
    "name,benches,mapping",
    [
        ("M8", ("mcf", "twolf"), (0, 0)),
        ("3M4", ("gzip", "twolf", "bzip2"), (0, 1, 2)),
        ("2M4+2M2", ("gzip", "twolf", "bzip2", "mcf"), (0, 1, 2, 3)),
        ("1M6+2M4+2M2", ("gzip", "gcc", "crafty", "eon", "gap", "bzip2"),
         (0, 0, 1, 2, 3, 4)),
    ],
)
def test_full_run_bit_identical_to_generic(name, benches, mapping):
    candidate = _proc(name, benches, mapping)
    candidate.warm()
    candidate.run()
    reference = _proc(name, benches, mapping, options=CODEGEN_OFF)
    reference.warm()
    reference.run()
    assert _final_state(candidate) == _final_state(reference)


def test_step_bit_identical_to_generic():
    candidate = _proc("2M4+2M2", ("gzip", "mcf"), (0, 2), target=10**9)
    reference = _proc(
        "2M4+2M2", ("gzip", "mcf"), (0, 2), target=10**9, options=CODEGEN_OFF
    )
    candidate.warm()
    reference.warm()
    for cycle in range(300):
        candidate.step()
        reference.step()
        assert candidate.cycle == reference.cycle
        assert candidate.committed == reference.committed
        assert candidate._rob_state == reference._rob_state
        assert candidate.events == reference.events, f"cycle {cycle}"


def test_entry_guard_deopts_on_wrong_shape():
    """A compiled loop invoked on a processor of a different shape must
    revalidate its folded constants, deopt before touching state, and
    produce the generic result."""
    four = _proc("2M4+2M2", ("gzip", "twolf", "bzip2", "mcf"), (0, 1, 2, 3))
    two = _proc("2M4+2M2", ("gzip", "mcf"), (0, 2))
    assert four._codegen_engine is not two._codegen_engine
    victim = _proc("2M4+2M2", ("gzip", "mcf"), (0, 2))
    victim._run_impl = four._codegen_engine.cycle_loop.__get__(victim)
    victim.warm()
    victim.run()
    assert victim.codegen_deopts.get("entry") == 1
    reference = _proc("2M4+2M2", ("gzip", "mcf"), (0, 2), options=CODEGEN_OFF)
    reference.warm()
    reference.run()
    assert _final_state(victim) == _final_state(reference)


def test_dump_sources_writes_generated_files(tmp_path, monkeypatch):
    codegen.clear_codegen_cache()
    monkeypatch.setenv("REPRO_CODEGEN_DUMP", str(tmp_path))
    proc = _proc("2M4+2M2", ("gzip", "mcf"), (0, 2))
    eng = proc._codegen_engine
    written = sorted(p.name for p in tmp_path.iterdir())
    assert written == sorted(
        f"{eng.token}__{name}.py" for name in eng.sources
    )
    for name, src in eng.sources.items():
        assert (tmp_path / f"{eng.token}__{name}.py").read_text() == src
    # And each dumped source is syntactically valid Python.
    for path in tmp_path.iterdir():
        compile(path.read_text(), str(path), "exec")
