"""Differential golden test: column-backed fetch ≡ the tuple-list path.

The fetch engine now indexes lazily-decoded blocks over the packed int64
columns. Its license is exactness: for the same (config, workload,
mapping), a simulation whose fetch blocks decode from *columns*
(store-served, mmap-backed traces) must be bit-identical — IPC, cycles,
per-thread commit counts, branch statistics, every stat in the result —
to one whose blocks slice out of the *tuple lists* the seed fetch loop
indexed (generated, list-backed traces).

Covered scenarios: the reference scenario pinned by the screening
equivalence contract, plus one workload per class (ILP / MEM / MIX) on
both a multipipeline configuration and the monolithic M8 baseline (which
exercises the specialized single-pipeline fetch path).
"""

import pytest

from repro.core.processor import clear_warm_cache
from repro.core.simulation import run_simulation
from repro.trace.stream import (
    FETCH_BLOCK,
    clear_trace_cache,
    numpy_decode_active,
    set_numpy_decode,
    set_trace_store,
    trace_for,
)

#: (config, workload benchmarks, mapping, commit target)
SCENARIOS = {
    # The reference scenario (screening-contract configuration family).
    "reference": ("2M4+2M2", ("gzip", "twolf", "bzip2", "mcf"),
                  (0, 2, 1, 3), 2000),
    # One workload per class — 4W1 (ILP), 4W4 (MEM), 4W8 (MIX).
    "ILP-4W1": ("2M4+2M2", ("eon", "gcc", "gzip", "bzip2"),
                (0, 1, 2, 3), 1500),
    "MEM-4W4": ("2M4+2M2", ("mcf", "twolf", "vpr", "perlbmk"),
                (0, 1, 2, 3), 1500),
    "MIX-4W8": ("2M4+2M2", ("parser", "vpr", "vortex", "twolf"),
                (0, 1, 2, 3), 1500),
    # Monolithic baseline: the specialized single-pipeline fetch path.
    "M8-MIX": ("M8", ("gzip", "twolf", "bzip2", "mcf"),
               (0, 0, 0, 0), 1500),
}


@pytest.fixture(autouse=True)
def _clean_state(clean_sim_state):
    """Fresh caches before each scenario; the shared conftest fixture
    restores global state afterwards."""
    set_trace_store(None)
    clear_trace_cache()
    clear_warm_cache()
    yield


def _tuple_backed_run(scenario, tmp_path):
    """Generate traces in-process (list-backed) — fetch blocks slice the
    tuple lists — and persist them so the column run can mmap them."""
    config, benchmarks, mapping, target = scenario
    set_trace_store(tmp_path, save_on_generate=True)
    result = run_simulation(config, benchmarks, mapping, target)
    # Confirm the backing really was the tuple lists.
    for name in set(benchmarks):
        assert trace_for(name, max(4096, target))._entries is not None
    return result


def _column_backed_run(scenario, tmp_path):
    """Serve every trace from the store (mmap) — fetch blocks decode
    from the packed int64 columns; tuple lists never materialize."""
    config, benchmarks, mapping, target = scenario
    clear_trace_cache()
    clear_warm_cache()
    set_trace_store(tmp_path, save_on_generate=False)
    result = run_simulation(config, benchmarks, mapping, target)
    for name in set(benchmarks):
        trace = trace_for(name, max(4096, target))
        assert trace.packed is not None, "trace was not store-served"
        assert trace._entries is None, "column path materialized tuples"
    return result


@pytest.fixture
def _numpy_decode():
    """Force the numpy block-decode path for one test (skips when numpy
    is absent — the pure-python transpose is then the only path)."""
    if not set_numpy_decode(True):
        pytest.skip("numpy unavailable: no numpy decode path to compare")
    yield
    set_numpy_decode(False)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_column_fetch_bit_identical_to_tuple_fetch(scenario, tmp_path):
    ref = _tuple_backed_run(SCENARIOS[scenario], tmp_path)
    col = _column_backed_run(SCENARIOS[scenario], tmp_path)
    # Full SimResult equality covers everything below; the named
    # assertions exist so a regression reports *what* diverged.
    assert col.ipc == ref.ipc
    assert col.cycles == ref.cycles
    assert col.committed == ref.committed
    assert col.thread_ipc == ref.thread_ipc
    for key in ("branch_mispredict_rate", "mispredicts", "flushes",
                "squashed", "wrongpath_fetched", "fetched",
                "icache_stalls", "btb_bubbles"):
        assert col.stats[key] == ref.stats[key], key
    assert col == ref


# ------------------------------------------------- numpy decode fast path


def test_numpy_decode_blocks_identical_to_zip(tmp_path, _numpy_decode):
    """The numpy transpose must produce *indistinguishable* blocks —
    exact tuples of exact python ints — for every block of a store-served
    trace, entry and junk pools alike (including the ragged final
    block)."""
    set_trace_store(tmp_path, save_on_generate=True)
    trace_for("gcc", 3 * FETCH_BLOCK // 2)  # ragged: 1.5 blocks
    clear_trace_cache()
    set_trace_store(tmp_path, save_on_generate=False)
    trace = trace_for("gcc", 3 * FETCH_BLOCK // 2)
    assert trace.packed is not None and trace._entries is None
    eblocks, jblocks = trace.fetch_view()
    for b in range(len(eblocks)):
        set_numpy_decode(True)
        np_blk = trace.entry_block(b)
        set_numpy_decode(False)
        trace._entry_blocks[b] = None
        zip_blk = trace.entry_block(b)
        set_numpy_decode(True)
        assert np_blk == zip_blk
        for np_e, zip_e in zip(np_blk, zip_blk):
            assert type(np_e) is type(zip_e) is tuple
            assert all(type(v) is int for v in np_e)
    for b in range(len(jblocks)):
        set_numpy_decode(True)
        np_blk = trace.junk_block(b)
        set_numpy_decode(False)
        trace._junk_blocks[b] = None
        zip_blk = trace.junk_block(b)
        set_numpy_decode(True)
        assert np_blk == zip_blk


@pytest.mark.parametrize("scenario", ["reference", "M8-MIX"])
def test_numpy_decode_simulation_bit_identical(scenario, tmp_path,
                                               _numpy_decode):
    """End-to-end differential: a column-backed simulation decoding via
    numpy equals the tuple-backed reference bit for bit."""
    set_numpy_decode(False)
    ref = _tuple_backed_run(SCENARIOS[scenario], tmp_path)
    set_numpy_decode(True)
    col = _column_backed_run(SCENARIOS[scenario], tmp_path)
    assert numpy_decode_active()
    assert col == ref
