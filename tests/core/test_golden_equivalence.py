"""Golden-equivalence anchors for the fast-path engine.

The timing-wheel + idle-cycle-skip + warm-cache engine must be
*bit-identical* to the seed engine: the golden numbers below were
recorded by running the seed implementation (commit e6236c8, dict event
map, no skipping) on fixed (config, workload, mapping) triples. Any
drift in ``cycles``, ``committed``, ``ipc`` or any statistic is a
modeling change, not an optimization, and must fail here.
"""

import pytest

from repro.core.config import get_config
from repro.core.processor import Processor, clear_warm_cache
from repro.core.simulation import run_simulation

# (config, benchmarks, mapping, commit_target) -> seed-engine outcome.
GOLDEN = [
    {
        "config": "M8",
        "benchmarks": ("mcf", "twolf"),
        "mapping": (0, 0),
        "target": 2000,
        "cycles": 4667,
        "committed": (206, 2001),
        "ipc": 0.4728947932290551,
        "stats": {
            "l1d_miss_rate": 0.25248618784530386,
            "l1i_miss_rate": 0.0,
            "l2_miss_rate": 0.3479212253829322,
            "dtlb_miss_rate": 0.041988950276243095,
            "branch_mispredict_rate": 0.03187546330615271,
            "mispredicts": 56.0,
            "flushes": 108.0,
            "squashed": 12420.0,
            "wrongpath_fetched": 6221.0,
            "fetched": 14693.0,
            "icache_stalls": 0.0,
            "btb_bubbles": 2.0,
        },
    },
    {
        "config": "2M4+2M2",
        "benchmarks": ("gzip", "twolf", "bzip2", "mcf"),
        "mapping": (0, 2, 1, 3),
        "target": 2000,
        "cycles": 3364,
        "committed": (1473, 277, 2000, 206),
        "ipc": 1.1759809750297265,
        "stats": {
            "l1d_miss_rate": 0.15718654434250764,
            "l1i_miss_rate": 0.017939518195797026,
            "l2_miss_rate": 0.2945205479452055,
            "dtlb_miss_rate": 0.04342507645259939,
            "branch_mispredict_rate": 0.0718562874251497,
            "mispredicts": 52.0,
            "flushes": 0.0,
            "squashed": 2787.0,
            "wrongpath_fetched": 2803.0,
            "fetched": 7003.0,
            "icache_stalls": 35.0,
            "btb_bubbles": 11.0,
        },
    },
    {
        "config": "1M6+2M4+2M2",
        "benchmarks": ("eon", "gcc", "vpr", "perlbmk", "crafty", "bzip2"),
        "mapping": (0, 0, 1, 2, 1, 2),
        "target": 1500,
        "cycles": 1187,
        "committed": (236, 657, 125, 255, 53, 1500),
        "ipc": 2.380791912384162,
        "stats": {
            "l1d_miss_rate": 0.08548387096774193,
            "l1i_miss_rate": 0.010434782608695653,
            "l2_miss_rate": 0.3305084745762712,
            "dtlb_miss_rate": 0.01532258064516129,
            "branch_mispredict_rate": 0.0942622950819672,
            "mispredicts": 40.0,
            "flushes": 0.0,
            "squashed": 1581.0,
            "wrongpath_fetched": 1581.0,
            "fetched": 4613.0,
            "icache_stalls": 12.0,
            "btb_bubbles": 8.0,
        },
    },
]

_IDS = [g["config"] for g in GOLDEN]


@pytest.mark.parametrize("golden", GOLDEN, ids=_IDS)
def test_engine_matches_seed_golden(golden):
    """Exact seed-engine reproduction: cycles, commits, IPC, every stat."""
    r = run_simulation(
        golden["config"], golden["benchmarks"], golden["mapping"], golden["target"]
    )
    assert r.cycles == golden["cycles"]
    assert r.committed == golden["committed"]
    assert r.ipc == golden["ipc"]
    assert r.stats == golden["stats"]


@pytest.mark.parametrize("golden", GOLDEN, ids=_IDS)
def test_warm_cache_restore_is_exact(golden):
    """The memoized warm snapshot restores to a bit-identical run."""
    clear_warm_cache()
    cold = run_simulation(
        golden["config"], golden["benchmarks"], golden["mapping"], golden["target"]
    )
    cached = run_simulation(
        golden["config"], golden["benchmarks"], golden["mapping"], golden["target"]
    )
    assert cached == cold


def _observable_state(proc: Processor) -> dict:
    return {
        "cycle": proc.cycle,
        "committed": tuple(proc.committed),
        "fetched": tuple(proc.stat_fetched),
        "wrongpath": tuple(proc.stat_wrongpath_fetched),
        "mispredicts": tuple(proc.stat_mispredicts),
        "flushes": tuple(proc.stat_flushes),
        "squashed": tuple(proc.stat_squashed),
        "icache_stalls": proc.stat_icache_stalls,
        "btb_bubbles": proc.stat_btb_bubbles,
        "phys_free": proc.phys_free,
        "finished": proc.finished,
        "l1d": (proc.mem.l1d.stats.accesses, proc.mem.l1d.stats.misses),
        "l2": (proc.mem.l2.stats.accesses, proc.mem.l2.stats.misses),
        "branch": (
            proc.branch_unit.predictor.lookups,
            proc.branch_unit.predictor.mispredicts,
        ),
    }


@pytest.mark.parametrize(
    "config_name, benchmarks, mapping",
    [
        ("M8", ("mcf", "twolf"), (0, 0)),
        ("2M4+2M2", ("gzip", "mcf"), (0, 2)),
    ],
)
def test_idle_skip_equals_pure_stepping(config_name, benchmarks, mapping,
                                        tiny_traces):
    """run() (with idle-cycle skipping) must match a pure step() loop."""
    cfg = get_config(config_name)

    def build():
        return Processor(cfg, tiny_traces(benchmarks, 3000), mapping,
                         commit_target=1200)

    fast = build()
    fast.warm()
    fast.run()

    slow = build()
    slow.warm()
    max_cycles = 400 * slow.commit_target + 10_000
    while not slow.finished and slow.cycle < max_cycles:
        slow.step()

    assert _observable_state(fast) == _observable_state(slow)


def test_max_cycles_cap_not_overshot_by_idle_skip(tiny_traces):
    """Regression (idle-skip jumps must clamp to the safety cap): a run
    that cannot reach its commit target stops at *exactly* max_cycles,
    as the seed's one-cycle-at-a-time loop did."""
    cfg = get_config("M8")  # FLUSH policy: long fully-idle stretches
    cap = 777

    proc = Processor(cfg, tiny_traces(("mcf", "twolf"), 2000), (0, 0),
                     commit_target=10**9)
    proc.warm()
    returned = proc.run(max_cycles=cap)
    assert returned == proc.cycle == cap
    assert not proc.finished

    # And the capped fast run matches a capped pure-step run exactly.
    slow = Processor(cfg, tiny_traces(("mcf", "twolf"), 2000), (0, 0),
                     commit_target=10**9)
    slow.warm()
    while not slow.finished and slow.cycle < cap:
        slow.step()
    assert _observable_state(proc) == _observable_state(slow)


def test_default_cap_accounts_for_skipped_cycles(tiny_traces):
    """run() without an explicit cap still honours 400*target + 10_000."""
    cfg = get_config("M8")
    proc = Processor(cfg, tiny_traces(("mcf",), 1500), (0,), commit_target=10)
    proc.warm()
    proc.run()
    assert proc.cycle <= 400 * 10 + 10_000


@pytest.mark.parametrize(
    "benchmarks, mapping, target",
    [
        (("mcf", "twolf"), (0, 0), 1200),
        (("gzip", "twolf", "bzip2", "mcf"), (0, 0, 0, 0), 1000),
        # Six threads overcommit M8's contexts: threads-per-cycle binds
        # in rename, the rotor wraps a longer thread list.
        (("gzip", "gcc", "crafty", "eon", "gap", "bzip2"),
         (0,) * 6, 800),
    ],
)
def test_mono_stages_equal_generic_stages(benchmarks, mapping, target,
                                          tiny_traces):
    """The specialized single-pipeline commit/fetch stages must be
    indistinguishable from the generic stages they shadow. _commit_mono
    and _fetch_mono are deliberate hot-path copies of _commit/_fetch
    with the pipeline loop collapsed — this test is the contract that
    keeps the copies honest: any semantic fix applied to one but not
    the other diverges here immediately."""
    cfg = get_config("M8")

    mono = Processor(cfg, tiny_traces(benchmarks, 3000), mapping, target)
    assert mono._commit_impl.__func__ is Processor._commit_mono
    assert mono._fetch_impl.__func__ is Processor._fetch_mono
    mono.warm()
    mono.run()

    generic = Processor(cfg, tiny_traces(benchmarks, 3000), mapping, target)
    # Force the generic multi-pipeline stages onto the same machine.
    generic._commit_impl = generic._commit
    generic._fetch_impl = generic._fetch
    generic.warm()
    generic.run()

    assert _observable_state(mono) == _observable_state(generic)
