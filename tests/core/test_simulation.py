"""Unit tests: the run_simulation / run_workload entry points."""

import pytest

from repro.core.config import get_config
from repro.core.simulation import default_trace_length, run_simulation, run_workload


def test_run_simulation_basic():
    r = run_simulation("M8", ["eon"], (0,), commit_target=1500)
    assert r.config_name == "M8"
    assert r.benchmarks == ("eon",)
    assert r.committed[0] >= 1500
    assert r.ipc > 0.5
    assert r.cycles > 0
    assert len(r.thread_ipc) == 1
    assert r.thread_ipc[0] == pytest.approx(r.committed[0] / r.cycles)


def test_run_simulation_accepts_config_object():
    cfg = get_config("2M4+2M2")
    r = run_simulation(cfg, ["eon", "gzip"], (0, 1), commit_target=800)
    assert r.config_name == "2M4+2M2"
    assert r.num_threads == 2


def test_stop_rule_first_finisher():
    r = run_simulation("M8", ["eon", "mcf"], (0, 0), commit_target=1200)
    # eon finishes first; mcf must be far behind.
    assert max(r.committed) >= 1200
    assert min(r.committed) < 1200


def test_aggregate_ipc_is_sum_over_cycles():
    r = run_simulation("M8", ["eon", "gzip"], (0, 0), commit_target=1000)
    assert r.ipc == pytest.approx(sum(r.committed) / r.cycles)


def test_repeated_benchmark_gets_distinct_instances():
    r = run_simulation("M8", ["gzip", "gzip"], (0, 0), commit_target=800)
    # Distinct trace instances: the two threads should not be in lockstep.
    assert r.committed[0] != r.committed[1] or r.thread_ipc[0] != r.thread_ipc[1]


def test_warmup_improves_short_run_ipc():
    warm = run_simulation("M8", ["gzip"], (0,), commit_target=1000, warmup=True)
    cold = run_simulation("M8", ["gzip"], (0,), commit_target=1000, warmup=False)
    assert warm.ipc > cold.ipc


def test_stats_exposed():
    r = run_simulation("M8", ["twolf"], (0,), commit_target=800)
    for key in ("l1d_miss_rate", "branch_mispredict_rate", "flushes", "fetched"):
        assert key in r.stats
    assert r.stats["fetched"] >= r.committed[0]


def test_run_workload_monolithic_and_heuristic():
    r = run_workload("M8", ["eon", "gzip"], commit_target=600)
    assert r.mapping == (0, 0)
    r2 = run_workload("2M4+2M2", ["eon", "mcf"], commit_target=600)
    # eon (fewest misses) on an M4 (0/1), mcf elsewhere.
    assert r2.mapping[0] in (0, 1)
    assert r2.mapping != (0, 0)


def test_default_trace_length():
    assert default_trace_length(10_000) == 10_000
    assert default_trace_length(100) == 4096


def test_describe_smoke():
    r = run_simulation("M8", ["eon"], (0,), commit_target=500)
    s = r.describe()
    assert "M8" in s and "IPC" in s
