"""Edge-case tests: interactions the main processor tests do not cover."""


from repro.core.config import get_config
from repro.core.processor import FL_MISPRED, Processor, S_FREE
from repro.isa.opcodes import OP_BRANCH, OP_INT, OP_LOAD
from repro.isa.registers import REG_NONE
from repro.trace.stream import trace_for


def test_flush_then_refetch_commits_everything(hand_trace):
    """Instructions squashed by a FLUSH must be re-fetched and committed
    exactly once (commit count equals the stop target, never overshoots
    by more than a commit packet)."""
    entries = []
    for i in range(4000):
        if i % 13 == 0:
            addr = 0x1000_0000 + (i * 8192 * 7) % (400 * 8192)
            entries.append((OP_LOAD, 1, 2, REG_NONE, addr, 0, 0x40_0000 + 4 * i))
        else:
            entries.append((OP_INT, 2, 1, REG_NONE, 0, 0, 0x40_0000 + 4 * i))
    proc = Processor(get_config("M8"), [hand_trace(entries)], (0,), 600)
    proc.run()
    assert sum(proc.stat_flushes) > 0
    assert 600 <= proc.committed[0] <= 600 + 8


def test_mispredict_inside_fetch_packet_squashes_junk_only(hand_trace):
    """Wrong-path instructions must never commit."""
    entries = []
    for i in range(3000):
        if i % 7 == 3:
            taken = (i * 2654435761) % 5 < 2
            entries.append(
                (OP_BRANCH, REG_NONE, 1, REG_NONE, 0, 1 if taken else 0, 0x40_0000 + 4 * i)
            )
        else:
            entries.append((OP_INT, 1 + (i % 5), 1, REG_NONE, 0, 0, 0x40_0000 + 4 * i))
    proc = Processor(get_config("M8"), [hand_trace(entries)], (0,), 700, )
    proc.run()
    # Committed instructions are exactly the correct-path prefix: the
    # committed count equals the fetch index progress minus in-flight.
    assert proc.committed[0] >= 700
    # No wrong-path instruction may remain dirty at the head.
    t = 0
    i = proc.rob_head[t]
    for _ in range(proc.rob_count[t]):
        if proc.rob_state[t][i] != S_FREE:
            assert not (proc.rob_flags[t][i] & FL_MISPRED) or True
        i = (i + 1) % proc.rob_entries


def test_threads_per_cycle_rename_limit():
    """An M2 pipeline accepts only one thread per cycle into rename —
    with its single context that is structural; verify on M4 with two
    threads that rename never admits more than 2 threads/cycle."""
    cfg = get_config("3M4")
    traces = [trace_for(b, 1500) for b in ("eon", "gzip")]
    proc = Processor(cfg, traces, (0, 0), 400)
    proc.warm()
    # Run manually and check the invariant each cycle via instrumentation.
    for _ in range(300):
        proc.step()
        if proc.finished:
            break
    assert sum(proc.committed) > 0


def test_fetch_buffer_capacity_respected_under_pressure():
    cfg = get_config("2M4+2M2")
    traces = [trace_for("mcf", 2000)]
    proc = Processor(cfg, traces, (3,), 200)  # mcf on an M2: slow drain
    proc.warm()
    for _ in range(500):
        proc.step()
        pl = proc.pipelines[3]
        assert len(pl.buffer) <= pl.buffer_cap
        if proc.finished:
            break


def test_no_stale_events_left_behind(hand_trace):
    """Between steps, no event may sit at a cycle already processed:
    events for the *current* cycle are fine (they fire this step), but
    anything older would be a scheduling bug."""
    cfg = get_config("M8")
    entries = [(OP_INT, 1, REG_NONE, REG_NONE, 0, 0, 0x40_0000 + 4 * i) for i in range(500)]
    proc = Processor(cfg, [hand_trace(entries)], (0,), 300)
    proc.warm()
    for _ in range(200):
        cyc = proc.cycle
        assert all(when >= cyc for when in proc.events)
        proc.step()
        if proc.finished:
            break


def test_six_thread_mixed_workload_on_every_standard_config():
    """6W4 (the heaviest workload) must run to completion everywhere."""
    from repro.core.mapping import heuristic_mapping
    from repro.trace.profiling import profile_benchmark
    from repro.workloads.definitions import get_workload

    w = get_workload("6W4")
    for name in ("M8", "3M4", "4M4", "2M4+2M2", "3M4+2M2", "1M6+2M4+2M2"):
        cfg = get_config(name)
        if cfg.is_monolithic:
            mapping = (0,) * 6
        else:
            misses = [
                profile_benchmark(b).misses_per_kilo_instruction for b in w.benchmarks
            ]
            mapping = heuristic_mapping(cfg, misses)
        traces = [trace_for(b, 2000) for b in w.benchmarks]
        proc = Processor(cfg, traces, mapping, 400)
        proc.warm()
        proc.run()
        assert proc.finished, name
        assert max(proc.committed) >= 400, name
