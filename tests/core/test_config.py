"""Unit tests: microarchitecture configurations."""

import pytest

from repro.core.config import (
    STANDARD_CONFIG_NAMES,
    STANDARD_CONFIGS,
    get_config,
    parse_config_name,
)


def test_standard_set_matches_fig3():
    assert set(STANDARD_CONFIG_NAMES) == {
        "M8",
        "3M4",
        "4M4",
        "2M4+2M2",
        "3M4+2M2",
        "1M6+2M4+2M2",
    }


def test_parse_config_name():
    pipes = parse_config_name("2M4+2M2")
    assert [p.name for p in pipes] == ["M4", "M4", "M2", "M2"]
    pipes = parse_config_name("1M6+2M4+2M2")
    assert [p.name for p in pipes] == ["M6", "M4", "M4", "M2", "M2"]
    assert [p.name for p in parse_config_name("M8")] == ["M8"]


def test_parse_errors():
    with pytest.raises(ValueError):
        parse_config_name("2X4")
    with pytest.raises(KeyError):
        parse_config_name("2M5")
    with pytest.raises(ValueError):
        parse_config_name("0M4")


def test_m8_baseline_flags():
    m8 = get_config("M8")
    assert m8.is_monolithic
    assert m8.fetch_policy == "flush"
    assert m8.params.reg_latency == 1
    assert m8.allow_context_overcommit


def test_multipipeline_flags():
    for name in ("3M4", "4M4", "2M4+2M2", "3M4+2M2", "1M6+2M4+2M2"):
        cfg = get_config(name)
        assert not cfg.is_monolithic
        assert cfg.fetch_policy == "l1mcount"
        assert cfg.params.reg_latency == 2
        assert cfg.params.extra_reg_cycles == 1


def test_context_overcommit_only_for_monolithic_m8():
    """§3: the baseline runs 6-thread workloads on 4 contexts for free."""
    m8 = get_config("M8")
    assert m8.contexts_for(6) == 6
    assert m8.contexts_for(2) == 4
    hd = get_config("2M4+2M2")
    assert hd.contexts_for(6) == 6  # 2+2+1+1 real contexts
    assert hd.contexts_for(8) == 6


def test_total_width_and_contexts():
    cfg = get_config("1M6+2M4+2M2")
    assert cfg.total_contexts == 2 + 2 + 2 + 1 + 1
    assert cfg.total_width == 6 + 4 + 4 + 2 + 2


def test_pipeline_counts():
    assert get_config("2M4+2M2").pipeline_counts() == {"M4": 2, "M2": 2}


def test_synthesized_config():
    cfg = get_config("1M6+1M2")
    assert [p.name for p in cfg.pipelines] == ["M6", "M2"]
    assert cfg.params.reg_latency == 2


def test_describe_smoke():
    assert "fetch=flush" in get_config("M8").describe()


def test_standard_configs_frozen_identity():
    assert get_config("3M4") is STANDARD_CONFIGS["3M4"]


def test_invalid_fetch_policy_rejected():
    from dataclasses import replace

    with pytest.raises(ValueError):
        replace(get_config("3M4"), fetch_policy="bogus")
