"""On-disk warm snapshots and packed-trace-backed golden equivalence.

The acceptance bar for the packed/warm machinery: the golden scenarios
must stay bit-identical when traces arrive through the packed store and
warm state arrives through the snapshot store — and corruption anywhere
degrades to recompute, never to different numbers.
"""

import pytest

from repro.core.processor import (
    clear_warm_cache,
    ensure_warm_snapshot,
    set_warm_store,
    warm_snapshot_path,
)
from repro.core.simulation import run_simulation
from repro.memory.hierarchy import MemoryParams
from repro.trace.stream import clear_trace_cache, set_trace_store, trace_for

GOLDEN_CONFIG = "2M4+2M2"
GOLDEN_WORKLOAD = ("gzip", "twolf", "bzip2", "mcf")
GOLDEN_MAPPING = (0, 2, 1, 3)
GOLDEN_TARGET = 2000


# Store deactivation + cache clearing after every test comes from the
# shared conftest fixture.
pytestmark = pytest.mark.usefixtures("clean_sim_state")


def _golden_run():
    return run_simulation(
        GOLDEN_CONFIG, GOLDEN_WORKLOAD, GOLDEN_MAPPING, GOLDEN_TARGET
    )


def test_golden_equivalence_through_packed_store(tmp_path):
    """Simulating from store-served (mmap) traces is bit-identical."""
    reference = _golden_run()

    clear_trace_cache()
    clear_warm_cache()
    set_trace_store(tmp_path, save_on_generate=True)
    populated = _golden_run()  # generates + persists packed traces

    clear_trace_cache()
    clear_warm_cache()
    set_trace_store(tmp_path, save_on_generate=False)
    served = _golden_run()  # every trace mmap-loaded from the store

    assert populated == reference
    assert served == reference


def test_golden_equivalence_through_warm_store(tmp_path):
    """Restoring warm state from a disk snapshot is bit-identical."""
    reference = _golden_run()

    clear_warm_cache()
    set_warm_store(str(tmp_path))
    first = _golden_run()  # computes + persists the snapshot
    assert list(tmp_path.glob("*.warm"))

    clear_warm_cache()  # force the disk path
    second = _golden_run()

    assert first == reference
    assert second == reference


def test_corrupted_warm_snapshot_recomputes(tmp_path):
    reference = _golden_run()
    clear_warm_cache()
    set_warm_store(str(tmp_path))
    _golden_run()
    for snap in tmp_path.glob("*.warm"):
        snap.write_bytes(b"\x00garbage")
    clear_warm_cache()
    assert _golden_run() == reference


def test_parent_precomputed_snapshot_matches_worker_computation(tmp_path):
    """ensure_warm_snapshot (the BatchRunner parent's pre-warm) writes
    the byte-for-byte snapshot a Processor would have written."""
    traces = [trace_for(b, 3000) for b in GOLDEN_WORKLOAD]
    params = MemoryParams()
    assert ensure_warm_snapshot(str(tmp_path), params, traces)
    path = warm_snapshot_path(
        str(tmp_path), params, len(traces), [t.key for t in traces]
    )
    first = open(path, "rb").read()

    # A processor warming the same set through the store must agree (it
    # loads the snapshot; recomputation would produce identical bytes).
    clear_warm_cache()
    set_warm_store(str(tmp_path))
    res_a = run_simulation(
        GOLDEN_CONFIG, GOLDEN_WORKLOAD, GOLDEN_MAPPING, 1500, trace_length=3000
    )
    assert open(path, "rb").read() == first

    clear_warm_cache()
    set_warm_store(None)
    res_b = run_simulation(
        GOLDEN_CONFIG, GOLDEN_WORKLOAD, GOLDEN_MAPPING, 1500, trace_length=3000
    )
    assert res_a == res_b


def test_hand_built_traces_skip_the_warm_store(tmp_path):
    """Traces without a content key (hand-built) never hit the disk."""
    from repro.core.config import get_config
    from repro.core.processor import Processor
    from repro.trace.benchmarks import get_benchmark
    from repro.trace.stream import Trace

    base = trace_for("gzip", 2000)
    hand = Trace("hand", get_benchmark("gzip"), list(base.entries),
                 list(base.junk))
    assert hand.key is None
    set_warm_store(str(tmp_path))
    proc = Processor(get_config("M8"), [hand], (0,), 500)
    proc.warm()
    assert not list(tmp_path.glob("*.warm"))
