"""EngineOptions: the typed engine-tuning switchboard.

Pins the consolidation contract: env vars remain the fallback spelling,
``set_engine_options`` is the one switchboard (and syncs the trace
module's numpy toggle), per-config options override the process
default, and none of it may leak into config identity (repr/equality/
hash — and therefore cache keys).
"""

import pytest

from repro.core.config import MicroarchConfig, get_config
from repro.core.engine.options import (
    EngineOptions,
    default_engine_options,
    engine_options_for,
    engine_variant_id,
    set_engine_options,
)
from repro.trace.stream import numpy_decode_active, set_numpy_decode

from dataclasses import replace


@pytest.fixture(autouse=True)
def _restore_process_options():
    yield
    set_engine_options(None)
    set_numpy_decode(False)


def test_from_env_reads_both_flags(monkeypatch):
    monkeypatch.delenv("REPRO_NUMPY_DECODE", raising=False)
    monkeypatch.delenv("REPRO_CODEGEN", raising=False)
    assert EngineOptions.from_env() == EngineOptions(False, False)
    monkeypatch.setenv("REPRO_CODEGEN", "1")
    assert EngineOptions.from_env() == EngineOptions(numpy_decode=False, codegen=True)
    monkeypatch.setenv("REPRO_NUMPY_DECODE", "1")
    monkeypatch.setenv("REPRO_CODEGEN", "0")
    assert EngineOptions.from_env() == EngineOptions(numpy_decode=True, codegen=False)


def test_from_env_accepts_explicit_mapping():
    opts = EngineOptions.from_env({"REPRO_CODEGEN": "1"})
    assert opts == EngineOptions(codegen=True)


def test_default_options_fall_back_to_env(monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN", "1")
    set_engine_options(None)
    assert default_engine_options().codegen is True
    monkeypatch.delenv("REPRO_CODEGEN")
    assert default_engine_options().codegen is False


def test_set_engine_options_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN", "1")
    active = set_engine_options(EngineOptions(codegen=False))
    assert active.codegen is False
    assert default_engine_options().codegen is False


def test_set_engine_options_syncs_numpy_decode():
    baseline = set_numpy_decode(True)  # False when numpy is absent
    set_engine_options(EngineOptions(numpy_decode=False))
    assert numpy_decode_active() is False
    set_engine_options(EngineOptions(numpy_decode=True))
    assert numpy_decode_active() is baseline


def test_engine_options_for_prefers_config_attached(monkeypatch):
    monkeypatch.delenv("REPRO_CODEGEN", raising=False)
    set_engine_options(None)
    cfg = replace(get_config("M8"), engine_options=EngineOptions(codegen=True))
    assert engine_options_for(cfg).codegen is True
    assert engine_options_for(get_config("M8")).codegen is False
    # Non-config values (string config names in job descriptions) fall
    # back to the process default.
    assert engine_options_for("M8") == default_engine_options()
    assert engine_options_for(None) == default_engine_options()


def test_engine_variant_id_names_codegen():
    assert engine_variant_id(EngineOptions(codegen=False)) == "generic"
    assert engine_variant_id(EngineOptions(codegen=True)) == "codegen-v1"
    set_engine_options(EngineOptions(codegen=True))
    assert engine_variant_id() == "codegen-v1"
    set_engine_options(None)


def test_engine_options_do_not_leak_into_config_identity():
    plain = get_config("M8")
    tuned = replace(plain, engine_options=EngineOptions(codegen=True))
    # repr feeds SimJob cache_key_fields: must stay byte-identical.
    assert repr(tuned) == repr(plain)
    assert tuned == plain
    assert hash(tuned) == hash(plain)
    assert isinstance(tuned, MicroarchConfig)
    assert tuned.engine_options == EngineOptions(codegen=True)
    assert plain.engine_options is None
