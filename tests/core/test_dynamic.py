"""Tests: dynamic thread-to-pipeline remapping (§7 future work)."""

import pytest

from repro.core.config import get_config
from repro.core.dynamic import remap_threads, run_dynamic
from repro.core.processor import Processor
from repro.trace.composite import composite_trace
from repro.trace.stream import trace_for


def test_run_dynamic_basic():
    res = run_dynamic(
        "2M4+2M2",
        ["eon", "mcf"],
        commit_target=1500,
        epoch_cycles=500,
    )
    assert res.result.committed and max(res.result.committed) >= 1500
    assert res.epochs >= 1
    assert res.result.ipc > 0


def test_dynamic_learns_static_heuristic_on_stationary_threads():
    """Stationary behaviour: after the first epochs the dynamic mapping
    must settle on a mapping that keeps the memory hog off the wide
    pipeline (the same bet the static heuristic makes)."""
    res = run_dynamic(
        "2M4+2M2",
        ["eon", "mcf"],
        initial_mapping=(2, 0),  # deliberately backwards: mcf on an M4
        commit_target=2500,
        epoch_cycles=400,
    )
    cfg = get_config("2M4+2M2")
    final = res.mapping_history[-1]
    assert res.remaps >= 1, "the backwards mapping must be corrected"
    assert cfg.pipelines[final[0]].width >= cfg.pipelines[final[1]].width


def test_dynamic_adapts_to_phase_change():
    """A thread that turns memory-bound mid-run loses its dedicated wide
    pipeline — the scenario §7 motivates dynamic mapping with.

    With the paper's heuristic, a 3-thread workload on 2M4+2M2 dedicates
    the widest pipeline to the *best-behaved* thread. Initially that is
    the changing thread (gzip phase, mapped alone on M4[0]); once its mcf
    phase starts the online heuristic must re-rank and demote it to
    sharing, handing the dedicated pipeline to a steady thread.
    """
    length = 24_000
    changing = composite_trace("gzip", "mcf", length, switch_at=3_000)
    steady1 = trace_for("bzip2", length)
    steady2 = trace_for("gap", length)
    res = run_dynamic(
        "2M4+2M2",
        ["changing", "steady1", "steady2"],
        traces=[changing, steady1, steady2],
        initial_mapping=(0, 1, 1),  # changing dedicated, steadies share
        commit_target=10_000,
        epoch_cycles=700,
    )
    final = res.mapping_history[-1]
    assert res.migrations >= 1
    # The changing thread no longer has a pipeline to itself.
    sharers = sum(1 for p in final if p == final[0])
    assert sharers >= 2, f"changing thread still dedicated: {final}"


def test_remap_requires_drained_thread():
    cfg = get_config("2M4+2M2")
    traces = [trace_for("eon", 1500)]
    proc = Processor(cfg, traces, (0,), commit_target=10**9)
    proc.warm()
    for _ in range(60):
        proc.step()
    assert proc.rob_count[0] > 0
    with pytest.raises(RuntimeError):
        remap_threads(proc, (2,))


def test_remap_moves_thread():
    cfg = get_config("2M4+2M2")
    traces = [trace_for("eon", 1500)]
    proc = Processor(cfg, traces, (0,), commit_target=10**9)
    # Never fetched: trivially drained.
    moved = remap_threads(proc, (3,))
    assert moved == 1
    assert proc.pipe_of[0] == 3
    assert 0 in proc.pipelines[3].threads
    assert 0 not in proc.pipelines[0].threads


def test_monolithic_rejected():
    with pytest.raises(ValueError):
        run_dynamic("M8", ["eon"], commit_target=500)


def test_composite_trace_structure():
    t = composite_trace("gzip", "mcf", 2000, switch_at=700)
    assert len(t) == 2000
    assert t.name == "gzip->mcf"
    with pytest.raises(ValueError):
        composite_trace("gzip", "mcf", 1000, switch_at=1000)


def test_composite_trace_changes_memory_behaviour():
    """Phase B (mcf) must produce far more distinct data pages than
    phase A (gzip)."""
    t = composite_trace("gzip", "mcf", 8000, switch_at=4000)
    def pages(entries):
        return {e[4] >> 13 for e in entries if e[0] in (3, 4) and e[4]}
    a = pages(t.entries[:4000])
    b = pages(t.entries[4000:])
    assert len(b) > 2 * len(a)
