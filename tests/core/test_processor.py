"""Unit tests: the multipipeline processor's timing behaviours.

These tests drive the processor with hand-built traces so each modeled
mechanism (dependencies, FU contention, queue capacity, mispredict
squash, FLUSH, register-file tax) is observable in isolation.
"""

import pytest

from repro.core.config import BaselineParams, MicroarchConfig, get_config
from repro.core.models import M2, M8
from repro.core.processor import Processor, S_FREE
from repro.isa.opcodes import OP_BRANCH, OP_INT, OP_LOAD, OP_MUL, OP_STORE
from repro.isa.registers import REG_NONE


@pytest.fixture
def run_m8(hand_trace):
    """Run one hand-built trace on the M8 baseline (shared hand_trace
    factory from tests/conftest.py)."""

    def run(entries, target, warm=True, **cfg_kw):
        cfg = get_config("M8")
        if cfg_kw:
            from dataclasses import replace

            cfg = replace(cfg, **cfg_kw)
        proc = Processor(cfg, [hand_trace(entries)], (0,), target)
        if warm:
            proc.warm()
        proc.run()
        return proc

    return run


def seq_ints(n, independent=True):
    """n INT instructions, independent or a serial chain."""
    out = []
    for i in range(n):
        if independent:
            out.append((OP_INT, 1 + (i % 16), REG_NONE, REG_NONE, 0, 0, 0x40_0000 + 4 * i))
        else:
            out.append((OP_INT, 1, 1, REG_NONE, 0, 0, 0x40_0000 + 4 * i))
    return out


def test_independent_ints_limited_by_int_units(run_m8):
    proc = run_m8(seq_ints(4000), 3000)
    # M8 has 6 integer units; IPC must be ~6, never above.
    assert 5.0 < proc.aggregate_ipc() <= 6.0


def test_serial_chain_one_per_cycle(run_m8):
    proc = run_m8(seq_ints(4000, independent=False), 3000)
    assert proc.aggregate_ipc() == pytest.approx(1.0, abs=0.05)


def test_mul_latency_slows_chain(run_m8):
    entries = [(OP_MUL, 1, 1, REG_NONE, 0, 0, 0x40_0000 + 4 * i) for i in range(2000)]
    proc = run_m8(entries, 1000)
    # 3-cycle multiply chain: 1/3 IPC.
    assert proc.aggregate_ipc() == pytest.approx(1 / 3, abs=0.03)


def test_register_latency_tax(run_m8, hand_trace):
    """reg_latency=2 adds one cycle of result visibility per dependent
    edge: a serial chain halves its throughput."""
    from dataclasses import replace

    chain = seq_ints(2000, independent=False)
    base = run_m8(chain, 1000)
    cfg = get_config("M8")
    taxed_cfg = replace(cfg, params=replace(cfg.params, reg_latency=2))
    proc = Processor(taxed_cfg, [hand_trace(chain)], (0,), 1000)
    proc.warm()
    proc.run()
    assert base.aggregate_ipc() == pytest.approx(1.0, abs=0.05)
    assert proc.aggregate_ipc() == pytest.approx(1 / 2, abs=0.03)


def test_load_hit_latency_chain(run_m8):
    """Chained L1-hit loads: one every l1_latency cycles."""
    entries = [
        (OP_LOAD, 1, 1, REG_NONE, 0x1000_0000, 0, 0x40_0000 + 4 * i) for i in range(2000)
    ]
    proc = run_m8(entries, 600)
    assert proc.aggregate_ipc() == pytest.approx(1 / 3, abs=0.04)


def test_store_retires_through_cache(run_m8):
    entries = []
    for i in range(1000):
        entries.append((OP_STORE, REG_NONE, 1, 2, 0x1000_0000 + (i % 64) * 64, 0, 0x40_0000 + 4 * i))
    proc = run_m8(entries, 500)
    assert proc.mem.l1d.stats.accesses >= 500


def test_commit_in_order_and_complete(run_m8):
    proc = run_m8(seq_ints(3000), 2000)
    assert proc.committed[0] >= 2000
    # After the run, every ROB slot between head and tail is consistent.
    t = 0
    n_inflight = proc.rob_count[t]
    assert 0 <= n_inflight <= proc.rob_entries


def test_mispredict_squashes_and_redirects(run_m8):
    # Alternating branch (learnable) followed by a random-ish pattern the
    # predictor cannot know at first: check wrong-path stats appear.
    entries = []
    for i in range(3000):
        taken = (i * 7919) % 3 == 0  # aperiodic, hard pattern
        entries.append((OP_BRANCH, REG_NONE, 1, REG_NONE, 0, 1 if taken else 0, 0x40_0000 + 4 * i))
    proc = run_m8(entries, 800, warm=False)
    assert sum(proc.stat_mispredicts) > 0
    assert sum(proc.stat_wrongpath_fetched) > 0
    assert sum(proc.stat_squashed) > 0
    assert proc.committed[0] >= 800


def test_flush_triggers_on_l2_miss_loads(run_m8):
    """mcf-like pointer chase on the FLUSH baseline must flush."""
    entries = []
    for i in range(3000):
        addr = 0x1000_0000 + (i * 8192 * 7) % (512 * 8192)  # page-hopping
        entries.append((OP_LOAD, 1, 1, REG_NONE, addr, 0, 0x40_0000 + 4 * (i % 256)))
    proc = run_m8(entries, 300, warm=False)
    assert sum(proc.stat_flushes) > 0


def test_no_flush_on_l1mcount_policy(hand_trace):
    entries = []
    for i in range(2000):
        addr = 0x1000_0000 + (i * 8192 * 7) % (512 * 8192)
        entries.append((OP_LOAD, 1, 1, REG_NONE, addr, 0, 0x40_0000 + 4 * (i % 256)))
    cfg = MicroarchConfig(
        name="m8-l1m", pipelines=(M8,), fetch_policy="l1mcount", params=BaselineParams()
    )
    proc = Processor(cfg, [hand_trace(entries)], (0,), 200)
    proc.run()
    assert sum(proc.stat_flushes) == 0


def test_narrow_pipeline_caps_throughput(hand_trace):
    cfg = MicroarchConfig(
        name="1M2",
        pipelines=(M2,),
        fetch_policy="l1mcount",
        params=BaselineParams(reg_latency=2),
    )
    proc = Processor(cfg, [hand_trace(seq_ints(4000))], (0,), 2000)
    proc.warm()
    proc.run()
    # Width 2, one int unit: IPC <= 1 for pure INT work.
    assert proc.aggregate_ipc() <= 1.01


def test_mapping_validation(hand_trace):
    cfg = get_config("2M4+2M2")
    tr = hand_trace(seq_ints(100))
    with pytest.raises(ValueError):
        Processor(cfg, [tr, tr, tr], (2, 2, 2), 50)  # M2 has 1 context
    with pytest.raises(ValueError):
        Processor(cfg, [tr], (9,), 50)
    with pytest.raises(ValueError):
        Processor(cfg, [], (), 50)


def test_m8_context_overcommit_six_threads(hand_trace):
    cfg = get_config("M8")
    trs = [hand_trace(seq_ints(500)) for _ in range(6)]
    proc = Processor(cfg, trs, (0,) * 6, 100)
    proc.run()
    assert sum(proc.committed) >= 100


def test_fetch_limited_to_8_per_cycle(run_m8):
    proc = run_m8(seq_ints(4000), 2000)
    assert max(proc.stat_fetched) <= 8 * proc.cycle


def test_max_cycles_safety_net(hand_trace):
    proc = Processor(get_config("M8"), [hand_trace(seq_ints(100))], (0,), 10**9)
    cycles = proc.run(max_cycles=50)
    assert cycles == 50
    assert not proc.finished


def test_phys_reg_conservation_after_run(run_m8):
    proc = run_m8(seq_ints(4000), 2000)
    # Free + held-by-in-flight must equal the pool size.
    held = 0
    t = 0
    r = proc.rob_entries
    i = proc.rob_head[t]
    for _ in range(proc.rob_count[t]):
        if proc.rob_state[t][i] != S_FREE and proc.rob_entry[t][i][1] >= 0:
            held += 1
        i = (i + 1) % r
    assert proc.phys_free + held == proc.params.rename_registers
