"""Unit tests: metrics."""

import pytest

from repro.metrics.stats import (
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    heuristic_accuracy,
    performance_per_area,
    relative_improvement,
)


def test_harmonic_mean_known_value():
    assert harmonic_mean([1, 2, 4]) == pytest.approx(3 / (1 + 0.5 + 0.25))


def test_harmonic_of_equal_values():
    assert harmonic_mean([3.3, 3.3]) == pytest.approx(3.3)


def test_mean_ordering():
    vals = [0.5, 1.5, 4.0]
    h = harmonic_mean(vals)
    g = geometric_mean(vals)
    a = arithmetic_mean(vals)
    assert h < g < a


def test_harmonic_dominated_by_slowest():
    # The paper uses hmean precisely because one slow workload drags it.
    assert harmonic_mean([0.1, 10.0]) < 0.2


def test_errors():
    with pytest.raises(ValueError):
        harmonic_mean([])
    with pytest.raises(ValueError):
        harmonic_mean([1.0, 0.0])
    with pytest.raises(ValueError):
        geometric_mean([-1.0])
    with pytest.raises(ValueError):
        arithmetic_mean([])


def test_performance_per_area():
    assert performance_per_area(2.0, 100.0) == pytest.approx(0.02)
    with pytest.raises(ValueError):
        performance_per_area(1.0, 0.0)


def test_relative_improvement():
    assert relative_improvement(1.13, 1.0) == pytest.approx(0.13)
    assert relative_improvement(0.9, 1.0) == pytest.approx(-0.1)
    with pytest.raises(ValueError):
        relative_improvement(1.0, 0.0)


def test_heuristic_accuracy():
    assert heuristic_accuracy([0.92, 1.0], [1.0, 1.0]) == pytest.approx(0.96)
    # Capped at 1 per workload (full runs can jitter above the screen).
    assert heuristic_accuracy([1.1], [1.0]) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        heuristic_accuracy([1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        heuristic_accuracy([], [])
    with pytest.raises(ValueError):
        heuristic_accuracy([1.0], [0.0])
