"""Unit tests: ASCII charts."""

import pytest

from repro.metrics.charts import format_bar_chart, render_figure


def test_bar_lengths_proportional():
    s = format_bar_chart({"a": 1.0, "b": 0.5}, width=40)
    lines = s.splitlines()
    assert lines[0].count("#") == 40
    assert lines[1].count("#") == 20


def test_title_and_values_present():
    s = format_bar_chart({"x": 2.0}, title="T", value_fmt="{:.1f}")
    assert s.splitlines()[0] == "T"
    assert "2.0" in s


def test_empty_and_nonpositive_rejected():
    with pytest.raises(ValueError):
        format_bar_chart({})
    with pytest.raises(ValueError):
        format_bar_chart({"a": 0.0})


def test_render_figure_groups():
    data = {
        "2 THREADS": {"M8": {"HEUR": 2.0}, "3M4": {"HEUR": 1.0}},
        "HMEAN": {"M8": {"HEUR": 1.5}},
    }
    s = render_figure(["2 THREADS", "HMEAN"], ["M8", "3M4"], data, width=30)
    assert "-- 2 THREADS --" in s and "-- HMEAN --" in s
    lines = [ln for ln in s.splitlines() if "|" in ln]
    assert lines[0].count("#") == 30  # the max value spans the full width
    assert lines[1].count("#") == 15


def test_render_figure_missing_series_raises():
    with pytest.raises(ValueError):
        render_figure(["G"], ["A"], {"G": {"A": {"BEST": 1.0}}}, which="HEUR")


def test_render_skips_empty_groups():
    data = {"G1": {"A": {"HEUR": 1.0}}, "G2": {}}
    s = render_figure(["G1", "G2"], ["A"], data)
    assert "G2" not in s
