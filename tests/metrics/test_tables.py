"""Unit tests: text tables."""

from repro.metrics.tables import format_grouped_bars, format_table


def test_format_table_alignment():
    s = format_table(["name", "value"], [["a", 1.5], ["bb", 22.25]], title="T")
    lines = s.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "1.5000" in s and "22.2500" in s


def test_format_table_no_title():
    s = format_table(["a"], [["x"]])
    assert s.splitlines()[0].startswith("a")


def test_grouped_bars_structure():
    data = {
        "2 THREADS": {
            "M8": {"BEST": 1.0, "HEUR": 1.0},
            "3M4": {"BEST": 0.9, "HEUR": 0.8},
        },
        "HMEAN": {"M8": {"BEST": 1.0, "HEUR": 1.0}},
    }
    s = format_grouped_bars(["2 THREADS", "HMEAN"], ["M8", "3M4"], data, value_fmt="{:.2f}")
    assert "2 THREADS" in s and "HMEAN" in s
    assert "BEST" in s and "HEUR" in s
    assert "0.80" in s


def test_grouped_bars_missing_cells_skipped():
    data = {"G": {"A": {"X": 1.0}}}
    s = format_grouped_bars(["G"], ["A", "B"], data)
    # bar B has no data: no row emitted for it
    assert s.count("\n") == 2  # header + separator + one row
