"""Unit tests: TLB."""

import pytest

from repro.memory.tlb import TranslationBuffer


def test_miss_then_hit_same_page():
    tlb = TranslationBuffer(entries=4, page_bytes=8192)
    assert tlb.access(0x0000) is False
    assert tlb.access(0x1FFF) is True  # same 8K page
    assert tlb.access(0x2000) is False  # next page


def test_lru_eviction():
    tlb = TranslationBuffer(entries=2, page_bytes=8192)
    tlb.access(0x0000)  # page 0
    tlb.access(0x2000)  # page 1
    tlb.access(0x0000)  # refresh page 0
    tlb.access(0x4000)  # page 2 evicts page 1
    assert tlb.access(0x0000) is True
    assert tlb.access(0x2000) is False


def test_capacity():
    tlb = TranslationBuffer(entries=48)
    for i in range(100):
        tlb.access(i * 8192)
    assert len(tlb) == 48


def test_thread_tagging():
    tlb = TranslationBuffer(entries=8)
    tlb.access(0x0000, thread=0)
    assert tlb.access(0x0000, thread=1) is False


def test_invalidate_thread():
    tlb = TranslationBuffer(entries=8)
    tlb.access(0x0000, thread=0)
    tlb.access(0x0000, thread=1)
    tlb.invalidate_thread(0)
    assert tlb.access(0x0000, thread=0) is False
    assert tlb.access(0x0000, thread=1) is True


def test_miss_rate_and_reset():
    tlb = TranslationBuffer(entries=8)
    tlb.access(0x0)
    tlb.access(0x0)
    assert tlb.miss_rate == pytest.approx(0.5)
    tlb.reset_stats()
    assert tlb.accesses == 0


def test_validation():
    with pytest.raises(ValueError):
        TranslationBuffer(entries=0)
    with pytest.raises(ValueError):
        TranslationBuffer(entries=8, page_bytes=1000)
