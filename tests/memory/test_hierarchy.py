"""Unit tests: two-level hierarchy latency model (Table 1 conventions)."""

import pytest

from repro.memory.hierarchy import MemoryHierarchy, MemoryParams


@pytest.fixture
def mem():
    return MemoryHierarchy(MemoryParams(), max_threads=2)


def test_l1_hit_latency(mem):
    p = mem.params
    mem.load(0x1000, 0)  # fill (may miss TLB/L1)
    r = mem.load(0x1000, 0)
    assert r.l1_hit and r.tlb_hit
    assert r.latency == p.l1_latency == 3


def test_l2_hit_latency(mem):
    p = mem.params
    mem.load(0x1000, 0)  # L1+L2+TLB warm
    # Evict from L1 (2-way): two other lines in the same set.
    stride = mem.l1d.num_sets * 64
    mem.load(0x1000 + stride, 0)
    mem.load(0x1000 + 2 * stride, 0)
    r = mem.load(0x1000, 0)
    assert not r.l1_hit and r.l2_hit
    assert r.latency == p.l1_latency + p.l1_miss_penalty == 25


def test_memory_latency_cold(mem):
    p = mem.params
    mem.dtlb.access(0x50_0000, 0)  # pre-touch the page: isolate cache path
    r = mem.load(0x50_0000, 0)
    assert not r.l1_hit and not r.l2_hit
    assert r.latency == p.l1_latency + p.l1_miss_penalty + p.memory_latency == 275


def test_tlb_miss_penalty(mem):
    p = mem.params
    r = mem.load(0x900_0000, 0)
    assert not r.tlb_hit
    assert r.latency >= p.tlb_miss_penalty


def test_store_fills_caches_without_stall(mem):
    r = mem.store(0x1000, 0)
    assert r.latency in (0, mem.params.tlb_miss_penalty)
    assert mem.l1d.probe(0x1000)


def test_fetch_hit_is_free(mem):
    mem.fetch(0x40_0000, 0)
    r = mem.fetch(0x40_0000, 0)
    assert r.latency == 0


def test_fetch_miss_penalties(mem):
    p = mem.params
    mem.itlb.access(0x40_0000, 0)
    r = mem.fetch(0x40_0000, 0)
    assert r.latency == p.l1_miss_penalty + p.memory_latency


def test_flush_threshold_matches_paper(mem):
    # FLUSH declares an L2 miss when a load outlives L1+L2 access time.
    assert mem.params.flush_threshold == 3 + 12


def test_shared_l2_between_i_and_d(mem):
    # An instruction fetch warms L2 for a subsequent data miss to the
    # same line (unified L2).
    mem.fetch(0x777_0000, 0)
    mem.dtlb.access(0x777_0000, 0)
    r = mem.load(0x777_0000, 0)
    assert r.l2_hit


def test_threads_share_capacity(mem):
    mem.load(0x1000, 0)
    r = mem.load(0x1000, 1)  # same address, different address space
    assert not r.l1_hit  # thread-tagged: no false sharing


def test_reset(mem):
    mem.load(0x1000, 0)
    mem.reset()
    assert mem.l1d.occupancy() == 0
    assert mem.l1d.stats.accesses == 1  # reset() keeps stats...
    mem.reset_stats()
    assert mem.l1d.stats.accesses == 0


def test_dcache_misses_per_thread(mem):
    mem.load(0x1000, 1)
    assert mem.dcache_misses(1) == 1
    assert mem.dcache_misses(0) == 0
