"""Unit tests: set-associative cache."""

import pytest

from repro.memory.cache import SetAssociativeCache


def make(size=64 * 1024, ways=2, line=64, banks=8):
    return SetAssociativeCache(size, ways, line, banks, max_threads=4, name="t")


def test_geometry():
    c = make()
    assert c.num_sets == 64 * 1024 // (2 * 64) == 512


def test_miss_then_hit_same_line():
    c = make()
    assert c.access(0x1000) is False
    assert c.access(0x1008) is True  # same 64B line
    assert c.access(0x1040) is False  # next line


def test_lru_within_set():
    c = make(size=2 * 64 * 2, ways=2, line=64, banks=1)  # 2 sets, 2 ways
    # Three lines mapping to set 0: stride = num_sets * line = 128.
    a, b, d = 0x0, 0x100, 0x200
    c.access(a)
    c.access(b)
    c.access(a)  # refresh a
    c.access(d)  # evicts b
    assert c.probe(a)
    assert not c.probe(b)
    assert c.probe(d)


def test_capacity_never_exceeded():
    c = make(size=4096, ways=2, line=64, banks=1)
    for i in range(1000):
        c.access(i * 64)
    assert c.occupancy() <= 4096 // 64


def test_per_thread_stats():
    c = make()
    c.access(0x1000, thread=1)
    c.access(0x1000, thread=1)
    c.access(0x2000, thread=2)
    assert c.stats.per_thread_accesses[1] == 2
    assert c.stats.per_thread_misses[1] == 1
    assert c.stats.per_thread_misses[2] == 1
    assert c.stats.miss_rate == pytest.approx(2 / 3)


def test_probe_does_not_allocate():
    c = make()
    assert c.probe(0x1000) is False
    assert c.probe(0x1000) is False
    assert c.stats.accesses == 0


def test_bank_mapping_spreads():
    c = make(banks=8)
    banks = {c.bank_of(i * 64) for i in range(16)}
    assert banks == set(range(8))


def test_invalidate_all():
    c = make()
    c.access(0x1000)
    c.invalidate_all()
    assert not c.probe(0x1000)
    assert c.occupancy() == 0


def test_reset_stats_keeps_contents():
    c = make()
    c.access(0x1000)
    c.reset_stats()
    assert c.stats.accesses == 0
    assert c.probe(0x1000)


def test_validation():
    with pytest.raises(ValueError):
        SetAssociativeCache(1000, 2, 64)  # bad set count
    with pytest.raises(ValueError):
        SetAssociativeCache(64 * 1024, 2, 60)  # line not power of 2
    with pytest.raises(ValueError):
        SetAssociativeCache(64 * 1024, 2, 64, banks=3)


def test_storage_bits_reasonable():
    c = make()
    bits = c.storage_bits()
    assert bits > 64 * 1024 * 8  # at least the data array
