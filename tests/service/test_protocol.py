"""Wire-protocol unit tests: framing, spec validation, request identity.

The protocol's one invariant everything else leans on: *value identity
implies byte identity* (canonical encoding), and *request identity
follows cache identity* (request keys hash the jobs' own
``cache_key_fields()`` under the same version salts as the result
cache).  These tests pin both down without a server in the loop.
"""

import asyncio
import json

import pytest

from repro.runner import cache as cache_mod
from repro.runner.jobs import SimJob
from repro.runner.screening import ScreenJob
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    canonical_dumps,
    decode_frame,
    encode_frame,
    jobs_for_request,
    read_frame,
    request_key,
    response_payload,
    screen_job_from_spec,
    sim_job_from_spec,
    version_banner,
)

SIM_SPEC = {
    "config": "M8",
    "benchmarks": ["gzip", "twolf"],
    "mapping": [0, 0],
    "commit_target": 600,
    "trace_length": 2000,
    "seed": 0,
}


# -- framing ----------------------------------------------------------------


def test_frame_round_trip():
    frame = {"type": "submit", "kind": "simulate", "spec": SIM_SPEC}
    assert decode_frame(encode_frame(frame).rstrip(b"\n")) == frame


def test_encode_frame_is_canonical():
    # Key order must not leak into the bytes: one value, one encoding.
    a = encode_frame({"type": "x", "b": 1, "a": 2})
    b = encode_frame({"a": 2, "type": "x", "b": 1})
    assert a == b
    assert a.endswith(b"\n")
    assert b" " not in a  # compact separators


def test_decode_frame_rejects_garbage():
    with pytest.raises(ProtocolError, match="undecodable"):
        decode_frame(b"{not json")
    with pytest.raises(ProtocolError, match="object with a string 'type'"):
        decode_frame(b"[1,2,3]")
    with pytest.raises(ProtocolError, match="object with a string 'type'"):
        decode_frame(b'{"type": 7}')


def test_decode_frame_rejects_oversize():
    blob = b'{"type":"x","pad":"' + b"a" * MAX_FRAME_BYTES + b'"}'
    with pytest.raises(ProtocolError, match="exceeds"):
        decode_frame(blob)


def test_read_frame_eof_and_truncation():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(encode_frame({"type": "ping"}))
        reader.feed_data(b'{"type":"truncated"')  # no newline before EOF
        reader.feed_eof()
        first = await read_frame(reader)
        assert first == {"type": "ping"}
        with pytest.raises(ProtocolError, match="truncated"):
            await read_frame(reader)
        assert await read_frame(reader) is None  # EOF

    asyncio.run(scenario())


def test_read_frame_respects_stream_limit():
    async def scenario():
        # A reader with a tight limit (as the daemon configures its
        # server) turns an unframeable blob into a ProtocolError, not an
        # unbounded buffer.
        reader = asyncio.StreamReader(limit=64)
        reader.feed_data(b"x" * 256)
        with pytest.raises(ProtocolError, match="exceeds"):
            await read_frame(reader)

    asyncio.run(scenario())


def test_version_banner_shape():
    banner = version_banner()
    assert banner["protocol"] == PROTOCOL_VERSION
    assert banner["engine"] == cache_mod.ENGINE_VERSION
    assert set(banner) == {"protocol", "engine", "trace_format"}


# -- spec validation --------------------------------------------------------


def test_sim_job_from_spec_builds_equivalent_job():
    job = sim_job_from_spec(SIM_SPEC)
    direct = SimJob("M8", ("gzip", "twolf"), (0, 0), 600, trace_length=2000)
    assert isinstance(job, SimJob)
    assert job.cache_key_fields() == direct.cache_key_fields()


def test_sim_spec_missing_required_field():
    for field in ("config", "benchmarks", "mapping", "commit_target"):
        spec = {k: v for k, v in SIM_SPEC.items() if k != field}
        with pytest.raises(ProtocolError, match=field):
            sim_job_from_spec(spec)


def test_sim_spec_rejects_unknown_fields():
    with pytest.raises(ProtocolError, match="frobnicate"):
        sim_job_from_spec(dict(SIM_SPEC, frobnicate=1))


def test_sim_spec_rejects_non_string_config():
    # "Serialized jobs, not code": only configuration *names* travel.
    with pytest.raises(ProtocolError, match="configuration name"):
        sim_job_from_spec(dict(SIM_SPEC, config={"pipeline": "evil"}))


def test_sim_spec_rejects_untyped_values():
    with pytest.raises(ProtocolError, match="bad simulate spec"):
        sim_job_from_spec(dict(SIM_SPEC, commit_target="lots"))
    with pytest.raises(ProtocolError):
        sim_job_from_spec(dict(SIM_SPEC, mapping="zero"))
    with pytest.raises(ProtocolError, match="must be an object"):
        sim_job_from_spec(["not", "a", "dict"])


def test_screen_job_from_spec_builds_equivalent_job():
    spec = {
        "config": "2M4+2M2",
        "benchmarks": ["gzip", "twolf", "bzip2", "mcf"],
        "candidates": [[0, 1, 2, 3], [0, 2, 1, 3]],
        "final_target": 600,
        "min_target": 150,
        "seed": 3,
    }
    job = screen_job_from_spec(spec)
    direct = ScreenJob(
        config="2M4+2M2",
        benchmarks=("gzip", "twolf", "bzip2", "mcf"),
        candidates=((0, 1, 2, 3), (0, 2, 1, 3)),
        final_target=600,
        min_target=150,
        seed=3,
    )
    assert isinstance(job, ScreenJob)
    assert job.cache_key_fields() == direct.cache_key_fields()


def test_screen_spec_validation():
    with pytest.raises(ProtocolError, match="candidates"):
        screen_job_from_spec({"config": "M8", "benchmarks": ["gzip"],
                              "final_target": 600})
    with pytest.raises(ProtocolError, match="unknown"):
        screen_job_from_spec({"config": "M8", "benchmarks": ["gzip"],
                              "candidates": [[0]], "final_target": 600,
                              "surprise": True})


# -- request deserialization ------------------------------------------------


def test_jobs_for_request_kinds():
    assert len(jobs_for_request("simulate", SIM_SPEC)) == 1
    sweep = {"sims": [SIM_SPEC, dict(SIM_SPEC, seed=1)]}
    assert len(jobs_for_request("sweep", sweep)) == 2
    with pytest.raises(ProtocolError, match="unknown request kind"):
        jobs_for_request("teleport", SIM_SPEC)


def test_sweep_spec_validation():
    with pytest.raises(ProtocolError, match="non-empty"):
        jobs_for_request("sweep", {"sims": []})
    with pytest.raises(ProtocolError, match="non-empty"):
        jobs_for_request("sweep", {"sims": "gzip"})
    with pytest.raises(ProtocolError, match="sims"):
        jobs_for_request("sweep", {})
    with pytest.raises(ProtocolError, match="unknown"):
        jobs_for_request("sweep", {"sims": [SIM_SPEC], "shuffle": True})


# -- request identity -------------------------------------------------------


def test_request_key_ignores_spelling():
    """Two spellings of one request — key order, list vs tuple, implicit
    vs explicit defaults — must coalesce onto one key."""
    reordered = dict(reversed(list(SIM_SPEC.items())))
    tupled = dict(SIM_SPEC, benchmarks=("gzip", "twolf"), mapping=(0, 0))
    defaulted = {k: v for k, v in SIM_SPEC.items() if k != "seed"}  # seed=0
    base = request_key("simulate", jobs_for_request("simulate", SIM_SPEC))
    for variant in (reordered, tupled, defaulted):
        jobs = jobs_for_request("simulate", variant)
        assert request_key("simulate", jobs) == base


def test_request_key_separates_different_requests():
    base = request_key("simulate", jobs_for_request("simulate", SIM_SPEC))
    for variant in (
        dict(SIM_SPEC, seed=1),
        dict(SIM_SPEC, commit_target=601),
        dict(SIM_SPEC, mapping=[0, 1]),
        dict(SIM_SPEC, benchmarks=["gzip", "bzip2"]),
    ):
        jobs = jobs_for_request("simulate", variant)
        assert request_key("simulate", jobs) != base


def test_request_key_includes_kind():
    # A sweep of one sim is not the same request as that sim: the
    # response shapes differ (list vs object), so the keys must too.
    sim_jobs = jobs_for_request("simulate", SIM_SPEC)
    sweep_jobs = jobs_for_request("sweep", {"sims": [SIM_SPEC]})
    assert request_key("simulate", sim_jobs) != request_key("sweep", sweep_jobs)


def test_request_key_salted_with_engine_version(monkeypatch):
    """Bumping ENGINE_VERSION must invalidate request identity exactly as
    it invalidates cache entries — the two tiers always agree."""
    jobs = jobs_for_request("simulate", SIM_SPEC)
    before = request_key("simulate", jobs)
    monkeypatch.setattr(cache_mod, "ENGINE_VERSION",
                        cache_mod.ENGINE_VERSION + 1)
    assert request_key("simulate", jobs) != before


# -- response payloads ------------------------------------------------------


class _FakeJob:
    def result_payload(self, result):
        return {"value": result}


def test_response_payload_shapes():
    jobs = [_FakeJob(), _FakeJob()]
    assert response_payload("sweep", jobs, [1, 2]) == [
        {"value": 1}, {"value": 2},
    ]
    assert response_payload("simulate", jobs[:1], [7]) == {"value": 7}


def test_canonical_dumps_is_deterministic():
    payload = {"b": [1, 2], "a": {"y": 1, "x": 2}}
    text = canonical_dumps(payload)
    assert text == canonical_dumps(json.loads(text))
    assert text == '{"a":{"x":2,"y":1},"b":[1,2]}'
