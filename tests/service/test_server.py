"""Service integration tests: coalescing, warm tier, drain, backpressure.

Every test runs a real :class:`ReproService` over a unix socket inside
one ``asyncio.run`` — real frames over real streams, with the pool
replaced by a gate-controlled wrapper where determinism demands it (the
storm tests must *know* all fifty subscribers attached before the single
execution is allowed to finish).
"""

import asyncio
import json
import threading

import pytest

from repro.runner import BatchRunner
from repro.service import (
    ReproService,
    ServiceBusy,
    ServiceClient,
    ServiceDraining,
    ServiceRequestError,
)
from repro.service.protocol import ProtocolError, encode_frame

SIM_SPEC = {
    "config": "M8",
    "benchmarks": ["gzip", "twolf"],
    "mapping": [0, 0],
    "commit_target": 300,
    "trace_length": 2000,
    "seed": 0,
}

OTHER_SPEC = dict(SIM_SPEC, seed=1)
THIRD_SPEC = dict(SIM_SPEC, seed=2)


class GatedRunner:
    """A :class:`BatchRunner` wrapper whose ``run`` blocks on a gate.

    Lets a test admit any number of subscribers (and observe their acks)
    while the one real execution is provably still in flight, then
    release it.  ``run_calls`` counts executions — the storm tests
    assert it stays at exactly one.
    """

    def __init__(self, inner: BatchRunner) -> None:
        self.inner = inner
        self.gate = threading.Event()
        self.run_calls = 0

    def run(self, jobs):
        self.run_calls += 1
        if not self.gate.wait(timeout=60.0):
            raise TimeoutError("test gate never released")
        return self.inner.run(jobs)

    def __getattr__(self, name):  # report, jobs_run, cache, close, ...
        return getattr(self.inner, name)


@pytest.fixture
def runner(tmp_path):
    runner = BatchRunner(workers=1, cache_dir=tmp_path / "cache")
    yield runner
    runner.close()


def serve(runner, coro_fn, tmp_path, **service_kw):
    """Run ``coro_fn(service, sockpath)`` against a live unix server."""
    service_kw.setdefault("cache", getattr(runner, "cache", None))
    service_kw.setdefault("progress_interval", 0.1)
    service = ReproService(runner, **service_kw)
    sockpath = str(tmp_path / "serve.sock")

    async def main():
        await service.start()
        server = await asyncio.start_unix_server(
            service.handle_connection, path=sockpath
        )
        try:
            return await asyncio.wait_for(coro_fn(service, sockpath), 120)
        finally:
            server.close()
            await server.wait_closed()
            await service.close()

    return asyncio.run(main())


# -- raw async client helpers ------------------------------------------------


async def connect(sockpath):
    reader, writer = await asyncio.open_unix_connection(sockpath)
    hello = json.loads(await reader.readline())
    assert hello["type"] == "hello"
    return reader, writer, hello


async def send(writer, frame):
    writer.write(encode_frame(frame))
    await writer.drain()


async def next_frame(reader, skip=("progress",)):
    """The next non-heartbeat frame, decoded — and its raw bytes."""
    while True:
        line = await reader.readline()
        assert line, "server closed the stream unexpectedly"
        frame = json.loads(line)
        if frame["type"] not in skip:
            return frame, line


async def close_writer(writer):
    writer.close()
    try:
        await writer.wait_closed()
    except (BrokenPipeError, ConnectionResetError):
        pass


# -- the storm ---------------------------------------------------------------


def test_fifty_identical_requests_execute_once(runner, tmp_path):
    """The headline single-flight contract: 50 concurrent identical
    requests → exactly 1 executed simulation, byte-identical responses
    to every subscriber, 49 coalesced."""
    gated = GatedRunner(runner)
    n = 50

    async def scenario(service, sockpath):
        sessions = [await connect(sockpath) for _ in range(n)]
        acks = []
        for reader, writer, _ in sessions:
            await send(writer, {"type": "submit", "kind": "simulate",
                                "spec": SIM_SPEC})
            ack, _ = await next_frame(reader)
            assert ack["type"] == "ack"
            acks.append(ack)
        # Every subscriber is attached and acked; only now may the one
        # execution complete.
        gated.gate.set()
        raw = []
        for reader, writer, _ in sessions:
            frame, line = await next_frame(reader)
            assert frame["type"] == "result"
            assert frame["kind"] == "simulate"
            raw.append(line)
            await close_writer(writer)
        return acks, raw

    acks, raw = serve(gated, scenario, tmp_path)

    assert gated.run_calls == 1
    assert gated.inner.report.jobs == 1  # the pool saw ONE job
    assert len(set(raw)) == 1  # same bytes to all fifty
    assert sum(1 for a in acks if a["coalesced"]) == n - 1
    assert len({a["key"] for a in acks}) == 1


def test_storm_stats_and_cache_population(runner, tmp_path):
    gated = GatedRunner(runner)

    async def scenario(service, sockpath):
        sessions = [await connect(sockpath) for _ in range(8)]
        for reader, writer, _ in sessions:
            await send(writer, {"type": "submit", "kind": "simulate",
                                "spec": SIM_SPEC})
            await next_frame(reader)  # ack
        gated.gate.set()
        for reader, writer, _ in sessions:
            await next_frame(reader)  # result
            await close_writer(writer)
        return dict(service.stats), len(service.cache)

    stats, cache_entries = serve(gated, scenario, tmp_path)
    assert stats["requests"] == 8
    assert stats["coalesced"] == 7
    assert stats["executed"] == 1
    assert stats["cache_served"] == 0
    assert cache_entries == 1  # the storm populated the shared cache


def test_disconnect_mid_stream_does_not_cancel_shared_flight(runner, tmp_path):
    """A subscriber hanging up detaches only itself: the flight finishes
    for the survivors and still populates the cache."""
    gated = GatedRunner(runner)

    async def scenario(service, sockpath):
        r1, w1, _ = await connect(sockpath)
        r2, w2, _ = await connect(sockpath)
        for reader, writer in ((r1, w1), (r2, w2)):
            await send(writer, {"type": "submit", "kind": "simulate",
                                "spec": SIM_SPEC})
            await next_frame(reader)  # ack
        # First subscriber rage-quits mid-flight.
        await close_writer(w1)
        await asyncio.sleep(0.05)  # let the server notice the hangup
        gated.gate.set()
        frame, _ = await next_frame(r2)
        await close_writer(w2)
        return frame, dict(service.stats), len(service.cache)

    frame, stats, cache_entries = serve(gated, scenario, tmp_path)
    assert frame["type"] == "result"
    assert gated.run_calls == 1
    assert stats["executed"] == 1
    assert cache_entries == 1


# -- the warm tier -----------------------------------------------------------


def test_warm_request_is_byte_identical_and_skips_pool(runner, tmp_path):
    async def scenario(service, sockpath):
        raw = []
        for _ in range(2):
            reader, writer, _ = await connect(sockpath)
            await send(writer, {"type": "submit", "kind": "simulate",
                                "spec": SIM_SPEC})
            await next_frame(reader)  # ack
            frame, line = await next_frame(reader)
            assert frame["type"] == "result"
            raw.append(line)
            await close_writer(writer)
        return raw, dict(service.stats)

    raw, stats = serve(runner, scenario, tmp_path)
    assert raw[0] == raw[1]  # warm response byte-identical to cold
    assert stats["executed"] == 1
    assert stats["cache_served"] == 1
    assert runner.jobs_run == 1  # the warm request never touched the pool


def test_distinct_requests_do_not_coalesce(runner, tmp_path):
    async def scenario(service, sockpath):
        reader, writer, _ = await connect(sockpath)
        for spec in (SIM_SPEC, OTHER_SPEC):
            await send(writer, {"type": "submit", "kind": "simulate",
                                "spec": spec})
            ack, _ = await next_frame(reader)
            assert ack["coalesced"] is False
            frame, _ = await next_frame(reader)
            assert frame["type"] == "result"
        await close_writer(writer)
        return dict(service.stats)

    stats = serve(runner, scenario, tmp_path)
    assert stats["coalesced"] == 0
    assert stats["executed"] == 2


def test_sweep_round_trip_matches_direct_execution(runner, tmp_path):
    """A sweep served over the wire equals the same jobs run through the
    local BatchRunner path (the figures-CLI execution path), byte for
    byte in canonical form."""
    from repro.service.protocol import canonical_dumps, jobs_for_request

    sweep = {"sims": [SIM_SPEC, OTHER_SPEC]}

    async def scenario(service, sockpath):
        reader, writer, _ = await connect(sockpath)
        await send(writer, {"type": "submit", "kind": "sweep", "spec": sweep})
        await next_frame(reader)  # ack
        frame, _ = await next_frame(reader)
        await close_writer(writer)
        return frame

    frame = serve(runner, scenario, tmp_path)
    assert frame["type"] == "result"

    local = BatchRunner(workers=1)
    try:
        jobs = jobs_for_request("sweep", sweep)
        results = local.run(jobs)
    finally:
        local.close()
    expected = [job.result_payload(r) for job, r in zip(jobs, results)]
    assert canonical_dumps(frame["payload"]) == canonical_dumps(expected)


def test_screen_request_round_trip(runner, tmp_path):
    spec = {
        "config": "2M4+2M2",
        "benchmarks": ["gzip", "twolf", "bzip2", "mcf"],
        "candidates": [[0, 1, 2, 3], [0, 2, 1, 3], [1, 0, 2, 3]],
        "final_target": 400,
        "min_target": 150,
        "trace_length": 2000,
    }

    async def scenario(service, sockpath):
        reader, writer, _ = await connect(sockpath)
        await send(writer, {"type": "submit", "kind": "screen", "spec": spec})
        await next_frame(reader)  # ack
        frame, _ = await next_frame(reader)
        await close_writer(writer)
        return frame

    frame = serve(runner, scenario, tmp_path)
    assert frame["type"] == "result"
    payload = frame["payload"]
    # The screen payload carries the winning mapping and its full run.
    assert "best" in payload or "mapping" in payload or payload


# -- admission control -------------------------------------------------------


def test_backpressure_rejects_beyond_max_queue(runner, tmp_path):
    gated = GatedRunner(runner)

    async def scenario(service, sockpath):
        reader, writer, _ = await connect(sockpath)
        # A starts executing (blocked on the gate), B fills the queue.
        await send(writer, {"type": "submit", "kind": "simulate",
                            "spec": SIM_SPEC})
        await next_frame(reader)  # ack A
        await asyncio.sleep(0.05)  # consumer pops A into execution
        r2, w2, _ = await connect(sockpath)
        await send(w2, {"type": "submit", "kind": "simulate",
                        "spec": OTHER_SPEC})
        await next_frame(r2)  # ack B (queued)
        # C is one too many: refused, retryable.
        r3, w3, _ = await connect(sockpath)
        await send(w3, {"type": "submit", "kind": "simulate",
                        "spec": THIRD_SPEC})
        refusal, _ = await next_frame(r3)
        # ...but attaching to B still works while the queue is full.
        r4, w4, _ = await connect(sockpath)
        await send(w4, {"type": "submit", "kind": "simulate",
                        "spec": OTHER_SPEC})
        ack4, _ = await next_frame(r4)
        gated.gate.set()
        results = []
        for r in (reader, r2, r4):
            frame, _ = await next_frame(r)
            results.append(frame["type"])
        for w in (writer, w2, w3, w4):
            await close_writer(w)
        return refusal, ack4, results, dict(service.stats)

    refusal, ack4, results, stats = serve(
        gated, scenario, tmp_path, max_queue=1
    )
    assert refusal["type"] == "error"
    assert refusal["retryable"] is True
    assert "queue full" in refusal["error"]
    assert ack4["coalesced"] is True
    assert results == ["result", "result", "result"]
    assert stats["rejected"] == 1


def test_submit_api_raises_typed_errors(runner, tmp_path):
    """The in-process admission API mirrors the wire errors."""
    gated = GatedRunner(runner)

    async def scenario(service, sockpath):
        service.submit("simulate", SIM_SPEC)
        await asyncio.sleep(0.05)  # flight moves into execution
        service.submit("simulate", OTHER_SPEC)  # fills queue (max 1)
        with pytest.raises(ServiceBusy):
            service.submit("simulate", THIRD_SPEC)
        with pytest.raises(ProtocolError):
            service.submit("simulate", {"config": "M8"})
        service.draining = True
        with pytest.raises(ServiceDraining):
            service.submit("simulate", THIRD_SPEC)
        service.draining = False
        gated.gate.set()
        # Let both flights land before teardown.
        while service._flights:
            await asyncio.sleep(0.02)

    serve(gated, scenario, tmp_path, max_queue=1)


# -- drain -------------------------------------------------------------------


def test_drain_completes_inflight_and_fails_queued(runner, tmp_path):
    """The graceful-drain contract: the in-flight execution finishes and
    publishes to its subscribers; queued flights fail retryable; new
    submissions are refused retryable."""
    gated = GatedRunner(runner)

    async def scenario(service, sockpath):
        r1, w1, _ = await connect(sockpath)
        await send(w1, {"type": "submit", "kind": "simulate",
                        "spec": SIM_SPEC})
        await next_frame(r1)  # ack A
        await asyncio.sleep(0.05)  # A executing (held at the gate)
        r2, w2, _ = await connect(sockpath)
        await send(w2, {"type": "submit", "kind": "simulate",
                        "spec": OTHER_SPEC})
        await next_frame(r2)  # ack B (queued)

        # Admin drain via the wire.
        rd, wd, _ = await connect(sockpath)
        await send(wd, {"type": "drain"})
        draining, _ = await next_frame(rd)
        assert draining["type"] == "draining"
        await close_writer(wd)

        queued_err, _ = await next_frame(r2)  # B fails fast, retryable
        refused = None
        for _ in range(100):
            await asyncio.sleep(0.01)
            if service.draining:
                r3, w3, _ = await connect(sockpath)
                await send(w3, {"type": "submit", "kind": "simulate",
                                "spec": THIRD_SPEC})
                refused, _ = await next_frame(r3)
                await close_writer(w3)
                break
        gated.gate.set()
        inflight, _ = await next_frame(r1)  # A still publishes
        for w in (w1, w2):
            await close_writer(w)
        return inflight, queued_err, refused, len(service.cache)

    inflight, queued_err, refused, cache_entries = serve(
        gated, scenario, tmp_path
    )
    assert inflight["type"] == "result"
    assert queued_err["type"] == "error"
    assert queued_err["retryable"] is True
    assert refused is not None
    assert refused["type"] == "error"
    assert refused["retryable"] is True
    assert cache_entries == 1  # the in-flight result was still persisted


def test_drain_is_idempotent(runner, tmp_path):
    async def scenario(service, sockpath):
        await service.drain()
        await service.drain()
        assert service.draining is True

    serve(runner, scenario, tmp_path)


# -- session-level protocol behaviour ----------------------------------------


def test_bad_frames_and_bad_specs(runner, tmp_path):
    async def scenario(service, sockpath):
        # Unknown frame type: error, session survives.
        reader, writer, _ = await connect(sockpath)
        await send(writer, {"type": "teleport"})
        unknown, _ = await next_frame(reader)
        # Bad spec: error, session survives.
        await send(writer, {"type": "submit", "kind": "simulate",
                            "spec": {"config": "M8"}})
        badspec, _ = await next_frame(reader)
        await send(writer, {"type": "ping"})
        pong, _ = await next_frame(reader)
        await close_writer(writer)
        # Undecodable garbage: error, then the server ends the session.
        r2, w2, _ = await connect(sockpath)
        w2.write(b"{not json\n")
        await w2.drain()
        garbage, _ = await next_frame(r2)
        eof = await r2.readline()
        await close_writer(w2)
        return unknown, badspec, pong, garbage, eof, dict(service.stats)

    unknown, badspec, pong, garbage, eof, stats = serve(
        runner, scenario, tmp_path
    )
    assert unknown["type"] == "error" and not unknown["retryable"]
    assert badspec["type"] == "error" and not badspec["retryable"]
    assert pong["type"] == "pong"
    assert garbage["type"] == "error"
    assert eof == b""  # server closed after the garbage
    assert stats["bad_requests"] == 3
    assert stats["executed"] == 0  # nothing bad ever reached the pool


def test_status_reports_counters_and_run_report(runner, tmp_path):
    async def scenario(service, sockpath):
        reader, writer, _ = await connect(sockpath)
        await send(writer, {"type": "submit", "kind": "simulate",
                            "spec": SIM_SPEC})
        await next_frame(reader)  # ack
        await next_frame(reader)  # result
        await send(writer, {"type": "status"})
        status, _ = await next_frame(reader)
        await close_writer(writer)
        return status

    status = serve(runner, scenario, tmp_path)
    stats = status["stats"]
    assert stats["executed"] == 1
    assert stats["runner_jobs"] == 1
    assert stats["cache_entries"] == 1
    assert stats["report"]["jobs"] == 1
    assert stats["versions"]["protocol"] == 1
    assert stats["draining"] is False


# -- the synchronous client ---------------------------------------------------


def run_client(coro_less_fn, *args):
    """Run blocking ServiceClient work off the event loop thread."""
    return asyncio.get_running_loop().run_in_executor(
        None, coro_less_fn, *args
    )


def test_service_client_round_trip(runner, tmp_path):
    async def scenario(service, sockpath):
        def work():
            client = ServiceClient(socket_path=sockpath, timeout=60)
            assert client.ping()
            hello = client.hello()
            assert hello["versions"]["protocol"] == 1
            seen = []
            payload = client.submit("simulate", SIM_SPEC,
                                    on_progress=seen.append)
            first_text = client.last_payload_text
            again = client.submit("simulate", SIM_SPEC)
            assert payload == again
            assert client.last_payload_text == first_text
            status = client.status()
            with pytest.raises(ServiceRequestError) as err:
                client.submit("simulate", {"config": "M8"})
            assert err.value.retryable is False
            return status

        return await run_client(work)

    status = serve(runner, scenario, tmp_path)
    assert status["executed"] == 1
    assert status["cache_served"] == 1


def test_client_rejects_protocol_mismatch(runner, tmp_path, monkeypatch):
    import repro.service.client as client_mod

    async def scenario(service, sockpath):
        def work():
            monkeypatch.setattr(client_mod, "PROTOCOL_VERSION", 999)
            client = ServiceClient(socket_path=sockpath, timeout=10)
            with pytest.raises(ProtocolError, match="protocol mismatch"):
                client.hello()

        return await run_client(work)

    serve(runner, scenario, tmp_path)
