"""The service's rendered-frame tier: a repeat request is answered with
the exact bytes the first asker received, without touching the result
cache or the dispatch thread; the tier is bounded LRU and can be
disabled."""

import asyncio
import json

import pytest

from repro.runner import BatchRunner
from repro.service import ReproService
from repro.service.protocol import encode_frame

SIM_SPEC = {
    "config": "M8",
    "benchmarks": ["gzip", "twolf"],
    "mapping": [0, 0],
    "commit_target": 300,
    "trace_length": 2000,
    "seed": 0,
}


@pytest.fixture
def runner(tmp_path):
    runner = BatchRunner(workers=1, cache_dir=tmp_path / "cache")
    yield runner
    runner.close()


def serve(runner, coro_fn, tmp_path, **service_kw):
    service_kw.setdefault("cache", getattr(runner, "cache", None))
    service_kw.setdefault("progress_interval", 0.1)
    service = ReproService(runner, **service_kw)
    sockpath = str(tmp_path / "serve.sock")

    async def main():
        await service.start()
        server = await asyncio.start_unix_server(
            service.handle_connection, path=sockpath
        )
        try:
            return await asyncio.wait_for(coro_fn(service, sockpath), 120)
        finally:
            server.close()
            await server.wait_closed()
            await service.close()

    return asyncio.run(main())


async def _round_trip(sockpath):
    reader, writer = await asyncio.open_unix_connection(sockpath)
    assert json.loads(await reader.readline())["type"] == "hello"
    writer.write(encode_frame({"type": "submit", "kind": "simulate",
                               "spec": SIM_SPEC}))
    await writer.drain()
    result_line = None
    while result_line is None:
        line = await reader.readline()
        assert line, "server closed the stream unexpectedly"
        frame = json.loads(line)
        if frame["type"] == "result":
            result_line = line
        else:
            assert frame["type"] in ("ack", "progress")
    writer.close()
    try:
        await writer.wait_closed()
    except (BrokenPipeError, ConnectionResetError):
        pass
    return result_line


def test_repeat_requests_served_from_frame_tier(runner, tmp_path):
    async def scenario(service, sockpath):
        raw = [await _round_trip(sockpath) for _ in range(3)]
        cache = service.cache
        return raw, dict(service.stats), service.status(), {
            "hits": cache.hits, "misses": cache.misses,
        }

    raw, stats, status, cache_counters = serve(runner, scenario, tmp_path)
    assert raw[0] == raw[1] == raw[2]  # byte-identical every round
    assert stats["executed"] == 1
    assert stats["frame_served"] == 2
    assert stats["cache_served"] == 2  # frame hits are warm hits
    assert runner.jobs_run == 1
    # Frame hits never re-keyed through the result cache: its counters
    # show only the cold flight's probes (the service's warm-tier miss
    # plus the runner's own pre-execution miss), nothing from the two
    # warm rounds.
    assert cache_counters["hits"] == 0
    assert cache_counters["misses"] == 2
    assert status["frame_entries"] == 1
    assert status["frame_bytes"] > 0


def test_frame_tier_disabled_falls_back_to_result_cache(runner, tmp_path):
    async def scenario(service, sockpath):
        raw = [await _round_trip(sockpath) for _ in range(2)]
        return raw, dict(service.stats), service.cache.hits

    raw, stats, cache_hits = serve(
        runner, scenario, tmp_path, frame_cache_mb=0
    )
    assert raw[0] == raw[1]
    assert stats["frame_served"] == 0
    assert stats["cache_served"] == 1  # served by the result cache tier
    assert cache_hits == 1


def test_frame_budget_env_default(runner, monkeypatch):
    monkeypatch.delenv("REPRO_MEM_CACHE_MB", raising=False)
    assert ReproService(runner).frame_budget_bytes == 64 * 1024 * 1024
    monkeypatch.setenv("REPRO_MEM_CACHE_MB", "8")
    assert ReproService(runner).frame_budget_bytes == 8 * 1024 * 1024
    monkeypatch.setenv("REPRO_MEM_CACHE_MB", "0")
    assert ReproService(runner).frame_budget_bytes == 0


def test_frame_lru_eviction(runner):
    service = ReproService(runner, frame_cache_mb=1)
    service.frame_budget_bytes = 64
    service._frame_put("a", b"x" * 30)
    service._frame_put("b", b"y" * 30)
    assert service._frame_get("a") is not None  # touch: a becomes MRU
    service._frame_put("c", b"z" * 30)          # evicts b, the LRU
    assert service._frame_get("b") is None
    assert service._frame_get("a") is not None
    assert service._frame_get("c") is not None
    assert service._frame_bytes <= service.frame_budget_bytes
    # An oversized frame is never admitted (and never evicts residents).
    service._frame_put("huge", b"h" * 100)
    assert service._frame_get("huge") is None
    assert service._frame_get("a") is not None
