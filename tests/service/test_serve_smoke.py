"""End-to-end smoke of the real daemon: ``repro serve`` as a subprocess.

The in-process suite (test_server.py) pins the service semantics; this
one proves the shipped entry points compose — daemon process, unix
socket, ``repro submit`` / ``repro status`` CLI verbs, byte-identity
against the local execution path, and a SIGTERM drain that exits
cleanly with no orphaned pool workers.  This is also what the
``make serve-smoke`` CI lane runs.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.runner import BatchRunner
from repro.service import ServiceClient
from repro.service.protocol import canonical_dumps, jobs_for_request

SIM = {
    "config": "M8",
    "benchmarks": ["gzip", "twolf"],
    "mapping": [0, 0],
    "commit_target": 300,
    "trace_length": 2000,
    "seed": 0,
}
#: Three sims so the daemon's runner leaves inline mode and actually
#: spawns pool workers (the orphan check needs children to exist).
REFERENCE_SWEEP = {"sims": [SIM, dict(SIM, seed=1), dict(SIM, seed=2)]}


def _wait_for_socket(client, deadline=30.0):
    end = time.monotonic() + deadline
    last = None
    while time.monotonic() < end:
        try:
            if client.ping():
                return
        except (ConnectionError, OSError) as exc:
            last = exc
        time.sleep(0.1)
    raise TimeoutError(f"daemon never came up: {last}")


def _children(pid):
    """Live child pids of ``pid`` (the daemon's pool workers).

    Children are recorded against the *task* (thread) that forked them —
    the daemon forks its pool from the dispatch thread, not the main
    one — so every task's children file must be scanned.
    """
    kids = []
    try:
        tasks = os.listdir(f"/proc/{pid}/task")
    except OSError:
        return kids
    for task in tasks:
        try:
            text = open(f"/proc/{pid}/task/{task}/children").read()
        except OSError:
            continue
        kids.extend(int(p) for p in text.split())
    return kids


def _alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


@pytest.fixture
def daemon(tmp_path):
    sock = str(tmp_path / "serve.sock")
    cache = str(tmp_path / "cache")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock,
         "--cache", cache, "--jobs", "2", "--quiet"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    client = ServiceClient(socket_path=sock, timeout=120)
    try:
        _wait_for_socket(client)
        yield proc, client, sock
    finally:
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


def test_daemon_round_trip_and_graceful_drain(daemon, tmp_path):
    proc, client, sock = daemon

    # -- cold: the reference sweep through the service -----------------
    payload = client.submit("sweep", REFERENCE_SWEEP)
    service_text = client.last_payload_text
    assert isinstance(payload, list) and len(payload) == 3

    # -- byte-identity against the local execution path ----------------
    # (the same jobs through a local BatchRunner — the path the figures
    # CLI uses — must produce the identical canonical payload)
    local = BatchRunner(workers=1)
    try:
        jobs = jobs_for_request("sweep", REFERENCE_SWEEP)
        results = local.run(jobs)
    finally:
        local.close()
    local_text = canonical_dumps(
        [job.result_payload(r) for job, r in zip(jobs, results)]
    )
    assert service_text == local_text

    # -- warm: resubmission is cache-served and byte-identical ---------
    client.submit("sweep", REFERENCE_SWEEP)
    assert client.last_payload_text == service_text
    stats = client.status()
    assert stats["executed"] == 1
    assert stats["cache_served"] == 1
    assert stats["cache_entries"] == 3

    # -- the CLI verbs against the live daemon -------------------------
    request = json.dumps({"kind": "sweep", "spec": REFERENCE_SWEEP})
    out = subprocess.run(
        [sys.executable, "-m", "repro", "submit", "--socket", sock,
         "--request", request, "--quiet"],
        capture_output=True, text=True, timeout=120,
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip() == service_text
    status_out = subprocess.run(
        [sys.executable, "-m", "repro", "status", "--socket", sock,
         "--porcelain"],
        capture_output=True, text=True, timeout=60,
    )
    assert status_out.returncode == 0, status_out.stderr
    assert json.loads(status_out.stdout)["cache_served"] == 2

    # -- SIGTERM: graceful drain, no orphaned pool workers -------------
    workers = _children(proc.pid)
    assert workers, "expected live pool workers before the drain"
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60) == 0
    assert not os.path.exists(sock)  # socket unlinked on the way out
    deadline = time.monotonic() + 10
    while any(_alive(pid) for pid in workers):
        if time.monotonic() > deadline:
            raise AssertionError(f"orphaned pool workers: "
                                 f"{[p for p in workers if _alive(p)]}")
        time.sleep(0.1)


def test_submit_against_dead_endpoint_is_retryable_exit(tmp_path):
    out = subprocess.run(
        [sys.executable, "-m", "repro", "submit",
         "--socket", str(tmp_path / "nope.sock"),
         "--config", "M8", "gzip", "twolf", "--target", "300"],
        capture_output=True, text=True, timeout=60,
    )
    assert out.returncode == 3  # unreachable == retryable
    assert "cannot reach service" in out.stderr


def test_serve_requires_exactly_one_endpoint():
    out = subprocess.run(
        [sys.executable, "-m", "repro", "serve"],
        capture_output=True, text=True, timeout=60,
    )
    assert out.returncode == 2
    assert "--socket or --port" in out.stderr
