"""Unit tests: SPECint2000 benchmark profiles."""

import pytest

from repro.trace.benchmarks import (
    BENCHMARKS,
    BENCHMARK_NAMES,
    BenchmarkProfile,
    ILP_BENCHMARKS,
    MEM_BENCHMARKS,
    get_benchmark,
)


def test_all_twelve_specint_present():
    expected = {
        "gzip",
        "vpr",
        "gcc",
        "mcf",
        "crafty",
        "parser",
        "eon",
        "perlbmk",
        "gap",
        "vortex",
        "bzip2",
        "twolf",
    }
    assert set(BENCHMARK_NAMES) == expected


def test_paper_classification():
    assert set(MEM_BENCHMARKS) == {"mcf", "twolf", "vpr", "perlbmk"}
    assert len(ILP_BENCHMARKS) == 8


def test_mix_fractions_valid():
    for p in BENCHMARKS.values():
        assert 0 < p.int_frac < 1
        total = (
            p.load_frac + p.store_frac + p.branch_frac + p.mul_frac + p.fp_frac + p.int_frac
        )
        assert total == pytest.approx(1.0)


def test_mem_class_has_bigger_working_sets():
    max_ilp = max(BENCHMARKS[n].working_set_bytes for n in ILP_BENCHMARKS)
    min_mem = min(BENCHMARKS[n].working_set_bytes for n in MEM_BENCHMARKS)
    assert min_mem > max_ilp


def test_mcf_is_the_extreme():
    mcf = BENCHMARKS["mcf"]
    for n, p in BENCHMARKS.items():
        if n != "mcf":
            assert mcf.working_set_bytes > p.working_set_bytes


def test_code_footprints():
    # gcc famously exceeds a 64 KB L1I; eon fits easily.
    assert BENCHMARKS["gcc"].code_bytes > 64 * 1024
    assert BENCHMARKS["eon"].code_bytes < 64 * 1024


def test_eon_has_fp_content():
    assert BENCHMARKS["eon"].fp_frac > 0


def test_get_benchmark_error_lists_names():
    with pytest.raises(KeyError, match="gzip"):
        get_benchmark("nonexistent")


def test_profile_validation():
    with pytest.raises(ValueError):
        BenchmarkProfile(name="x", workload_class="ILP", load_frac=0.9, store_frac=0.2)
    with pytest.raises(ValueError):
        BenchmarkProfile(name="x", workload_class="OTHER")


def test_mean_block_size():
    p = BENCHMARKS["gzip"]
    assert p.mean_block_size == pytest.approx(1.0 / p.branch_frac)
