"""Unit tests: the heuristic's profile pass."""

import pytest

from repro.trace.benchmarks import ILP_BENCHMARKS, MEM_BENCHMARKS
from repro.trace.profiling import (
    clear_profile_cache,
    profile_benchmark,
    profile_workload,
)


def test_profile_deterministic_and_cached():
    clear_profile_cache()
    p1 = profile_benchmark("gzip", 5000)
    p2 = profile_benchmark("gzip", 5000)
    assert p1 is p2
    clear_profile_cache()
    p3 = profile_benchmark("gzip", 5000)
    assert p3.l1d_misses == p1.l1d_misses


def test_mem_class_misses_dominate_ilp():
    worst_ilp = max(
        profile_benchmark(b, 8000).misses_per_kilo_instruction for b in ILP_BENCHMARKS
    )
    best_mem = min(
        profile_benchmark(b, 8000).misses_per_kilo_instruction for b in MEM_BENCHMARKS
    )
    assert best_mem > worst_ilp


def test_mem_internal_ordering():
    """The heuristic's sort key must order mcf > twolf > vpr > perlbmk."""
    mpki = {
        b: profile_benchmark(b, 12_000).misses_per_kilo_instruction
        for b in ("mcf", "twolf", "vpr", "perlbmk")
    }
    assert mpki["mcf"] > mpki["twolf"] > mpki["vpr"] > mpki["perlbmk"]


def test_profile_fields_consistent():
    p = profile_benchmark("vpr", 6000)
    assert p.instructions == 6000
    assert 0 <= p.l1d_misses <= p.accesses
    assert p.l2_misses <= p.l1d_misses
    assert p.l1d_miss_rate == pytest.approx(p.l1d_misses / p.accesses)


def test_profile_workload_order():
    profs = profile_workload(["eon", "mcf"], 4000)
    assert [p.benchmark for p in profs] == ["eon", "mcf"]
