"""Packed traces: exact round trips, the on-disk store, zero-copy access.

The packed subsystem is only allowed to exist because it is *lossless*:
every test here is ultimately an exactness assertion — entry-by-entry
tuple equality including the wrong-path junk pool, across every benchmark
profile, through bytes, files and mmap alike.
"""

import pytest

from repro.trace.benchmarks import BENCHMARK_NAMES
from repro.trace.packed import (
    PACK_FORMAT_VERSION,
    PackedTrace,
    PackedTraceStore,
    _warm_sequences_python,
    warm_sequences,
)
from repro.trace.stream import (
    Trace,
    active_trace_store,
    clear_trace_cache,
    set_trace_store,
    trace_for,
)

_LEN = 1500

# Tests control the active store explicitly; the shared conftest fixture
# deactivates it and drops the memo caches after every test.
pytestmark = pytest.mark.usefixtures("clean_sim_state")


# ------------------------------------------------------------- round trips


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_round_trip_exact_for_every_profile(name):
    """Trace -> packed -> Trace is entry-by-entry exact, junk included."""
    trace = trace_for(name, _LEN)
    packed = PackedTrace.from_trace(trace)
    assert packed.materialize_entries() == trace.entries
    assert packed.materialize_junk() == trace.junk
    # Through serialized bytes as well.
    again = PackedTrace.from_buffer(packed.to_bytes())
    assert again.materialize_entries() == trace.entries
    assert again.materialize_junk() == trace.junk
    assert again.name == trace.name


def test_single_entry_access_matches_lists():
    trace = trace_for("gcc", _LEN)
    packed = PackedTrace.from_trace(trace)
    for i in (0, 1, 17, _LEN - 1):
        assert packed.entry(i) == trace.entries[i]
    for i in (0, 5, len(trace.junk) - 1):
        assert packed.junk_entry(i) == trace.junk[i]


def test_packed_backed_trace_is_lazy_and_exact():
    """A packed-backed Trace serves entry()/next_pc() straight from the
    columns before materializing, and materializes to identical lists."""
    base = trace_for("twolf", _LEN)
    packed = PackedTrace.from_trace(base)
    lazy = Trace("twolf", base.profile, packed=packed)
    # Zero-copy path (no materialization yet).
    assert lazy._entries is None
    assert lazy.entry(3) == base.entries[3]
    assert lazy.entry(_LEN + 3) == base.entries[3]  # wraps
    assert lazy.next_pc(7) == base.next_pc(7)
    assert lazy.junk_entry(11) == base.junk_entry(11)
    assert lazy._entries is None
    # Materialized path.
    assert lazy.entries == base.entries
    assert lazy.junk == base.junk
    assert len(lazy) == len(base)


def test_warm_sequences_numpy_matches_pure_python():
    packed = PackedTrace.from_trace(trace_for("mcf", _LEN))
    assert warm_sequences(packed) == _warm_sequences_python(packed)


def test_empty_trace_rejected():
    packed = PackedTrace.from_trace(trace_for("gzip", _LEN))
    with pytest.raises(ValueError):
        PackedTrace("x", tuple([[]] * 7), packed.junk_columns)
    with pytest.raises(ValueError):
        PackedTrace("x", packed.columns, tuple([[]] * 7))


# ------------------------------------------------------------------- store


def test_store_save_load_mmap_exact(tmp_path):
    trace = trace_for("vortex", _LEN)
    store = PackedTraceStore(tmp_path)
    store.save(PackedTrace.from_trace(trace), "vortex", _LEN, 0)
    assert store.contains("vortex", _LEN, 0, len(trace.junk))
    loaded = store.load("vortex", _LEN, 0, len(trace.junk))
    assert loaded is not None
    assert loaded.materialize_entries() == trace.entries
    assert loaded.materialize_junk() == trace.junk


def test_store_miss_and_corruption_degrade_to_none(tmp_path):
    store = PackedTraceStore(tmp_path)
    assert store.load("gzip", _LEN, 0, 2048) is None  # missing

    trace = trace_for("gzip", _LEN)
    store.save(PackedTrace.from_trace(trace), "gzip", _LEN, 0)
    path = next(tmp_path.glob("*.trace"))

    # Truncation: drop half the payload.
    payload = path.read_bytes()
    path.write_bytes(payload[: len(payload) // 2])
    assert store.load("gzip", _LEN, 0, 2048) is None

    # Garbage: not even the magic survives.
    path.write_bytes(b"not a packed trace at all")
    assert store.load("gzip", _LEN, 0, 2048) is None


def test_store_key_depends_on_identity_and_format_version(monkeypatch):
    k = PackedTraceStore.trace_key("gcc", _LEN, 0, 2048)
    assert PackedTraceStore.trace_key("gcc", _LEN, 1, 2048) != k
    assert PackedTraceStore.trace_key("gcc", _LEN + 1, 0, 2048) != k
    assert PackedTraceStore.trace_key("mcf", _LEN, 0, 2048) != k
    import repro.trace.packed as packed_mod

    monkeypatch.setattr(packed_mod, "PACK_FORMAT_VERSION",
                        PACK_FORMAT_VERSION + 1)
    assert PackedTraceStore.trace_key("gcc", _LEN, 0, 2048) != k


def test_trace_for_serves_from_store_exactly(tmp_path):
    """trace_for through an activated store returns the identical stream
    a fresh generation would produce."""
    reference = trace_for("parser", _LEN).entries
    junk_ref = trace_for("parser", _LEN).junk

    # Generate-and-save into the store...
    clear_trace_cache()
    store = set_trace_store(tmp_path, save_on_generate=True)
    generated = trace_for("parser", _LEN)
    assert generated.entries == reference
    assert len(store) == 1

    # ...then a "cold worker" (fresh cache) loads it back via mmap.
    clear_trace_cache()
    store = set_trace_store(tmp_path, save_on_generate=False)
    served = trace_for("parser", _LEN)
    assert served.packed is not None  # came from the store
    assert store.hits == 1
    assert served.entries == reference
    assert served.junk == junk_ref
    assert active_trace_store() is store
