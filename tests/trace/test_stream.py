"""Unit tests: Trace objects and the process-wide cache."""

import pytest

from repro.trace.stream import Trace, clear_trace_cache, trace_for
from repro.trace.benchmarks import get_benchmark


def test_trace_for_caches():
    clear_trace_cache()
    t1 = trace_for("gzip", 2000)
    t2 = trace_for("gzip", 2000)
    assert t1 is t2


def test_distinct_instances_differ():
    a = trace_for("gzip", 2000, instance=0)
    b = trace_for("gzip", 2000, instance=1)
    assert a is not b
    assert a.entries != b.entries


def test_entry_wraps_modulo():
    t = trace_for("eon", 1000)
    assert t.entry(0) == t.entry(1000) == t.entry(2000)


def test_next_pc_is_next_entrys_pc():
    t = trace_for("eon", 1000)
    assert t.next_pc(5) == t.entries[6][6]
    assert t.next_pc(999) == t.entries[0][6]  # wrap


def test_junk_entries_wrap():
    t = trace_for("eon", 1000)
    assert t.junk_entry(0) == t.junk_entry(len(t.junk))


def test_len(t=None):
    t = trace_for("eon", 1234)
    assert len(t) == 1234


def test_empty_trace_rejected():
    prof = get_benchmark("gzip")
    with pytest.raises(ValueError):
        Trace("x", prof, [], [(0, 1, -1, -1, 0, 0, 0)])
    with pytest.raises(ValueError):
        Trace("x", prof, [(0, 1, -1, -1, 0, 0, 0)], [])


def test_clear_cache():
    t1 = trace_for("gzip", 2000)
    clear_trace_cache()
    t2 = trace_for("gzip", 2000)
    assert t1 is not t2
    assert t1.entries == t2.entries  # still deterministic


# --------------------------------------------------- column-backed fetch view


def test_fetch_view_blocks_match_entries_for_generated_trace():
    """Tuple-backed traces serve fetch blocks as slices of the lists."""
    from repro.trace.stream import FETCH_BLOCK, FETCH_MASK, FETCH_SHIFT

    t = trace_for("gcc", 2500)
    eblocks, jblocks = t.fetch_view()
    assert len(eblocks) == (2500 + FETCH_MASK) >> FETCH_SHIFT
    assert all(b is None for b in eblocks)  # lazy until first touch
    for i in (0, 1, FETCH_BLOCK - 1, FETCH_BLOCK, 2499):
        blk = eblocks[i >> FETCH_SHIFT] or t.entry_block(i >> FETCH_SHIFT)
        assert blk[i & FETCH_MASK] == t.entries[i]
    for i in (0, len(t.junk) - 1):
        blk = jblocks[i >> FETCH_SHIFT] or t.junk_block(i >> FETCH_SHIFT)
        assert blk[i & FETCH_MASK] == t.junk[i]


def test_store_served_fetch_view_never_materializes(trace_store):
    """Store-served (mmap) traces decode fetch blocks from the packed
    columns; the full tuple lists must never materialize."""
    from repro.trace.stream import FETCH_MASK, FETCH_SHIFT

    generated = trace_for("gcc", 1800)
    reference = list(generated.entries)  # materialize the *generated* copy
    assert trace_store.contains("gcc", 1800, 0, generated.junk_length)

    clear_trace_cache()
    served = trace_for("gcc", 1800)
    assert served.packed is not None
    for i in range(1800):
        blk = (
            served._entry_blocks and served._entry_blocks[i >> FETCH_SHIFT]
        ) or served.entry_block(i >> FETCH_SHIFT)
        assert blk[i & FETCH_MASK] == reference[i]
    assert served._entries is None  # lazy backing held throughout
