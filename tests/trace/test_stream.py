"""Unit tests: Trace objects and the process-wide cache."""

import pytest

from repro.trace.stream import Trace, clear_trace_cache, trace_for
from repro.trace.benchmarks import get_benchmark


def test_trace_for_caches():
    clear_trace_cache()
    t1 = trace_for("gzip", 2000)
    t2 = trace_for("gzip", 2000)
    assert t1 is t2


def test_distinct_instances_differ():
    a = trace_for("gzip", 2000, instance=0)
    b = trace_for("gzip", 2000, instance=1)
    assert a is not b
    assert a.entries != b.entries


def test_entry_wraps_modulo():
    t = trace_for("eon", 1000)
    assert t.entry(0) == t.entry(1000) == t.entry(2000)


def test_next_pc_is_next_entrys_pc():
    t = trace_for("eon", 1000)
    assert t.next_pc(5) == t.entries[6][6]
    assert t.next_pc(999) == t.entries[0][6]  # wrap


def test_junk_entries_wrap():
    t = trace_for("eon", 1000)
    assert t.junk_entry(0) == t.junk_entry(len(t.junk))


def test_len(t=None):
    t = trace_for("eon", 1234)
    assert len(t) == 1234


def test_empty_trace_rejected():
    prof = get_benchmark("gzip")
    with pytest.raises(ValueError):
        Trace("x", prof, [], [(0, 1, -1, -1, 0, 0, 0)])
    with pytest.raises(ValueError):
        Trace("x", prof, [(0, 1, -1, -1, 0, 0, 0)], [])


def test_clear_cache():
    t1 = trace_for("gzip", 2000)
    clear_trace_cache()
    t2 = trace_for("gzip", 2000)
    assert t1 is not t2
    assert t1.entries == t2.entries  # still deterministic
