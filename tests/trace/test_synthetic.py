"""Unit tests: static program and trace generator."""

from collections import Counter

import pytest

from repro.isa.opcodes import (
    OP_BRANCH,
    OP_CALL,
    OP_FP,
    OP_LOAD,
    OP_MUL,
    OP_RETURN,
    OP_STORE,
)
from repro.isa.registers import REG_NONE
from repro.trace.benchmarks import get_benchmark
from repro.trace.synthetic import (
    StaticProgram,
    TERM_BRANCH,
    TERM_CALL,
    TERM_RET,
    TraceGenerator,
    generate_trace,
)


@pytest.fixture(scope="module")
def gzip_prog():
    return StaticProgram(get_benchmark("gzip"), seed=0)


@pytest.fixture(scope="module")
def gzip_trace(gzip_prog):
    return TraceGenerator(gzip_prog, seed=0).generate(12_000)


def test_program_deterministic():
    p1 = StaticProgram(get_benchmark("gzip"), seed=0)
    p2 = StaticProgram(get_benchmark("gzip"), seed=0)
    assert p1.block_pc == p2.block_pc
    assert p1.block_term == p2.block_term
    assert p1.block_target == p2.block_target


def test_different_seed_different_program():
    p1 = StaticProgram(get_benchmark("gzip"), seed=0)
    p2 = StaticProgram(get_benchmark("gzip"), seed=1)
    assert p1.block_term != p2.block_term or p1.block_size != p2.block_size


def test_blocks_laid_out_contiguously(gzip_prog):
    for b in range(gzip_prog.num_blocks - 1):
        end = gzip_prog.block_pc[b] + 4 * gzip_prog.block_size[b]
        assert gzip_prog.block_pc[b + 1] == end


def test_terminators_valid(gzip_prog):
    assert set(gzip_prog.block_term) <= {TERM_BRANCH, TERM_CALL, TERM_RET}
    assert gzip_prog.static_branch_count() > 0


def test_call_targets_are_function_entries(gzip_prog):
    entries = set(gzip_prog.func_entries)
    for b in range(gzip_prog.num_blocks):
        if gzip_prog.block_term[b] == TERM_CALL:
            assert gzip_prog.block_target[b] in entries


def test_trace_deterministic():
    t1 = generate_trace(get_benchmark("eon"), 2000, seed=3)
    t2 = generate_trace(get_benchmark("eon"), 2000, seed=3)
    assert t1 == t2


def test_trace_length_exact(gzip_trace):
    assert len(gzip_trace) == 12_000


def test_instruction_mix_close_to_profile(gzip_trace):
    prof = get_benchmark("gzip")
    n = len(gzip_trace)
    counts = Counter(e[0] for e in gzip_trace)
    load = counts[OP_LOAD] / n
    store = counts[OP_STORE] / n
    # Body-class fractions: terminators displace ~branch_frac of the mix;
    # allow generous tolerance (statistical + control-flow weighting).
    assert abs(load - prof.load_frac) < 0.06
    assert abs(store - prof.store_frac) < 0.05
    branch = (counts[OP_BRANCH] + counts[OP_CALL] + counts[OP_RETURN]) / n
    assert 0.05 < branch < 0.3


def test_pcs_follow_block_layout(gzip_trace, gzip_prog):
    pcs = {e[6] for e in gzip_trace}
    lo = gzip_prog.block_pc[0]
    hi = gzip_prog.block_pc[-1] + 4 * gzip_prog.block_size[-1]
    assert all(lo <= pc < hi for pc in pcs)
    assert all(pc % 4 == 0 for pc in pcs)


def test_taken_branch_changes_pc_flow(gzip_trace):
    # After a taken control transfer the next pc differs from pc+4; after
    # a not-taken branch it is exactly pc+4.
    checked_taken = checked_nt = 0
    for i, e in enumerate(gzip_trace[:-1]):
        if e[0] == OP_BRANCH:
            nxt = gzip_trace[i + 1][6]
            if e[5]:
                checked_taken += 1
            else:
                assert nxt == e[6] + 4
                checked_nt += 1
    assert checked_taken > 50 and checked_nt > 50


def test_calls_and_returns_roughly_balance(gzip_trace):
    counts = Counter(e[0] for e in gzip_trace)
    calls, rets = counts[OP_CALL], counts[OP_RETURN]
    assert calls > 0 and rets > 0
    assert 0.4 < calls / max(1, rets) < 2.5


def test_loads_have_addresses_and_dest(gzip_trace):
    for e in gzip_trace:
        if e[0] == OP_LOAD:
            assert e[4] > 0
            assert e[1] != REG_NONE
        if e[0] == OP_STORE:
            assert e[4] > 0
            assert e[1] == REG_NONE


def test_mul_fp_present_when_profiled():
    t = generate_trace(get_benchmark("eon"), 10_000)
    counts = Counter(e[0] for e in t)
    assert counts[OP_FP] > 0
    assert counts[OP_MUL] > 0


def test_junk_has_no_branches():
    prog = StaticProgram(get_benchmark("gzip"), 0)
    junk = TraceGenerator(prog, 0).generate_junk(500)
    assert len(junk) == 500
    assert all(e[0] in (OP_LOAD, 0) for e in junk)  # loads or OP_INT


def test_addresses_within_working_set(gzip_trace):
    prof = get_benchmark("gzip")
    from repro.trace.synthetic import DATA_BASE

    hi = DATA_BASE + prof.working_set_bytes
    for e in gzip_trace:
        if e[0] in (OP_LOAD, OP_STORE):
            assert DATA_BASE <= e[4] < hi
