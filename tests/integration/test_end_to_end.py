"""End-to-end behavioural tests of the full simulator stack."""


from repro.core.config import get_config
from repro.core.simulation import run_simulation, run_workload


def test_single_thread_ipc_ordered_by_pipeline_width():
    """An ILP thread's IPC must degrade monotonically with pipeline width
    (M8 monolithic > single M6 > single M4 > single M2 hdSMT)."""
    ipcs = {}
    for cfg in ("M8", "1M6", "1M4", "1M2"):
        ipcs[cfg] = run_simulation(cfg, ["eon"], (0,), commit_target=2000).ipc
    assert ipcs["M8"] > ipcs["1M6"] > ipcs["1M4"] > ipcs["1M2"]


def test_smt_throughput_exceeds_single_thread():
    solo = run_simulation("M8", ["gzip"], (0,), commit_target=2000)
    pair = run_simulation("M8", ["gzip", "eon"], (0, 0), commit_target=2000)
    assert pair.ipc > solo.ipc


def test_memory_bound_thread_runs_slower():
    r = run_simulation("M8", ["eon", "mcf"], (0, 0), commit_target=2000)
    eon_ipc = r.thread_ipc[0]
    mcf_ipc = r.thread_ipc[1]
    assert eon_ipc > 3 * mcf_ipc


def test_isolation_protects_ilp_thread():
    """hdSMT's point: a memory hog sharing the ILP thread's pipeline hurts
    it more than the same hog isolated on another pipeline."""
    cfg = get_config("2M4+2M2")
    together = run_simulation(cfg, ["bzip2", "twolf"], (0, 0), commit_target=1500)
    isolated = run_simulation(cfg, ["bzip2", "twolf"], (0, 2), commit_target=1500)
    assert isolated.thread_ipc[0] > together.thread_ipc[0]


def test_flush_helps_baseline_on_mem_workload():
    """FLUSH vs plain ICOUNT on the monolithic baseline with an L2-missing
    thread: the non-offending thread must go faster with FLUSH."""
    from dataclasses import replace

    m8 = get_config("M8")
    m8_icount = replace(m8, name="M8i", fetch_policy="icount")
    flush = run_simulation(m8, ["gzip", "mcf"], (0, 0), commit_target=2000)
    plain = run_simulation(m8_icount, ["gzip", "mcf"], (0, 0), commit_target=2000)
    assert flush.thread_ipc[0] > plain.thread_ipc[0]
    assert flush.stats["flushes"] > 0


def test_heuristic_mapping_isolates_mcf():
    """On 2M4+2M2 the heuristic must not put mcf on a wide pipeline with
    a well-behaved thread."""
    r = run_workload("2M4+2M2", ["eon", "mcf"], commit_target=1000)
    cfg = get_config("2M4+2M2")
    eon_pipe, mcf_pipe = r.mapping
    assert cfg.pipelines[eon_pipe].width >= cfg.pipelines[mcf_pipe].width
    assert eon_pipe != mcf_pipe


def test_six_threads_run_on_m8_and_big_hdsmt():
    r1 = run_simulation("M8", ["gzip", "gcc", "crafty", "eon", "gap", "bzip2"],
                        (0,) * 6, commit_target=1200)
    assert sum(r1.committed) >= 1200
    r2 = run_workload("1M6+2M4+2M2", ["gzip", "gcc", "crafty", "eon", "gap", "bzip2"],
                      commit_target=1200)
    assert sum(r2.committed) >= 1200


def test_wider_aggregate_width_wins_at_high_thread_count():
    """§5: hdSMT outperforms M8 on the six-threaded ILP workloads (8-wide
    monolithic saturates; the clustered design has 16 issue slots)."""
    benches = ["gzip", "gcc", "crafty", "eon", "gap", "bzip2"]
    m8 = run_simulation("M8", benches, (0,) * 6, commit_target=2500)
    hd = run_workload("1M6+2M4+2M2", benches, commit_target=2500)
    assert hd.ipc > m8.ipc * 0.95  # at minimum parity; typically a win


def test_deterministic_end_to_end():
    a = run_simulation("3M4+2M2", ["eon", "vpr"], (0, 3), commit_target=900)
    b = run_simulation("3M4+2M2", ["eon", "vpr"], (0, 3), commit_target=900)
    assert a.cycles == b.cycles and a.committed == b.committed
