"""Calibration tests: the paper's qualitative results must hold.

These assert the *shape* of the reproduction (who wins, in which metric,
roughly by how much) at a reduced scale. EXPERIMENTS.md records the
full-scale numbers.
"""

import pytest

from repro.area.model import config_area
from repro.core.simulation import run_simulation, run_workload
from repro.experiments.performance import (
    clear_result_cache,
    run_performance_experiment,
)
from repro.experiments.scale import ExperimentScale
from repro.experiments.summary import headline_summary


@pytest.fixture(scope="module")
def sweep():
    """One shared mini-sweep across classes (module-scoped for speed)."""
    clear_result_cache()
    scale = ExperimentScale(commit_target=2000, screen_target=600, max_mappings=10)
    return run_performance_experiment(
        workload_names=["2W1", "2W4", "2W7", "4W1", "4W6"], scale=scale
    )


def test_monolithic_wins_raw_performance(sweep):
    s = headline_summary(sweep)
    assert s.ipc_gain_monolithic_vs_hdsmt > 0, (
        "the paper's M8 keeps a raw-IPC edge over hdSMT"
    )


def test_hdsmt_wins_performance_per_area(sweep):
    s = headline_summary(sweep)
    assert s.ppa_gain_vs_monolithic > 0.05, (
        "hdSMT must clearly win IPC/mm2 (paper: +13%)"
    )


def test_hdsmt_ppa_beats_homogeneous(sweep):
    s = headline_summary(sweep)
    assert s.ppa_gain_vs_homogeneous > 0.0, "paper: +14% over homogeneous"


def test_heuristic_accuracy_high(sweep):
    s = headline_summary(sweep)
    for config, acc in s.heuristic_accuracy.items():
        assert acc > 0.70, f"{config}: heuristic accuracy {acc:.2f} too low"


def test_best_ppa_config_is_smallest_heterogeneous(sweep):
    """The paper's best performance-per-area design is 2M4+2M2."""
    s = headline_summary(sweep)
    assert s.best_ppa_hdsmt == "2M4+2M2"


def test_area_ratios_drive_the_ppa_story():
    """2M4+2M2 must deliver >= ~73% of M8's IPC to win PPA (it has 73%
    of the area); verify the IPC ratio clears that bar on an ILP pair."""
    m8 = run_simulation("M8", ["eon", "gcc"], (0, 0), commit_target=2500)
    hd = run_workload("2M4+2M2", ["eon", "gcc"], commit_target=2500)
    area_ratio = config_area("2M4+2M2") / config_area("M8")
    assert hd.ipc / m8.ipc > area_ratio


def test_worst_mapping_clearly_hurts(sweep):
    """BEST vs WORST spread demonstrates the mapping policy matters
    (a central claim of the paper)."""
    spreads = []
    for config in ("2M4+2M2", "3M4+2M2", "1M6+2M4+2M2"):
        per = sweep.get(config, {})
        for wr in per.values():
            if not wr.degenerate:
                spreads.append(wr.best.ipc / max(1e-9, wr.worst.ipc))
    assert spreads and max(spreads) > 1.05
