"""The example scripts must run end-to-end (small scales)."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py", "--target", "1500")
    assert "IPC/mm2" in out or "IPC per mm2" in out
    assert "M8" in out and "2M4+2M2" in out


def test_mapping_policy_study():
    out = run_example(
        "mapping_policy_study.py", "--target", "1200", "--max-mappings", "6"
    )
    assert "HEURISTIC" in out
    assert "heuristic accuracy" in out
    assert "BEST" in out and "WORST" in out


def test_design_space_exploration():
    out = run_example(
        "design_space_exploration.py",
        "--workload", "2W1", "--target", "1200", "--max-contexts", "4",
    )
    assert "Best design" in out
    assert "M8 (baseline)" in out


def test_workload_characterization():
    out = run_example("workload_characterization.py", "--target", "800")
    assert "mcf" in out and "eon" in out
    assert "MPKI" in out
