"""Tests: the command-line interface."""

import pytest

from repro.cli import main


def test_run_with_workload(capsys):
    rc = main(["run", "--config", "M8", "--workload", "2W1", "--target", "800"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "IPC" in out and "mm2" in out


def test_run_with_benchmarks(capsys):
    rc = main(["run", "--config", "2M4+2M2", "eon", "mcf", "--target", "600"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "2M4+2M2" in out


def test_run_without_workload_errors(capsys):
    rc = main(["run", "--config", "M8"])
    assert rc == 2


def test_areas(capsys):
    rc = main(["areas"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "-17.00%" in out and "M8" in out


def test_areas_custom(capsys):
    rc = main(["areas", "2M4+2M2"])
    assert rc == 0
    assert "2M4+2M2" in capsys.readouterr().out


def test_profile(capsys):
    rc = main(["profile", "eon", "mcf"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "mcf" in out and "MPKI" in out


def test_workloads(capsys):
    rc = main(["workloads"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "2W4" in out and "6W4" in out


def test_figures_tiny(capsys):
    rc = main(
        ["figures", "--scale", "0.08", "--workloads", "2W1", "2W4", "--quiet"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "Fig. 4" in out and "Fig. 5" in out and "headline" in out


def test_figures_report_json(tmp_path, capsys):
    from repro.experiments.performance import clear_result_cache

    clear_result_cache()  # the in-process memo would leave jobs == 0
    out_path = tmp_path / "reports" / "run.json"
    rc = main(
        ["figures", "--scale", "0.08", "--workloads", "2W1", "--quiet",
         "--report-json", str(out_path)]
    )
    assert rc == 0
    import json

    payload = json.loads(out_path.read_text())
    for key in ("jobs", "attempts", "retries", "enqueued", "lease_reclaims",
                "speculations", "local_fallbacks"):
        assert key in payload
    assert payload["jobs"] > 0


def test_worker_cli_serves_queue(tmp_path):
    """`repro worker` end to end in-process-of-the-CLI: enqueue a task,
    run a bounded worker over it, confirm the published result."""
    from repro.runner import JobQueue, SimJob

    q = JobQueue(tmp_path / "q")
    q.write_config(None, None)
    job = SimJob("M8", ("gzip", "twolf"), (0, 0), 400)
    q.enqueue("b1-j0000", job)
    import gc

    try:
        rc = main(
            ["worker", "--queue", str(tmp_path / "q"),
             "--worker-id", "cliw", "--max-tasks", "1", "--idle-exit", "5"]
        )
    finally:
        # Undo the worker's process setup (gc off + frozen) — this
        # process is a shared test session, not a dedicated worker.
        gc.unfreeze()
        gc.enable()
    assert rc == 0
    record = q.load_result("b1-j0000")
    assert record is not None
    assert record["worker"] == "cliw"
    assert record["result"] == job.execute()


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])


def test_cache_stats_and_prune(tmp_path, capsys, monkeypatch):
    import json
    import os
    import time

    from repro.runner import ResultCache, SimJob

    cache_dir = tmp_path / "cache"
    cache = ResultCache(cache_dir)
    jobs = [SimJob("M8", ("gzip", "twolf"), (0, 0), 300, seed=s)
            for s in range(2)]
    for job in jobs:
        cache.put(job, job.execute())

    rc = main(["cache", "stats", "--cache", str(cache_dir)])
    assert rc == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["entries"] == 2
    assert stats["total_bytes"] > 0
    assert {"hits", "mem_hits", "disk_hits", "misses",
            "corrupt_fallbacks"} <= stats.keys()

    # Age one entry past the threshold, prune via the d-suffix form.
    key = ResultCache.job_key(jobs[0])
    old = cache_dir / key[:2] / f"{key}.json"
    stale = time.time() - 3 * 86400
    os.utime(old, (stale, stale))
    rc = main(["cache", "prune", "--cache", str(cache_dir),
               "--older-than", "1d"])
    assert rc == 0
    report = json.loads(capsys.readouterr().out)
    assert report == {"removed": 1,
                      "removed_bytes": report["removed_bytes"], "kept": 1}
    assert report["removed_bytes"] > 0
    assert not old.exists()

    # REPRO_RESULT_CACHE is the --cache default; no cache at all errors.
    monkeypatch.setenv("REPRO_RESULT_CACHE", str(cache_dir))
    assert main(["cache", "stats"]) == 0
    capsys.readouterr()
    monkeypatch.delenv("REPRO_RESULT_CACHE")
    assert main(["cache", "stats"]) == 2
    assert main(["cache", "prune", "--cache", str(cache_dir),
                 "--older-than", "nonsense"]) == 2
