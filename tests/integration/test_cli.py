"""Tests: the command-line interface."""

import pytest

from repro.cli import main


def test_run_with_workload(capsys):
    rc = main(["run", "--config", "M8", "--workload", "2W1", "--target", "800"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "IPC" in out and "mm2" in out


def test_run_with_benchmarks(capsys):
    rc = main(["run", "--config", "2M4+2M2", "eon", "mcf", "--target", "600"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "2M4+2M2" in out


def test_run_without_workload_errors(capsys):
    rc = main(["run", "--config", "M8"])
    assert rc == 2


def test_areas(capsys):
    rc = main(["areas"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "-17.00%" in out and "M8" in out


def test_areas_custom(capsys):
    rc = main(["areas", "2M4+2M2"])
    assert rc == 0
    assert "2M4+2M2" in capsys.readouterr().out


def test_profile(capsys):
    rc = main(["profile", "eon", "mcf"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "mcf" in out and "MPKI" in out


def test_workloads(capsys):
    rc = main(["workloads"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "2W4" in out and "6W4" in out


def test_figures_tiny(capsys):
    rc = main(
        ["figures", "--scale", "0.08", "--workloads", "2W1", "2W4", "--quiet"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "Fig. 4" in out and "Fig. 5" in out and "headline" in out


def test_figures_report_json(tmp_path, capsys):
    from repro.experiments.performance import clear_result_cache

    clear_result_cache()  # the in-process memo would leave jobs == 0
    out_path = tmp_path / "reports" / "run.json"
    rc = main(
        ["figures", "--scale", "0.08", "--workloads", "2W1", "--quiet",
         "--report-json", str(out_path)]
    )
    assert rc == 0
    import json

    payload = json.loads(out_path.read_text())
    for key in ("jobs", "attempts", "retries", "enqueued", "lease_reclaims",
                "speculations", "local_fallbacks"):
        assert key in payload
    assert payload["jobs"] > 0


def test_worker_cli_serves_queue(tmp_path):
    """`repro worker` end to end in-process-of-the-CLI: enqueue a task,
    run a bounded worker over it, confirm the published result."""
    from repro.runner import JobQueue, SimJob

    q = JobQueue(tmp_path / "q")
    q.write_config(None, None)
    job = SimJob("M8", ("gzip", "twolf"), (0, 0), 400)
    q.enqueue("b1-j0000", job)
    import gc

    try:
        rc = main(
            ["worker", "--queue", str(tmp_path / "q"),
             "--worker-id", "cliw", "--max-tasks", "1", "--idle-exit", "5"]
        )
    finally:
        # Undo the worker's process setup (gc off + frozen) — this
        # process is a shared test session, not a dedicated worker.
        gc.unfreeze()
        gc.enable()
    assert rc == 0
    record = q.load_result("b1-j0000")
    assert record is not None
    assert record["worker"] == "cliw"
    assert record["result"] == job.execute()


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])
