"""Tests: the command-line interface."""

import pytest

from repro.cli import main


def test_run_with_workload(capsys):
    rc = main(["run", "--config", "M8", "--workload", "2W1", "--target", "800"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "IPC" in out and "mm2" in out


def test_run_with_benchmarks(capsys):
    rc = main(["run", "--config", "2M4+2M2", "eon", "mcf", "--target", "600"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "2M4+2M2" in out


def test_run_without_workload_errors(capsys):
    rc = main(["run", "--config", "M8"])
    assert rc == 2


def test_areas(capsys):
    rc = main(["areas"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "-17.00%" in out and "M8" in out


def test_areas_custom(capsys):
    rc = main(["areas", "2M4+2M2"])
    assert rc == 0
    assert "2M4+2M2" in capsys.readouterr().out


def test_profile(capsys):
    rc = main(["profile", "eon", "mcf"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "mcf" in out and "MPKI" in out


def test_workloads(capsys):
    rc = main(["workloads"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "2W4" in out and "6W4" in out


def test_figures_tiny(capsys):
    rc = main(
        ["figures", "--scale", "0.08", "--workloads", "2W1", "2W4", "--quiet"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "Fig. 4" in out and "Fig. 5" in out and "headline" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])
