"""Unit tests: structural area scores."""

from repro.area.structures import STAGE_NAMES, structural_backend_score, structural_scores
from repro.core.models import M2, M4, M6, M8


def test_stage_names_match_paper_legend():
    assert STAGE_NAMES == ("IF", "DE", "DI", "EX", "IC", "DEQ", "DIQ", "CQ")


def test_scores_positive():
    for m in (M8, M6, M4, M2):
        for stage, s in structural_scores(m).items():
            assert s > 0, stage


def test_backend_monotone_in_model_size():
    s8 = structural_backend_score(M8)
    s6 = structural_backend_score(M6)
    s4 = structural_backend_score(M4)
    s2 = structural_backend_score(M2)
    assert s8 > s6 > s4 > s2


def test_execution_core_dominates():
    """Fig. 2(b): the execution core is the largest back-end segment."""
    for m in (M8, M6, M4, M2):
        scores = structural_scores(m)
        assert scores["EX"] == max(scores.values())


def test_width_quadratic_in_ex():
    ex8 = structural_scores(M8)["EX"]
    ex2 = structural_scores(M2)["EX"]
    # 8-wide vs 2-wide: far more than the 4x a linear model would give.
    assert ex8 / ex2 > 6
