"""Unit tests: calibrated area model — must reproduce Fig. 3."""

import pytest

from repro.area.model import (
    AREA_M8_TOTAL_MM2,
    AreaModel,
    area_report,
    config_area,
    pipeline_model_area,
    stage_breakdown,
)
from repro.core.models import PipelineModel


#: Paper Fig. 3 annotations: config -> delta vs M8 (percent).
FIG3_DELTAS = {
    "M8": 0.0,
    "3M4": -17.0,
    "4M4": +10.14,
    "2M4+2M2": -27.0,
    "3M4+2M2": -1.0,
    "1M6+2M4+2M2": +2.0,
}


@pytest.mark.parametrize("name,delta", FIG3_DELTAS.items())
def test_fig3_deltas_within_tolerance(name, delta):
    base = config_area("M8")
    measured = 100.0 * (config_area(name) - base) / base
    assert measured == pytest.approx(delta, abs=1.5)


def test_only_4m4_and_biggest_hdsmt_exceed_baseline():
    """§4.1: 'all but two microarchitectures (4M4 and 1M6+2M4+2M2) require
    less area than the monolithic SMT baseline'."""
    base = config_area("M8")
    for name in FIG3_DELTAS:
        if name == "M8":
            continue
        if name in ("4M4", "1M6+2M4+2M2"):
            assert config_area(name) > base
        else:
            assert config_area(name) < base


def test_m8_absolute_scale():
    assert config_area("M8") == pytest.approx(AREA_M8_TOTAL_MM2)


def test_model_area_ordering():
    assert (
        pipeline_model_area("M8")
        > pipeline_model_area("M6")
        > pipeline_model_area("M4")
        > pipeline_model_area("M2")
    )


def test_stage_breakdown_sums_to_total():
    for m in ("M8", "M6", "M4", "M2"):
        bd = stage_breakdown(m)
        assert sum(bd.values()) == pytest.approx(pipeline_model_area(m))


def test_hdsmt_fetch_overhead():
    am = AreaModel()
    assert am.fetch_area(hdsmt=True) == pytest.approx(1.2 * am.fetch_area(hdsmt=False))


def test_hdsmt_models_carry_bigger_fetch():
    """Fig. 2(b): M6/M4/M2 bars include a fetch stage 20% bigger than M8's."""
    assert stage_breakdown("M4")["IF"] == pytest.approx(
        1.2 * stage_breakdown("M8")["IF"]
    )


def test_custom_scale():
    am = AreaModel(m8_total_mm2=330.0)
    assert am.config_area("M8") == pytest.approx(330.0)
    assert am.config_area("3M4") / am.config_area("M8") == pytest.approx(0.83, abs=0.001)


def test_extrapolated_model_area_reasonable():
    """Uncalibrated models interpolate: a width-3 pipeline must land
    between M2 and M4."""
    m3 = PipelineModel(
        name="M3",
        contexts=1,
        width=3,
        threads_per_cycle=1,
        iq_entries=24,
        fq_entries=24,
        lq_entries=24,
        int_units=2,
        fp_units=1,
        ldst_units=1,
        fetch_buffer=16,
    )
    am = AreaModel()
    a3 = am.backend_area(m3)
    assert am.backend_area(PipelineModel(
        name="M2", contexts=1, width=2, threads_per_cycle=1, iq_entries=16,
        fq_entries=16, lq_entries=16, int_units=1, fp_units=1, ldst_units=1,
        fetch_buffer=16,
    )) < a3 < am.backend_area(PipelineModel(
        name="M4", contexts=2, width=4, threads_per_cycle=2, iq_entries=32,
        fq_entries=32, lq_entries=32, int_units=3, fp_units=2, ldst_units=2,
        fetch_buffer=32,
    ))


def test_extrapolation_consistent_with_calibration():
    """Structural extrapolation evaluated on the calibrated models should
    stay within ~20% of their calibrated areas."""
    from repro.area.structures import structural_backend_score
    from repro.area.model import BACKEND_FRACTIONS
    from repro.core.models import MODELS_BY_NAME

    am = AreaModel()
    for name in ("M6", "M4", "M2"):
        frac = BACKEND_FRACTIONS[name]
        struct = structural_backend_score(MODELS_BY_NAME[name]) * am._struct_scale
        assert struct == pytest.approx(frac, rel=0.25)


def test_validation():
    with pytest.raises(ValueError):
        AreaModel(m8_total_mm2=-1)


def test_area_report_smoke():
    s = area_report(["M8", "3M4"])
    assert "M8" in s and "-17.00%" in s


def test_invalid_config_area_raises():
    with pytest.raises((KeyError, ValueError)):
        config_area("17Q3")
