"""Integration tests: ablation studies (tiny scale)."""


from repro.experiments.ablations import (
    ablation_fetch_buffer,
    ablation_fetch_policy,
    ablation_mapping_policy,
    ablation_register_latency,
    ablation_report,
)
from repro.experiments.scale import ExperimentScale

SCALE = ExperimentScale(commit_target=800, screen_target=300, max_mappings=6)


def test_fetch_policy_ablation_runs_all():
    res = ablation_fetch_policy(scale=SCALE, policies=("l1mcount", "roundrobin"))
    assert set(res) == {"l1mcount", "roundrobin"}
    for r in res.values():
        assert r.ipc > 0


def test_register_latency_single_thread_monotone():
    """Single-threaded, more RF latency can never help (multithreaded
    aggregate IPC may wiggle: slowing one thread's chains reshuffles
    fetch interleaving and the first-finisher stop point)."""
    from dataclasses import replace

    from repro.core.config import get_config
    from repro.core.simulation import run_simulation

    base = get_config("2M4+2M2")
    ipcs = {}
    for lat in (1, 3):
        cfg = replace(
            base, name=f"rf{lat}", params=replace(base.params, reg_latency=lat)
        )
        ipcs[lat] = run_simulation(cfg, ["gzip"], (0,), commit_target=1200).ipc
    assert ipcs[1] > ipcs[3]


def test_register_latency_ablation_runs():
    res = ablation_register_latency(scale=SCALE, latencies=(1, 2))
    assert set(res) == {1, 2}
    for r in res.values():
        assert r.ipc > 0


def test_fetch_buffer_tiny_hurts():
    res = ablation_fetch_buffer(scale=SCALE, sizes=(2, 32))
    assert res[32].ipc >= res[2].ipc * 0.95  # bigger buffer >= tiny one


def test_mapping_policy_oracle_brackets():
    res = ablation_mapping_policy(scale=SCALE)
    assert res["oracle-best"].ipc >= res["oracle-worst"].ipc
    assert res["oracle-best"].ipc >= res["heuristic"].ipc * 0.95


def test_ablation_report_renders():
    res = ablation_register_latency(scale=SCALE, latencies=(1,))
    text = ablation_report(res, "reg_latency")
    assert "reg_latency" in text and "IPC" in text
