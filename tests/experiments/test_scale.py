"""Unit tests: experiment scaling knobs."""

import pytest

from repro.experiments.scale import ExperimentScale, default_scale


def test_defaults():
    s = ExperimentScale()
    assert s.commit_target > s.screen_target > 0
    assert s.max_mappings > 0


def test_scaled():
    s = ExperimentScale(commit_target=8000, screen_target=1500).scaled(0.5)
    assert s.commit_target == 4000
    assert s.screen_target == 750


def test_scaled_floor():
    s = ExperimentScale().scaled(0.0001)
    assert s.commit_target >= 500
    assert s.screen_target >= 300


def test_scaled_validation():
    with pytest.raises(ValueError):
        ExperimentScale().scaled(0)


def test_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_SCALE", "2")
    s = default_scale()
    assert s.commit_target == ExperimentScale().commit_target * 2
    monkeypatch.setenv("REPRO_MAX_MAPPINGS", "5")
    assert default_scale().max_mappings == 5


def test_cache_key_distinguishes():
    a = ExperimentScale(commit_target=1000)
    b = ExperimentScale(commit_target=2000)
    assert a.cache_key != b.cache_key
