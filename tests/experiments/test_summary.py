"""Integration tests: §5 headline summary machinery (tiny scale)."""

import pytest

from repro.experiments.performance import clear_result_cache, run_performance_experiment
from repro.experiments.summary import headline_summary, summary_report


@pytest.fixture(scope="module")
def small_results():
    clear_result_cache()
    from repro.experiments.scale import ExperimentScale

    scale = ExperimentScale(commit_target=900, screen_target=300, max_mappings=6)
    return run_performance_experiment(
        workload_names=["2W1", "2W4", "2W7"], scale=scale
    )


def test_summary_fields(small_results):
    s = headline_summary(small_results)
    assert set(s.ipc_by_config) == set(small_results)
    assert s.best_ppa_hdsmt in ("2M4+2M2", "3M4+2M2", "1M6+2M4+2M2")
    assert s.ppa_gain_vs_monolithic != 0.0
    for cfg, acc in s.heuristic_accuracy.items():
        assert 0.0 < acc <= 1.0


def test_best_hdsmt_ppa_beats_m8(small_results):
    """The paper's central claim must hold in sign at any scale."""
    s = headline_summary(small_results)
    assert s.ppa_gain_vs_monolithic > 0


def test_report_renders(small_results):
    s = headline_summary(small_results)
    text = summary_report(s)
    assert "PPA gain" in text and "paper" in text
    assert "+13%" in text


def test_empty_results_raise():
    with pytest.raises(ValueError):
        headline_summary({"M8": {}})
