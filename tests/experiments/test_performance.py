"""Integration tests: the Fig. 4/5 experiment driver (tiny scale)."""

import pytest

from repro.experiments.performance import (
    class_size_means,
    clear_result_cache,
    evaluate_config_workload,
    fig4_table,
    fig5_table,
    run_performance_experiment,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_result_cache()
    yield


def test_monolithic_single_measurement(tiny_scale):
    wr = evaluate_config_workload("M8", "2W1", tiny_scale)
    assert wr.best is wr.heur is wr.worst
    assert wr.degenerate


def test_homogeneous_two_threads_coincide(tiny_scale):
    """§5: on homogeneous configs the three 2-thread measurements match."""
    wr = evaluate_config_workload("3M4", "2W1", tiny_scale)
    assert wr.degenerate
    assert wr.best.ipc == wr.heur.ipc == wr.worst.ipc


def test_hetero_best_heur_worst_ordering(tiny_scale):
    wr = evaluate_config_workload("2M4+2M2", "2W7", tiny_scale)
    assert wr.best.ipc >= wr.heur.ipc >= wr.worst.ipc
    assert wr.mappings_screened >= 2


def test_results_cached(tiny_scale):
    a = evaluate_config_workload("2M4+2M2", "2W1", tiny_scale)
    b = evaluate_config_workload("2M4+2M2", "2W1", tiny_scale)
    assert a is b


def test_ppa_uses_config_area(tiny_scale):
    wr = evaluate_config_workload("2M4+2M2", "2W1", tiny_scale)
    assert wr.ppa("heur") == pytest.approx(wr.heur.ipc / wr.area)


def test_workload_too_big_is_skipped(tiny_scale):
    # 1M4+1M2 offers only 3 contexts: 4-thread workloads must be skipped.
    res = run_performance_experiment(
        config_names=["1M4+1M2"], workload_names=["2W1", "4W1"], scale=tiny_scale
    )
    assert "2W1" in res["1M4+1M2"]
    assert "4W1" not in res["1M4+1M2"]
    # 6W1 fits 2M4+2M2 exactly (6 contexts) and must not be skipped.
    res2 = run_performance_experiment(
        config_names=["3M4"], workload_names=["6W1"], scale=tiny_scale
    )
    assert "6W1" in res2["3M4"]


def test_class_size_means_structure(tiny_scale):
    res = run_performance_experiment(
        config_names=["M8", "2M4+2M2"],
        workload_names=["2W1", "2W2"],
        scale=tiny_scale,
    )
    means = class_size_means(res, "ILP", metric="ipc")
    assert "2 THREADS" in means and "HMEAN" in means
    assert "M8" in means["2 THREADS"]
    assert set(means["2 THREADS"]["M8"]) == {"BEST", "HEUR", "WORST"}
    # Two ILP workloads, hmean over both:
    m8_vals = [res["M8"][w].ipc("heur") for w in ("2W1", "2W2")]
    from repro.metrics.stats import harmonic_mean

    assert means["HMEAN"]["M8"]["HEUR"] == pytest.approx(harmonic_mean(m8_vals))


def test_fig_tables_render(tiny_scale):
    res = run_performance_experiment(
        config_names=["M8", "3M4"], workload_names=["2W4"], scale=tiny_scale
    )
    t4 = fig4_table(res, "MEM")
    t5 = fig5_table(res, "MEM")
    assert "Fig. 4" in t4 and "MEM" in t4
    assert "Fig. 5" in t5 and "IPC/mm2" in t5
