"""--screening vs exact oracle screening: the validated-approximation
contract.

Screening mode is allowed to *evaluate* differently (staged windows,
checkpointed continuation) but on the reference scenario it must *select*
the same oracle mapping as the exact screen, and the full-length numbers
it reports for its selections must be bit-identical to fresh full-length
simulations. Everything here is deterministic — these are equality
assertions, not statistical ones.
"""

import pytest

from repro.core.simulation import run_simulation
from repro.experiments.performance import (
    clear_result_cache,
    evaluate_config_workload,
)
from repro.experiments.scale import ExperimentScale

#: The reference scenario (the golden/benchmark configuration family) at
#: the paper's default experiment scale — the scale BENCH_0002's reference
#: sweep runs at.
REFERENCE_CONFIG = "2M4+2M2"
REFERENCE_WORKLOAD = "4W6"
REFERENCE_SCALE = ExperimentScale(
    commit_target=8000, screen_target=1500, max_mappings=36
)


@pytest.fixture(scope="module")
def reference_pair():
    """(exact, screened) WorkloadResults for the reference scenario —
    computed once for the whole module (they are deterministic)."""
    clear_result_cache()
    exact = evaluate_config_workload(
        REFERENCE_CONFIG, REFERENCE_WORKLOAD, REFERENCE_SCALE
    )
    screened = evaluate_config_workload(
        REFERENCE_CONFIG, REFERENCE_WORKLOAD, REFERENCE_SCALE, screening=True
    )
    yield exact, screened
    clear_result_cache()


def test_screening_selects_same_oracle_mapping_on_reference_scenario(
    reference_pair,
):
    exact, screened = reference_pair
    # Same oracle (BEST) mapping selected, hence identical BEST numbers.
    assert screened.best.mapping == exact.best.mapping
    assert screened.best == exact.best
    # The heuristic run is screening-independent.
    assert screened.heur == exact.heur
    # Both modes screened the same candidate space.
    assert screened.mappings_screened == exact.mappings_screened


def test_screening_results_are_real_full_length_runs(reference_pair):
    """Whatever screening selects, the reported numbers must come from
    genuine full-length simulations (folded continuations included)."""
    _, screened = reference_pair
    seen = set()
    for res in (screened.best, screened.heur, screened.worst):
        if res.mapping in seen:
            continue
        seen.add(res.mapping)
        fresh = run_simulation(
            REFERENCE_CONFIG,
            res.benchmarks,
            res.mapping,
            REFERENCE_SCALE.commit_target,
            trace_length=REFERENCE_SCALE.commit_target,
        )
        assert res == fresh


def test_screening_preserves_ordering_invariant(reference_pair):
    _, screened = reference_pair
    assert screened.best.ipc >= screened.heur.ipc >= screened.worst.ipc


def test_screening_and_exact_results_cached_separately():
    clear_result_cache()
    tiny = ExperimentScale(commit_target=800, screen_target=300, max_mappings=8)
    a = evaluate_config_workload(REFERENCE_CONFIG, "2W7", tiny)
    b = evaluate_config_workload(REFERENCE_CONFIG, "2W7", tiny, screening=True)
    assert a is evaluate_config_workload(REFERENCE_CONFIG, "2W7", tiny)
    assert b is evaluate_config_workload(
        REFERENCE_CONFIG, "2W7", tiny, screening=True
    )
    assert a is not b
    clear_result_cache()
