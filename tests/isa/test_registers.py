"""Unit tests: flattened register namespace."""

import pytest

from repro.isa import registers as regs


def test_namespace_size():
    assert regs.NUM_LOGICAL_REGS == regs.NUM_INT_REGS + regs.NUM_FP_REGS == 64


def test_int_and_fp_ranges_disjoint():
    ints = {regs.int_reg(i) for i in range(regs.NUM_INT_REGS)}
    fps = {regs.fp_reg(i) for i in range(regs.NUM_FP_REGS)}
    assert not ints & fps
    assert ints | fps == set(range(regs.NUM_LOGICAL_REGS))


def test_is_fp_reg():
    assert not regs.is_fp_reg(regs.int_reg(5))
    assert regs.is_fp_reg(regs.fp_reg(5))


def test_reg_name_round_trip():
    assert regs.reg_name(regs.int_reg(7)) == "r7"
    assert regs.reg_name(regs.fp_reg(3)) == "f3"
    assert regs.reg_name(regs.REG_NONE) == "-"


def test_out_of_range_raises():
    with pytest.raises(ValueError):
        regs.int_reg(32)
    with pytest.raises(ValueError):
        regs.fp_reg(-1)
    with pytest.raises(ValueError):
        regs.reg_name(64)


def test_reg_none_is_negative():
    # Hot paths test operands with `>= 0`; the sentinel must stay negative.
    assert regs.REG_NONE < 0
