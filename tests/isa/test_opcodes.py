"""Unit tests: instruction classes, latencies and FU routing."""

from repro.isa import opcodes as op


def test_class_constants_are_distinct():
    classes = [
        op.OP_INT,
        op.OP_MUL,
        op.OP_FP,
        op.OP_LOAD,
        op.OP_STORE,
        op.OP_BRANCH,
        op.OP_CALL,
        op.OP_RETURN,
        op.OP_NOP,
    ]
    assert len(set(classes)) == len(classes)
    assert sorted(classes) == list(range(op.NUM_OP_CLASSES))


def test_class_names_align_with_constants():
    assert op.OP_CLASS_NAMES[op.OP_LOAD] == "load"
    assert op.OP_CLASS_NAMES[op.OP_RETURN] == "return"
    assert len(op.OP_CLASS_NAMES) == op.NUM_OP_CLASSES


def test_latency_table_covers_every_class():
    assert len(op.EXEC_LATENCY) == op.NUM_OP_CLASSES
    assert all(lat >= 1 for lat in op.EXEC_LATENCY)


def test_multiply_slower_than_alu():
    assert op.EXEC_LATENCY[op.OP_MUL] > op.EXEC_LATENCY[op.OP_INT]


def test_fp_routed_to_fp_unit():
    assert op.fu_class(op.OP_FP) == op.FU_FP


def test_memory_ops_routed_to_ldst_unit():
    assert op.fu_class(op.OP_LOAD) == op.FU_LDST
    assert op.fu_class(op.OP_STORE) == op.FU_LDST


def test_control_ops_routed_to_int_unit():
    for c in (op.OP_BRANCH, op.OP_CALL, op.OP_RETURN):
        assert op.fu_class(c) == op.FU_INT


def test_is_branch_class():
    assert op.is_branch_class(op.OP_BRANCH)
    assert op.is_branch_class(op.OP_CALL)
    assert op.is_branch_class(op.OP_RETURN)
    assert not op.is_branch_class(op.OP_LOAD)
    assert not op.is_branch_class(op.OP_INT)


def test_is_memory_class():
    assert op.is_memory_class(op.OP_LOAD)
    assert op.is_memory_class(op.OP_STORE)
    assert not op.is_memory_class(op.OP_BRANCH)
