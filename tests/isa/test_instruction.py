"""Unit tests: Instruction dataclass <-> packed tuple round trips."""

from repro.isa import (
    Instruction,
    OP_BRANCH,
    OP_INT,
    OP_LOAD,
    REG_NONE,
    pack_entry,
    unpack_entry,
)


def test_pack_unpack_round_trip():
    i = Instruction(OP_LOAD, dest=4, src1=9, addr=0x1000_0040, pc=0x40_0010)
    assert unpack_entry(pack_entry(i)) == i


def test_pack_layout():
    i = Instruction(OP_BRANCH, src1=3, taken=True, pc=0x40_0000)
    e = i.pack()
    assert e == (OP_BRANCH, REG_NONE, 3, REG_NONE, 0, 1, 0x40_0000)


def test_branch_and_memory_flags():
    assert Instruction(OP_BRANCH).is_branch
    assert not Instruction(OP_BRANCH).is_memory
    assert Instruction(OP_LOAD).is_memory
    assert not Instruction(OP_INT).is_branch


def test_str_smoke():
    s = str(Instruction(OP_LOAD, dest=2, src1=7, addr=0x80, pc=4))
    assert "load" in s and "@0x80" in s
    s2 = str(Instruction(OP_BRANCH, src1=1, taken=False, pc=8))
    assert "not-taken" in s2


def test_frozen():
    import dataclasses

    import pytest

    i = Instruction(OP_INT)
    with pytest.raises(dataclasses.FrozenInstanceError):
        i.dest = 3  # type: ignore[misc]
