"""Shared fixtures for the test suite.

Tests run at small, fixed scales for speed and determinism; the full
paper-scale sweeps live in ``benchmarks/``.
"""

import os
from pathlib import Path

import pytest

# pyproject's `pythonpath = ["src"]` covers in-process imports but is not
# exported to subprocesses; the integration tests spawn example scripts
# and BatchRunner workers, so make the src layout visible to children
# even when the suite is invoked as a bare `pytest`.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in os.environ.get("PYTHONPATH", "").split(os.pathsep):
    os.environ["PYTHONPATH"] = (
        _SRC + os.pathsep + os.environ["PYTHONPATH"]
        if os.environ.get("PYTHONPATH")
        else _SRC
    )

from repro.experiments.scale import ExperimentScale  # noqa: E402
from repro.isa.opcodes import OP_INT  # noqa: E402
from repro.isa.registers import REG_NONE  # noqa: E402


@pytest.fixture
def tiny_scale() -> ExperimentScale:
    """Smallest useful experiment scale (fast unit/integration tests)."""
    return ExperimentScale(commit_target=800, screen_target=300, max_mappings=8)


@pytest.fixture
def small_scale() -> ExperimentScale:
    """Slightly larger scale for shape-sensitive integration tests."""
    return ExperimentScale(commit_target=2500, screen_target=700, max_mappings=12)


# -- shared simulation fixtures ---------------------------------------------
#
# The trace/core/runner suites all need the same three things: tiny traces
# (hand-built or generated), a temporary packed-trace store, and a
# guarantee that process-wide simulation state (store activations, trace /
# warm-snapshot memo caches) never leaks between tests. They live here so
# each suite stops re-declaring its own copies.

#: Wrong-path junk pool for hand-built traces (the shape every core test
#: used: 64 independent INT ops walking a 64-instruction code footprint).
_HAND_JUNK = [
    (OP_INT, 1 + (i % 8), REG_NONE, REG_NONE, 0, 0, 0x70_0000 + 4 * (i % 64))
    for i in range(64)
]


@pytest.fixture(scope="session")
def hand_trace():
    """Factory for tiny hand-built traces: ``make(entries)`` wraps an
    explicit entry list (with the standard junk pool) into a Trace, so a
    test can drive one modeled mechanism in isolation."""
    from repro.trace.benchmarks import get_benchmark
    from repro.trace.stream import Trace

    profile = get_benchmark("gzip")

    def make(entries, junk=None, name="hand"):
        return Trace(name, profile, entries,
                     list(_HAND_JUNK) if junk is None else junk)

    return make


@pytest.fixture(scope="session")
def tiny_traces():
    """Factory for small *generated* traces: ``make(("gzip", "mcf"))``
    returns one memoized synthetic trace per benchmark name."""
    from repro.trace.stream import trace_for

    def make(benchmarks=("gzip", "twolf"), length=600):
        return [trace_for(b, length) for b in benchmarks]

    return make


@pytest.fixture
def clean_sim_state():
    """Deactivate the packed-trace / warm-snapshot stores and drop the
    process memo caches once the test finishes. Modules whose tests
    toggle stores apply it wholesale via
    ``pytestmark = pytest.mark.usefixtures("clean_sim_state")``."""
    yield
    from repro.core.processor import clear_warm_cache, set_warm_store
    from repro.trace.stream import clear_trace_cache, set_trace_store

    set_trace_store(None)
    set_warm_store(None)
    clear_trace_cache()
    clear_warm_cache()


@pytest.fixture
def trace_store(tmp_path, clean_sim_state):
    """A tmp-dir PackedTraceStore, activated process-wide for the test
    (deactivated and de-memoized again by ``clean_sim_state``)."""
    from repro.trace.stream import set_trace_store

    return set_trace_store(tmp_path / "trace-store")
