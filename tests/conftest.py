"""Shared fixtures for the test suite.

Tests run at small, fixed scales for speed and determinism; the full
paper-scale sweeps live in ``benchmarks/``.
"""

import os
from pathlib import Path

import pytest

# pyproject's `pythonpath = ["src"]` covers in-process imports but is not
# exported to subprocesses; the integration tests spawn example scripts
# and BatchRunner workers, so make the src layout visible to children
# even when the suite is invoked as a bare `pytest`.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in os.environ.get("PYTHONPATH", "").split(os.pathsep):
    os.environ["PYTHONPATH"] = (
        _SRC + os.pathsep + os.environ["PYTHONPATH"]
        if os.environ.get("PYTHONPATH")
        else _SRC
    )

from repro.experiments.scale import ExperimentScale  # noqa: E402


@pytest.fixture
def tiny_scale() -> ExperimentScale:
    """Smallest useful experiment scale (fast unit/integration tests)."""
    return ExperimentScale(commit_target=800, screen_target=300, max_mappings=8)


@pytest.fixture
def small_scale() -> ExperimentScale:
    """Slightly larger scale for shape-sensitive integration tests."""
    return ExperimentScale(commit_target=2500, screen_target=700, max_mappings=12)
