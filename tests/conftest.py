"""Shared fixtures for the test suite.

Tests run at small, fixed scales for speed and determinism; the full
paper-scale sweeps live in ``benchmarks/``.
"""

import pytest

from repro.experiments.scale import ExperimentScale


@pytest.fixture
def tiny_scale() -> ExperimentScale:
    """Smallest useful experiment scale (fast unit/integration tests)."""
    return ExperimentScale(commit_target=800, screen_target=300, max_mappings=8)


@pytest.fixture
def small_scale() -> ExperimentScale:
    """Slightly larger scale for shape-sensitive integration tests."""
    return ExperimentScale(commit_target=2500, screen_target=700, max_mappings=12)
