"""Unit tests: workload tables (Tables 2 and 3)."""

import pytest

from repro.trace.benchmarks import BENCHMARKS
from repro.workloads.definitions import (
    FOUR_THREAD,
    SIX_THREAD,
    TWO_THREAD,
    WORKLOADS,
    Workload,
    get_workload,
    workloads_by,
)


def test_counts_match_tables():
    assert len(TWO_THREAD) == 9
    assert len(FOUR_THREAD) == 9
    assert len(SIX_THREAD) == 4
    assert len(WORKLOADS) == 22


def test_exact_table2_contents():
    assert get_workload("2W1").benchmarks == ("eon", "gcc")
    assert get_workload("2W4").benchmarks == ("mcf", "twolf")
    assert get_workload("4W6").benchmarks == ("gzip", "twolf", "bzip2", "mcf")
    assert get_workload("4W9").benchmarks == ("vpr", "twolf", "gap", "vortex")


def test_exact_table3_contents():
    assert get_workload("6W1").benchmarks == ("gzip", "gcc", "crafty", "eon", "gap", "bzip2")
    assert get_workload("6W4").benchmarks == (
        "vpr",
        "mcf",
        "crafty",
        "perlbmk",
        "vortex",
        "twolf",
    )


def test_classes_match_tables():
    expected = {
        "2W1": "ILP", "2W2": "ILP", "2W3": "ILP",
        "2W4": "MEM", "2W5": "MEM", "2W6": "MEM",
        "2W7": "MIX", "2W8": "MIX", "2W9": "MIX",
        "4W1": "ILP", "4W2": "ILP", "4W3": "ILP",
        "4W4": "MEM", "4W5": "MEM",
        "4W6": "MIX", "4W7": "MIX", "4W8": "MIX", "4W9": "MIX",
        "6W1": "ILP", "6W2": "ILP", "6W3": "MIX", "6W4": "MIX",
    }
    for name, cls in expected.items():
        assert get_workload(name).workload_class == cls, name


def test_no_six_thread_mem_workloads():
    """§4: MEM workloads are only feasible for 2 and 4 threads."""
    assert not workloads_by(num_threads=6, workload_class="MEM")


def test_all_benchmarks_known():
    for w in WORKLOADS.values():
        for b in w.benchmarks:
            assert b in BENCHMARKS


def test_sizes_consistent():
    for w in WORKLOADS.values():
        assert w.num_threads == int(w.name[0])


def test_filters():
    assert {w.name for w in workloads_by(num_threads=2)} == set(TWO_THREAD)
    mems = workloads_by(workload_class="MEM")
    assert {w.name for w in mems} == {"2W4", "2W5", "2W6", "4W4", "4W5"}


def test_get_workload_error():
    with pytest.raises(KeyError):
        get_workload("9W9")


def test_validation():
    with pytest.raises(ValueError):
        Workload("xx", ("nosuch",), "ILP")
    with pytest.raises(ValueError):
        Workload("xx", ("eon",), "WEIRD")


def test_str():
    assert str(get_workload("2W1")) == "2W1(eon,gcc)"
