"""Unit tests: return-address stack."""

from repro.branch.ras import ReturnAddressStack


def test_push_pop_lifo():
    ras = ReturnAddressStack(8)
    ras.push(0x100)
    ras.push(0x200)
    assert ras.pop() == 0x200
    assert ras.pop() == 0x100


def test_underflow_returns_none():
    ras = ReturnAddressStack(8)
    assert ras.pop() is None
    assert ras.underflows == 1


def test_overflow_overwrites_oldest():
    ras = ReturnAddressStack(4)
    for v in (1, 2, 3, 4, 5):  # 1 is overwritten
        ras.push(v)
    assert [ras.pop() for _ in range(4)] == [5, 4, 3, 2]
    assert ras.pop() is None


def test_peek_does_not_pop():
    ras = ReturnAddressStack(4)
    ras.push(7)
    assert ras.peek() == 7
    assert len(ras) == 1
    assert ras.pop() == 7
    assert ras.peek() is None


def test_clear():
    ras = ReturnAddressStack(4)
    ras.push(1)
    ras.clear()
    assert len(ras) == 0
    assert ras.pop() is None


def test_counters():
    ras = ReturnAddressStack(4)
    ras.push(1)
    ras.pop()
    ras.pop()
    assert ras.pushes == 1 and ras.pops == 2 and ras.underflows == 1


def test_validation():
    import pytest

    with pytest.raises(ValueError):
        ReturnAddressStack(0)
