"""Unit tests: combined branch unit (predictor + BTB + RAS)."""

from repro.branch.unit import BranchUnit
from repro.isa.opcodes import OP_BRANCH, OP_CALL, OP_RETURN


def test_call_return_pair_predicts_return_target():
    unit = BranchUnit(max_threads=2)
    call_pc = 0x4000
    ret_pc = 0x8000
    # A call pushes call_pc+4; the matching return should be predicted.
    unit.predict(0, call_pc, OP_CALL, True, 0x8000)
    pred = unit.predict(0, ret_pc, OP_RETURN, True, call_pc + 4)
    assert pred.taken
    assert pred.target_known
    assert not pred.target_mispredict


def test_return_with_corrupted_ras_is_mispredict():
    unit = BranchUnit(max_threads=1)
    pred = unit.predict(0, 0x8000, OP_RETURN, True, 0x1234)
    assert pred.target_mispredict  # empty RAS: no target


def test_branch_direction_mispredict_flag():
    unit = BranchUnit(max_threads=1)
    # Train towards taken.
    for _ in range(64):
        unit.resolve(0, 0x4000, OP_BRANCH, True, 0x5000)
    pred = unit.predict(0, 0x4000, OP_BRANCH, False, 0x4004)
    assert pred.taken is True
    assert pred.direction_mispredict


def test_taken_branch_btb_miss_flagged():
    unit = BranchUnit(max_threads=1)
    for _ in range(64):
        unit.predictor.update(0, 0x4000, True)
    pred = unit.predict(0, 0x4000, OP_BRANCH, True, 0x9000)
    assert pred.taken and not pred.direction_mispredict
    assert not pred.target_known
    assert pred.target_mispredict


def test_resolve_trains_btb():
    unit = BranchUnit(max_threads=1)
    unit.resolve(0, 0x4000, OP_BRANCH, True, 0x9000)
    assert unit.btb.lookup(0, 0x4000) == 0x9000


def test_not_taken_resolution_does_not_fill_btb():
    unit = BranchUnit(max_threads=1)
    unit.resolve(0, 0x4000, OP_BRANCH, False, 0x4004)
    assert unit.btb.lookup(0, 0x4000) is None


def test_clear_thread_resets_ras():
    unit = BranchUnit(max_threads=1)
    unit.predict(0, 0x4000, OP_CALL, True, 0x8000)
    unit.clear_thread(0)
    assert len(unit.rases[0]) == 0


def test_reset_stats():
    unit = BranchUnit(max_threads=1)
    unit.resolve(0, 0x4000, OP_BRANCH, True, 0x5000)
    unit.reset_stats()
    assert unit.stats_resolved == 0
    assert unit.predictor.lookups == 0
