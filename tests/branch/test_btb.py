"""Unit tests: branch target buffer."""

import pytest

from repro.branch.btb import BranchTargetBuffer


def test_miss_then_hit():
    btb = BranchTargetBuffer()
    assert btb.lookup(0, 0x4000) is None
    btb.update(0, 0x4000, 0x5000)
    assert btb.lookup(0, 0x4000) == 0x5000


def test_update_replaces_target():
    btb = BranchTargetBuffer()
    btb.update(0, 0x4000, 0x5000)
    btb.update(0, 0x4000, 0x6000)
    assert btb.lookup(0, 0x4000) == 0x6000


def test_threads_do_not_alias():
    btb = BranchTargetBuffer()
    btb.update(0, 0x4000, 0x5000)
    assert btb.lookup(1, 0x4000) is None


def test_lru_eviction_within_set():
    btb = BranchTargetBuffer(entries=256, ways=4)
    sets = btb.sets
    # Five PCs mapping to the same set: the LRU one is evicted.
    pcs = [0x4000 + i * 4 * sets for i in range(5)]
    for pc in pcs[:4]:
        btb.update(0, pc, pc + 0x100)
    btb.lookup(0, pcs[0])  # refresh pcs[0] to MRU
    btb.update(0, pcs[4], pcs[4] + 0x100)  # evicts pcs[1] (now LRU)
    assert btb.lookup(0, pcs[0]) is not None
    assert btb.lookup(0, pcs[1]) is None


def test_hit_rate_counter():
    btb = BranchTargetBuffer()
    btb.update(0, 0x10, 0x20)
    btb.lookup(0, 0x10)
    btb.lookup(0, 0x999000)
    assert btb.lookups == 2 and btb.hits == 1
    assert btb.hit_rate == 0.5
    btb.reset_stats()
    assert btb.lookups == 0


def test_validation():
    with pytest.raises(ValueError):
        BranchTargetBuffer(entries=255, ways=4)
    with pytest.raises(ValueError):
        BranchTargetBuffer(entries=96, ways=4)  # 24 sets: not a power of 2


def test_capacity_respected():
    btb = BranchTargetBuffer(entries=16, ways=4)
    for i in range(100):
        btb.update(0, i * 4, i)
    resident = sum(len(t) for t in btb._tags)
    assert resident <= 16
