"""Unit tests: perceptron direction predictor."""

import random

import pytest

from repro.branch.perceptron import PerceptronPredictor


def _train(pred, thread, pc, outcomes):
    for taken in outcomes:
        pred.update(thread, pc, taken)


def test_learns_always_taken():
    p = PerceptronPredictor()
    _train(p, 0, 0x4000, [True] * 64)
    assert p.predict(0, 0x4000) is True


def test_learns_always_not_taken():
    p = PerceptronPredictor()
    _train(p, 0, 0x4000, [False] * 64)
    assert p.predict(0, 0x4000) is False


def test_learns_alternating_pattern():
    """T,N,T,N... is a linear function of the last history bit."""
    p = PerceptronPredictor()
    seq = [bool(i % 2) for i in range(600)]
    _train(p, 0, 0x8000, seq)
    correct = 0
    for i in range(600, 700):
        taken = bool(i % 2)
        if p.predict(0, 0x8000) == taken:
            correct += 1
        p.update(0, 0x8000, taken)
    assert correct >= 95


def test_learns_loop_pattern():
    """Taken 7-of-8 loop branch should become highly predictable."""
    p = PerceptronPredictor()
    seq = [(i % 8) != 7 for i in range(800)]
    _train(p, 0, 0xC000, seq)
    correct = 0
    for i in range(800, 960):
        taken = (i % 8) != 7
        if p.predict(0, 0xC000) == taken:
            correct += 1
        p.update(0, 0xC000, taken)
    assert correct / 160 > 0.9


def test_random_branch_near_bias_floor():
    p = PerceptronPredictor()
    rng = random.Random(7)
    correct = 0
    n = 2000
    for _ in range(n):
        taken = rng.random() < 0.7
        if p.predict(0, 0x1234) == taken:
            correct += 1
        p.update(0, 0x1234, taken)
    # Cannot beat the bias by much; should not be wildly below it either.
    assert 0.55 < correct / n < 0.85


def test_threads_have_private_global_history():
    p = PerceptronPredictor()
    # Train thread 0 on alternation at a PC, thread 1 on always-taken at
    # a different PC; thread 1 history must not disturb thread 0.
    for i in range(400):
        p.update(0, 0x4000, bool(i % 2))
        p.update(1, 0x9000, True)
    ok = 0
    for i in range(400, 480):
        if p.predict(0, 0x4000) == bool(i % 2):
            ok += 1
        p.update(0, 0x4000, bool(i % 2))
    assert ok >= 70


def test_weights_saturate():
    p = PerceptronPredictor()
    _train(p, 0, 0x4000, [True] * 5000)
    idx = p._index(0x4000)
    assert all(abs(w) <= p.weight_limit for w in p._weights[idx])


def test_counters():
    p = PerceptronPredictor()
    p.predict(0, 0x10)
    p.update(0, 0x10, True)
    assert p.lookups >= 1
    assert p.trainings >= 1
    p.reset_stats()
    assert p.lookups == 0 and p.mispredicts == 0


def test_power_of_two_validation():
    with pytest.raises(ValueError):
        PerceptronPredictor(num_perceptrons=100)
    with pytest.raises(ValueError):
        PerceptronPredictor(local_entries=1000)


def test_storage_bits_positive():
    p = PerceptronPredictor()
    assert p.storage_bits() > 0


def test_theta_follows_history_length():
    p = PerceptronPredictor(global_bits=10, local_bits=8)
    assert p.theta == int(1.93 * 18 + 14)
