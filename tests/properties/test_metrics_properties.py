"""Property-based tests: metric identities."""

from hypothesis import given, settings, strategies as st

from repro.metrics.stats import (
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    heuristic_accuracy,
    relative_improvement,
)

pos = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False)
pos_lists = st.lists(pos, min_size=1, max_size=20)


@given(pos_lists)
@settings(max_examples=100)
def test_mean_inequality(vals):
    h = harmonic_mean(vals)
    g = geometric_mean(vals)
    a = arithmetic_mean(vals)
    assert h <= g * (1 + 1e-9)
    assert g <= a * (1 + 1e-9)


@given(pos_lists)
@settings(max_examples=100)
def test_means_bounded_by_extremes(vals):
    for mean in (harmonic_mean, geometric_mean, arithmetic_mean):
        m = mean(vals)
        assert min(vals) * (1 - 1e-9) <= m <= max(vals) * (1 + 1e-9)


@given(pos, pos_lists)
@settings(max_examples=100)
def test_harmonic_scale_equivariant(k, vals):
    scaled = [k * v for v in vals]
    assert harmonic_mean(scaled) == pytest_approx(k * harmonic_mean(vals))


def pytest_approx(x):
    import pytest

    return pytest.approx(x, rel=1e-9)


@given(pos, pos)
@settings(max_examples=100)
def test_relative_improvement_antisymmetry(a, b):
    """x improves over y by d => y 'improves' over x by -d/(1+d)."""
    d = relative_improvement(a, b)
    back = relative_improvement(b, a)
    assert back == pytest_approx(-d / (1 + d))


@given(pos_lists)
@settings(max_examples=100)
def test_accuracy_is_one_when_equal(vals):
    assert heuristic_accuracy(vals, vals) == pytest_approx(1.0)


@given(pos_lists, st.floats(min_value=0.1, max_value=1.0))
@settings(max_examples=100)
def test_accuracy_scales_with_uniform_degradation(vals, f):
    degraded = [v * f for v in vals]
    assert heuristic_accuracy(degraded, vals) == pytest_approx(f)
