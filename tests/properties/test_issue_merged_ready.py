"""Differential property suite: merged ready heap ≡ the 3-heap stage.

The issue stage now keeps one merged age-ordered ready heap per pipeline
(``(seq, fu, thread, slot)``) where it used to keep three per-FU-class
heaps and rediscover the oldest issuable instruction with a three-head
scan per pick. Its license is exactness: the selection — the age-ordered
pick across FU classes with free units — must be *identical*, cycle for
cycle.

The reference implementation below is the pre-merge three-heap stage,
copied verbatim (``_issue`` / ``_complete`` / ``_rename`` as of PR 3)
and bound onto a live :class:`~repro.core.processor.Processor` whose
per-pipeline ``ready`` structures are swapped back to heap triples.
Hypothesis drives both machines over randomized workloads, mappings and
commit targets; they are stepped in lockstep and must agree on the
complete ROB state, the pending-event schedule (content *and* order —
events are appended in issue order, so equal event lists pin the
within-cycle issue order) and every end-of-run statistic.
"""

from heapq import heappush, heappop
from types import MethodType

from hypothesis import given, settings, strategies as st

from repro.core.config import STANDARD_CONFIG_NAMES, get_config
from repro.core.mapping import enumerate_mappings
from repro.core.processor import (
    EV_COMPLETE,
    EV_FLUSHCHK,
    FL_LOADCTR,
    FL_MISPRED,
    Processor,
    S_DONE,
    S_ISSUED,
    S_READY,
    S_WAITING,
)
from repro.isa.opcodes import (
    EXEC_LATENCY,
    OP_BRANCH,
    OP_CALL,
    OP_LOAD,
    OP_RETURN,
    _FU_OF_OP,
)
from repro.trace.benchmarks import BENCHMARK_NAMES
from repro.trace.stream import trace_for


# --------------------------------------------------------------------------
# The pre-merge reference stage, verbatim. Three per-FU-class heaps of
# (seq, thread, slot); per-call ``list(pl.fu_count)``; three-head scan.
# --------------------------------------------------------------------------


def _legacy_issue(self, pl):
    budget = pl.width
    fu_avail = list(pl.fu_count)
    ready = pl.ready
    entries, states, _, _, tidx_arr, _, _, seqs, epochs, flags_arr = (
        self._rob_arrays
    )
    iq_used = pl.iq_used
    icount = self.icount
    mem_load = self.mem.load_latency
    r = self.rob_entries
    extra = self._extra_reg
    l1_lat = self._l1_lat
    flush_thr = self._flush_thr
    cyc = self.cycle
    wheel = self._wheel
    mask = self._wheel_mask
    size = mask + 1
    flushing = self.policy.flushing
    issued = 0
    while budget > 0:
        best_fu = -1
        best_seq = None
        for fu in (0, 1, 2):
            if fu_avail[fu] <= 0:
                continue
            heap = ready[fu]
            while heap:
                s, t, slot = heap[0]
                i = t * r + slot
                if states[i] == S_READY and seqs[i] == s:
                    break
                heappop(heap)
            if heap and (best_seq is None or heap[0][0] < best_seq):
                best_seq = heap[0][0]
                best_fu = fu
        if best_fu < 0:
            break
        s, t, slot = heappop(ready[best_fu])
        i = t * r + slot
        fu_avail[best_fu] -= 1
        budget -= 1
        states[i] = S_ISSUED
        issued += 1
        iq_used[best_fu] -= 1
        icount[t] -= 1
        e = entries[i]
        op = e[0]
        if op == OP_LOAD:
            rlat = mem_load(e[4], t)
            lat = rlat + extra
            if rlat > l1_lat:
                self.inflight_loads[t] += 1
                flags_arr[i] |= FL_LOADCTR
            if (
                flushing
                and rlat > flush_thr
                and tidx_arr[i] >= 0
                and not self.flush_wait[t]
            ):
                when = cyc + flush_thr
                item = (EV_FLUSHCHK, t, slot, epochs[i])
                wi = when & mask
                lst = wheel[wi]
                if lst is None:
                    wheel[wi] = [item]
                else:
                    lst.append(item)
        else:
            lat = EXEC_LATENCY[op] + extra
        if lat <= 0:
            lat = 1
        item = (EV_COMPLETE, t, slot, epochs[i])
        if lat < size:
            wi = (cyc + lat) & mask
            lst = wheel[wi]
            if lst is None:
                wheel[wi] = [item]
            else:
                lst.append(item)
        else:  # pragma: no cover - out-of-horizon safety
            self._far_events.setdefault(cyc + lat, []).append(item)
    if issued:
        pl.issued_total += issued
        self._ready_count -= issued
        self._free_epoch += 1


def _legacy_issue_stage(self):
    for pl in self.active_pipes:
        ready = pl.ready
        if ready[0] or ready[1] or ready[2]:
            _legacy_issue(self, pl)


def _legacy_complete(self, t, slot):
    r = self.rob_entries
    base = t * r
    i = base + slot
    entries, states, pend, deps_arr, tidx_arr, _, _, seqs, epochs, flags_arr = (
        self._rob_arrays
    )
    states[i] = S_DONE
    if slot == self.rob_head[t] and not self._head_done[t]:
        self._head_done[t] = True
        self._commitable += 1
    flags = flags_arr[i]
    if flags & FL_LOADCTR:
        flags_arr[i] = flags & ~FL_LOADCTR
        self.inflight_loads[t] -= 1
        if self.flush_wait[t] and self.flush_load_slot[t] == slot:
            self.flush_wait[t] = False
            self.flush_load_slot[t] = -1
    deps = deps_arr[i]
    if deps:
        fu_of = _FU_OF_OP
        ready = self._pipe_by_thread[t].ready
        woken = 0
        for d, dep_ep in deps:
            j = base + d
            if epochs[j] != dep_ep:
                continue
            p = pend[j] - 1
            pend[j] = p
            if p == 0 and states[j] == S_WAITING:
                states[j] = S_READY
                heappush(ready[fu_of[entries[j][0]]], (seqs[j], t, d))
                woken += 1
        if woken:
            self._ready_count += woken
        deps.clear()
    e = entries[i]
    op = e[0]
    if op == OP_BRANCH or op == OP_CALL or op == OP_RETURN:
        tidx = tidx_arr[i]
        taken = bool(e[5])
        if tidx >= 0:
            target = self.traces[t].next_pc(tidx) if taken else e[6] + 4
            self.branch_unit.resolve(t, e[6], op, taken, target)
        if flags_arr[i] & FL_MISPRED:
            flags_arr[i] &= ~FL_MISPRED
            self.stat_mispredicts[t] += 1
            self._squash_after(t, slot)
            self.wrong_path[t] = False
            if tidx >= 0:
                self.fetch_idx[t] = tidx + 1
            self.fetch_stall_until[t] = self.cycle + self._redirect_stall


def _legacy_rename(self, pl):
    buf = pl.buffer
    if not buf:
        return
    t0, e0, _, _ = buf[0]
    fu0 = _FU_OF_OP[e0[0]]
    if (
        pl.iq_used[fu0] >= pl.iq_cap[fu0]
        or self.rob_count[t0] >= self.rob_entries
        or (e0[1] >= 0 and self.phys_free <= 0)
    ):
        pl.blocked_epoch = self._free_epoch
        return
    budget = pl.width
    tpc = pl.tpc
    track_tpc = len(pl.threads) > tpc
    new_thread = False
    seen_mask = 0
    nseen = 0
    iq_used = pl.iq_used
    iq_cap = pl.iq_cap
    ready = pl.ready
    r = self.rob_entries
    (entries, states, pend_arr, deps, tidx_arr, prevprods, prevseqs,
     seqs, epoch_arr, flags_arr) = self._rob_arrays
    rob_tail = self.rob_tail
    rob_count = self.rob_count
    reg_maps = self.reg_map
    epochs_t = self.epoch
    fu_of = _FU_OF_OP
    phys_free = self.phys_free
    seq = self.seq
    woken = 0
    while budget > 0 and buf:
        t, e, tidx, flags = buf[0]
        if track_tpc:
            new_thread = not ((seen_mask >> t) & 1)
            if new_thread and nseen >= tpc:
                break
        op = e[0]
        fu = fu_of[op]
        if iq_used[fu] >= iq_cap[fu]:
            break
        if rob_count[t] >= r:
            break
        dest = e[1]
        if dest >= 0 and phys_free <= 0:
            break
        buf.popleft()
        if new_thread:
            seen_mask |= 1 << t
            nseen += 1
        budget -= 1
        slot = rob_tail[t]
        rob_tail[t] = slot + 1 if slot + 1 < r else 0
        rob_count[t] += 1
        base = t * r
        i = base + slot
        entries[i] = e
        tidx_arr[i] = tidx
        ep = epochs_t[t]
        epoch_arr[i] = ep
        flags_arr[i] = flags
        seqs[i] = seq
        myseq = seq
        seq += 1
        pending = 0
        reg_map = reg_maps[t]
        src = e[2]
        if src >= 0:
            prod = reg_map[src]
            if prod >= 0 and states[base + prod] < S_DONE:
                pending += 1
                dl = deps[base + prod]
                if dl is None:
                    deps[base + prod] = [(slot, ep)]
                else:
                    dl.append((slot, ep))
        src = e[3]
        if src >= 0:
            prod = reg_map[src]
            if prod >= 0 and states[base + prod] < S_DONE:
                pending += 1
                dl = deps[base + prod]
                if dl is None:
                    deps[base + prod] = [(slot, ep)]
                else:
                    dl.append((slot, ep))
        if dest >= 0:
            prev = reg_map[dest]
            prevprods[i] = prev
            prevseqs[i] = seqs[base + prev] if prev >= 0 else -1
            reg_map[dest] = slot
            phys_free -= 1
        else:
            prevprods[i] = -1
            prevseqs[i] = -1
        pend_arr[i] = pending
        iq_used[fu] += 1
        if pending == 0:
            states[i] = S_READY
            heappush(ready[fu], (myseq, t, slot))
            woken += 1
        else:
            states[i] = S_WAITING
    self.phys_free = phys_free
    self.seq = seq
    if woken:
        self._ready_count += woken


def make_legacy(config, traces, mapping, target) -> Processor:
    """A processor whose issue machinery is the pre-merge 3-heap stage."""
    proc = Processor(config, traces, mapping, target)
    for pl in proc.pipelines:
        pl.ready = ([], [], [])
    proc._issue_impl = MethodType(_legacy_issue_stage, proc)
    proc._complete = MethodType(_legacy_complete, proc)
    proc._rename = MethodType(_legacy_rename, proc)
    return proc


# ------------------------------------------------------------- comparison


def _machine_state(proc: Processor) -> tuple:
    """Everything the issue stage can influence, cycle-granular."""
    return (
        proc.cycle,
        proc.seq,
        proc.phys_free,
        proc._ready_count,
        proc._commitable,
        tuple(proc.committed),
        tuple(proc.icount),
        tuple(proc.inflight_loads),
        tuple(proc._rob_state),
        tuple(proc._rob_seq),
        tuple(pl.issued_total for pl in proc.pipelines),
        tuple(tuple(pl.iq_used) for pl in proc.pipelines),
        # Event schedule: content and order (events append in issue
        # order, so equality pins the within-cycle pick order too).
        tuple(sorted(
            (when, tuple(evs)) for when, evs in proc.events.items()
        )),
    )


def _final_state(proc: Processor) -> tuple:
    return (
        proc.cycle,
        proc.finished,
        tuple(proc.committed),
        tuple(pl.issued_total for pl in proc.pipelines),
        tuple(proc.stat_mispredicts),
        tuple(proc.stat_flushes),
        tuple(proc.stat_squashed),
        tuple(proc.stat_fetched),
        tuple(proc.stat_wrongpath_fetched),
        proc.stat_icache_stalls,
        proc.stat_btb_bubbles,
        proc.aggregate_ipc(),
    )


@st.composite
def scenario(draw):
    cfg_name = draw(st.sampled_from(STANDARD_CONFIG_NAMES))
    cfg = get_config(cfg_name)
    n = draw(st.integers(min_value=1, max_value=min(4, cfg.total_contexts)))
    benches = tuple(draw(st.sampled_from(BENCHMARK_NAMES)) for _ in range(n))
    options = enumerate_mappings(cfg, n, max_mappings=6,
                                 seed=draw(st.integers(0, 3)))
    mapping = draw(st.sampled_from(options))
    return cfg, benches, mapping


def _traces_for(benches, length=1500):
    seen = {}
    traces = []
    for b in benches:
        inst = seen.get(b, 0)
        seen[b] = inst + 1
        traces.append(trace_for(b, length, instance=inst))
    return traces


@given(scenario())
@settings(max_examples=12, deadline=None)
def test_lockstep_equivalence_with_three_heap_stage(scn):
    """Step both machines cycle by cycle: the complete issue-visible
    state (ROB, events, counters) must match after every cycle."""
    cfg, benches, mapping = scn
    traces = _traces_for(benches)
    merged = Processor(cfg, traces, mapping, commit_target=10**9)
    merged.warm()
    legacy = make_legacy(cfg, traces, mapping, 10**9)
    legacy.warm()
    for cycle in range(400):
        merged.step()
        legacy.step()
        assert _machine_state(merged) == _machine_state(legacy), (
            f"divergence at cycle {cycle}"
        )


@given(scenario(), st.integers(min_value=150, max_value=600))
@settings(max_examples=12, deadline=None)
def test_full_run_equivalence_with_three_heap_stage(scn, target):
    """run() (idle-skipping fast path included) to the commit target:
    identical cycle counts, commits and statistics."""
    cfg, benches, mapping = scn
    traces = _traces_for(benches)
    merged = Processor(cfg, traces, mapping, commit_target=target)
    merged.warm()
    merged.run()
    legacy = make_legacy(cfg, traces, mapping, target)
    legacy.warm()
    legacy.run()
    assert _final_state(merged) == _final_state(legacy)


def test_fu_contention_parks_and_reinserts(hand_trace):
    """Saturate one FU class: the merged heap must park the blocked
    oldest entries, still issue younger instructions of other classes
    (exactly what the 3-heap scan did), and reinsert the parked entries
    so they issue on a later cycle."""
    from repro.isa.opcodes import OP_INT
    from repro.isa.registers import REG_NONE

    # A burst of independent INT ops (more than the INT units) followed
    # by independent loads: with every INT unit taken, loads must still
    # issue the same cycle.
    entries = []
    for i in range(16):
        entries.append((OP_INT, 1 + (i % 8), REG_NONE, REG_NONE, 0, 0,
                        0x40_0000 + 4 * i))
        entries.append((OP_LOAD, 9 + (i % 8), REG_NONE, REG_NONE,
                        0x10_0000 + 64 * i, 0, 0x40_0000 + 4 * (16 + i)))
    trace = hand_trace(entries)
    cfg = get_config("M8")
    merged = Processor(cfg, [trace], (0,), commit_target=len(entries))
    merged.run()
    legacy = make_legacy(cfg, [trace], (0,), len(entries))
    legacy.run()
    assert _final_state(merged) == _final_state(legacy)
    assert merged.finished
