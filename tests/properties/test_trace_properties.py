"""Property-based tests: synthetic trace generation invariants."""

from hypothesis import given, settings, strategies as st

from repro.isa.opcodes import (
    EXEC_LATENCY,
    NUM_OP_CLASSES,
    OP_BRANCH,
    OP_CALL,
    OP_LOAD,
    OP_RETURN,
    OP_STORE,
)
from repro.isa.registers import NUM_LOGICAL_REGS, REG_NONE
from repro.trace.benchmarks import BENCHMARK_NAMES, get_benchmark
from repro.trace.synthetic import StaticProgram, TraceGenerator

bench = st.sampled_from(BENCHMARK_NAMES)
seeds = st.integers(min_value=0, max_value=50)


@given(bench, seeds, st.integers(min_value=50, max_value=800))
@settings(max_examples=25, deadline=None)
def test_every_entry_well_formed(name, seed, n):
    prog = StaticProgram(get_benchmark(name), seed=0)
    trace = TraceGenerator(prog, seed=seed).generate(n)
    assert len(trace) == n
    for op, dest, s1, s2, addr, taken, pc in trace:
        assert 0 <= op < NUM_OP_CLASSES
        for r in (dest, s1, s2):
            assert r == REG_NONE or 0 <= r < NUM_LOGICAL_REGS
        assert taken in (0, 1)
        assert pc % 4 == 0
        if op in (OP_LOAD, OP_STORE):
            assert addr % 8 == 0 and addr > 0
        if op in (OP_CALL, OP_RETURN):
            assert taken == 1


@given(bench, seeds)
@settings(max_examples=20, deadline=None)
def test_not_taken_branches_fall_through(name, seed):
    prog = StaticProgram(get_benchmark(name), seed=0)
    trace = TraceGenerator(prog, seed=seed).generate(600)
    for i in range(len(trace) - 1):
        e = trace[i]
        if e[0] == OP_BRANCH and not e[5]:
            assert trace[i + 1][6] == e[6] + 4


@given(bench)
@settings(max_examples=12, deadline=None)
def test_generation_is_prefix_stable(name):
    """Generating 2n entries yields the n-entry trace as a prefix."""
    prog = StaticProgram(get_benchmark(name), seed=0)
    a = TraceGenerator(prog, seed=5).generate(300)
    b = TraceGenerator(prog, seed=5).generate(600)
    assert b[:300] == a


@given(bench, seeds)
@settings(max_examples=15, deadline=None)
def test_sources_reference_earlier_destinations_or_constants(name, seed):
    """Register dependencies must be realizable: any source that matches a
    recent destination creates a backward (not forward) dependence."""
    prog = StaticProgram(get_benchmark(name), seed=0)
    trace = TraceGenerator(prog, seed=seed).generate(400)
    # Weak but meaningful check: dependency distance is bounded by the
    # recent-destination window used by the generator (32) whenever the
    # source was produced at all.
    last_writer = {}
    for i, e in enumerate(trace):
        for s in (e[2], e[3]):
            if s in last_writer:
                assert i - last_writer[s] >= 1
        if e[1] != REG_NONE:
            last_writer[e[1]] = i


@given(bench)
@settings(max_examples=12, deadline=None)
def test_latency_table_covers_generated_classes(name):
    prog = StaticProgram(get_benchmark(name), seed=0)
    trace = TraceGenerator(prog, seed=0).generate(500)
    for e in trace:
        assert EXEC_LATENCY[e[0]] >= 1
