"""Differential lockstep suite over the stage registry.

The engine composes its (fetch, issue, commit) stage tuple once at
construction from ``repro.core.engine.stages.STAGE_REGISTRY``; the mono
variants' license — like the merged-ready heap's in
``test_issue_merged_ready`` — is exactness. This suite extends that
harness from the issue stage to fetch and commit: **every** registered
(mono, SMT) stage combination is spliced onto a live monolithic
processor and stepped in lockstep against the all-generic reference;
after every cycle the complete ROB state, the pending-event schedule
(content *and* order — events append in issue order, so equality pins
the within-cycle pick order too) and all counters must match, and whole
runs (``run()``, idle-skipping included) must agree on every statistic.

Because the test parametrizes over the registry rather than a hardcoded
variant list, a newly registered stage variant is differentially tested
against the generic stages automatically — importing
``repro.core.engine.codegen`` below registers the generated-stage
variant, so every (codegen, mono, smt) combination is verified here.

Processors are constructed with codegen explicitly *disabled* so the
constructor always composes the registry variant the config selects
(mono here) regardless of ``REPRO_CODEGEN`` in the environment: the
combos themselves splice in the codegen stages, and the reference must
stay the pure generic machine for the differential to mean anything.
"""

import itertools
from dataclasses import replace

import pytest

import repro.core.engine.codegen  # noqa: F401  (registers the "codegen" variant)
from repro.core.config import get_config
from repro.core.engine.options import EngineOptions, engine_variant_id
from repro.core.engine.stages import STAGE_REGISTRY, STAGE_SETS, stage_set_for
from repro.core.processor import Processor
from repro.trace.stream import trace_for

#: Engine options pinning the constructor to the config-selected
#: registry variant (codegen off) independent of the environment.
_GENERIC = EngineOptions(codegen=False)

#: Monolithic scenarios (the mono variants' domain). The 6-thread case
#: overcommits M8's fetch/rename thread limits so the threads-per-cycle
#: and rotor-wrap paths are exercised.
SCENARIOS = [
    ("2-thread", ("mcf", "twolf"), (0, 0), 500),
    ("4-thread", ("gzip", "twolf", "bzip2", "mcf"), (0, 0, 0, 0), 400),
    ("6-thread", ("gzip", "gcc", "crafty", "eon", "gap", "bzip2"),
     (0,) * 6, 300),
]

STAGE_NAMES = sorted(STAGE_REGISTRY)  # commit, fetch, issue

#: Every (variant per stage) combination the registry can compose.
COMBOS = [
    dict(zip(STAGE_NAMES, combo))
    for combo in itertools.product(
        *(sorted(STAGE_REGISTRY[stage]) for stage in STAGE_NAMES)
    )
]


def _traces_for(benches, length=1500):
    seen = {}
    traces = []
    for b in benches:
        inst = seen.get(b, 0)
        seen[b] = inst + 1
        traces.append(trace_for(b, length, instance=inst))
    return traces


def _compose(proc: Processor, combo: dict) -> Processor:
    """Splice a registry combination onto a live processor (exactly what
    __init__ does for the variant the config selects)."""
    proc._fetch_impl = STAGE_REGISTRY["fetch"][combo["fetch"]].__get__(proc)
    proc._issue_impl = STAGE_REGISTRY["issue"][combo["issue"]].__get__(proc)
    proc._commit_impl = STAGE_REGISTRY["commit"][combo["commit"]].__get__(proc)
    return proc


def _machine_state(proc: Processor) -> tuple:
    """Everything the composed stages can influence, cycle-granular."""
    return (
        proc.cycle,
        proc.seq,
        proc.phys_free,
        proc._ready_count,
        proc._commitable,
        tuple(proc.committed),
        tuple(proc.icount),
        tuple(proc.inflight_loads),
        tuple(proc.fetch_idx),
        tuple(proc.junk_idx),
        tuple(proc.wrong_path),
        tuple(proc.flush_wait),
        tuple(proc.fetch_stall_until),
        tuple(proc.rob_head),
        tuple(proc.rob_tail),
        tuple(proc.rob_count),
        tuple(proc._rob_state),
        tuple(proc._rob_seq),
        tuple(proc._rob_epoch),
        tuple(proc._rob_flags),
        tuple(tuple(m) for m in proc.reg_map),
        tuple(pl.issued_total for pl in proc.pipelines),
        tuple(tuple(pl.iq_used) for pl in proc.pipelines),
        tuple(len(pl.buffer) for pl in proc.pipelines),
        # Event schedule: content and order (events append in issue
        # order, so equality pins the within-cycle pick order too).
        tuple(sorted(
            (when, tuple(evs)) for when, evs in proc.events.items()
        )),
    )


def _final_state(proc: Processor) -> tuple:
    return (
        proc.cycle,
        proc.finished,
        tuple(proc.committed),
        tuple(pl.issued_total for pl in proc.pipelines),
        tuple(proc.stat_mispredicts),
        tuple(proc.stat_flushes),
        tuple(proc.stat_squashed),
        tuple(proc.stat_fetched),
        tuple(proc.stat_wrongpath_fetched),
        proc.stat_icache_stalls,
        proc.stat_btb_bubbles,
        proc.aggregate_ipc(),
    )


def _combo_id(combo: dict) -> str:
    return "-".join(f"{s}:{combo[s]}" for s in STAGE_NAMES)


@pytest.mark.parametrize("combo", COMBOS, ids=_combo_id)
@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s[0])
def test_registry_combo_lockstep_equals_generic_stages(combo, scenario):
    """Step the spliced combination and the all-generic reference cycle
    by cycle: the complete stage-visible state must match after every
    cycle (the ``test_issue_merged_ready`` harness, extended to the
    fetch and commit registries)."""
    _, benches, mapping, _ = scenario
    cfg = replace(get_config("M8"), engine_options=_GENERIC)
    traces = _traces_for(benches)

    candidate = _compose(Processor(cfg, traces, mapping, 10**9), combo)
    candidate.warm()
    reference = _compose(
        Processor(cfg, traces, mapping, 10**9),
        {stage: "smt" for stage in STAGE_NAMES},
    )
    reference.warm()

    for cycle in range(300):
        candidate.step()
        reference.step()
        assert _machine_state(candidate) == _machine_state(reference), (
            f"divergence at cycle {cycle} for {_combo_id(combo)}"
        )


@pytest.mark.parametrize("combo", COMBOS, ids=_combo_id)
@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s[0])
def test_registry_combo_full_run_equals_generic_stages(combo, scenario):
    """run() (idle-skipping fast path included) to the commit target:
    identical cycle counts, commits and statistics for every registered
    combination."""
    _, benches, mapping, target = scenario
    cfg = replace(get_config("M8"), engine_options=_GENERIC)
    traces = _traces_for(benches)

    candidate = _compose(Processor(cfg, traces, mapping, target), combo)
    candidate.warm()
    candidate.run()
    reference = _compose(
        Processor(cfg, traces, mapping, target),
        {stage: "smt" for stage in STAGE_NAMES},
    )
    reference.warm()
    reference.run()
    assert _final_state(candidate) == _final_state(reference)


def test_constructor_selects_registry_variants():
    """__init__ must bind exactly the registry's composed stage set —
    mono variants for monolithic configurations, generic SMT stages
    otherwise — with no per-call dispatch left."""
    mono_cfg = replace(get_config("M8"), engine_options=_GENERIC)
    smt_cfg = replace(get_config("2M4+2M2"), engine_options=_GENERIC)
    mono = Processor(mono_cfg, _traces_for(("gzip", "twolf")), (0, 0), 100)
    smt = Processor(
        smt_cfg, _traces_for(("gzip", "twolf")), (0, 2), 100
    )

    mono_set = stage_set_for(mono_cfg)
    smt_set = stage_set_for(smt_cfg)
    assert mono_set is STAGE_SETS["mono"]
    assert smt_set is STAGE_SETS["smt"]

    assert mono._fetch_impl.__func__ is mono_set.fetch
    assert mono._issue_impl.__func__ is mono_set.issue
    assert mono._commit_impl.__func__ is mono_set.commit
    assert smt._fetch_impl.__func__ is smt_set.fetch
    assert smt._issue_impl.__func__ is smt_set.issue
    assert smt._commit_impl.__func__ is smt_set.commit


def test_registry_is_complete_per_stage():
    """Every registered stage offers every variant (a partially
    registered variant would silently fall back at composition time)."""
    variants = {frozenset(v) for v in STAGE_REGISTRY.values()}
    assert variants == {frozenset({"smt", "mono", "codegen"})}
    for variant, stage_set in STAGE_SETS.items():
        for stage in STAGE_NAMES:
            assert getattr(stage_set, stage) is STAGE_REGISTRY[stage][variant]


def test_codegen_optin_selects_codegen_set():
    """A configuration opted into codegen resolves to the codegen stage
    set (highest priority), regardless of its shape; opting out resolves
    to the shape-selected variant."""
    on = EngineOptions(codegen=True)
    for name in ("M8", "2M4+2M2"):
        cfg = replace(get_config(name), engine_options=on)
        assert stage_set_for(cfg) is STAGE_SETS["codegen"]
        assert stage_set_for(cfg).name == "codegen"
        assert engine_variant_id(on) == "codegen-v1"
    assert stage_set_for(
        replace(get_config("M8"), engine_options=_GENERIC)
    ) is STAGE_SETS["mono"]
