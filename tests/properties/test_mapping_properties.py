"""Property-based tests: mapping policies."""

from hypothesis import given, settings, strategies as st

from repro.core.config import STANDARD_CONFIG_NAMES, get_config
from repro.core.mapping import (
    canonical_mapping,
    enumerate_mappings,
    heuristic_mapping,
    mapping_contexts_ok,
)

config_names = st.sampled_from([n for n in STANDARD_CONFIG_NAMES if n != "M8"])
miss_lists = st.lists(
    st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=2, max_size=6
)


@given(config_names, miss_lists)
@settings(max_examples=80, deadline=None)
def test_heuristic_always_valid(cfg_name, misses):
    cfg = get_config(cfg_name)
    if len(misses) > cfg.total_contexts:
        return
    m = heuristic_mapping(cfg, misses)
    assert len(m) == len(misses)
    assert mapping_contexts_ok(cfg, m)


@given(config_names, miss_lists)
@settings(max_examples=80, deadline=None)
def test_heuristic_best_thread_gets_widest_pipeline(cfg_name, misses):
    cfg = get_config(cfg_name)
    if len(misses) > cfg.total_contexts:
        return
    m = heuristic_mapping(cfg, misses)
    best_thread = min(range(len(misses)), key=lambda t: (misses[t], t))
    widest = max(p.width for p in cfg.pipelines)
    assert cfg.pipelines[m[best_thread]].width == widest


@given(config_names, miss_lists)
@settings(max_examples=50, deadline=None)
def test_heuristic_permutation_equivariant(cfg_name, misses):
    """Reversing the thread order must produce the same canonical class
    when all miss counts are distinct (ties break by workload order)."""
    if len(set(misses)) != len(misses):
        return
    cfg = get_config(cfg_name)
    if len(misses) > cfg.total_contexts:
        return
    m1 = heuristic_mapping(cfg, misses)
    rev = list(reversed(misses))
    m2 = heuristic_mapping(cfg, rev)
    # Re-map m2 back into original thread order.
    n = len(misses)
    m2_orig = tuple(m2[n - 1 - t] for t in range(n))
    assert canonical_mapping(cfg, m1) == canonical_mapping(cfg, m2_orig)


@given(config_names, st.integers(min_value=2, max_value=6))
@settings(max_examples=30, deadline=None)
def test_enumeration_valid_and_unique(cfg_name, nthreads):
    cfg = get_config(cfg_name)
    if nthreads > cfg.total_contexts:
        return
    maps = enumerate_mappings(cfg, nthreads)
    assert maps, "at least one mapping must exist"
    keys = [canonical_mapping(cfg, m) for m in maps]
    assert len(set(keys)) == len(keys), "no duplicate classes"
    for m in maps:
        assert mapping_contexts_ok(cfg, m)


@given(config_names, st.integers(min_value=2, max_value=6))
@settings(max_examples=30, deadline=None)
def test_heuristic_in_enumeration_when_forced(cfg_name, nthreads):
    """With must_include, the heuristic's class is always enumerated —
    even for odd thread counts where the paper's heuristic produces a
    dominated mapping that the default filter would drop."""
    cfg = get_config(cfg_name)
    if nthreads > cfg.total_contexts:
        return
    heur = heuristic_mapping(cfg, list(range(nthreads, 0, -1)))
    maps = enumerate_mappings(cfg, nthreads, must_include=[heur])
    keys = {canonical_mapping(cfg, m) for m in maps}
    assert canonical_mapping(cfg, heur) in keys


@given(config_names)
@settings(max_examples=20, deadline=None)
def test_heuristic_never_dominated_when_saturated(cfg_name):
    """When threads == contexts every pipeline is full, no pipeline can be
    empty, and the heuristic's mapping must appear in plain enumeration.
    (With spare contexts the paper's heuristic CAN produce dominated
    mappings — step 6 only retires full pipelines — which is why the
    oracle search force-includes it.)"""
    cfg = get_config(cfg_name)
    n = cfg.total_contexts
    heur = heuristic_mapping(cfg, list(range(n, 0, -1)))
    keys = {canonical_mapping(cfg, m) for m in enumerate_mappings(cfg, n)}
    assert canonical_mapping(cfg, heur) in keys
