"""Property-based tests: packed traces round-trip exactly, always.

The packed subsystem's license to exist is losslessness (see
tests/trace/test_packed.py for the example-based suite). Here hypothesis
drives *randomized* traces — arbitrary int64 column values, arbitrary
lengths, degenerate single-entry streams — through the full journey the
production path takes: pack → serialize → store → mmap → ``entry()`` /
block decode, asserting tuple-for-tuple equality at every hop and that
store-served access stays lazy (no tuple-list materialization).
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.trace.benchmarks import get_benchmark
from repro.trace.packed import PackedTrace, PackedTraceStore
from repro.trace.stream import FETCH_MASK, FETCH_SHIFT, Trace

# Any int64 value must survive the journey — the columns are declared
# ``array('q')`` and the simulator only ever feeds small non-negative
# ints, but the pack format must not silently depend on that.
_I64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
_entry = st.tuples(_I64, _I64, _I64, _I64, _I64, _I64, _I64)
_entries = st.lists(_entry, min_size=1, max_size=300)
_small_entries = st.lists(_entry, min_size=1, max_size=40)

_PROF = get_benchmark("gzip")


@given(_entries, _small_entries)
@settings(max_examples=60, deadline=None)
def test_pack_roundtrip_exact(entries, junk):
    packed = PackedTrace.from_entries("rand", entries, junk)
    assert packed.length == len(entries)
    assert packed.junk_length == len(junk)
    assert packed.materialize_entries() == entries
    assert packed.materialize_junk() == junk
    # Element access without materialization.
    for i in (0, len(entries) // 2, len(entries) - 1):
        assert packed.entry(i) == entries[i]
    for i in (0, len(junk) - 1):
        assert packed.junk_entry(i) == junk[i]


@given(_entries, _small_entries)
@settings(max_examples=40, deadline=None)
def test_serialized_roundtrip_exact(entries, junk):
    packed = PackedTrace.from_entries("rand", entries, junk)
    again = PackedTrace.from_buffer(packed.to_bytes())
    assert again.name == "rand"
    assert again.materialize_entries() == entries
    assert again.materialize_junk() == junk


@given(_entries, _small_entries, st.integers(min_value=0, max_value=1 << 20))
@settings(max_examples=25, deadline=None)
def test_store_mmap_roundtrip_exact(tmp_path_factory, entries, junk, instance):
    """pack → save → mmap-load → entry(): values, ordering and lazy
    backing all survive the on-disk trip."""
    store = PackedTraceStore(tmp_path_factory.mktemp("store"))
    packed = PackedTrace.from_entries("rand", entries, junk)
    store.save(packed, "rand", len(entries), instance)
    loaded = store.load("rand", len(entries), instance, len(junk))
    assert loaded is not None
    # Zero-copy backing: mmap-served columns are memoryviews, and the
    # entries come back identical element-by-element *in order*.
    assert loaded.length == len(entries)
    for i in range(len(entries)):
        assert loaded.entry(i) == entries[i]
    for i in range(len(junk)):
        assert loaded.junk_entry(i) == junk[i]
    assert loaded.materialize_entries() == entries


@given(_entries, _small_entries)
@settings(max_examples=25, deadline=None)
def test_block_decoded_fetch_view_matches_entries(entries, junk):
    """The fetch engine's lazily-decoded blocks reproduce the stream
    exactly, and a packed-backed Trace serves them without ever
    materializing the full tuple lists."""
    packed = PackedTrace.from_buffer(
        PackedTrace.from_entries("rand", entries, junk).to_bytes()
    )
    trace = Trace("rand", _PROF, packed=packed)
    eblocks, jblocks = trace.fetch_view()
    for i in range(len(entries)):
        blk = eblocks[i >> FETCH_SHIFT]
        if blk is None:
            blk = trace.entry_block(i >> FETCH_SHIFT)
        assert blk[i & FETCH_MASK] == entries[i]
    for i in range(len(junk)):
        blk = jblocks[i >> FETCH_SHIFT]
        if blk is None:
            blk = trace.junk_block(i >> FETCH_SHIFT)
        assert blk[i & FETCH_MASK] == junk[i]
    # Lazy backing held: the tuple lists never materialized.
    assert trace._entries is None
    assert trace._junk is None


@given(_entry, _entry)
@settings(max_examples=20, deadline=None)
def test_single_entry_trace_roundtrip(entry, junk_entry):
    """The smallest legal trace (one entry, one junk slot) survives the
    full journey, wrap-around indexing included."""
    packed = PackedTrace.from_entries("one", [entry], [junk_entry])
    again = PackedTrace.from_buffer(packed.to_bytes())
    assert again.entry(0) == entry
    assert again.junk_entry(0) == junk_entry
    trace = Trace("one", _PROF, packed=again)
    assert trace.entry(0) == entry
    assert trace.entry(5) == entry  # modulo wrap
    assert trace.next_pc(0) == entry[6]


def test_empty_traces_are_rejected():
    """Empty streams must fail loudly at construction, not corrupt the
    store: a packed trace always carries >= 1 entry and >= 1 junk slot."""
    with pytest.raises(ValueError):
        PackedTrace.from_entries("empty", [], [(0,) * 7])
    with pytest.raises(ValueError):
        PackedTrace.from_entries("nojunk", [(0,) * 7], [])
    with pytest.raises(ValueError):
        Trace("empty", _PROF, [], [(0,) * 7])


@given(st.binary(min_size=0, max_size=200))
@settings(max_examples=50, deadline=None)
def test_arbitrary_bytes_never_parse_as_a_trace(blob):
    """from_buffer on garbage raises ValueError (the store maps this to
    a miss) — it must never fabricate a trace."""
    try:
        PackedTrace.from_buffer(blob)
    except ValueError:
        pass  # the only acceptable failure mode
