"""Property-based tests: cache and TLB invariants."""

from hypothesis import given, settings, strategies as st

from repro.memory.cache import SetAssociativeCache
from repro.memory.tlb import TranslationBuffer

addrs = st.lists(st.integers(min_value=0, max_value=2**22), min_size=1, max_size=300)


@given(addrs)
@settings(max_examples=40, deadline=None)
def test_occupancy_never_exceeds_capacity(seq):
    c = SetAssociativeCache(4096, 2, 64, banks=1, name="p")
    for a in seq:
        c.access(a)
    assert c.occupancy() <= 4096 // 64


@given(addrs)
@settings(max_examples=40, deadline=None)
def test_second_access_always_hits(seq):
    """Immediately re-accessing any address must hit (LRU: MRU survives)."""
    c = SetAssociativeCache(8192, 2, 64, banks=1, name="p")
    for a in seq:
        c.access(a)
        assert c.access(a) is True


@given(addrs)
@settings(max_examples=40, deadline=None)
def test_stats_consistent(seq):
    c = SetAssociativeCache(4096, 2, 64, banks=1, name="p", max_threads=1)
    for a in seq:
        c.access(a, 0)
    st_ = c.stats
    assert st_.accesses == len(seq)
    assert st_.hits + st_.misses == st_.accesses
    assert st_.per_thread_accesses[0] == st_.accesses
    assert st_.evictions <= st_.misses


@given(addrs)
@settings(max_examples=40, deadline=None)
def test_misses_monotone_in_associativity(seq):
    """A 4-way cache of equal capacity never misses more than direct-
    mapped... not true in general (Belady), but true vs 1-way on *this*
    LRU + same-capacity setup for the common case; instead assert the
    weaker, always-true property: full-capacity cache never misses twice
    for the same line when the working set fits."""
    lines = {a >> 6 for a in seq}
    big = SetAssociativeCache(1 << 22, 4, 64, banks=1, name="big")
    misses = 0
    for a in seq:
        if not big.access(a):
            misses += 1
    assert misses == len(lines)  # exactly one compulsory miss per line


@given(addrs, st.integers(min_value=1, max_value=7))
@settings(max_examples=40, deadline=None)
def test_threads_never_false_share(seq, t):
    c = SetAssociativeCache(1 << 22, 2, 64, banks=1, name="p")
    for a in seq:
        c.access(a, 0)
    # A different thread sees cold lines for the same addresses.
    assert not any(c.probe(a, t) for a in seq)


@given(addrs)
@settings(max_examples=40, deadline=None)
def test_tlb_size_bound_and_rehit(seq):
    tlb = TranslationBuffer(entries=16)
    for a in seq:
        tlb.access(a)
        assert tlb.access(a) is True  # immediate re-access hits
        assert len(tlb) <= 16
